// Example: approximate betweenness centrality on the simulated GCD — the
// BFS-powered analytics workload the paper's introduction motivates [24].
// Since PR 8 the example is also the registry's smoke test: instead of
// constructing algos::BcEngine directly it resolves the "brandes-bc"
// engine from core::EngineRegistry::global() by (kind, name), exactly the
// way the serving layer builds its per-algorithm ladders.  Samples
// sources, accumulates the per-source Brandes dependencies through the
// typed AlgorithmEngine::solve() interface, and reports the top-central
// vertices next to the exact serial computation on the sampled sources.
//
//   ./betweenness [scale] [edge_factor] [num_sources] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <random>

#include "algos/bc.h"
#include "algos/engines.h"
#include "core/engine_registry.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"

int main(int argc, char** argv) {
  using namespace xbfs;

  graph::RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 13;
  params.edge_factor =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  const unsigned num_sources =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 16;
  params.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  const graph::Csr g = graph::rmat_csr(params);
  std::cout << "RMAT scale " << params.scale << ": |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << "\n";

  const auto giant = graph::largest_component_vertices(g);
  std::mt19937_64 rng(params.seed);
  std::vector<graph::vid_t> sources;
  for (unsigned i = 0; i < num_sources; ++i) {
    sources.push_back(giant[rng() % giant.size()]);
  }

  sim::Device dev(sim::DeviceProfile::mi250x_gcd());
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);

  // Resolve the BC engine through the process-wide registry — the same
  // path the serving engine takes — rather than naming a concrete type.
  algos::register_builtin_engines();
  auto& registry = core::EngineRegistry::global();
  const core::EngineContext ctx{
      .dev = &dev, .dg = &dg, .host_g = &g, .store = nullptr,
      .config = nullptr};
  auto engine = registry.build(core::AlgoKind::Bc, "brandes-bc", ctx);
  if (!engine) {
    std::cerr << "registry has no buildable 'brandes-bc' engine\n";
    return 2;
  }
  std::cout << "registry engines for kind bc:";
  for (const core::EngineInfo& info : registry.list()) {
    if (info.kind == core::AlgoKind::Bc) {
      std::cout << " " << info.name << "(rung " << info.rung << ")";
    }
  }
  std::cout << "\nresolved engine: " << engine->name() << "\n";

  // Per-source typed queries; BC centrality is the sum of per-source
  // dependency contributions (unnormalized, matching the reference).
  std::vector<double> centrality(g.num_vertices(), 0.0);
  double total_ms = 0.0;
  for (const graph::vid_t src : sources) {
    core::AlgoQuery q;
    q.algo = core::AlgoKind::Bc;
    q.source = src;
    const core::AlgoResult r = engine->solve(q);
    const std::vector<double>& scores = *r.payload.scores;
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
      centrality[v] += scores[v];
    }
    total_ms += r.total_ms;
  }
  std::cout << "simulated-GPU Brandes over " << num_sources << " sources: "
            << total_ms << " ms modelled\n";

  // Exact check on the same source sample.
  const auto ref = algos::betweenness_reference(g, sources);
  double max_err = 0;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    max_err = std::max(max_err, std::abs(centrality[v] - ref[v]));
  }
  std::cout << "max |device - reference| = " << max_err << "\n";

  std::vector<graph::vid_t> by_bc(g.num_vertices());
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) by_bc[v] = v;
  std::partial_sort(by_bc.begin(), by_bc.begin() + 10, by_bc.end(),
                    [&](graph::vid_t a, graph::vid_t b) {
                      return centrality[a] > centrality[b];
                    });
  std::cout << "top-10 central vertices (vertex: score, degree):\n";
  for (int i = 0; i < 10; ++i) {
    const graph::vid_t v = by_bc[i];
    std::printf("  %8u: %12.1f  deg %u\n", v, centrality[v], g.degree(v));
  }
  return max_err < 1e-6 ? 0 : 1;
}
