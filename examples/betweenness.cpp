// Example: approximate betweenness centrality on the simulated GCD — the
// BFS-powered analytics workload the paper's introduction motivates [24].
// Samples sources, runs the Brandes kernels, and reports the top-central
// vertices next to the exact serial computation on the sampled sources.
//
//   ./betweenness [scale] [edge_factor] [num_sources] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <random>

#include "algos/bc.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"

int main(int argc, char** argv) {
  using namespace xbfs;

  graph::RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 13;
  params.edge_factor =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  const unsigned num_sources =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 16;
  params.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  const graph::Csr g = graph::rmat_csr(params);
  std::cout << "RMAT scale " << params.scale << ": |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << "\n";

  const auto giant = graph::largest_component_vertices(g);
  std::mt19937_64 rng(params.seed);
  std::vector<graph::vid_t> sources;
  for (unsigned i = 0; i < num_sources; ++i) {
    sources.push_back(giant[rng() % giant.size()]);
  }

  sim::Device dev(sim::DeviceProfile::mi250x_gcd());
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  const algos::BcResult r = algos::betweenness_centrality(dev, dg, sources);
  std::cout << "simulated-GPU Brandes over " << num_sources << " sources: "
            << r.total_ms << " ms modelled\n";

  // Exact check on the same source sample.
  const auto ref = algos::betweenness_reference(g, sources);
  double max_err = 0;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    max_err = std::max(max_err, std::abs(r.centrality[v] - ref[v]));
  }
  std::cout << "max |device - reference| = " << max_err << "\n";

  std::vector<graph::vid_t> by_bc(g.num_vertices());
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) by_bc[v] = v;
  std::partial_sort(by_bc.begin(), by_bc.begin() + 10, by_bc.end(),
                    [&](graph::vid_t a, graph::vid_t b) {
                      return r.centrality[a] > r.centrality[b];
                    });
  std::cout << "top-10 central vertices (vertex: score, degree):\n";
  for (int i = 0; i < 10; ++i) {
    const graph::vid_t v = by_bc[i];
    std::printf("  %8u: %12.1f  deg %u\n", v, r.centrality[v], g.degree(v));
  }
  return max_err < 1e-6 ? 0 : 1;
}
