// SchedCheck sweep — the `check_schedcheck` CI gate (docs/modelcheck.md).
//
// Two halves, mirroring the two promises the model checker makes:
//
//   A. *Benign races verify benign.*  The XBFS core (whose bottom-up
//      look-ahead and top-down same-value claims are racy_ok-annotated on
//      purpose) runs under a bounded schedule exploration; every explored
//      interleaving must reach the identical final BFS labeling (same
//      state hash), with zero unannotated sanitizer findings and zero
//      invariant failures.  An annotation is only *documentation* — this
//      is the check that it documents something actually harmless.
//
//   B. *Real races are caught and replay.*  A deliberately planted
//      unsynchronized kernel (non-atomic read-modify-write of one shared
//      counter from several blocks) must (1) be flagged by SimSan's race
//      analyzer on every schedule, (2) produce a *diverging* final state
//      within the schedule budget — the lost-update the race permits —
//      and (3) replay bit-for-bit from the printed seed via
//      XBFS_SCHEDCHECK=replay=<seed>.
//
// Honours XBFS_SCHEDCHECK for budgets; defaults are sized for CI.
//
//   usage: schedcheck_sweep [scale] [edge_factor] [seed]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/rmat.h"
#include "hipsim/hipsim.h"
#include "hipsim/sanitizer.h"
#include "hipsim/schedcheck.h"

using namespace xbfs;

namespace {

sim::Device make_device() {
  return sim::Device(sim::DeviceProfile::mi250x_gcd(),
                     sim::SimOptions{.num_workers = 1});
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 8;
  const unsigned edge_factor = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 1;

  sim::SchedCheck& chk = sim::SchedCheck::global();
  sim::SchedCheckConfig cfg = chk.config();  // XBFS_SCHEDCHECK if set
  if (!chk.enabled()) {
    cfg.schedules = 16;
    cfg.preemptions = 3;
    cfg.seed = 0x5EEDull;
  }
  sim::Sanitizer& san = sim::Sanitizer::global();
  san.reset();

  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  const graph::Csr g = graph::rmat_csr(p);
  std::cout << "schedcheck_sweep: RMAT scale " << scale << " ("
            << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges), " << cfg.schedules << " schedules, "
            << cfg.preemptions << " preemptions, seed 0x" << std::hex
            << cfg.seed << std::dec << "\n";

  // --- A: every racy_ok race in the XBFS core is benign --------------------
  const sim::ExploreResult benign =
      chk.explore_with(cfg, "xbfs-benign", [&](sim::Schedule&) {
        sim::Device dev = make_device();
        const auto dg = graph::DeviceCsr::upload(dev, g);
        core::XbfsConfig c;
        c.report_runs = false;
        // Small blocks so even a toy graph launches multi-block grids —
        // blocks are the interleaving unit; a 1-block grid has nothing for
        // the checker to reorder.
        c.block_threads = 64;
        core::Xbfs bfs(dev, dg, c);
        const core::BfsResult r = bfs.run(0);
        return sim::state_hash(r.levels);
      });
  benign.summary(std::cout);
  if (!benign.ok()) {
    std::cout << "schedcheck_sweep: FAIL — the annotated races are NOT "
                 "benign: some explored interleaving changed the BFS result "
                 "or produced findings (seeds above replay each one)\n";
    return 1;
  }
  if (benign.conflict_keys == 0 || benign.preemptions == 0) {
    std::cout << "schedcheck_sweep: FAIL — exploration was inert ("
              << benign.conflict_keys << " conflict keys, "
              << benign.preemptions
              << " preemptions); the checker has gone blind\n";
    return 1;
  }
  std::cout << "  benign: " << benign.schedules_run
            << " schedules agree on one final state\n";

  // --- B: a planted unsynchronized kernel is caught and replays ------------
  san.reset();
  constexpr unsigned kBlocks = 6;
  constexpr unsigned kIters = 4;
  auto planted = [&](sim::Schedule&) -> std::uint64_t {
    sim::Device dev = make_device();
    sim::Stream& s = dev.stream(0);
    auto counter = dev.alloc<std::uint32_t>(1, "plant.counter");
    counter.h_fill(0);
    dev.memcpy_h2d(s, counter);
    auto cs = counter.span();
    sim::LaunchConfig lc{.grid_blocks = kBlocks, .block_threads = 1};
    dev.launch(s, "planted_racy_increment", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t != 0) return;
        for (unsigned it = 0; it < kIters; ++it) {
          // The bug under test: a non-atomic RMW.  Preempted between the
          // load and the store, another block's increment is lost.
          const std::uint32_t v = ctx.load(cs, 0);
          ctx.store(cs, 0, v + 1);
        }
      });
    });
    dev.memcpy_d2h(s, counter);
    return 0x1000ull + counter.h_read(0);  // never 0: opt in to divergence
  };
  const sim::ExploreResult caught =
      chk.explore_with(cfg, "planted-race", planted);
  caught.summary(std::cout);
  if (caught.failures.empty()) {
    std::cout << "schedcheck_sweep: FAIL — the planted data race was not "
                 "reported by any schedule\n";
    return 1;
  }
  if (!caught.state_diverged) {
    std::cout << "schedcheck_sweep: FAIL — no explored schedule exhibited "
                 "the lost update within the budget (" << cfg.schedules
              << " schedules, " << cfg.preemptions << " preemptions)\n";
    return 1;
  }
  std::cout << "  planted: race reported on " << caught.failures.size()
            << " schedule(s); lost update at seed 0x" << std::hex
            << caught.first_divergent_seed << std::dec << " (hash 0x"
            << std::hex << caught.first_divergent_hash << " vs baseline 0x"
            << caught.baseline_hash << std::dec << ")\n";

  // Replay: the failure seed alone must reproduce the divergent state
  // bit-for-bit (fresh conflict collection, same decision stream).
  san.reset();
  sim::SchedCheckConfig replay_cfg = cfg;
  replay_cfg.has_replay = true;
  replay_cfg.replay_seed = caught.first_divergent_seed;
  const sim::ExploreResult replay =
      chk.explore_with(replay_cfg, "planted-race-replay", planted);
  if (!replay.state_diverged ||
      replay.first_divergent_seed != caught.first_divergent_seed ||
      replay.first_divergent_hash != caught.first_divergent_hash) {
    std::cout << "schedcheck_sweep: FAIL — replay of seed 0x" << std::hex
              << caught.first_divergent_seed << " reached hash 0x"
              << replay.first_divergent_hash << ", expected 0x"
              << caught.first_divergent_hash << std::dec
              << " (replay is not deterministic)\n";
    return 1;
  }
  std::cout << "  replay: seed 0x" << std::hex << replay.first_divergent_seed
            << " reproduced divergent hash 0x" << replay.first_divergent_hash
            << std::dec << " bit-for-bit\n";

  san.reset();
  san.disable();
  std::cout << "schedcheck_sweep: PASS (" << benign.schedules_run
            << " benign schedules verified, planted race caught on "
            << caught.failures.size() << " schedule(s) and replayed by seed)\n";
  return 0;
}
