// SimSan sweep — the `check_sanitize` CI gate.
//
// Runs every traversal path in the repository at toy scale with the device
// sanitizer fully on (bounds, init, stale, free, races): the XBFS core in
// every strategy/balancing/stream configuration, all four device baselines,
// the BFS-consumer algorithms (multi-source BFS, betweenness, SCC) and the
// multi-GCD distributed layer.  Then prints the sanitizer summary and fails
// unless
//   - there are ZERO unannotated findings (any would be a real defect or an
//     undocumented race), and
//   - at least one ALLOWLISTED data race was observed (the paper's
//     bottom-up look-ahead and the baselines' benign races must be
//     detected-and-annotated, not invisible — if they stop being reported
//     the sanitizer has gone blind).
//
//   usage: sanitize_sweep [scale] [edge_factor] [seed]
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "algos/bc.h"
#include "algos/multi_bfs.h"
#include "algos/scc.h"
#include "baseline/async_sssp.h"
#include "baseline/gunrock_like.h"
#include "baseline/hier_queue.h"
#include "baseline/simple_scan.h"
#include "core/xbfs.h"
#include "dist/dist_bfs.h"
#include "graph/builder.h"
#include "graph/device_csr.h"
#include "graph/rmat.h"
#include "hipsim/hipsim.h"
#include "hipsim/sanitizer.h"

using namespace xbfs;

int main(int argc, char** argv) {
  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 10;
  const unsigned edge_factor = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 1;

  // Configure BEFORE any device allocation: shadows attach at alloc time.
  // Sanitizer::global() honours XBFS_SANITIZE on first use; when the env
  // var is absent this sweep forces everything on.
  auto& san = sim::Sanitizer::global();
  if (!san.enabled()) san.configure(sim::SanitizeConfig::all_on());

  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  const graph::Csr g = graph::rmat_csr(p);
  const graph::Csr gt = graph::reverse_csr(g);
  std::cout << "sanitize_sweep: RMAT scale " << scale << " (" << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges), modes: ";
  // One device for the single-GCD paths; DistBfs creates its own.
  sim::Device dev(sim::DeviceProfile::mi250x_gcd(),
                  sim::SimOptions{.num_workers = 2});
  const auto dg = graph::DeviceCsr::upload(dev, g);
  const auto dgt = graph::DeviceCsr::upload(dev, gt);
  {
    sim::SanitizeConfig c = san.config();
    std::cout << (c.bounds ? "bounds " : "") << (c.init ? "init " : "")
              << (c.stale ? "stale " : "") << (c.free ? "free " : "")
              << (c.races ? "races" : "") << "\n";
  }

  const graph::vid_t src = 0;

  // --- XBFS core: adaptive plus every forced strategy and variant ----------
  {
    std::vector<core::XbfsConfig> cfgs;
    cfgs.emplace_back();  // adaptive, all paper defaults
    for (int s = 0; s < 3; ++s) {  // ScanFree / SingleScan / BottomUp
      core::XbfsConfig c;
      c.forced_strategy = s;
      cfgs.push_back(c);
    }
    {
      core::XbfsConfig c;  // bottom-up with the bitmap status check
      c.forced_strategy = static_cast<int>(core::Strategy::BottomUp);
      c.bottomup_bitmap = true;
      cfgs.push_back(c);
      c.bottomup_warp_centric = true;  // and wavefront-centric gather
      cfgs.push_back(c);
    }
    {
      core::XbfsConfig c;  // CUDA-style three degree-binned streams
      c.stream_mode = core::StreamMode::TripleBinned;
      cfgs.push_back(c);
      c = {};
      c.topdown_balancing = core::Balancing::ThreadCentric;
      cfgs.push_back(c);
      c.topdown_balancing = core::Balancing::WavefrontCentric;
      cfgs.push_back(c);
      c = {};
      c.build_parents = true;  // parent-tree recording path
      cfgs.push_back(c);
    }
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      cfgs[i].report_runs = false;
      core::Xbfs bfs(dev, dg, cfgs[i]);
      (void)bfs.run(src);
      std::cout << "  xbfs config " << i << ": ok\n";
    }
  }

  // --- every device baseline ----------------------------------------------
  {
    baseline::SimpleScanBfs scan(dev, dg);
    (void)scan.run(src);
    baseline::HierQueueBfs hq(dev, dg);
    (void)hq.run(src);
    baseline::GunrockLikeBfs gl(dev, dg);
    (void)gl.run(src);
    baseline::AsyncSsspBfs sssp(dev, dg);
    (void)sssp.run(src);
    std::cout << "  baselines: ok\n";
  }

  // --- BFS-consumer algorithms ---------------------------------------------
  {
    const std::vector<graph::vid_t> sources{0, 1, 2, 3};
    (void)algos::multi_source_bfs(dev, dg, sources);
    (void)algos::betweenness_centrality(dev, dg, {0, 1});
    (void)algos::scc_fw_bw(dev, dg, dgt);
    std::cout << "  algos: ok\n";
  }

  // --- distributed layer ----------------------------------------------------
  {
    dist::DistConfig dc;
    dc.gcds = 2;
    dist::DistBfs db(g, dc);
    (void)db.run(src);
    std::cout << "  dist (2 GCDs): ok\n";
  }

  san.summary(std::cout);

  const std::uint64_t unannotated = san.unannotated_count();
  const std::uint64_t allowlisted = san.allowlisted_count();
  if (unannotated > 0) {
    std::cout << "sanitize_sweep: FAIL — " << unannotated
              << " unannotated finding(s); fix the defect or document the "
                 "benign race with sim::racy_ok\n";
    return 1;
  }
  if (allowlisted == 0) {
    std::cout << "sanitize_sweep: FAIL — expected the annotated benign races "
                 "(bottom-up look-ahead et al.) to be observed; the race "
                 "detector appears inactive\n";
    return 1;
  }

  // Allowlist hygiene: every racy_ok annotation that executed must have
  // covered at least one logged access.  An annotation that runs but
  // covers nothing is *stale* — the racy code it documented has moved and
  // the allowlist entry would silently excuse a future, different race.
  const auto ann = san.annotation_stats();
  std::cout << "racy_ok annotations (" << ann.size() << "):\n";
  for (const auto& a : ann) {
    std::cout << "  scopes=" << a.scopes_entered
              << " accesses=" << a.annotated_accesses
              << " findings=" << a.allowlisted_findings << " : \"" << a.why
              << "\"\n";
  }
  const auto stale = san.stale_annotations();
  if (!stale.empty()) {
    std::cout << "sanitize_sweep: FAIL — " << stale.size()
              << " stale racy_ok annotation(s) (scope entered, but no "
                 "logged access was covered); delete or re-scope them:\n";
    for (const auto& why : stale) std::cout << "  - \"" << why << "\"\n";
    return 1;
  }
  std::cout << "sanitize_sweep: PASS (0 unannotated, " << allowlisted
            << " allowlisted benign-race findings, " << ann.size()
            << " live annotations, 0 stale)\n";
  return 0;
}
