// Example: dataset fabrication tool — generates any Table II stand-in (or a
// raw RMAT) and writes it to disk in the repo's binary CSR format, with an
// optional degree-aware re-arrangement pass.  Demonstrates the generator,
// I/O and reorder APIs; `dataset_explorer --file` can inspect text outputs.
//
//   ./make_dataset R25 out.csr [scale_divisor] [seed] [--rearrange] [--text]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "graph/datasets.h"
#include "graph/io.h"
#include "graph/reorder.h"

int main(int argc, char** argv) {
  using namespace xbfs::graph;
  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " LJ|UP|OR|DB|R23|R25 out.csr [scale_divisor] [seed]"
                 " [--rearrange] [--text]\n";
    return 2;
  }
  const std::string name = argv[1];
  const std::string out = argv[2];
  unsigned divisor = 64;
  std::uint64_t seed = 1;
  bool rearrange = false, text = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rearrange") == 0) {
      rearrange = true;
    } else if (std::strcmp(argv[i], "--text") == 0) {
      text = true;
    } else if (i == 3) {
      divisor = static_cast<unsigned>(std::atoi(argv[i]));
    } else {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i]));
    }
  }

  const DatasetId id = dataset_from_name(name);
  std::cout << "generating " << dataset_meta(id).paper_name
            << " stand-in, divisor " << divisor << ", seed " << seed << "\n";
  Csr g = make_dataset(id, divisor, seed);
  if (rearrange) {
    std::cout << "applying degree-aware neighbor re-arrangement\n";
    g = rearrange_neighbors(g, NeighborOrder::ByDegreeDesc);
  }
  const std::string err = g.validate();
  if (!err.empty()) {
    std::cerr << "generated graph failed validation: " << err << "\n";
    return 1;
  }

  if (text) {
    std::vector<Edge> edges;
    edges.reserve(g.num_edges());
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      for (vid_t w : g.neighbors(v)) {
        if (v <= w) edges.push_back({v, w});  // one direction per edge
      }
    }
    write_edge_list_text(out, edges);
  } else {
    write_csr_binary(out, g);
  }
  std::cout << "wrote " << out << ": |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << ", "
            << (g.payload_bytes() >> 20) << " MB payload\n";
  return 0;
}
