// Example: dataset exploration — builds any of the Table II stand-ins (or
// loads an edge-list file), prints degree statistics, the per-level
// frontier-edge ratio curve that drives XBFS's adaptive policy, and the
// strategy schedule XBFS actually chooses.
//
//   ./dataset_explorer LJ|UP|OR|DB|R23|R25 [scale_divisor] [seed] [--tune]
//   ./dataset_explorer --file edges.txt
//
// --tune additionally runs the alpha auto-tuner (forced-strategy probes,
// paper Sec. V-D methodology) and prints the recommended threshold.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/report.h"
#include "core/tuner.h"
#include "core/xbfs.h"
#include "graph/datasets.h"
#include "graph/device_csr.h"
#include "graph/io.h"
#include "graph/reference.h"
#include "graph/stats.h"

int main(int argc, char** argv) {
  using namespace xbfs;

  bool tune = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tune") == 0) {
      tune = true;
      --argc;  // consume (must be the last argument)
    }
  }

  graph::Csr g;
  std::string label;
  if (argc >= 3 && std::strcmp(argv[1], "--file") == 0) {
    graph::vid_t n = 0;
    auto edges = graph::read_edge_list_text(argv[2], &n);
    g = graph::build_csr(n, std::move(edges));
    label = argv[2];
  } else {
    const std::string name = argc > 1 ? argv[1] : "R25";
    const unsigned divisor =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 64;
    const std::uint64_t seed =
        argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;
    const graph::DatasetId id = graph::dataset_from_name(name);
    const graph::DatasetMeta& meta = graph::dataset_meta(id);
    g = graph::make_dataset(id, divisor, seed);
    label = meta.paper_name + " stand-in (" + meta.substitution + ")";
  }

  std::cout << "dataset: " << label << "\n";
  std::cout << "|V| = " << g.num_vertices() << ", |E| = " << g.num_edges()
            << ", payload " << (g.payload_bytes() >> 20) << " MB\n";

  const graph::DegreeStats ds = graph::degree_stats(g);
  std::printf(
      "degrees: mean %.2f, median %.0f, p90 %.0f, p99 %.0f, max %u, "
      "isolated %llu\n",
      ds.mean, ds.p50, ds.p90, ds.p99, ds.max_degree,
      static_cast<unsigned long long>(ds.isolated));

  const auto giant = graph::largest_component_vertices(g);
  const graph::vid_t src = giant.front();
  std::cout << "giant component: " << giant.size() << " vertices; BFS from "
            << src << "\n\n";

  const auto ratio = graph::frontier_edge_ratio(g, src);
  std::cout << "frontier-edge ratio per level (drives the adaptive policy, "
               "alpha = 0.1):\n";
  for (std::size_t lvl = 0; lvl < ratio.size(); ++lvl) {
    const double log2r = ratio[lvl] > 0 ? std::log2(ratio[lvl]) : -99;
    std::printf("  level %2zu: ratio %9.3e (log2 %6.1f) %s\n", lvl,
                ratio[lvl], log2r, ratio[lvl] > 0.1 ? "<-- bottom-up zone" : "");
  }

  sim::Device dev(sim::DeviceProfile::mi250x_gcd());
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(src);
  std::cout << "\nXBFS schedule:\n";
  core::print_schedule(std::cout, r);

  const std::string err = graph::validate_bfs_levels(g, src, r.levels);
  std::cout << "validation: " << (err.empty() ? "OK" : err) << "\n";

  if (tune) {
    std::cout << "\nalpha auto-tuning (forced-strategy probes):\n";
    core::TunerOptions topt;
    topt.probe_sources = {src};
    if (giant.size() > 2) topt.probe_sources.push_back(giant[giant.size() / 2]);
    const core::TunerReport rep =
        core::tune_alpha(sim::DeviceProfile::mi250x_gcd(), g, topt);
    std::printf(
        "  samples: %zu   bracket: [%.3e, %.3e] %s\n"
        "  recommended alpha: %.4f (paper default: 0.1)\n",
        rep.samples.size(), rep.bracket_low, rep.bracket_high,
        rep.bracket_found ? "(found)" : "(not bracketed)",
        rep.recommended_alpha);
  }
  return err.empty() ? 0 : 1;
}
