// Quickstart: generate a Graph500 RMAT graph, run adaptive XBFS on the
// simulated MI250X GCD, validate against the serial reference and print the
// per-level strategy schedule and throughput.
//
//   ./quickstart [scale] [edge_factor] [seed]
#include <cstdlib>
#include <iostream>

#include "baseline/cpu_bfs.h"
#include "core/report.h"
#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"

int main(int argc, char** argv) {
  using namespace xbfs;

  graph::RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  params.edge_factor =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
  params.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

  std::cout << "Generating RMAT scale=" << params.scale
            << " edge_factor=" << params.edge_factor << " ...\n";
  const graph::Csr g = graph::rmat_csr(params);
  std::cout << "  |V| = " << g.num_vertices() << ", |E| = " << g.num_edges()
            << " (directed entries), avg degree = " << g.avg_degree() << "\n";

  // Pick a source from the largest component, as Graph500 does.
  const auto component = graph::largest_component_vertices(g);
  const graph::vid_t src = component.front();

  sim::Device dev(sim::DeviceProfile::mi250x_gcd());
  dev.warmup();  // pay the HIP module-load cost off the measured path
  auto dg = graph::DeviceCsr::upload(dev, g);

  core::Xbfs bfs(dev, dg);
  const core::BfsResult r = bfs.run(src);

  const std::string err = graph::validate_bfs_levels(g, src, r.levels);
  std::cout << "\nBFS from source " << src << ": depth " << r.depth
            << ", validation " << (err.empty() ? "OK" : "FAILED: " + err)
            << "\n\n";
  core::print_schedule(std::cout, r);

  const auto cpu = baseline::cpu_bfs_serial(g, src);
  std::printf("serial CPU reference: %.3f ms (%.3f GTEPS wall-clock)\n",
              cpu.wall_ms, cpu.gteps);
  return err.empty() ? 0 : 1;
}
