// Serving quickstart: stand up the BFS query-serving engine on an RMAT
// graph, push a burst of Zipf-skewed queries through it, and show what the
// engine does with them — batching into 64-way sweeps, deduplicating hot
// sources, serving repeats from the result cache, and honoring deadlines.
// Every served result is validated against the serial reference.
//
//   ./serve_demo [scale] [edge_factor] [queries] [gcds]
#include <cstdio>
#include <cstdlib>

#include "graph/reference.h"
#include "graph/rmat.h"
#include "serve/server.h"
#include "serve/workload.h"

int main(int argc, char** argv) {
  using namespace xbfs;

  graph::RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 12;
  params.edge_factor =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  const std::size_t queries =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 64;
  const unsigned gcds = argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 2;
  params.seed = 1;

  std::printf("Generating RMAT scale=%u edge_factor=%u ...\n", params.scale,
              params.edge_factor);
  const graph::Csr g = graph::rmat_csr(params);
  const auto giant = graph::largest_component_vertices(g);
  std::printf("  |V| = %llu, |E| = %llu, giant component = %zu\n",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()), giant.size());

  serve::ServeConfig cfg;
  cfg.num_gcds = gcds;
  cfg.batch_window_ms = 0.5;
  serve::Server server(g, cfg);
  std::printf("serving on %u simulated GCD(s), max batch %u, cache %zu "
              "entries, graph fingerprint %016llx\n",
              cfg.num_gcds, cfg.max_batch, cfg.cache_capacity,
              static_cast<unsigned long long>(server.graph_fingerprint()));

  // Zipf(1.0) over 16 hot sources: realistic skew, lots of cache hits.
  std::vector<graph::vid_t> candidates;
  for (std::size_t i = 0; i < 16 && i < giant.size(); ++i) {
    candidates.push_back(giant[(i * giant.size()) / 16]);
  }
  const auto sources = serve::zipf_sources(candidates, queries, 1.0, 7);

  serve::LoadOptions lopt;
  lopt.clients = 4;
  const serve::LoadReport rep = serve::run_closed_loop(server, sources, lopt);
  std::printf("\nclosed loop: %llu/%zu completed in %.1f ms -> %.1f QPS\n",
              static_cast<unsigned long long>(rep.completed), queries,
              rep.wall_ms, rep.qps);

  // Validate a handful of served results end-to-end.
  unsigned checked = 0;
  for (std::size_t i = 0; i < candidates.size() && i < 4; ++i) {
    serve::Admission a = server.submit(candidates[i]);
    if (!a.accepted) {
      std::fprintf(stderr, "validation submit rejected\n");
      return 1;
    }
    const serve::QueryResult r = a.result.get();
    if (r.status != serve::QueryStatus::Completed ||
        *r.levels != graph::reference_bfs(g, candidates[i])) {
      std::fprintf(stderr, "FAILED: served levels diverge for source %u\n",
                   candidates[i]);
      return 1;
    }
    std::printf("  source %-8u depth %-3u %s (%.3f ms end-to-end)\n",
                r.source, r.depth, r.cache_hit ? "cache-hit" : "computed",
                r.total_ms);
    ++checked;
  }

  // A deliberately impossible deadline: reported as expired, not dropped.
  serve::QueryOptions strict;
  strict.timeout_ms = 0.000001;
  strict.bypass_cache = true;  // force it through the queue
  serve::Admission doomed = server.submit(candidates[0], strict);
  if (doomed.accepted) {
    const serve::QueryResult r = doomed.result.get();
    std::printf("  strict-deadline query resolved as '%s'\n",
                serve::query_status_name(r.status));
  }

  server.shutdown();
  const serve::ServerStats st = server.stats();
  std::printf("\nserver stats: completed %llu, expired %llu, cache hit rate "
              "%.1f%%, mean batch occupancy %.2f\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.expired),
              st.cache_hit_rate * 100.0, st.mean_batch_occupancy);
  std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
              st.latency_p50_ms, st.latency_p95_ms, st.latency_p99_ms,
              st.latency_max_ms);

  const bool ok = checked == 4 && rep.completed == rep.accepted &&
                  st.completed + st.expired == st.accepted;
  std::printf("validation %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
