// Kill-and-recover chaos harness — the `check_durability` CI gate
// (docs/durability.md).
//
// Proves the durable write path's headline property: a process SIGKILLed at
// ANY physical disk operation recovers to a state that is byte-equivalent
// (fingerprint chain) and traversal-equivalent (Graph500-validated BFS) to
// a twin that was never killed, with torn final WAL records detected by CRC
// and truncated, never replayed.
//
// Phases:
//   0  env-armed probe: one forked child with XBFS_DURABLE_CRASH in the
//      environment must vanish by SIGKILL at exactly that disk op;
//   1  never-killed twin: the full Zipf-churn batch stream through a
//      durable store, recording the expected fingerprint at every epoch;
//   2  kill sweep: for each disk op N until a run completes, fork a writer
//      child armed to crash at its Nth op (torn-write fractions cycling
//      0.5/0.25/0.75), then recover the directory in the parent and check
//      the recovered (epoch, fingerprint) against the twin's table, the
//      durable-then-ack invariant against the child's side-channel ack
//      file, and (sampled) BFS levels against an in-memory replay;
//   3  probabilistic disk faults: torn/short writes and failed fsyncs
//      injected while applying a batch stream in-process — every rejected
//      batch must leave the store unmoved, and a final close + recover must
//      land exactly on the live fingerprint;
//   4  serving: a Server over a crash-recovered store (require_durability)
//      must report recovery stats, REFUSE the pre-crash fingerprint a
//      client carried across the kill (recovery_stale_rejected), serve
//      Graph500-validated BFS, and purge cached results on epoch bumps;
//   5  SimSan: when XBFS_SANITIZE is on, zero unannotated findings.
//
//   usage: durability_crash [scale] [batches] [seed]
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "dyn/delta_csr.h"
#include "dyn/delta_ref.h"
#include "dyn/graph_store.h"
#include "graph/g500_validate.h"
#include "graph/reference.h"
#include "graph/rmat.h"
#include "hipsim/fault.h"
#include "hipsim/sanitizer.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "store/durability.h"
#include "store/file.h"
#include "store/manifest.h"

using namespace xbfs;

namespace {

constexpr std::uint64_t kSnapshotEvery = 5;

int g_failures = 0;

#define CHECK(cond, msg)                                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FAILED: %s (%s:%d)\n", msg, __FILE__,      \
                   __LINE__);                                          \
      ++g_failures;                                                    \
    }                                                                  \
  } while (0)

std::string workdir(const char* name) {
  const auto p = std::filesystem::temp_directory_path() /
                 (std::string("xbfs_durability_crash_") + name + "_" +
                  std::to_string(::getpid()));
  std::filesystem::remove_all(p);
  return p.string();
}

/// Zipf-skewed churn: hot vertices gain and lose edges far more often than
/// the tail, like a real mutating graph.
std::vector<dyn::EdgeBatch> make_stream(graph::vid_t n, std::size_t batches,
                                        std::uint64_t seed) {
  serve::ZipfGenerator zipf(n, 0.9, seed);
  std::mt19937_64 rng(seed * 977 + 1);
  std::vector<dyn::EdgeBatch> out;
  out.reserve(batches);
  for (std::size_t i = 0; i < batches; ++i) {
    dyn::EdgeBatch b;
    const std::size_t ops = 3 + rng() % 6;
    for (std::size_t k = 0; k < ops; ++k) {
      const auto u = static_cast<graph::vid_t>(zipf.next());
      const auto v = static_cast<graph::vid_t>(rng() % n);
      if (rng() % 3 == 0) {
        b.erase(u, v);
      } else {
        b.insert(u, v);
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

/// Writer child body: open the durable store, apply the stream in order,
/// and append "epoch fingerprint" to the ack file after every accepted
/// batch — the side channel a client would persist results under.  Runs
/// until the armed crash kills the process or the stream completes.
int run_writer(const std::string& dir, const graph::Csr& base,
               const std::vector<dyn::EdgeBatch>& stream) {
  store::DurableStore ds;
  if (!store::open_durable({dir, kSnapshotEvery}, base, {}, 256, &ds).ok()) {
    return 2;
  }
  std::FILE* acks = std::fopen((dir + "/ACKS").c_str(), "a");
  if (acks == nullptr) return 2;
  for (const dyn::EdgeBatch& b : stream) {
    if (!ds.store->try_apply(b, nullptr).ok()) {
      std::fclose(acks);
      return 3;  // no faults are armed in the sweep: any rejection is a bug
    }
    std::fprintf(acks, "%llu %llx\n",
                 static_cast<unsigned long long>(ds.store->epoch()),
                 static_cast<unsigned long long>(ds.store->fingerprint()));
    std::fflush(acks);
  }
  std::fclose(acks);
  return 0;
}

struct Ack {
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;
};

/// Last complete line of the child's ack file ({0,fp0} if it never acked).
Ack last_ack(const std::string& dir, std::uint64_t fp0) {
  Ack a;
  a.fingerprint = fp0;
  std::ifstream in(dir + "/ACKS");
  std::uint64_t e = 0;
  std::string fp_hex;
  while (in >> e >> fp_hex) {
    a.epoch = e;
    a.fingerprint = std::strtoull(fp_hex.c_str(), nullptr, 16);
  }
  return a;
}

/// In-memory replay of the first `upto` batches (no durability, no forced
/// compaction): same edge content as the durable runs, independent code
/// path for the BFS ground truth.
graph::Csr replay_prefix(const graph::Csr& base,
                         const std::vector<dyn::EdgeBatch>& stream,
                         std::uint64_t upto) {
  dyn::DeltaCsr g(base);
  for (std::uint64_t i = 0; i < upto; ++i) g.apply(stream[i]);
  return g.materialize();
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 7;
  const std::size_t batches =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 36;
  const std::uint64_t seed = argc > 3 ? std::atoll(argv[3]) : 11;

  // Shadows attach at device-allocation time; configure before phase 4's
  // server devices exist.  XBFS_SANITIZE=all is honored on first use.
  auto& san = sim::Sanitizer::global();
  const bool san_on = san.enabled();

  // The sweep's twin comparison needs fault-free disk ops; phase 3 turns
  // the probabilistic knobs on explicitly.
  sim::FaultInjector::global().disable();

  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 6;
  p.seed = seed;
  const graph::Csr base = graph::rmat_csr(p);
  const auto n = static_cast<graph::vid_t>(base.num_vertices());
  const std::vector<dyn::EdgeBatch> stream = make_stream(n, batches, seed);
  std::printf("durability_crash: scale %u (%u vertices), %zu Zipf-churn "
              "batches, snapshot every %llu epochs\n",
              scale, n, batches,
              static_cast<unsigned long long>(kSnapshotEvery));

  // --- phase 0: XBFS_DURABLE_CRASH env knob, before any parent disk op ----
  {
    const std::string dir = workdir("envprobe");
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::setenv("XBFS_DURABLE_CRASH", "at=3,frac=0.5", 1);
      run_writer(dir, base, stream);
      ::_exit(4);  // must not survive: op 3 is inside fresh-init
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
          "env-armed child must die by SIGKILL at the armed disk op");
    std::filesystem::remove_all(dir);
    std::printf("phase 0: XBFS_DURABLE_CRASH probe killed as armed\n");
  }

  // --- phase 1: the never-killed twin --------------------------------------
  const std::string twin_dir = workdir("twin");
  std::vector<std::uint64_t> fp_at_epoch;  // [0..batches], durable policy
  std::uint64_t twin_final_fp = 0;
  {
    store::DurableStore twin;
    CHECK(store::open_durable({twin_dir, kSnapshotEvery}, base, {}, 256,
                              &twin)
              .ok(),
          "twin open_durable");
    fp_at_epoch.push_back(twin.store->fingerprint());
    for (const dyn::EdgeBatch& b : stream) {
      CHECK(twin.store->try_apply(b, nullptr).ok(), "twin apply");
      fp_at_epoch.push_back(twin.store->fingerprint());
    }
    const dyn::DurabilityStats ts = twin.durability->stats();
    CHECK(ts.wal_appends == batches, "twin WAL covers every batch");
    CHECK(ts.snapshots_spilled >= batches / kSnapshotEvery,
          "twin spilled periodic snapshots");
    CHECK(ts.wal_rotations >= 1, "twin rotated WAL segments");
    twin_final_fp = twin.store->fingerprint();
    std::printf("phase 1: twin applied %zu batches, %llu snapshots, %llu "
                "rotations, final fp %016llx\n",
                batches,
                static_cast<unsigned long long>(ts.snapshots_spilled),
                static_cast<unsigned long long>(ts.wal_rotations),
                static_cast<unsigned long long>(twin_final_fp));
  }

  // --- phase 2: SIGKILL at every disk op -----------------------------------
  const std::string crash_dir = workdir("crash");
  const std::string stale_keep = workdir("stalekeep");
  const std::string clean_keep = workdir("cleankeep");
  std::uint64_t kills = 0, torn_tails = 0, stale_handouts = 0;
  Ack stale_ack, clean_ack;
  bool have_stale = false, have_clean = false, completed = false;
  std::uint64_t bfs_checks = 0;
  const double fracs[3] = {0.5, 0.25, 0.75};

  for (std::uint64_t op = 1; op <= 4000 && !completed; ++op) {
    std::filesystem::remove_all(crash_dir);
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Crash at the op-th disk op of THIS child's writer run: the counter
      // is process-wide and inherited, so arm relative to it.
      store::arm_crash_at_op(store::disk_ops() + op, fracs[op % 3]);
      ::_exit(run_writer(crash_dir, base, stream));
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      completed = true;  // op lies beyond the run; sweep is exhaustive
    } else if (!(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)) {
      CHECK(false, "writer child neither completed nor died by SIGKILL");
      break;
    } else {
      ++kills;
    }

    if (!store::file_exists(crash_dir + "/" + store::kManifestName)) {
      // The crash predates the first manifest publish: nothing was ever
      // promised durable, and no batch can have been acked.
      CHECK(last_ack(crash_dir, 0).epoch == 0,
            "client acked before a manifest existed");
      continue;
    }

    store::DurableStore rec;
    CHECK(store::open_durable({crash_dir, kSnapshotEvery}, graph::Csr{}, {},
                              256, &rec)
              .ok(),
          "every crash point must recover");
    if (!rec.store) break;
    const dyn::DurabilityStats rs = rec.durability->stats();
    const std::uint64_t r = rec.store->epoch();
    CHECK(rs.recovered, "recovery stats flag");
    CHECK(r <= batches, "recovered epoch in range");
    CHECK(rec.store->fingerprint() == fp_at_epoch[r],
          "recovered fingerprint matches the never-killed twin's chain");
    if (rs.torn_tail_detected) ++torn_tails;

    // Durable-then-ack: nothing the client was told is lost...
    const Ack ack = last_ack(crash_dir, fp_at_epoch[0]);
    CHECK(ack.epoch <= r, "acked batch lost by recovery");
    // ...but durable-not-yet-acked epochs make the client's fingerprint
    // stale — those are the handouts phase 4 must refuse.
    if (ack.epoch < r && !have_stale) {
      have_stale = true;
      stale_ack = ack;
      std::filesystem::copy(crash_dir, stale_keep,
                            std::filesystem::copy_options::recursive);
    } else if (ack.epoch == r && !have_clean && kills > 0) {
      have_clean = true;
      clean_ack = ack;
      std::filesystem::copy(crash_dir, clean_keep,
                            std::filesystem::copy_options::recursive);
    }
    if (ack.epoch == r) {
      CHECK(ack.fingerprint == rec.store->fingerprint(),
            "clean ack agrees with the recovered fingerprint");
    }

    // Sampled structural proof: recovered graph == independent in-memory
    // replay, by Graph500-validated BFS levels.
    if (op % 16 == 1 || completed) {
      const graph::Csr expect = replay_prefix(base, stream, r);
      const dyn::Snapshot snap = rec.store->snapshot();
      const graph::vid_t src = serve::zipf_sources(
          graph::largest_component_vertices(expect), 1, 1.0, seed + op)[0];
      const std::vector<std::int32_t> got = dyn::reference_bfs(*snap.graph,
                                                               src);
      CHECK(graph::validate_levels_graph500(expect, src, got).empty(),
            "recovered BFS fails Graph500 validation");
      CHECK(got == graph::reference_bfs(expect, src),
            "recovered BFS diverges from the in-memory replay");
      ++bfs_checks;
    }
  }
  CHECK(completed, "kill sweep never reached a crash-free run");
  CHECK(kills > 0, "kill sweep never killed a child");
  CHECK(torn_tails > 0, "no crash point produced a torn WAL tail");
  CHECK(have_stale, "no crash point landed between fsync and client ack");
  CHECK(fp_at_epoch[batches] == twin_final_fp, "twin table self-consistent");
  {
    // The crash-free final run must equal the twin exactly.
    store::DurableStore fin;
    CHECK(store::open_durable({crash_dir, kSnapshotEvery}, graph::Csr{}, {},
                              256, &fin)
              .ok() &&
              fin.store->epoch() == batches &&
              fin.store->fingerprint() == twin_final_fp,
          "completed run diverges from the twin");
  }
  std::printf("phase 2: %llu SIGKILLs swept, %llu torn tails truncated, "
              "%llu BFS validations, stale handout found at epoch %llu\n",
              static_cast<unsigned long long>(kills),
              static_cast<unsigned long long>(torn_tails),
              static_cast<unsigned long long>(bfs_checks),
              static_cast<unsigned long long>(stale_ack.epoch));

  // --- phase 3: probabilistic disk faults ----------------------------------
  {
    const std::string dir = workdir("faults");
    sim::FaultConfig fc;
    fc.disk_torn_rate = 0.04;
    fc.disk_short_rate = 0.04;
    fc.fsync_fail_rate = 0.04;
    fc.seed = seed;
    const std::vector<dyn::EdgeBatch> churn =
        make_stream(n, 160, seed + 1000);
    store::DurableStore ds;
    CHECK(store::open_durable({dir, kSnapshotEvery}, base, {}, 256, &ds).ok(),
          "fault-phase open");
    sim::FaultInjector::global().configure(fc);
    std::uint64_t accepted = 0, rejected = 0;
    for (const dyn::EdgeBatch& b : churn) {
      const std::uint64_t before_epoch = ds.store->epoch();
      const std::uint64_t before_fp = ds.store->fingerprint();
      if (ds.store->try_apply(b, nullptr).ok()) {
        ++accepted;
      } else {
        ++rejected;
        CHECK(ds.store->epoch() == before_epoch &&
                  ds.store->fingerprint() == before_fp,
              "rejected batch moved the store");
      }
    }
    sim::FaultInjector::global().disable();
    const dyn::DurabilityStats fs = ds.durability->stats();
    CHECK(rejected > 0, "fault rates injected nothing");
    CHECK(fs.wal_append_failures + fs.fsync_failures == rejected,
          "every rejection is a counted disk fault");
    CHECK(ds.store->epoch() == accepted, "epoch == accepted batches");
    const std::uint64_t live_fp = ds.store->fingerprint();
    ds.store.reset();
    ds.durability.reset();
    store::DurableStore rec;
    CHECK(store::open_durable({dir, kSnapshotEvery}, graph::Csr{}, {}, 256,
                              &rec)
              .ok() &&
              rec.store->fingerprint() == live_fp &&
              rec.store->epoch() == accepted,
          "fault-phase recovery lost accepted state");
    std::printf("phase 3: %llu accepted / %llu rejected under disk faults, "
                "recovery landed on the live fingerprint\n",
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(rejected));
    std::filesystem::remove_all(dir);
  }

  // --- phase 4: serving over a crash-recovered store -----------------------
  {
    store::DurableStore rec;
    CHECK(store::open_durable({stale_keep, kSnapshotEvery}, graph::Csr{}, {},
                              256, &rec)
              .ok(),
          "stale-keep recovery");
    serve::ServeConfig cfg;
    cfg.num_gcds = 1;
    cfg.require_durability = true;
    cfg.batch_window_ms = 0.0;
    serve::Server server(*rec.store, cfg);
    serve::ServerStats st = server.stats();
    CHECK(st.durable && st.recovered, "server missing recovery stats");

    // The fingerprint a client persisted before the kill predates the
    // recovered epoch: serving it would resurrect lost history.
    CHECK(server.result_still_valid(server.graph_fingerprint()),
          "current fingerprint rejected");
    CHECK(!server.result_still_valid(stale_ack.fingerprint),
          "stale pre-crash fingerprint accepted");

    // Serve Graph500-validated BFS from the recovered graph, filling the
    // cache...
    const graph::Csr materialized = rec.store->snapshot().graph->materialize();
    const auto giant = graph::largest_component_vertices(materialized);
    const auto sources = serve::zipf_sources(giant, 24, 1.0, seed + 5);
    std::uint64_t served = 0;
    for (const graph::vid_t src : sources) {
      serve::Admission a = server.submit(src);
      if (!a.accepted) continue;
      const serve::QueryResult r = a.result.get();
      if (r.status != serve::QueryStatus::Completed) continue;
      CHECK(graph::validate_levels_graph500(materialized, src, *r.levels)
                .empty(),
            "served BFS fails Graph500 validation");
      ++served;
    }
    CHECK(served > 0, "no queries served after recovery");

    // ...then move the epoch: the update must be WAL-appended and the
    // cached results keyed under the retired fingerprint purged.
    const serve::UpdateAdmission up = server.submit_update(stream[0]);
    CHECK(up.accepted, "post-recovery update rejected");
    CHECK(up.cache_purged > 0, "epoch bump purged nothing");
    server.shutdown();
    st = server.stats();
    CHECK(st.recovery_stale_rejected == 1, "stale rejection not counted");
    CHECK(st.wal_appends >= 1, "post-recovery update not WAL-appended");
    CHECK(st.cache_epoch_bumps >= 1 && st.cache_purged_stale > 0,
          "stale-cache purge counters not asserted");
    std::printf("phase 4: served %llu validated queries, stale handout "
                "refused, %llu cached results purged on epoch bump\n",
                static_cast<unsigned long long>(served),
                static_cast<unsigned long long>(st.cache_purged_stale));
  }
  if (have_clean) {
    // The flip side of the stale fence: a fingerprint the client was acked
    // AT the recovered epoch survives the crash and must stay servable.
    store::DurableStore rec;
    CHECK(store::open_durable({clean_keep, kSnapshotEvery}, graph::Csr{}, {},
                              256, &rec)
              .ok(),
          "clean-keep recovery");
    serve::ServeConfig cfg;
    cfg.num_gcds = 1;
    cfg.require_durability = true;
    serve::Server server(*rec.store, cfg);
    CHECK(server.result_still_valid(clean_ack.fingerprint),
          "acked pre-crash fingerprint refused after clean recovery");
    CHECK(server.stats().recovery_stale_rejected == 0,
          "clean handout counted as stale");
    server.shutdown();
  }

  // --- phase 5: sanitizer ---------------------------------------------------
  if (san_on) {
    san.summary(std::cout);
    CHECK(san.unannotated_count() == 0, "unannotated sanitizer findings");
  }

  for (const std::string& d :
       {twin_dir, crash_dir, stale_keep, clean_keep}) {
    std::filesystem::remove_all(d);
  }
  std::printf("durability_crash: %s\n", g_failures == 0 ? "PASS" : "FAIL");
  return g_failures == 0 ? 0 : 1;
}
