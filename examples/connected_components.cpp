// Example: connected-component analysis built on repeated XBFS runs — the
// kind of downstream algorithm (SCC/CC detection) the paper's introduction
// motivates as a consumer of fast BFS.
//
// Finds all components by running XBFS from the first unvisited vertex
// until the graph is covered, then reports the component size histogram and
// compares against the serial reference.
//
//   ./connected_components [scale] [edge_factor] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/reference.h"
#include "graph/rmat.h"

int main(int argc, char** argv) {
  using namespace xbfs;

  graph::RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 14;
  params.edge_factor =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;
  params.seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

  const graph::Csr g = graph::rmat_csr(params);
  std::cout << "RMAT scale " << params.scale << ": |V| = " << g.num_vertices()
            << ", |E| = " << g.num_edges() << "\n";

  sim::Device dev(sim::DeviceProfile::mi250x_gcd());
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::Xbfs bfs(dev, dg);

  // Component sweep: repeatedly BFS from the lowest unassigned vertex.
  std::vector<graph::vid_t> component(g.num_vertices(),
                                      static_cast<graph::vid_t>(-1));
  graph::vid_t num_components = 0;
  double total_ms = 0;
  for (graph::vid_t v = 0; v < g.num_vertices(); ++v) {
    if (component[v] != static_cast<graph::vid_t>(-1)) continue;
    if (g.degree(v) == 0) {
      // Isolated vertex: its own component, no traversal needed.
      component[v] = num_components++;
      continue;
    }
    const core::BfsResult r = bfs.run(v);
    total_ms += r.total_ms;
    for (graph::vid_t w = 0; w < g.num_vertices(); ++w) {
      if (r.levels[w] >= 0 && component[w] == static_cast<graph::vid_t>(-1)) {
        component[w] = num_components;
      }
    }
    ++num_components;
  }

  // Validate against the serial reference labelling.
  graph::vid_t ref_components = 0;
  const auto ref = graph::connected_components(g, &ref_components);
  bool ok = num_components == ref_components;
  if (ok) {
    // Same partition: labels may differ, membership must not.
    std::map<graph::vid_t, graph::vid_t> mapping;
    for (graph::vid_t v = 0; v < g.num_vertices() && ok; ++v) {
      auto [it, inserted] = mapping.emplace(component[v], ref[v]);
      ok = it->second == ref[v];
    }
  }

  std::map<std::uint64_t, std::uint64_t> histogram;  // size -> count
  {
    std::vector<std::uint64_t> sizes(num_components, 0);
    for (graph::vid_t v = 0; v < g.num_vertices(); ++v) ++sizes[component[v]];
    for (const auto s : sizes) ++histogram[s];
  }

  std::cout << "components: " << num_components << " (reference "
            << ref_components << ") -> "
            << (ok ? "partition MATCHES" : "partition MISMATCH") << "\n";
  std::cout << "modelled device time for the sweep: " << total_ms << " ms\n";
  std::cout << "component size histogram (size x count, largest 8 rows):\n";
  int rows = 0;
  for (auto it = histogram.rbegin(); it != histogram.rend() && rows < 8;
       ++it, ++rows) {
    std::cout << "  " << it->first << " x " << it->second << "\n";
  }
  return ok ? 0 : 1;
}
