// Example: a Graph500-style BFS benchmark driver — the evaluation protocol
// behind the paper's headline claim (43 GTEPS per GCD vs 0.4 GTEPS per GCD
// for Frontier's CPU-based June-2024 submission).
//
// Generates the Graph500 RMAT kernel, samples 64 random sources from the
// giant component, runs XBFS for each, validates every traversal, and
// reports min/harmonic-mean/max TEPS as the official benchmark does.
//
//   ./graph500_runner [scale] [edge_factor] [num_sources] [seed]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <random>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "graph/g500_validate.h"
#include "graph/reference.h"
#include "graph/rmat.h"

int main(int argc, char** argv) {
  using namespace xbfs;

  graph::RmatParams params;
  params.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  params.edge_factor =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
  const unsigned num_sources =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 16;
  params.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  std::cout << "Graph500-style kernel: RMAT scale " << params.scale
            << ", edge factor " << params.edge_factor << "\n";
  const graph::Csr g = graph::rmat_csr(params);
  std::cout << "  |V| = " << g.num_vertices() << ", |E| = " << g.num_edges()
            << " directed entries\n";

  const auto giant = graph::largest_component_vertices(g);
  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<std::size_t> pick(0, giant.size() - 1);

  sim::Device dev(sim::DeviceProfile::mi250x_gcd());
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  core::XbfsConfig cfg;
  cfg.build_parents = true;  // Graph500 validates the BFS *tree*
  core::Xbfs bfs(dev, dg, cfg);

  double min_gteps = 1e300, max_gteps = 0, inv_sum = 0;
  unsigned validated = 0;
  for (unsigned i = 0; i < num_sources; ++i) {
    const graph::vid_t src = giant[pick(rng)];
    const core::BfsResult r = bfs.run(src);
    // Official-style validation on the parent tree (the five Graph500
    // rules), plus the level cross-check.
    std::string err = graph::validate_graph500(g, src, r.parent);
    if (err.empty()) err = graph::validate_bfs_levels(g, src, r.levels);
    if (!err.empty()) {
      std::cerr << "VALIDATION FAILED for source " << src << ": " << err
                << "\n";
      return 1;
    }
    ++validated;
    min_gteps = std::min(min_gteps, r.gteps);
    max_gteps = std::max(max_gteps, r.gteps);
    inv_sum += 1.0 / r.gteps;
    std::printf("  bfs %2u: src %9u depth %2u  %8.3f ms  %7.3f GTEPS\n", i,
                src, r.depth, r.total_ms, r.gteps);
  }

  const double harmonic = static_cast<double>(num_sources) / inv_sum;
  std::printf(
      "\n%u/%u traversals validated\n"
      "TEPS summary (modelled, single MI250X GCD): min %.3f | harmonic mean "
      "%.3f | max %.3f GTEPS\n",
      validated, num_sources, min_gteps, harmonic, max_gteps);
  std::printf(
      "paper context: 43 GTEPS/GCD at scale 25 on hardware; Frontier's "
      "CPU-based Graph500 run averaged 0.4 GTEPS/GCD\n");
  return 0;
}
