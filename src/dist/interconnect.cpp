#include "dist/interconnect.h"

#include <bit>
#include <cmath>

namespace xbfs::dist {

double FabricModel::allreduce_us(unsigned gcds, std::uint64_t bytes) const {
  if (gcds <= 1) return 0.0;
  const double bw = group_bandwidth(gcds);
  const double moved =
      2.0 * (static_cast<double>(gcds - 1) / gcds) * static_cast<double>(bytes);
  const double hops = 2.0 * (gcds - 1);
  return moved / bw + hops * link_latency_us;
}

double FabricModel::allgather_us(unsigned gcds,
                                 std::uint64_t total_bytes) const {
  if (gcds <= 1) return 0.0;
  const double bw = group_bandwidth(gcds);
  const double moved = (static_cast<double>(gcds - 1) / gcds) *
                       static_cast<double>(total_bytes);
  return moved / bw + (gcds - 1) * link_latency_us;
}

double FabricModel::allreduce_scalar_us(unsigned gcds) const {
  if (gcds <= 1) return 0.0;
  const double levels = std::ceil(std::log2(static_cast<double>(gcds)));
  return 2.0 * levels * link_latency_us;
}

}  // namespace xbfs::dist
