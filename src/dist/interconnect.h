// Interconnect cost model for multi-GCD collectives on Frontier-like
// topology: Infinity Fabric between GCDs inside a node (4x MI250X = 8 GCDs
// per node), HPE Slingshot-11 between nodes.  Collective times follow the
// standard ring-algorithm cost model over the slowest link in the group.
#pragma once

#include <cstdint>

namespace xbfs::dist {

struct FabricModel {
  unsigned gcds_per_node = 8;
  double intra_node_bytes_per_us = 5.0e4;  ///< ~50 GB/s per IF link direction
  double inter_node_bytes_per_us = 2.5e4;  ///< ~25 GB/s Slingshot per NIC
  double link_latency_us = 2.0;            ///< per collective hop

  static FabricModel frontier() { return {}; }

  /// Slowest link bandwidth for a group of `gcds` devices.
  double group_bandwidth(unsigned gcds) const {
    return gcds <= gcds_per_node ? intra_node_bytes_per_us
                                 : inter_node_bytes_per_us;
  }

  /// Ring allreduce (e.g. bitmap OR-reduce + broadcast) of `bytes` payload
  /// across `gcds` devices: 2*(g-1)/g * bytes moved per device.
  double allreduce_us(unsigned gcds, std::uint64_t bytes) const;

  /// Ring allgather: each device contributes bytes/g and receives the rest.
  double allgather_us(unsigned gcds, std::uint64_t total_bytes) const;

  /// Scalar allreduce (counters): latency-dominated tree.
  double allreduce_scalar_us(unsigned gcds) const;
};

}  // namespace xbfs::dist
