#include "dist/partition.h"

#include <algorithm>
#include <cassert>

namespace xbfs::dist {

Partition1D::Partition1D(graph::vid_t n, unsigned parts)
    : n_(n), parts_(parts) {
  assert(parts >= 1);
  bounds_.resize(parts_ + 1);
  for (unsigned p = 0; p <= parts_; ++p) {
    bounds_[p] = static_cast<graph::vid_t>(
        static_cast<std::uint64_t>(n_) * p / parts_);
  }
}

unsigned Partition1D::owner(graph::vid_t v) const {
  assert(v < n_);
  // Near-uniform blocks: jump to the estimate, then correct locally.
  unsigned p = static_cast<unsigned>(
      static_cast<std::uint64_t>(v) * parts_ / std::max<graph::vid_t>(n_, 1));
  if (p >= parts_) p = parts_ - 1;
  while (v < bounds_[p]) --p;
  while (v >= bounds_[p + 1]) ++p;
  return p;
}

std::uint64_t Partition1D::layout_hash() const {
  // Same FNV-1a byte-mix as graph::Csr::fingerprint so the two halves of a
  // sharded cache key share one hashing idiom.
  constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
  std::uint64_t h = kFnvOffset;
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (x & 0xff)) * kFnvPrime;
      x >>= 8;
    }
  };
  mix(parts_);
  mix(n_);
  for (const graph::vid_t b : bounds_) mix(b);
  return h;
}

LocalRows extract_local_rows(const graph::Csr& g, const Partition1D& part,
                             unsigned p) {
  LocalRows out;
  out.first_vertex = part.begin(p);
  out.num_rows = part.owned(p);
  out.offsets.resize(static_cast<std::size_t>(out.num_rows) + 1);
  const graph::eid_t base = g.offsets()[out.first_vertex];
  for (graph::vid_t r = 0; r <= out.num_rows; ++r) {
    out.offsets[r] = g.offsets()[out.first_vertex + r] - base;
  }
  out.cols.assign(
      g.cols().begin() + static_cast<std::ptrdiff_t>(base),
      g.cols().begin() +
          static_cast<std::ptrdiff_t>(g.offsets()[part.end(p)]));
  out.owned_edges = out.cols.size();
  return out;
}

}  // namespace xbfs::dist
