#include "dist/dist_bfs.h"

#include <algorithm>
#include <cassert>

#include "core/status.h"  // kUnvisited, auto_grid_blocks
#include "core/xbfs.h"    // safe_gteps
#include "hipsim/hipsim.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace xbfs::dist {

using core::auto_grid_blocks;
using core::kUnvisited;
using graph::eid_t;
using graph::vid_t;

namespace {
constexpr std::size_t kTail = 0;     ///< counters[0]: frontier queue tail
constexpr std::size_t kClaimed = 1;  ///< counters[1]: vertices claimed
}  // namespace

struct DistBfs::Gcd {
  std::unique_ptr<sim::Device> device;
  LocalRows rows;
  sim::DeviceBuffer<eid_t> offsets;
  sim::DeviceBuffer<vid_t> cols;
  sim::DeviceBuffer<std::uint32_t> status;  ///< owned vertices, local index
  sim::DeviceBuffer<std::uint64_t> cur_bm;  ///< global frontier bitmap copy
  sim::DeviceBuffer<std::uint64_t> next_bm;
  sim::DeviceBuffer<vid_t> queue;           ///< owned frontier (global ids)
  sim::DeviceBuffer<std::uint32_t> counters;
  sim::DeviceBuffer<std::uint64_t> edges;
};

DistBfs::DistBfs(const graph::Csr& g, DistConfig cfg)
    : n_(g.num_vertices()), m_(g.num_edges()), cfg_(cfg),
      part_(g.num_vertices(), cfg.gcds) {
  assert(cfg_.gcds >= 1);
  obs::TraceSession::global().set_process_label(0, "dist-coordinator");
  const std::size_t words = (static_cast<std::size_t>(n_) + 63) / 64;
  gcds_.reserve(cfg_.gcds);
  for (unsigned p = 0; p < cfg_.gcds; ++p) {
    auto gcd = std::make_unique<Gcd>();
    gcd->device = std::make_unique<sim::Device>(
        sim::DeviceProfile::mi250x_gcd(), cfg_.device_options);
    gcd->device->warmup();
    gcd->device->set_trace_label("gcd" + std::to_string(p));
    gcd->rows = extract_local_rows(g, part_, p);
    sim::Device& dev = *gcd->device;
    gcd->offsets = dev.alloc<eid_t>(gcd->rows.offsets.size(), "dist.offsets");
    gcd->offsets.h_copy_from(gcd->rows.offsets.data(),
                             gcd->rows.offsets.size());
    gcd->cols = dev.alloc<vid_t>(std::max<std::size_t>(1, gcd->rows.cols.size()),
                                 "dist.cols");
    if (!gcd->rows.cols.empty()) {
      gcd->cols.h_copy_from(gcd->rows.cols.data(), gcd->rows.cols.size());
    }
    // Modelled upload charges the local slice's own byte count (the cols
    // buffer is padded to at least one element).
    dev.memcpy_h2d(gcd->rows.offsets.size() * sizeof(eid_t) +
                   gcd->rows.cols.size() * sizeof(vid_t));
    gcd->offsets.mark_device_synced();
    gcd->cols.mark_device_synced();
    gcd->status = dev.alloc<std::uint32_t>(
        std::max<graph::vid_t>(1, gcd->rows.num_rows), "dist.status");
    gcd->cur_bm = dev.alloc<std::uint64_t>(words, "dist.cur_bm");
    gcd->next_bm = dev.alloc<std::uint64_t>(words, "dist.next_bm");
    gcd->queue = dev.alloc<vid_t>(std::max<graph::vid_t>(1, gcd->rows.num_rows),
                                  "dist.queue");
    gcd->counters = dev.alloc<std::uint32_t>(2, "dist.counters");
    gcd->edges = dev.alloc<std::uint64_t>(1, "dist.edges");
    gcds_.push_back(std::move(gcd));
  }
}

DistBfs::~DistBfs() = default;

void DistBfs::reset_for_run(graph::vid_t src) {
  const unsigned owner = part_.owner(src);
  for (unsigned p = 0; p < cfg_.gcds; ++p) {
    Gcd& g = *gcds_[p];
    sim::Device& dev = *g.device;
    auto status = g.status.span();
    auto cur = g.cur_bm.span();
    auto next = g.next_bm.span();
    const vid_t rows = g.rows.num_rows;
    const vid_t first = g.rows.first_vertex;
    sim::LaunchConfig lc;
    lc.block_threads = cfg_.block_threads;
    lc.grid_blocks = auto_grid_blocks(dev.profile(),
                                      std::max<std::uint64_t>(rows, 1),
                                      cfg_.block_threads);
    const bool is_owner = p == owner;
    dev.launch("dist_init", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(rows, [&](std::uint64_t r) {
        ctx.store(status, r,
                  is_owner && first + r == src ? 0u : kUnvisited);
      });
      blk.grid_stride(cur.size(), [&](std::uint64_t w) {
        std::uint64_t word = 0;
        if (src / 64 == w) word = std::uint64_t{1} << (src % 64);
        ctx.store(cur, w, word);
        ctx.store(next, w, std::uint64_t{0});
      });
    });
  }
}

double DistBfs::run_local_topdown(std::uint32_t /*level*/) {
  double slowest = 0;
  for (auto& gp : gcds_) {
    Gcd& g = *gp;
    sim::Device& dev = *g.device;
    sim::Stream& s = dev.stream(0);
    const double t0 = dev.now_us();
    auto counters = g.counters.span();
    auto edges = g.edges.span();
    auto cur = g.cur_bm.cspan();
    auto next = g.next_bm.span();
    auto queue = g.queue.span();
    auto offsets = g.offsets.cspan();
    auto cols = g.cols.cspan();
    const vid_t first = g.rows.first_vertex;
    const vid_t rows = g.rows.num_rows;

    sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
    dev.launch(s, "dist_reset", rc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t < 2) ctx.store(counters, t, std::uint32_t{0});
        if (t == 2) ctx.store(edges, 0, std::uint64_t{0});
      });
    });

    // Extract the owned slice of the frontier bitmap into a queue.
    const std::uint64_t w_begin = first / 64;
    const std::uint64_t w_end =
        (static_cast<std::uint64_t>(first) + rows + 63) / 64;
    sim::LaunchConfig gc;
    gc.block_threads = cfg_.block_threads;
    gc.grid_blocks = auto_grid_blocks(
        dev.profile(), std::max<std::uint64_t>(w_end - w_begin, 1),
        cfg_.block_threads);
    dev.launch(s, "dist_frontier_gen", gc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(w_end - w_begin, [&](std::uint64_t wi) {
        const std::uint64_t word = ctx.load(cur, w_begin + wi);
        if (word == 0) return;
        // Owned bits only (edge words may straddle the boundary).
        unsigned count = 0;
        vid_t found[64];
        for (unsigned b = 0; b < 64; ++b) {
          if (!(word & (std::uint64_t{1} << b))) continue;
          const std::uint64_t v = (w_begin + wi) * 64 + b;
          if (v < first || v >= static_cast<std::uint64_t>(first) + rows) {
            continue;
          }
          found[count++] = static_cast<vid_t>(v);
        }
        if (count == 0) return;
        const std::uint32_t base = ctx.atomic_add(counters, kTail, count);
        for (unsigned i = 0; i < count; ++i) {
          ctx.store(queue, base + i, found[i]);
        }
        ctx.slots(count, count);
      });
    });
    dev.memcpy_d2h(s, sizeof(std::uint32_t));
    g.counters.mark_host_synced();
    const std::uint32_t fsize = g.counters.h_read(kTail);

    if (fsize > 0) {
      sim::LaunchConfig ec;
      ec.block_threads = cfg_.block_threads;
      ec.grid_blocks =
          auto_grid_blocks(dev.profile(), fsize, cfg_.block_threads);
      dev.launch(s, "dist_topdown_expand", ec, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(fsize, [&](std::uint64_t i) {
          const vid_t v = ctx.load(queue, i);
          const vid_t r = v - first;
          const eid_t b = ctx.load(offsets, r);
          const eid_t e = ctx.load(offsets, r + 1);
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cols, j);
            // Candidate-bit pre-check dedups repeat discoveries locally.
            const std::uint64_t word = ctx.atomic_load(next, w / 64);
            const std::uint64_t bit = std::uint64_t{1} << (w % 64);
            if (!(word & bit)) ctx.atomic_or(next, w / 64, bit);
          }
          ctx.slots(2 * (e - b) + 1, 2 * (e - b) + 1);
        });
      });
    }
    s.synchronize();
    slowest = std::max(slowest, dev.now_us() - t0);
  }
  return slowest;
}

double DistBfs::run_claim_phase(std::uint32_t level) {
  const std::uint32_t next_level = level + 1;
  double slowest = 0;
  for (auto& gp : gcds_) {
    Gcd& g = *gp;
    sim::Device& dev = *g.device;
    sim::Stream& s = dev.stream(0);
    const double t0 = dev.now_us();
    auto counters = g.counters.span();
    auto edges = g.edges.span();
    auto next = g.next_bm.span();
    auto status = g.status.span();
    auto offsets = g.offsets.cspan();
    const vid_t first = g.rows.first_vertex;
    const vid_t rows = g.rows.num_rows;
    const std::uint64_t w_begin = first / 64;
    const std::uint64_t w_end =
        (static_cast<std::uint64_t>(first) + rows + 63) / 64;
    sim::LaunchConfig cc;
    cc.block_threads = cfg_.block_threads;
    cc.grid_blocks = auto_grid_blocks(
        dev.profile(), std::max<std::uint64_t>(w_end - w_begin, 1),
        cfg_.block_threads);
    dev.launch(s, "dist_claim", cc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(w_end - w_begin, [&](std::uint64_t wi) {
        const std::uint64_t word = ctx.load(
            sim::dspan<const std::uint64_t>(next), w_begin + wi);
        if (word == 0) return;
        std::uint64_t cleaned = 0;
        std::uint32_t claimed = 0;
        std::uint64_t degree_sum = 0;
        for (unsigned b = 0; b < 64; ++b) {
          const std::uint64_t bit = std::uint64_t{1} << b;
          if (!(word & bit)) continue;
          const std::uint64_t v = (w_begin + wi) * 64 + b;
          if (v < first || v >= static_cast<std::uint64_t>(first) + rows) {
            continue;  // not owned: drop (the owner keeps its own copy)
          }
          const vid_t r = static_cast<vid_t>(v - first);
          if (ctx.load(status, r) == kUnvisited) {
            ctx.store(status, r, next_level);
            cleaned |= bit;
            ++claimed;
            degree_sum +=
                ctx.load(offsets, r + 1) - ctx.load(offsets, r);
          }
        }
        if (cleaned != word) ctx.store(next, w_begin + wi, cleaned);
        if (claimed > 0) {
          ctx.atomic_add(counters, kClaimed, claimed);
          ctx.atomic_add(edges, 0, degree_sum);
        }
        ctx.slots(64, claimed + 1);
      });
    });
    s.synchronize();
    slowest = std::max(slowest, dev.now_us() - t0);
  }
  return slowest;
}

double DistBfs::run_local_bottomup(std::uint32_t level) {
  const std::uint32_t next_level = level + 1;
  double slowest = 0;
  for (auto& gp : gcds_) {
    Gcd& g = *gp;
    sim::Device& dev = *g.device;
    sim::Stream& s = dev.stream(0);
    const double t0 = dev.now_us();
    auto counters = g.counters.span();
    auto edges = g.edges.span();
    auto cur = g.cur_bm.cspan();
    auto next = g.next_bm.span();
    auto status = g.status.span();
    auto offsets = g.offsets.cspan();
    auto cols = g.cols.cspan();
    const vid_t first = g.rows.first_vertex;
    const vid_t rows = g.rows.num_rows;

    sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
    dev.launch(s, "dist_reset", rc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t < 2) ctx.store(counters, t, std::uint32_t{0});
        if (t == 2) ctx.store(edges, 0, std::uint64_t{0});
      });
    });

    sim::LaunchConfig bc;
    bc.block_threads = cfg_.block_threads;
    bc.grid_blocks = auto_grid_blocks(
        dev.profile(), std::max<graph::vid_t>(rows, 1), cfg_.block_threads);
    dev.launch(s, "dist_bottomup", bc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(rows, [&](std::uint64_t r) {
        if (ctx.load(status, r) != kUnvisited) {
          ctx.slots(1, 1);
          return;
        }
        const eid_t b = ctx.load(offsets, r);
        const eid_t e = ctx.load(offsets, r + 1);
        std::uint64_t steps = 0;
        for (eid_t j = b; j < e; ++j) {
          const vid_t w = ctx.load(cols, j);
          ++steps;
          const std::uint64_t word = ctx.atomic_load(cur, w / 64);
          if (word & (std::uint64_t{1} << (w % 64))) {
            const vid_t v = first + static_cast<vid_t>(r);
            ctx.store(status, r, next_level);
            ctx.atomic_or(next, v / 64, std::uint64_t{1} << (v % 64));
            ctx.atomic_add(counters, kClaimed, std::uint32_t{1});
            ctx.atomic_add(edges, 0, static_cast<std::uint64_t>(e - b));
            break;
          }
        }
        ctx.slots(2 * steps + 1, 2 * steps + 1);
      });
    });
    s.synchronize();
    slowest = std::max(slowest, dev.now_us() - t0);
  }
  return slowest;
}

void DistBfs::merge_candidates_to_owners() {
  // Host-side data movement standing in for the alltoall: owner p's slice
  // becomes the OR of every device's candidate bits for that slice.  The
  // transfer itself is charged to the modelled fabric (allgather_us), so
  // the host view is declared synced here rather than via memcpy_d2h.
  for (auto& gp : gcds_) gp->next_bm.mark_host_synced();
  const std::size_t words = gcds_[0]->cur_bm.size();
  for (unsigned p = 0; p < cfg_.gcds; ++p) {
    Gcd& owner = *gcds_[p];
    const std::uint64_t w_begin = owner.rows.first_vertex / 64;
    const std::uint64_t w_end = std::min<std::uint64_t>(
        words, (static_cast<std::uint64_t>(owner.rows.first_vertex) +
                owner.rows.num_rows + 63) /
                   64);
    for (std::uint64_t w = w_begin; w < w_end; ++w) {
      std::uint64_t merged = 0;
      for (auto& gp : gcds_) merged |= gp->next_bm.host_data()[w];
      owner.next_bm.host_data()[w] = merged;
    }
  }
}

void DistBfs::broadcast_cleaned_slices() {
  // Host-side allgather: every device receives each owner's cleaned slice.
  // Boundary words shared by two owners are OR-combined.  As in the merge,
  // the wire time is charged to the modelled fabric by the caller.
  for (auto& gp : gcds_) gp->next_bm.mark_host_synced();
  const std::size_t words = gcds_[0]->cur_bm.size();
  std::vector<std::uint64_t> global(words, 0);
  for (auto& gp : gcds_) {
    const Gcd& g = *gp;
    const std::uint64_t w_begin = g.rows.first_vertex / 64;
    const std::uint64_t w_end = std::min<std::uint64_t>(
        words, (static_cast<std::uint64_t>(g.rows.first_vertex) +
                g.rows.num_rows + 63) /
                   64);
    const std::uint64_t first = g.rows.first_vertex;
    const std::uint64_t last = first + g.rows.num_rows;  // exclusive
    for (std::uint64_t w = w_begin; w < w_end; ++w) {
      std::uint64_t mask = ~std::uint64_t{0};
      if (w * 64 < first) mask &= ~((std::uint64_t{1} << (first - w * 64)) - 1);
      if ((w + 1) * 64 > last) {
        const unsigned keep = static_cast<unsigned>(last - w * 64);
        mask &= keep >= 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << keep) - 1);
      }
      global[w] |= g.next_bm.host_data()[w] & mask;
    }
  }
  for (auto& gp : gcds_) {
    std::copy(global.begin(), global.end(), gp->next_bm.host_data());
    gp->next_bm.mark_device_synced();
  }
}

DistBfsResult DistBfs::run(vid_t src) {
  assert(src < n_);
  DistBfsResult result;
  reset_for_run(src);

  const std::size_t words = gcds_[0]->cur_bm.size();
  const std::uint64_t bitmap_bytes = words * sizeof(std::uint64_t);
  const unsigned G = cfg_.gcds;

  // Level-0 frontier metadata from the owner's local rows.
  const Gcd& owner = *gcds_[part_.owner(src)];
  const vid_t r0 = src - owner.rows.first_vertex;
  std::uint64_t frontier_count = 1;
  std::uint64_t frontier_edges =
      owner.rows.offsets[r0 + 1] - owner.rows.offsets[r0];

  obs::TraceSession& tr = obs::TraceSession::global();
  const bool tracing = tr.enabled();

  double clock_us = 0, comm_total_us = 0;
  for (std::uint32_t level = 0;; ++level) {
    const double ratio =
        static_cast<double>(frontier_edges) / static_cast<double>(m_ ? m_ : 1);
    const bool bottom_up = ratio > cfg_.alpha;
    const double level_t0 = clock_us;

    DistLevelStats st;
    st.level = level;
    st.bottom_up = bottom_up;
    st.frontier_count = frontier_count;
    st.frontier_edges = frontier_edges;
    st.ratio = ratio;

    // Phase spans land on the coordinator lane (pid 0) along the modelled
    // global clock; per-rank kernel attribution comes from each GCD's own
    // device lane (one trace pid per GCD).
    double phase_cursor = clock_us;
    auto phase = [&](const char* name, const char* category, double dur_us) {
      if (tracing && dur_us > 0.0) {
        obs::Span sp;
        sp.name = name;
        sp.category = category;
        sp.track = "dist-phases";
        sp.pid = 0;
        sp.sim_start_us = phase_cursor;
        sp.sim_dur_us = dur_us;
        sp.attr("level", static_cast<std::uint64_t>(level));
        sp.attr("gcds", static_cast<std::uint64_t>(G));
        tr.complete(std::move(sp));
      }
      phase_cursor += dur_us;
    };

    double local_us = 0, comm_us = 0;
    if (bottom_up) {
      local_us = run_local_bottomup(level);
      phase("expand:bottomup", "phase", local_us);
      // Claimed bits are already owner-clean: one broadcast suffices.
      comm_us = cfg_.fabric.allgather_us(G, bitmap_bytes);
      phase("exchange:frontier-allgather", "comm", comm_us);
      broadcast_cleaned_slices();
    } else {
      local_us = run_local_topdown(level);
      phase("expand:topdown", "phase", local_us);
      const double ag_cand = cfg_.fabric.allgather_us(G, bitmap_bytes);
      comm_us = ag_cand;  // candidates
      phase("exchange:candidate-allgather", "comm", ag_cand);
      merge_candidates_to_owners();
      const double claim_us = run_claim_phase(level);
      local_us += claim_us;
      phase("expand:claim", "phase", claim_us);
      const double ag_clean = cfg_.fabric.allgather_us(G, bitmap_bytes);
      comm_us += ag_clean;  // cleaned
      phase("exchange:cleaned-allgather", "comm", ag_clean);
      broadcast_cleaned_slices();
    }
    const double ar_us = cfg_.fabric.allreduce_scalar_us(G);
    comm_us += ar_us;
    phase("exchange:allreduce", "comm", ar_us);

    // Claim totals travel in the modelled allreduce just charged above.
    std::uint64_t next_count = 0, next_edges = 0;
    for (auto& gp : gcds_) {
      gp->counters.mark_host_synced();
      gp->edges.mark_host_synced();
      next_count += gp->counters.h_read(kClaimed);
      next_edges += gp->edges.h_read(0);
    }

    st.local_ms = local_us / 1000.0;
    st.comm_ms = comm_us / 1000.0;
    // Export the per-level split through the metrics registry the same way
    // kernel time is: comm share regressions become visible in XBFS_METRICS
    // dumps, not just in per-run level tables.
    {
      obs::MetricsRegistry& mr = obs::MetricsRegistry::global();
      mr.histogram("dist_local_ms").observe(st.local_ms);
      mr.histogram("dist_comm_ms").observe(st.comm_ms);
    }
    result.level_stats.push_back(st);
    clock_us += local_us + comm_us;
    comm_total_us += comm_us;

    if (tracing) {
      obs::Span sp;
      sp.name = "level " + std::to_string(level);
      sp.category = "level";
      sp.track = "dist-levels";
      sp.pid = 0;
      sp.sim_start_us = level_t0;
      sp.sim_dur_us = clock_us - level_t0;
      sp.attr("direction", bottom_up ? "bottom-up" : "top-down");
      sp.attr("frontier", st.frontier_count);
      sp.attr("edges", st.frontier_edges);
      sp.attr("ratio", st.ratio);
      sp.attr("local_ms", st.local_ms);
      sp.attr("comm_ms", st.comm_ms);
      tr.complete(std::move(sp));
      std::vector<obs::SpanAttr> attrs;
      attrs.push_back({"ratio", obs::json_number(st.ratio), true});
      tr.instant(bottom_up ? "decide:bottom-up" : "decide:top-down",
                 "strategy", "dist-policy", 0, level_t0, std::move(attrs));
    }

    if (next_count == 0) break;
    frontier_count = next_count;
    frontier_edges = next_edges;

    // Swap bitmaps and clear the new candidate map on every device.
    double clear_us = 0;
    for (auto& gp : gcds_) {
      std::swap(gp->cur_bm, gp->next_bm);
      sim::Device& dev = *gp->device;
      auto next = gp->next_bm.span();
      sim::LaunchConfig lc;
      lc.block_threads = cfg_.block_threads;
      lc.grid_blocks =
          auto_grid_blocks(dev.profile(), words, cfg_.block_threads);
      const double t0 = dev.now_us();
      dev.launch("dist_clear_bitmap", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(next.size(), [&](std::uint64_t w) {
          ctx.store(next, w, std::uint64_t{0});
        });
      });
      clear_us = std::max(clear_us, dev.now_us() - t0);
    }
    clock_us += clear_us;
  }

  // Gather global levels from the owned status slices.
  result.levels.assign(n_, -1);
  std::uint64_t reached_degree = 0;
  for (auto& gp : gcds_) {
    const Gcd& g = *gp;
    g.device->memcpy_d2h(g.rows.num_rows * sizeof(std::uint32_t));
    g.status.mark_host_synced();
    for (vid_t r = 0; r < g.rows.num_rows; ++r) {
      const std::uint32_t stv = g.status.h_read(r);
      if (stv != kUnvisited) {
        result.levels[g.rows.first_vertex + r] =
            static_cast<std::int32_t>(stv);
        reached_degree += g.rows.offsets[r + 1] - g.rows.offsets[r];
      }
    }
  }

  result.depth = static_cast<std::uint32_t>(result.level_stats.size());
  result.total_ms = clock_us / 1000.0;
  result.comm_ms = comm_total_us / 1000.0;
  result.edges_traversed = reached_degree / 2;
  result.gteps = core::safe_gteps(result.edges_traversed, result.total_ms);

  if (tracing) {
    obs::Span sp;
    sp.name = "dist_bfs.run";
    sp.category = "run";
    sp.track = "dist-levels";
    sp.pid = 0;
    sp.sim_start_us = 0.0;
    sp.sim_dur_us = clock_us;
    sp.attr("source", static_cast<std::int64_t>(src));
    sp.attr("gcds", static_cast<std::uint64_t>(G));
    sp.attr("depth", static_cast<std::uint64_t>(result.depth));
    sp.attr("gteps", result.gteps);
    sp.attr("comm_ms", result.comm_ms);
    tr.complete(std::move(sp));
  }

  obs::ReportSession& report = obs::ReportSession::global();
  if (report.enabled()) {
    obs::RunRecord rec;
    rec.tool = "dist_bfs";
    rec.n = n_;
    rec.m = m_;
    rec.source = static_cast<std::int64_t>(src);
    rec.depth = result.depth;
    rec.total_ms = result.total_ms;
    rec.gteps = result.gteps;
    rec.edges_traversed = result.edges_traversed;
    rec.config.emplace_back("gcds", std::to_string(cfg_.gcds));
    rec.config.emplace_back("alpha", std::to_string(cfg_.alpha));
    rec.config.emplace_back("comm_ms", std::to_string(result.comm_ms));
    rec.config.emplace_back(
        "local_ms", std::to_string(result.total_ms - result.comm_ms));
    for (const DistLevelStats& lst : result.level_stats) {
      obs::ReportLevelRow row;
      row.level = lst.level;
      row.strategy = lst.bottom_up ? "bottom-up" : "top-down";
      row.frontier = lst.frontier_count;
      row.edges = lst.frontier_edges;
      row.ratio = lst.ratio;
      row.time_ms = lst.local_ms + lst.comm_ms;
      row.has_comm = true;
      row.local_ms = lst.local_ms;
      row.comm_ms = lst.comm_ms;
      rec.levels.push_back(std::move(row));
    }
    report.add(std::move(rec));
  }
  return result;
}

}  // namespace xbfs::dist
