// 1D block partitioning of a graph across simulated GCDs, Graph500-style:
// each part owns a contiguous vertex range and stores the full adjacency of
// its owned rows (global column ids).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace xbfs::dist {

class Partition1D {
 public:
  Partition1D(graph::vid_t n, unsigned parts);

  unsigned parts() const { return parts_; }
  graph::vid_t n() const { return n_; }

  graph::vid_t begin(unsigned p) const { return bounds_[p]; }
  graph::vid_t end(unsigned p) const { return bounds_[p + 1]; }
  graph::vid_t owned(unsigned p) const { return end(p) - begin(p); }

  /// Owning part of a vertex (O(1): ranges are near-uniform blocks).
  unsigned owner(graph::vid_t v) const;

  /// Deterministic 64-bit hash of the layout itself (part count + every
  /// range boundary).  Mixed into graph-fingerprint-derived cache keys
  /// (graph::mix_fingerprint) so results computed under one sharding are
  /// never served after a re-shard: same graph, different bounds => a
  /// different key, and the stale entries age out as unreachable garbage.
  std::uint64_t layout_hash() const;

 private:
  graph::vid_t n_;
  unsigned parts_;
  std::vector<graph::vid_t> bounds_;  // parts+1
};

/// The rows of `g` owned by part `p`: offsets are re-based to the local row
/// index, columns stay global.
struct LocalRows {
  graph::vid_t first_vertex = 0;   ///< global id of local row 0
  graph::vid_t num_rows = 0;
  std::vector<graph::eid_t> offsets;  ///< num_rows + 1
  std::vector<graph::vid_t> cols;     ///< global neighbor ids
  std::uint64_t owned_edges = 0;
};

LocalRows extract_local_rows(const graph::Csr& g, const Partition1D& part,
                             unsigned p);

}  // namespace xbfs::dist
