// Distributed direction-optimizing BFS across multiple simulated GCDs —
// the system the paper positions single-GCD XBFS as the basis for
// ("we believe this endeavor has established a solid basis for distributed
// BFS on AMD GPUs", Sec. I, with the Graph500 per-GCD comparison).
//
// Design: Graph500-style 1D row partitioning.  Every GCD holds the full
// adjacency of its owned vertex range plus a *global* frontier bitmap
// (1 bit/vertex).  Per level:
//   top-down  — owned frontier vertices expand, marking neighbor candidate
//               bits; candidates travel to their owners (modelled
//               alltoall), owners claim unvisited ones and broadcast the
//               cleaned frontier slice (modelled allgather);
//   bottom-up — owned unvisited vertices probe the local copy of the global
//               frontier bitmap with early termination (no candidate
//               exchange at all — the property that makes bottom-up the
//               communication winner at the ratio peak).
// The per-level direction choice reuses the XBFS alpha policy on globally
// allreduced frontier-edge counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/interconnect.h"
#include "dist/partition.h"
#include "graph/csr.h"
#include "hipsim/device.h"

namespace xbfs::dist {

struct DistConfig {
  unsigned gcds = 2;
  double alpha = 0.1;            ///< bottom-up threshold on the global ratio
  unsigned block_threads = 256;
  FabricModel fabric = FabricModel::frontier();
  sim::SimOptions device_options = {};  ///< per simulated GCD
};

struct DistLevelStats {
  std::uint32_t level = 0;
  bool bottom_up = false;
  std::uint64_t frontier_count = 0;
  std::uint64_t frontier_edges = 0;
  double ratio = 0.0;
  double local_ms = 0.0;  ///< slowest GCD's kernel time this level
  double comm_ms = 0.0;   ///< modelled collective time this level
};

struct DistBfsResult {
  std::vector<std::int32_t> levels;  ///< global, -1 unreached
  std::vector<DistLevelStats> level_stats;
  double total_ms = 0.0;
  double comm_ms = 0.0;              ///< total communication share
  std::uint64_t edges_traversed = 0;
  double gteps = 0.0;
  std::uint32_t depth = 0;
};

class DistBfs {
 public:
  DistBfs(const graph::Csr& g, DistConfig cfg);
  ~DistBfs();

  DistBfsResult run(graph::vid_t src);

  const Partition1D& partition() const { return part_; }

 private:
  struct Gcd;  // per-device state
  void reset_for_run(graph::vid_t src);
  double run_local_topdown(std::uint32_t level);
  double run_local_bottomup(std::uint32_t level);
  double run_claim_phase(std::uint32_t level);
  void merge_candidates_to_owners();
  void broadcast_cleaned_slices();

  graph::vid_t n_;
  std::uint64_t m_;
  DistConfig cfg_;
  Partition1D part_;
  std::vector<std::unique_ptr<Gcd>> gcds_;
};

}  // namespace xbfs::dist
