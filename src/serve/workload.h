// Load generation for the serving engine: Zipf-skewed source sampling plus
// closed-loop (fixed client concurrency, submit -> wait -> repeat) and
// open-loop (paced arrivals, independent of completion) drivers.
//
// Serving traffic against a social/web graph is heavily skewed — a handful
// of hot sources absorb most queries — which is exactly what makes the
// result cache and the 64-way batch sharing pay off.  Zipf(s) over a
// candidate list reproduces that skew deterministically (seeded), so bench
// runs are repeatable.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/server.h"

namespace xbfs::serve {

/// Zipf(s) sampler over ranks [0, n): P(rank k) proportional to 1/(k+1)^s.
/// s == 0 degenerates to uniform.  Deterministic for a given seed.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double s, std::uint64_t seed);

  /// Next rank in [0, n).
  std::size_t next();

 private:
  std::vector<double> cdf_;  ///< cumulative, cdf_.back() == 1.0
  std::uint64_t state_;      ///< splitmix64 state
};

/// Draw `count` sources from `candidates` with Zipf(s) skew over the
/// candidate order (candidates[0] is the hottest).
std::vector<graph::vid_t> zipf_sources(
    const std::vector<graph::vid_t>& candidates, std::size_t count, double s,
    std::uint64_t seed);

struct LoadOptions {
  /// Closed loop: concurrent client threads, each submit -> wait -> repeat.
  unsigned clients = 8;
  /// Open loop: target arrival rate; <= 0 submits as fast as possible.
  double arrival_qps = 0.0;
  /// Per-query deadline passed through QueryOptions (0 = server default).
  double timeout_ms = 0.0;
};

/// What the driver observed from the client side (the server keeps its own
/// counters; both appear in the bench's run report).
struct LoadReport {
  std::uint64_t attempted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  double wall_ms = 0.0;
  double qps = 0.0;  ///< completed / wall
};

/// Closed-loop load: `opt.clients` threads round-robin the source sequence,
/// each waiting for its query's future before submitting the next.  Returns
/// after every submitted query resolved.
LoadReport run_closed_loop(Server& server,
                           const std::vector<graph::vid_t>& sources,
                           const LoadOptions& opt = {});

/// Open-loop load: one thread paces submissions at opt.arrival_qps
/// (independent of completions — the queue absorbs or rejects bursts),
/// then waits for all outstanding futures.
LoadReport run_open_loop(Server& server,
                         const std::vector<graph::vid_t>& sources,
                         const LoadOptions& opt = {});

}  // namespace xbfs::serve
