// Bounded thread-safe admission queue: the front door of the serving
// engine.  Producers (client threads) try_push and are rejected with a
// reason when the queue is at capacity (backpressure) or closed; the
// scheduler thread pops everything pending in one go, optionally waiting a
// short batching window so concurrent submitters can fill a sweep.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "obs/query_trace.h"
#include "serve/query.h"

namespace xbfs::serve {

/// One accepted-but-not-yet-dispatched query.
struct PendingQuery {
  QueryId id = 0;
  graph::vid_t source = 0;
  bool bypass_cache = false;
  double enqueue_us = 0.0;   ///< server wall clock at submit
  double deadline_us = -1.0; ///< absolute server wall clock; negative = none
  /// Query-scoped trace context (null when ServeConfig::query_tracing is
  /// off); allocated at admission and handed to the result at terminal.
  obs::QueryTracePtr trace;
  std::promise<QueryResult> promise;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admit q (Status::Ok), or reject without consuming it: QueueFull at
  /// capacity (backpressure), ShuttingDown after close().
  xbfs::Status try_push(PendingQuery&& q);

  /// Move up to `max_items` pending queries into `out` (appended).  Blocks
  /// until at least one item is available or the queue is closed; after the
  /// first item arrives, waits up to `window_us` more for the backlog to
  /// reach `max_items` before returning what is there.  Returns the number
  /// of items popped (0 only when closed and empty).
  std::size_t pop_batch(std::vector<PendingQuery>& out, std::size_t max_items,
                        double window_us);

  /// Non-blocking variant: pop whatever is pending right now.
  std::size_t try_pop_batch(std::vector<PendingQuery>& out,
                            std::size_t max_items);

  /// Stop admitting; pending items remain poppable.  Idempotent.
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingQuery> q_;
  bool closed_ = false;
};

}  // namespace xbfs::serve
