// Bounded thread-safe admission queue: the front door of the serving
// engine.  Producers (client threads) try_push and are rejected with a
// reason when the queue is at capacity (backpressure) or closed; the
// scheduler thread pops everything pending in one go, optionally waiting a
// short batching window so concurrent submitters can fill a sweep.
//
// Since the AlgorithmEngine redesign the queue is QoS-classed: every
// query belongs to the class of its algorithm kind (bfs, sssp, cc, ...),
// each class has its own FIFO, and pop_batch drains them weighted
// round-robin — a class with weight w is offered up to w slots per turn of
// the wheel, so cheap point lookups (BFS) keep flowing while a burst of
// whole-graph analytics (CC, k-core) is queued behind its share instead of
// monopolizing the scheduler.  Capacity and backpressure stay global: the
// queue rejects at `capacity` items total regardless of class mix.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/algorithm_engine.h"
#include "obs/query_trace.h"
#include "serve/query.h"

namespace xbfs::serve {

/// One accepted-but-not-yet-dispatched query.
struct PendingQuery {
  QueryId id = 0;
  /// The full typed request; `source` below mirrors query.source (kept as
  /// a named field because the BFS dedup/batching path is keyed on it).
  core::AlgoQuery query;
  graph::vid_t source = 0;
  /// query.params.hash(), computed once at admission (cache/dedup key).
  std::uint64_t phash = 0;
  bool bypass_cache = false;
  double enqueue_us = 0.0;   ///< server wall clock at submit
  double deadline_us = -1.0; ///< absolute server wall clock; negative = none
  /// Query-scoped trace context (null when ServeConfig::query_tracing is
  /// off); allocated at admission and handed to the result at terminal.
  obs::QueryTracePtr trace;
  std::promise<QueryResult> promise;
};

class AdmissionQueue {
 public:
  /// Per-class admission/drain counters (class = core::AlgoKind index).
  struct ClassCounters {
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
    std::size_t depth = 0;  ///< currently queued
  };

  /// `weights[k]` is AlgoKind k's share of each drain wheel turn; an entry
  /// of 0 means weight 1 (so a default-constructed array is fair
  /// round-robin, the pre-QoS behavior for a single-kind server).
  explicit AdmissionQueue(
      std::size_t capacity,
      std::array<unsigned, core::kNumAlgoKinds> weights = {});

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admit q (Status::Ok), or reject without consuming it: QueueFull at
  /// capacity (backpressure), ShuttingDown after close().
  xbfs::Status try_push(PendingQuery&& q);

  /// Move up to `max_items` pending queries into `out` (appended), drained
  /// weighted round-robin across the QoS classes.  Blocks until at least
  /// one item is available or the queue is closed; after the first item
  /// arrives, waits up to `window_us` more for the backlog to reach
  /// `max_items` before returning what is there.  Returns the number of
  /// items popped (0 only when closed and empty).
  std::size_t pop_batch(std::vector<PendingQuery>& out, std::size_t max_items,
                        double window_us);

  /// Non-blocking variant: pop whatever is pending right now.
  std::size_t try_pop_batch(std::vector<PendingQuery>& out,
                            std::size_t max_items);

  /// Stop admitting; pending items remain poppable.  Idempotent.
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  ClassCounters class_counters(core::AlgoKind k) const;

 private:
  /// Weighted round-robin drain under mu_: starting at the wheel cursor,
  /// each class yields up to its weight, cycling until `max_items` or the
  /// queue is empty.
  std::size_t drain_locked(std::vector<PendingQuery>& out,
                           std::size_t max_items);

  const std::size_t capacity_;
  std::array<unsigned, core::kNumAlgoKinds> weights_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<PendingQuery>, core::kNumAlgoKinds> q_;
  std::array<std::uint64_t, core::kNumAlgoKinds> pushed_{};
  std::array<std::uint64_t, core::kNumAlgoKinds> popped_{};
  std::size_t total_ = 0;
  std::size_t wheel_ = 0;  ///< class the next drain turn starts at
  bool closed_ = false;
};

}  // namespace xbfs::serve
