#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "algos/multi_bfs.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace xbfs::serve {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* query_status_name(QueryStatus s) {
  switch (s) {
    case QueryStatus::Completed: return "completed";
    case QueryStatus::Expired: return "expired";
  }
  return "?";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue-full";
    case RejectReason::ShuttingDown: return "shutting-down";
    case RejectReason::InvalidSource: return "invalid-source";
  }
  return "?";
}

Server::Server(const graph::Csr& g, ServeConfig cfg)
    : host_g_(g),
      cfg_(std::move(cfg)),
      graph_fp_(g.fingerprint()),
      queue_(cfg_.queue_capacity),
      cache_(cfg_.cache_capacity, cfg_.cache_shards),
      epoch_(std::chrono::steady_clock::now()) {
  cfg_.num_gcds = std::max(1u, cfg_.num_gcds);
  cfg_.max_batch =
      std::clamp(cfg_.max_batch, 1u, algos::kMaxConcurrentSources);
  cfg_.device_workers = std::max(1u, cfg_.device_workers);
  // The server reports one serving summary; per-query run records would
  // swamp XBFS_RUN_REPORT under load.
  cfg_.xbfs.report_runs = false;

  gcds_.reserve(cfg_.num_gcds);
  for (unsigned i = 0; i < cfg_.num_gcds; ++i) {
    auto gcd = std::make_unique<Gcd>();
    gcd->dev = std::make_unique<sim::Device>(
        cfg_.profile,
        sim::SimOptions{.num_workers = cfg_.device_workers,
                        .profiling = cfg_.device_profiling});
    gcd->dev->set_trace_label("serve-gcd" + std::to_string(i));
    gcd->dev->warmup();
    gcd->dg = graph::DeviceCsr::upload(*gcd->dev, host_g_);
    gcd->xbfs = std::make_unique<core::Xbfs>(*gcd->dev, gcd->dg, cfg_.xbfs);
    gcds_.push_back(std::move(gcd));
  }
  // One pool lane per GCD (the scheduler thread participates as lane 0),
  // reusing the simulator's chunked-cursor worker pool.
  pool_ = std::make_unique<sim::ThreadPool>(cfg_.num_gcds);

  if (!cfg_.manual_dispatch) {
    scheduler_ = std::thread([this] { scheduler_loop(); });
  }
}

Server::~Server() { shutdown(); }

double Server::wall_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Admission Server::submit(graph::vid_t source, QueryOptions opt) {
  Admission a;
  a.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  submitted_.fetch_add(1, std::memory_order_relaxed);

  if (shut_down_.load(std::memory_order_acquire)) {
    a.reason = RejectReason::ShuttingDown;
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }
  if (source >= host_g_.num_vertices()) {
    a.reason = RejectReason::InvalidSource;
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }

  const double now = wall_us();

  // Cache fast path: resolve without ever touching the queue.
  if (cache_.enabled() && !opt.bypass_cache) {
    if (CachedResult hit = cache_.get(graph_fp_, source)) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      std::promise<QueryResult> pr;
      a.result = pr.get_future();
      a.accepted = true;
      QueryResult r;
      r.id = a.id;
      r.source = source;
      r.status = QueryStatus::Completed;
      r.levels = std::move(hit.levels);
      r.depth = hit.depth;
      r.cache_hit = true;
      r.total_ms = (wall_us() - now) / 1000.0;
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_latency(r);
      pr.set_value(std::move(r));
      retire_one();
      return a;
    }
  }

  PendingQuery p;
  p.id = a.id;
  p.source = source;
  p.bypass_cache = opt.bypass_cache;
  p.enqueue_us = now;
  const double timeout_ms =
      opt.timeout_ms != 0.0 ? opt.timeout_ms : cfg_.default_timeout_ms;
  p.deadline_us = timeout_ms >= 0.0 ? now + timeout_ms * 1000.0 : -1.0;
  std::future<QueryResult> fut = p.promise.get_future();

  const RejectReason reason = queue_.try_push(std::move(p));
  if (reason != RejectReason::None) {
    a.reason = reason;
    if (reason == RejectReason::QueueFull) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    }
    return a;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  a.accepted = true;
  a.result = std::move(fut);
  return a;
}

void Server::scheduler_loop() {
  std::vector<PendingQuery> pending;
  const std::size_t target =
      static_cast<std::size_t>(cfg_.max_batch) * gcds_.size();
  for (;;) {
    pending.clear();
    const std::size_t got =
        queue_.pop_batch(pending, target, cfg_.batch_window_ms * 1000.0);
    if (got == 0) {
      if (queue_.closed()) return;
      continue;
    }
    process_cycle(pending);
  }
}

std::size_t Server::dispatch_once() {
  std::vector<PendingQuery> pending;
  const std::size_t target =
      static_cast<std::size_t>(cfg_.max_batch) * gcds_.size();
  if (queue_.try_pop_batch(pending, target) == 0) return 0;
  return process_cycle(pending);
}

std::size_t Server::process_cycle(std::vector<PendingQuery>& pending) {
  std::lock_guard<std::mutex> cycle_lock(cycle_mu_);
  obs::TraceSession& tr = obs::TraceSession::global();
  const std::uint64_t span = tr.begin("serve.cycle", "serve", "serve");
  dispatch_cycles_.fetch_add(1, std::memory_order_relaxed);
  const double dispatch_us = wall_us();
  const std::size_t cycle_queries = pending.size();

  // Triage: expire past-deadline queries (reported, never dropped) and
  // serve queries whose source landed in the cache while they queued.
  std::vector<PendingQuery> work;
  work.reserve(pending.size());
  for (PendingQuery& p : pending) {
    if (p.deadline_us >= 0.0 && dispatch_us > p.deadline_us) {
      complete_expired(std::move(p), dispatch_us);
      continue;
    }
    if (cache_.enabled() && !p.bypass_cache) {
      if (CachedResult hit = cache_.get(graph_fp_, p.source)) {
        complete_from_cache(std::move(p), std::move(hit), dispatch_us);
        continue;
      }
    }
    work.push_back(std::move(p));
  }
  pending.clear();

  if (!work.empty()) {
    // Deduplicate: all queries for one source share one traversal.
    SourceMap by_src;
    std::vector<graph::vid_t> uniq;
    for (PendingQuery& p : work) {
      auto& waiters = by_src[p.source];
      if (waiters.empty()) uniq.push_back(p.source);
      waiters.push_back(std::move(p));
    }

    std::vector<std::vector<graph::vid_t>> batches;
    if (cfg_.batching) {
      if (cfg_.group_by_neighborhood && uniq.size() > 1) {
        uniq = algos::group_sources(host_g_, std::move(uniq), cfg_.max_batch);
      }
      for (std::size_t b = 0; b < uniq.size(); b += cfg_.max_batch) {
        const std::size_t e = std::min(b + cfg_.max_batch, uniq.size());
        if (e - b < cfg_.min_sweep_sources) {
          // Too narrow to amortize a sweep's fixed full-vertex-scan cost:
          // per-source adaptive runs, spread across the GCD lanes.
          for (std::size_t i = b; i < e; ++i) batches.push_back({uniq[i]});
        } else {
          batches.emplace_back(uniq.begin() + b, uniq.begin() + e);
        }
      }
    } else {
      // Naive serving mode: one traversal per distinct source.
      for (const graph::vid_t s : uniq) batches.push_back({s});
    }

    pool_->parallel_for(batches.size(),
                        [&](unsigned worker, std::uint64_t bi) {
                          run_batch(worker, batches[bi], by_src, dispatch_us);
                        });
  }

  if (span != 0) {
    tr.attr(span, "queries", static_cast<double>(cycle_queries));
    tr.end(span);
  }
  return cycle_queries;
}

void Server::run_batch(unsigned worker,
                       const std::vector<graph::vid_t>& batch,
                       SourceMap& by_src, double dispatch_us) {
  Gcd& gcd = *gcds_[worker];
  std::vector<CachedResult> results(batch.size());
  double modelled_ms = 0.0;

  if (batch.size() == 1) {
    // Singleton batches skip the 64-bit mask machinery: the adaptive
    // single-source runner is strictly faster for one source.
    core::BfsResult r = gcd.xbfs->run(batch[0]);
    results[0].levels =
        std::make_shared<const std::vector<std::int32_t>>(std::move(r.levels));
    results[0].depth = r.depth;
    modelled_ms = r.total_ms;
    singleton_sweeps_.fetch_add(1, std::memory_order_relaxed);
  } else {
    algos::MultiBfsResult r =
        algos::multi_source_bfs(*gcd.dev, gcd.dg, batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::uint32_t depth = 0;
      for (const std::int32_t lv : r.levels[i]) {
        depth = std::max(depth, static_cast<std::uint32_t>(std::max(lv, 0)));
      }
      results[i].levels = std::make_shared<const std::vector<std::int32_t>>(
          std::move(r.levels[i]));
      results[i].depth = depth;
    }
    modelled_ms = r.total_ms;
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  computed_sources_.fetch_add(batch.size(), std::memory_order_relaxed);

  const double complete_us = wall_us();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto waiters = by_src.find(batch[i]);
    // Publish before resolving waiters so a submit racing with completion
    // can already hit.
    bool publish = false;
    for (const PendingQuery& p : waiters->second) {
      publish |= !p.bypass_cache;
    }
    if (publish) cache_.put(graph_fp_, batch[i], results[i]);

    for (PendingQuery& p : waiters->second) {
      QueryResult r;
      r.id = p.id;
      r.source = p.source;
      r.status = QueryStatus::Completed;
      r.levels = results[i].levels;
      r.depth = results[i].depth;
      r.cache_hit = false;
      r.batch_size = static_cast<unsigned>(batch.size());
      r.gcd = worker;
      r.queue_ms = (dispatch_us - p.enqueue_us) / 1000.0;
      r.service_ms = (complete_us - dispatch_us) / 1000.0;
      r.total_ms = (complete_us - p.enqueue_us) / 1000.0;
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_latency(r);
      finish_query(std::move(p), std::move(r));
    }
  }

  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    occupancy_sum_ += static_cast<double>(batch.size()) / cfg_.max_batch;
    sources_per_sweep_sum_ += static_cast<double>(batch.size());
    modelled_busy_ms_ += modelled_ms;
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.histogram("serve.batch_occupancy")
        .observe(static_cast<double>(batch.size()) / cfg_.max_batch);
    mx.counter("serve.sweeps").add();
  }
}

void Server::complete_expired(PendingQuery&& p, double now_us) {
  QueryResult r;
  r.id = p.id;
  r.source = p.source;
  r.status = QueryStatus::Expired;
  r.queue_ms = (now_us - p.enqueue_us) / 1000.0;
  r.total_ms = r.queue_ms;
  expired_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("serve.expired").add();
  finish_query(std::move(p), std::move(r));
}

void Server::complete_from_cache(PendingQuery&& p, CachedResult hit,
                                 double now_us) {
  QueryResult r;
  r.id = p.id;
  r.source = p.source;
  r.status = QueryStatus::Completed;
  r.levels = std::move(hit.levels);
  r.depth = hit.depth;
  r.cache_hit = true;
  r.queue_ms = (now_us - p.enqueue_us) / 1000.0;
  r.total_ms = r.queue_ms;
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  record_latency(r);
  finish_query(std::move(p), std::move(r));
}

void Server::finish_query(PendingQuery&& p, QueryResult&& r) {
  p.promise.set_value(std::move(r));
  retire_one();
}

void Server::retire_one() {
  // The empty critical section orders the increment against drain()'s
  // predicate check, so the final retirement can't slip between a
  // drainer's check and its wait (lost wakeup).
  retired_.fetch_add(1, std::memory_order_release);
  { std::lock_guard<std::mutex> lk(drain_mu_); }
  drain_cv_.notify_all();
}

void Server::record_latency(const QueryResult& r) {
  latency_ms_.observe(r.total_ms);
  queue_ms_.observe(r.queue_ms);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.histogram("serve.latency_ms").observe(r.total_ms);
    mx.histogram("serve.queue_ms").observe(r.queue_ms);
    mx.counter("serve.completed").add();
    if (r.cache_hit) mx.counter("serve.cache_hits").add();
  }
}

void Server::drain() {
  if (cfg_.manual_dispatch) {
    while (retired_.load(std::memory_order_acquire) <
           accepted_.load(std::memory_order_acquire)) {
      if (dispatch_once() == 0) std::this_thread::yield();
    }
    return;
  }
  std::unique_lock<std::mutex> lk(drain_mu_);
  drain_cv_.wait(lk, [&] {
    return retired_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

void Server::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.close();
  if (scheduler_.joinable()) {
    scheduler_.join();
  } else {
    // Manual mode: retire whatever is still queued.
    while (dispatch_once() != 0) {
    }
  }
  emit_summary();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.dispatch_cycles = dispatch_cycles_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.singleton_sweeps = singleton_sweeps_.load(std::memory_order_relaxed);
  s.computed_sources = computed_sources_.load(std::memory_order_relaxed);

  const ResultCache::Stats cs = cache_.stats();
  s.cache_evictions = cs.evictions;
  s.cache_entries = cs.entries;
  s.cache_hit_rate =
      s.completed == 0
          ? 0.0
          : static_cast<double>(s.cache_hits) / static_cast<double>(s.completed);

  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    s.mean_batch_occupancy = s.sweeps == 0 ? 0.0 : occupancy_sum_ / s.sweeps;
    s.mean_sources_per_sweep =
        s.sweeps == 0 ? 0.0 : sources_per_sweep_sum_ / s.sweeps;
    s.modelled_busy_ms = modelled_busy_ms_;
  }

  s.wall_elapsed_ms = wall_us() / 1000.0;
  s.qps = s.wall_elapsed_ms <= 0.0
              ? 0.0
              : static_cast<double>(s.completed) / (s.wall_elapsed_ms / 1000.0);

  s.latency_p50_ms = latency_ms_.percentile(0.50);
  s.latency_p95_ms = latency_ms_.percentile(0.95);
  s.latency_p99_ms = latency_ms_.percentile(0.99);
  s.latency_mean_ms = latency_ms_.mean();
  s.latency_max_ms = latency_ms_.max();
  s.queue_p50_ms = queue_ms_.percentile(0.50);
  s.queue_p99_ms = queue_ms_.percentile(0.99);
  return s;
}

void Server::emit_summary() {
  const ServerStats st = stats();

  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.gauge("serve.qps").set(st.qps);
    mx.gauge("serve.cache_hit_rate").set(st.cache_hit_rate);
    mx.gauge("serve.batch_occupancy").set(st.mean_batch_occupancy);
  }

  obs::ReportSession& rs = obs::ReportSession::global();
  if (!rs.enabled()) return;
  obs::RunRecord r;
  r.tool = "serve";
  r.algorithm = "bfs-serving";
  r.n = host_g_.num_vertices();
  r.m = host_g_.num_edges();
  r.source = -1;
  r.total_ms = st.wall_elapsed_ms;
  r.config = {
      {"num_gcds", std::to_string(cfg_.num_gcds)},
      {"max_batch", std::to_string(cfg_.max_batch)},
      {"queue_capacity", std::to_string(cfg_.queue_capacity)},
      {"cache_capacity", std::to_string(cfg_.cache_capacity)},
      {"batching", cfg_.batching ? "1" : "0"},
      {"submitted", std::to_string(st.submitted)},
      {"accepted", std::to_string(st.accepted)},
      {"completed", std::to_string(st.completed)},
      {"expired", std::to_string(st.expired)},
      {"rejected_full", std::to_string(st.rejected_full)},
      {"rejected_invalid", std::to_string(st.rejected_invalid)},
      {"rejected_shutdown", std::to_string(st.rejected_shutdown)},
      {"cache_hits", std::to_string(st.cache_hits)},
      {"cache_hit_rate", fmt_double(st.cache_hit_rate)},
      {"cache_evictions", std::to_string(st.cache_evictions)},
      {"sweeps", std::to_string(st.sweeps)},
      {"singleton_sweeps", std::to_string(st.singleton_sweeps)},
      {"computed_sources", std::to_string(st.computed_sources)},
      {"batch_occupancy", fmt_double(st.mean_batch_occupancy)},
      {"sources_per_sweep", fmt_double(st.mean_sources_per_sweep)},
      {"qps", fmt_double(st.qps)},
      {"p50_ms", fmt_double(st.latency_p50_ms)},
      {"p95_ms", fmt_double(st.latency_p95_ms)},
      {"p99_ms", fmt_double(st.latency_p99_ms)},
      {"mean_ms", fmt_double(st.latency_mean_ms)},
      {"max_ms", fmt_double(st.latency_max_ms)},
      {"queue_p50_ms", fmt_double(st.queue_p50_ms)},
      {"queue_p99_ms", fmt_double(st.queue_p99_ms)},
      {"modelled_busy_ms", fmt_double(st.modelled_busy_ms)},
      {"wall_elapsed_ms", fmt_double(st.wall_elapsed_ms)},
  };
  rs.add(std::move(r));
}

}  // namespace xbfs::serve
