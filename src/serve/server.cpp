#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "algos/engines.h"
#include "algos/multi_bfs.h"
#include "baseline/cpu_bfs.h"
#include "dyn/delta_ref.h"
#include "dyn/incremental_bfs.h"
#include "dyn/incremental_cc.h"
#include "graph/g500_validate.h"
#include "graph/reference.h"
#include "hipsim/device.h"
#include "hipsim/fault.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace xbfs::serve {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Comma-trick helper: runs in the constructor's member-init list so an
/// invalid config throws before any device is built.
const ServeConfig& checked(const ServeConfig& cfg) {
  if (const xbfs::Status s = cfg.validate(); !s.ok()) {
    throw std::invalid_argument("ServeConfig: " + s.to_string());
  }
  return cfg;
}

/// Canonicalize a query so equivalent requests dedup and share cache
/// entries: whole-graph kinds pin source 0, and params irrelevant to the
/// kind are zeroed so they cannot split the params-hash.
core::AlgoQuery normalize_query(core::AlgoQuery q) {
  if (!core::algo_needs_source(q.algo)) q.source = 0;
  switch (q.algo) {
    case core::AlgoKind::Bfs:
    case core::AlgoKind::Bc:
    case core::AlgoKind::Cc:
    case core::AlgoKind::Scc:
      // Parameterless kinds: every AlgoParams field is ignored.
      q.params = core::AlgoParams{};
      break;
    case core::AlgoKind::KCore: {
      core::AlgoParams p;
      p.k = q.params.k;  // only k matters
      q.params = p;
      break;
    }
    case core::AlgoKind::Sssp:
      q.params.k = 0;  // k-core's field; weights/delta are SSSP's own
      break;
  }
  return q;
}

/// Fold one attempt's AttributionSink into a per-query rung record.
obs::RungAttribution make_rung(const sim::AttributionSink& sink,
                               std::string engine, const char* outcome,
                               unsigned gcd, unsigned attempt, unsigned rung,
                               unsigned shared, double start_us,
                               double end_us) {
  obs::RungAttribution a;
  a.engine = std::move(engine);
  a.outcome = outcome;
  a.gcd = gcd;
  a.attempt = attempt;
  a.rung = rung;
  a.shared_members = shared;
  a.launches = sink.launches;
  a.memcpys = sink.memcpys;
  a.fetch_bytes = sink.counters.fetch_bytes;
  a.bytes_read = sink.counters.bytes_read;
  a.atomics = sink.counters.atomics;
  const std::uint64_t accesses = sink.counters.l2_hits + sink.counters.l2_misses;
  a.l2_hit_pct =
      accesses == 0
          ? 0.0
          : 100.0 * static_cast<double>(sink.counters.l2_hits) /
                static_cast<double>(accesses);
  a.modelled_us = sink.modelled_us;
  a.wall_start_us = start_us;
  a.wall_dur_us = end_us - start_us;
  return a;
}

}  // namespace

const char* query_status_name(QueryStatus s) {
  switch (s) {
    case QueryStatus::Completed: return "completed";
    case QueryStatus::Expired: return "expired";
    case QueryStatus::Failed: return "failed";
  }
  return "?";
}

xbfs::Status ServeConfig::validate() const {
  if (queue_capacity < 1) {
    return xbfs::Status::Invalid("queue_capacity must be >= 1");
  }
  if (num_gcds < 1) return xbfs::Status::Invalid("num_gcds must be >= 1");
  if (device_workers < 1) {
    return xbfs::Status::Invalid("device_workers must be >= 1");
  }
  if (max_batch < 1 || max_batch > algos::kMaxConcurrentSources) {
    return xbfs::Status::Invalid(
        "max_batch must be in [1, " +
        std::to_string(algos::kMaxConcurrentSources) + "], got " +
        std::to_string(max_batch));
  }
  if (min_sweep_sources < 1 ||
      min_sweep_sources > algos::kMaxConcurrentSources) {
    return xbfs::Status::Invalid(
        "min_sweep_sources must be in [1, " +
        std::to_string(algos::kMaxConcurrentSources) + "], got " +
        std::to_string(min_sweep_sources));
  }
  if (cache_shards < 1) {
    return xbfs::Status::Invalid("cache_shards must be >= 1");
  }
  if (batch_window_ms < 0.0) {
    return xbfs::Status::Invalid("batch_window_ms must be >= 0");
  }
  if (max_attempts < 1) {
    return xbfs::Status::Invalid("max_attempts must be >= 1");
  }
  if (retry_backoff_ms < 0.0 || retry_backoff_max_ms < 0.0) {
    return xbfs::Status::Invalid("retry backoffs must be >= 0");
  }
  if (breaker_failure_threshold < 1) {
    return xbfs::Status::Invalid("breaker_failure_threshold must be >= 1");
  }
  if (breaker_cooldown_ms < 0.0) {
    return xbfs::Status::Invalid("breaker_cooldown_ms must be >= 0");
  }
  if (algos.empty()) {
    return xbfs::Status::Invalid("algos must list at least one kind");
  }
  {
    bool seen[core::kNumAlgoKinds] = {};
    for (const core::AlgoKind k : algos) {
      const auto i = static_cast<std::size_t>(k);
      if (i >= core::kNumAlgoKinds) {
        return xbfs::Status::Invalid("algos contains an unknown kind");
      }
      if (seen[i]) {
        return xbfs::Status::Invalid(
            std::string("algos lists ") + core::algo_kind_name(k) + " twice");
      }
      seen[i] = true;
    }
  }
  return xbfs.validate();
}

Server::Server(const graph::Csr& g, ServeConfig cfg)
    : Server(&g, nullptr, std::move(cfg)) {}

Server::Server(dyn::GraphStore& store, ServeConfig cfg)
    : Server(nullptr, &store, std::move(cfg)) {}

Server::Server(const graph::Csr* g, dyn::GraphStore* store, ServeConfig cfg)
    : host_g_(g),
      store_(store),
      cfg_((checked(cfg), std::move(cfg))),
      queue_(cfg_.queue_capacity, cfg_.qos_weights),
      cache_(cfg_.cache_capacity, cfg_.cache_shards),
      health_(cfg_.num_gcds,
              BreakerConfig{cfg_.breaker_failure_threshold,
                            cfg_.breaker_cooldown_ms}),
      epoch_(std::chrono::steady_clock::now()) {
  // The server reports one serving summary; per-query run records would
  // swamp XBFS_RUN_REPORT under load.
  cfg_.xbfs.report_runs = false;

  algos::register_builtin_engines();
  for (const core::AlgoKind k : cfg_.algos) {
    enabled_[static_cast<std::size_t>(k)] = true;
  }
  bfs_phash_ = bfs_params_hash();

  if (store_) {
    for (const core::AlgoKind k : cfg_.algos) {
      if (k != core::AlgoKind::Bfs && k != core::AlgoKind::Cc) {
        throw std::invalid_argument(
            std::string("ServeConfig: dynamic serving supports bfs "
                        "(incremental repair) and cc (incremental "
                        "union-find) only, got ") +
            core::algo_kind_name(k));
      }
    }
    if (cfg_.require_durability && store_->durability() == nullptr) {
      throw std::invalid_argument(
          "ServeConfig: require_durability set but the GraphStore has no "
          "durability hook (use store::open_durable / recover_store)");
    }
    const dyn::Snapshot snap = store_->snapshot();
    n_vertices_ = snap.graph->num_vertices();
    graph_fp_.store(snap.fingerprint, std::memory_order_release);
    // Registers the serving fingerprint so the first epoch bump already
    // has a previous epoch to retire lazily.  On a recovered store this is
    // also the stale-result fence: every result the pre-crash process
    // handed out is keyed by a fingerprint that can no longer match.
    cache_.prime(snap.fingerprint);
    if (const dyn::DurabilityHook* hook = store_->durability()) {
      const dyn::DurabilityStats ds = hook->stats();
      if (ds.recovered) {
        obs::FlightRecorder::global().record(
            "serve", "recovered_store",
            ds.torn_tail_detected ? "torn tail truncated" : "clean tail",
            ds.recovered_epoch, ds.recovered_fingerprint,
            ds.wal_records_replayed);
      }
    }
  } else {
    if (cfg_.require_durability) {
      throw std::invalid_argument(
          "ServeConfig: require_durability is meaningless on a static "
          "server (no update lane, nothing to make durable)");
    }
    n_vertices_ = host_g_->num_vertices();
    graph_fp_.store(host_g_->fingerprint(), std::memory_order_release);
  }

  core::EngineRegistry& reg = core::EngineRegistry::global();
  gcds_.reserve(cfg_.num_gcds);
  for (unsigned i = 0; i < cfg_.num_gcds; ++i) {
    auto gcd = std::make_unique<Gcd>();
    gcd->dev = std::make_unique<sim::Device>(
        cfg_.profile,
        sim::SimOptions{.num_workers = cfg_.device_workers,
                        .profiling = cfg_.device_profiling});
    gcd->dev->set_trace_label("GCD " + std::to_string(i));
    gcd->dev->warmup();
    if (store_) {
      // Dynamic ladders: one rung per kind, the incremental-repair engines
      // (they own their own delta-aware mirrors; no static CSR upload).
      if (serves(core::AlgoKind::Bfs)) {
        auto inc = std::make_unique<dyn::IncrementalBfs>(*gcd->dev, *store_,
                                                         cfg_.xbfs);
        gcd->inc = inc.get();
        gcd->ladders[static_cast<std::size_t>(core::AlgoKind::Bfs)].push_back(
            std::move(inc));
      }
      if (serves(core::AlgoKind::Cc)) {
        auto inc_cc = std::make_unique<dyn::IncrementalCc>(*store_);
        gcd->inc_cc = inc_cc.get();
        gcd->ladders[static_cast<std::size_t>(core::AlgoKind::Cc)].push_back(
            std::move(inc_cc));
      }
    } else {
      gcd->dg = graph::DeviceCsr::upload(*gcd->dev, *host_g_);
      // Per-kind degradation ladders from the registry, fastest rung first
      // (for BFS: adaptive XBFS, then the simple-scan baseline — far fewer
      // kernel launches per traversal, so under a high kernel-fault rate it
      // has fewer chances to draw a fault while still on the device).
      const core::EngineContext ctx{.dev = gcd->dev.get(),
                                    .dg = &gcd->dg,
                                    .host_g = host_g_,
                                    .store = nullptr,
                                    .config = &cfg_.xbfs};
      for (const core::AlgoKind k : cfg_.algos) {
        gcd->ladders[static_cast<std::size_t>(k)] = reg.build_ladder(k, ctx);
      }
    }
    gcds_.push_back(std::move(gcd));
  }

  // Terminal rungs: one fault-immune host engine per kind.
  if (store_) {
    if (serves(core::AlgoKind::Bfs)) {
      auto host = std::make_unique<dyn::HostDeltaBfs>(*store_);
      host_dyn_ = host.get();
      host_engines_[static_cast<std::size_t>(core::AlgoKind::Bfs)] =
          std::move(host);
    }
    // Dynamic CC's only rung (IncrementalCc) is already host-side and
    // fault-immune; no separate terminal rung needed.
  } else {
    const core::EngineContext hctx{.host_g = host_g_};
    for (const core::AlgoKind k : cfg_.algos) {
      if (k == core::AlgoKind::Bfs) {
        // Serial mode: the serving fallback's historical engine (and the
        // name — "cpu-serial" — resilience tests assert on); the registry's
        // default cpu-bfs build is the parallel variant.
        host_engines_[static_cast<std::size_t>(k)] =
            std::make_unique<baseline::CpuBfsEngine>(
                *host_g_, baseline::CpuBfsEngine::Mode::Serial);
      } else {
        host_engines_[static_cast<std::size_t>(k)] = reg.build_host(k, hctx);
      }
    }
  }
  for (const core::AlgoKind k : cfg_.algos) {
    const auto i = static_cast<std::size_t>(k);
    if (gcds_[0]->ladders[i].empty() && host_engines_[i] == nullptr) {
      throw std::invalid_argument(
          std::string("ServeConfig: no engine registered for kind ") +
          core::algo_kind_name(k));
    }
  }

  // One pool lane per GCD (the scheduler thread participates as lane 0),
  // reusing the simulator's chunked-cursor worker pool.
  pool_ = std::make_unique<sim::ThreadPool>(cfg_.num_gcds);

  obs::SloEngine& slo_eng = obs::SloEngine::global();
  if (slo_eng.enabled()) {
    slo_ = &slo_eng.scope(cfg_.slo_scope, cfg_.num_gcds);
    // Per-kind scopes so objectives can differ per algorithm (a whole-graph
    // CC is allowed a slower p99 than a point BFS lookup).
    for (const core::AlgoKind k : cfg_.algos) {
      slo_by_algo_[static_cast<std::size_t>(k)] = &slo_eng.scope(
          cfg_.slo_scope + ":" + core::algo_kind_name(k), cfg_.num_gcds);
    }
  }
  flight_ctx_ = obs::FlightRecorder::global().register_context(
      "server[" + cfg_.slo_scope + "]",
      [this] { return flight_context_json(); });

  if (!cfg_.manual_dispatch) {
    scheduler_ = std::thread([this] { scheduler_loop(); });
  }
}

Server::~Server() { shutdown(); }

double Server::wall_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Admission Server::submit(graph::vid_t source, QueryOptions opt) {
  core::AlgoQuery q;
  q.algo = core::AlgoKind::Bfs;
  q.source = source;
  return submit(std::move(q), std::move(opt));
}

Admission Server::submit(core::AlgoQuery q, QueryOptions opt) {
  q = normalize_query(q);
  const auto kidx = static_cast<std::size_t>(q.algo);

  Admission a;
  a.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (kidx < core::kNumAlgoKinds) {
    submitted_by_algo_[kidx].fetch_add(1, std::memory_order_relaxed);
  }

  if (shut_down_.load(std::memory_order_acquire)) {
    a.status = xbfs::Status::ShuttingDown("server is shutting down");
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }
  if (kidx >= core::kNumAlgoKinds || !enabled_[kidx]) {
    a.status = xbfs::Status::Invalid(
        std::string("algorithm kind ") +
        (kidx < core::kNumAlgoKinds ? core::algo_kind_name(q.algo) : "?") +
        " is not served (see ServeConfig::algos)");
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }
  if (core::algo_needs_source(q.algo) && q.source >= n_vertices_) {
    a.status = xbfs::Status::Invalid(
        "source " + std::to_string(q.source) + " >= |V| = " +
        std::to_string(n_vertices_));
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }

  const double now = wall_us();
  const std::uint64_t phash = q.params.hash();

  // Cache fast path: resolve without ever touching the queue.
  if (cache_.enabled() && !opt.bypass_cache) {
    if (CachedResult hit =
            cache_.get(graph_fp_.load(std::memory_order_acquire), q.algo,
                       phash, q.source)) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      std::promise<QueryResult> pr;
      a.result = pr.get_future();
      a.accepted = true;
      QueryResult r;
      r.id = a.id;
      r.algo = q.algo;
      r.source = q.source;
      r.status = QueryStatus::Completed;
      r.depth = hit.depth;
      r.levels = hit.levels;
      r.payload = std::move(hit);
      r.cache_hit = true;
      r.total_ms = (wall_us() - now) / 1000.0;
      if (cfg_.query_tracing) {
        r.trace = std::make_shared<obs::QueryTrace>(a.id, q.source);
        r.trace->event(now, "admitted",
                       std::string("algo=") + core::algo_kind_name(q.algo) +
                           " source=" + std::to_string(q.source));
        r.trace->event(wall_us(), "cache_hit",
                       "depth=" + std::to_string(r.depth));
      }
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hits_by_algo_[kidx].fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_latency(r);
      note_terminal(r);
      pr.set_value(std::move(r));
      retire_one();
      return a;
    }
  }

  PendingQuery p;
  p.id = a.id;
  p.query = q;
  p.source = q.source;
  p.phash = phash;
  p.bypass_cache = opt.bypass_cache;
  p.enqueue_us = now;
  p.deadline_us = resolve_deadline_us(opt.timeout_ms, cfg_.default_timeout_ms,
                                      now);
  if (cfg_.query_tracing) {
    p.trace = std::make_shared<obs::QueryTrace>(a.id, q.source);
    std::string detail = std::string("algo=") + core::algo_kind_name(q.algo) +
                         " source=" + std::to_string(q.source);
    if (p.deadline_us >= 0.0) {
      detail += " deadline_ms=" + fmt_double((p.deadline_us - now) / 1000.0);
    }
    p.trace->event(now, "admitted", std::move(detail));
  }
  std::future<QueryResult> fut = p.promise.get_future();

  xbfs::Status st = queue_.try_push(std::move(p));
  if (!st.ok()) {
    if (st == xbfs::StatusCode::QueueFull) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    }
    a.status = std::move(st);
    return a;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<sim::RankedMutex> lk(inflight_mu_);
    inflight_.insert(a.id);
  }
  a.accepted = true;
  a.result = std::move(fut);
  return a;
}

UpdateAdmission Server::submit_update(const dyn::EdgeBatch& batch,
                                      UpdateOptions opt) {
  UpdateAdmission a;
  updates_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!store_) {
    a.status = xbfs::Status::Invalid(
        "static server: graph updates need the GraphStore constructor");
    return a;
  }
  if (shut_down_.load(std::memory_order_acquire)) {
    a.status = xbfs::Status::ShuttingDown("server is shutting down");
    return a;
  }
  // The update lane has no default deadline: the query-side
  // default_timeout_ms is deliberately not inherited (dropping a write
  // because reads are slow is never what a caller means).
  const double deadline_us = resolve_deadline_us(opt.timeout_ms, -1.0,
                                                 wall_us());

  // Writes serialized per graph; reads are never blocked — the store
  // publishes a new snapshot while in-flight queries keep theirs, and the
  // fingerprint/cache flip below makes new submissions see the new epoch.
  std::lock_guard<sim::RankedMutex> lk(update_mu_);
  if (deadline_us >= 0.0 && wall_us() > deadline_us) {
    // The lane was contended past the caller's budget; reject *before*
    // applying so the graph does not move under a caller that gave up.
    updates_expired_.fetch_add(1, std::memory_order_relaxed);
    a.status = xbfs::Status::DeadlineExceeded(
        "update waited past its " + fmt_double(opt.timeout_ms) +
        " ms budget on the write lane");
    obs::FlightRecorder::global().record("dyn", "update_expired", {}, 0, 0,
                                         batch.size());
    return a;
  }
  if (cfg_.query_tracing) {
    a.trace = std::make_shared<obs::QueryTrace>(0, 0);
    a.trace->event(wall_us(), "update_submitted",
                   "ops=" + std::to_string(batch.size()));
  }
  // try_apply so a durability failure (torn WAL write, failed fsync) rejects
  // the batch with the fault status instead of throwing through the lane:
  // not-durable => not-visible, and the caller learns which it was.
  if (const xbfs::Status s = store_->try_apply(batch, &a.applied); !s.ok()) {
    updates_rejected_durability_.fetch_add(1, std::memory_order_relaxed);
    a.status = s;
    if (a.trace) a.trace->event(wall_us(), "update_rejected", s.to_string());
    obs::FlightRecorder::global().record("dyn", "update_rejected", s.detail(),
                                         0, 0, batch.size());
    obs::MetricsRegistry& mxr = obs::MetricsRegistry::global();
    if (mxr.enabled()) mxr.counter("serve.updates_rejected").add();
    return a;
  }
  const dyn::Snapshot snap = store_->snapshot();
  a.epoch = snap.epoch;
  a.fingerprint = snap.fingerprint;
  graph_fp_.store(snap.fingerprint, std::memory_order_release);
  a.cache_purged = cache_.epoch_bump(snap.fingerprint);
  a.accepted = true;
  if (a.trace) {
    a.trace->event(
        wall_us(), "update_applied",
        "epoch=" + std::to_string(a.epoch) + " applied=" +
            std::to_string(a.applied.inserts_applied +
                           a.applied.deletes_applied) +
            " noops=" + std::to_string(a.applied.noops) +
            " purged=" + std::to_string(a.cache_purged));
  }
  obs::FlightRecorder::global().record(
      "dyn", "update", {}, 0, a.epoch,
      a.applied.inserts_applied + a.applied.deletes_applied);

  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  update_edges_applied_.fetch_add(
      a.applied.inserts_applied + a.applied.deletes_applied,
      std::memory_order_relaxed);
  update_noops_.fetch_add(a.applied.noops, std::memory_order_relaxed);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.counter("serve.updates").add();
    mx.counter("serve.cache_purged")
        .add(static_cast<std::uint64_t>(a.cache_purged));
  }
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    tr.instant("serve.update", "serve", "serve", 0, wall_us(),
               {{"epoch", std::to_string(a.epoch), true},
                {"purged", std::to_string(a.cache_purged), true}});
  }
  return a;
}

bool Server::result_still_valid(std::uint64_t fingerprint) const {
  if (fingerprint == graph_fp_.load(std::memory_order_acquire)) return true;
  recovery_stale_rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("serve.stale_rejected").add();
  return false;
}

void Server::scheduler_loop() {
  std::vector<PendingQuery> pending;
  const std::size_t target =
      static_cast<std::size_t>(cfg_.max_batch) * gcds_.size();
  for (;;) {
    pending.clear();
    const std::size_t got =
        queue_.pop_batch(pending, target, cfg_.batch_window_ms * 1000.0);
    if (got == 0) {
      if (queue_.closed()) return;
      continue;
    }
    process_cycle(pending);
  }
}

std::size_t Server::dispatch_once() {
  std::vector<PendingQuery> pending;
  const std::size_t target =
      static_cast<std::size_t>(cfg_.max_batch) * gcds_.size();
  if (queue_.try_pop_batch(pending, target) == 0) return 0;
  return process_cycle(pending);
}

std::size_t Server::process_cycle(std::vector<PendingQuery>& pending) {
  std::lock_guard<sim::RankedMutex> cycle_lock(cycle_mu_);
  obs::TraceSession& tr = obs::TraceSession::global();
  const std::uint64_t span = tr.begin("serve.cycle", "serve", "serve");
  const std::uint64_t cycle =
      dispatch_cycles_.fetch_add(1, std::memory_order_relaxed) + 1;
  const double dispatch_us = wall_us();
  const std::size_t cycle_queries = pending.size();

  // Triage: expire past-deadline queries (reported, never dropped) and
  // serve queries whose key landed in the cache while they queued.
  std::vector<PendingQuery> work;
  work.reserve(pending.size());
  for (PendingQuery& p : pending) {
    if (p.deadline_us >= 0.0 && dispatch_us > p.deadline_us) {
      complete_expired(std::move(p), dispatch_us);
      continue;
    }
    if (cache_.enabled() && !p.bypass_cache) {
      if (CachedResult hit =
              cache_.get(graph_fp_.load(std::memory_order_acquire),
                         p.query.algo, p.phash, p.source)) {
        complete_from_cache(std::move(p), std::move(hit), dispatch_us);
        continue;
      }
    }
    if (p.trace) {
      p.trace->event(dispatch_us, "dispatched",
                     "cycle=" + std::to_string(cycle));
    }
    work.push_back(std::move(p));
  }
  pending.clear();

  if (!work.empty()) {
    // Deduplicate: all queries agreeing on (algo, params, source) share one
    // engine run.  BFS keys additionally feed the batch/sweep machinery;
    // every other kind dispatches as its own unit.
    QueryMap by_key;
    std::vector<graph::vid_t> uniq;  // distinct BFS sources
    std::vector<DispatchKey> units;  // non-BFS dispatch units
    for (PendingQuery& p : work) {
      const DispatchKey key{p.query.algo, p.phash, p.source};
      auto& waiters = by_key[key];
      if (waiters.empty()) {
        if (p.query.algo == core::AlgoKind::Bfs) {
          uniq.push_back(p.source);
        } else {
          units.push_back(key);
        }
      }
      waiters.push_back(std::move(p));
    }

    std::vector<std::vector<graph::vid_t>> batches;
    if (cfg_.batching && !dynamic()) {
      if (cfg_.group_by_neighborhood && uniq.size() > 1) {
        uniq = algos::group_sources(*host_g_, std::move(uniq), cfg_.max_batch);
      }
      for (std::size_t b = 0; b < uniq.size(); b += cfg_.max_batch) {
        const std::size_t e = std::min(b + cfg_.max_batch, uniq.size());
        if (e - b < cfg_.min_sweep_sources) {
          // Too narrow to amortize a sweep's fixed full-vertex-scan cost:
          // per-source adaptive runs, spread across the GCD lanes.
          for (std::size_t i = b; i < e; ++i) batches.push_back({uniq[i]});
        } else {
          batches.emplace_back(uniq.begin() + b, uniq.begin() + e);
        }
      }
    } else {
      // Naive serving mode, and every dynamic cycle: one traversal per
      // distinct source (the bit-parallel sweep and neighborhood grouping
      // both need the static CSR).
      for (const graph::vid_t s : uniq) batches.push_back({s});
    }

    const std::size_t n_bfs = batches.size();
    pool_->parallel_for(n_bfs + units.size(),
                        [&](unsigned worker, std::uint64_t bi) {
                          if (bi < n_bfs) {
                            run_batch(worker, batches[bi], by_key,
                                      dispatch_us);
                          } else {
                            run_algo(worker, units[bi - n_bfs], by_key,
                                     dispatch_us);
                          }
                        });
  }

  if (span != 0) {
    tr.attr(span, "queries", static_cast<double>(cycle_queries));
    tr.end(span);
  }
  return cycle_queries;
}

bool Server::validation_active() const {
  switch (cfg_.validate_results) {
    case ValidateResults::Always: return true;
    case ValidateResults::Never: return false;
    case ValidateResults::Auto: return sim::FaultInjector::global().enabled();
  }
  return false;
}

void Server::backoff(unsigned attempt) {
  if (cfg_.retry_backoff_ms <= 0.0) return;
  double ms = cfg_.retry_backoff_ms;
  for (unsigned i = 1; i < attempt && ms < cfg_.retry_backoff_max_ms; ++i) {
    ms *= 2.0;
  }
  ms = std::min(ms, cfg_.retry_backoff_max_ms);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

xbfs::Status Server::note_attempt_failure(unsigned gcd,
                                          const xbfs::Status& why,
                                          QueryId primary) {
  obs::FlightRecorder::global().record("serve", "attempt_failed",
                                       xbfs::status_code_name(why.code()),
                                       primary, gcd);
  if (why == xbfs::StatusCode::FaultInjected) {
    faults_seen_.fetch_add(1, std::memory_order_relaxed);
  } else if (why == xbfs::StatusCode::DataCorruption) {
    faults_seen_.fetch_add(1, std::memory_order_relaxed);
    validation_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  health_.record_failure(gcd, wall_us());
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.counter("serve.faults").add();
    if (why == xbfs::StatusCode::DataCorruption) {
      mx.counter("serve.validation_failures").add();
    }
  }
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    tr.instant("serve.fault", "serve", "serve", 0, wall_us(),
               {{"gcd", std::to_string(gcd), true},
                {"status", xbfs::status_code_name(why.code()), false}});
  }
  return why;
}

bool Server::note_dispatch_time(unsigned gcd, double dispatch_us) {
  if (cfg_.dispatch_timeout_ms < 0.0) return false;
  const double elapsed_ms = (wall_us() - dispatch_us) / 1000.0;
  if (elapsed_ms <= cfg_.dispatch_timeout_ms) return false;
  // Straggler: the work itself completed (the result is still used), but
  // the device blew its budget — report it unhealthy so the next dispatch
  // routes elsewhere while its breaker cools down.
  dispatch_timeouts_.fetch_add(1, std::memory_order_relaxed);
  health_.record_failure(gcd, wall_us());
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("serve.dispatch_timeouts").add();
  return true;
}

std::string Server::validate_payload(const core::AlgoQuery& q,
                                     const CachedResult& res,
                                     const dyn::Snapshot& snap) const {
  switch (q.algo) {
    case core::AlgoKind::Bfs:
      if (!res.levels) return "bfs payload has no levels vector";
      return snap ? dyn::validate_levels(*snap.graph, q.source, *res.levels)
                  : graph::validate_levels_graph500(*host_g_, q.source,
                                                    *res.levels);
    case core::AlgoKind::Sssp:
      if (!res.distances) return "sssp payload has no distances vector";
      return host_g_ ? graph::validate_sssp_distances(
                           *host_g_, q.source, *res.distances,
                           q.params.weight_seed, q.params.max_weight)
                     : std::string();
    case core::AlgoKind::Cc:
      if (!res.components) return "cc payload has no components vector";
      return host_g_ ? graph::validate_components(*host_g_, *res.components)
                     : std::string();
    case core::AlgoKind::KCore:
      if (!res.cores) return "kcore payload has no cores vector";
      return host_g_ ? graph::validate_kcore(*host_g_, *res.cores,
                                             q.params.k)
                     : std::string();
    case core::AlgoKind::Bc:
    case core::AlgoKind::Scc:
      // No partition/relaxation-style validator exists for these kinds;
      // payload_validatable() keeps them off the validation path.
      return {};
  }
  return {};
}

bool Server::payload_validatable(core::AlgoKind k) const {
  switch (k) {
    case core::AlgoKind::Bfs:
      return true;  // static and dynamic validators both exist
    case core::AlgoKind::Sssp:
    case core::AlgoKind::Cc:
    case core::AlgoKind::KCore:
      return host_g_ != nullptr;  // validators need the static topology
    case core::AlgoKind::Bc:
    case core::AlgoKind::Scc:
      return false;
  }
  return false;
}

Server::Resolution Server::resolve_query(unsigned preferred,
                                         const core::AlgoQuery& q,
                                         unsigned attempts_so_far,
                                         double dispatch_us,
                                         QueryId primary) {
  const auto kidx = static_cast<std::size_t>(q.algo);
  Resolution out;
  out.attempts = attempts_so_far;
  out.gcd = preferred;
  if (cfg_.query_tracing) {
    out.log = std::make_shared<obs::QueryTrace>(primary, q.source);
  }
  obs::QueryTrace* log = out.log.get();
  const bool validate = validation_active() && payload_validatable(q.algo);
  xbfs::Status last = xbfs::Status::Unavailable("no device attempt made");
  unsigned budget = cfg_.max_attempts;
  const std::size_t rungs = gcds_[0]->ladders[kidx].size();

  // SLO-aware proactive degrade: when the error budget is exhausted (or
  // the window burn runs past burn_fast), start on the cheaper rung
  // instead of spending device attempts the objective can't afford.
  std::size_t start_rung = 0;
  if (slo_ != nullptr && rungs > 1 && slo_->prefer_cheap(obs::slo_now_ms())) {
    start_rung = 1;
    slo_proactive_degrades_.fetch_add(1, std::memory_order_relaxed);
    if (log) log->event(wall_us(), "slo_degrade", "start_rung=1");
    obs::FlightRecorder::global().record("serve", "slo_degrade", {}, primary,
                                         preferred);
  }

  for (std::size_t rung = start_rung; rung < rungs && budget > 0; ++rung) {
    while (budget > 0) {
      const unsigned g = health_.pick(preferred, wall_us());
      if (g == HealthTracker::kNone) {
        last = xbfs::Status::Unavailable("all GCD circuit breakers open");
        if (log) log->event(wall_us(), "unavailable", "all breakers open");
        budget = 0;
        break;
      }
      if (g != preferred) rerouted_.fetch_add(1, std::memory_order_relaxed);
      if (out.attempts > 0) retries_.fetch_add(1, std::memory_order_relaxed);
      ++out.attempts;
      --budget;
      Gcd& gcd = *gcds_[g];
      core::AlgorithmEngine& eng = *gcd.ladders[kidx][rung];
      const double attempt_us = wall_us();
      if (log) {
        log->event(attempt_us, "attempt",
                   "engine=" + std::string(eng.name()) + " gcd=" +
                       std::to_string(g) + " rung=" + std::to_string(rung) +
                       " attempt=" + std::to_string(out.attempts));
      }
      // Declared outside the try: a faulted run keeps the partial counters
      // it accumulated before the fault (the faulted launch itself
      // attributes nothing — hipsim throws before executing it).
      sim::AttributionSink sink;
      try {
        core::AlgoResult ar;
        bool corrupted = false;
        dyn::Snapshot dsnap;
        dyn::IncrementalBfs::LastRun dlr;
        {
          std::lock_guard<sim::RankedMutex> lk(gcd.mu);
          sim::ScopedAttribution attr(*gcd.dev, sink);
          ar = eng.solve(q);
          corrupted = gcd.dev->take_pending_corruption();
          // Dynamic: pin the exact snapshot this run used (still under the
          // GCD lock — served() follows solve()'s serialization) so
          // validation and the cache key match the graph that was served,
          // not whatever epoch the store is on by now.
          if (gcd.inc && q.algo == core::AlgoKind::Bfs) {
            dsnap = gcd.inc->served();
            dlr = gcd.inc->last_run();
          } else if (gcd.inc_cc && q.algo == core::AlgoKind::Cc) {
            dsnap = gcd.inc_cc->served();
          }
        }
        if (log && dlr.valid) {
          log->event(wall_us(), dlr.repair ? "repair" : "recompute",
                     "epoch=" + std::to_string(dlr.epoch) + " dirty=" +
                         std::to_string(dlr.dirty) + " seeds=" +
                         std::to_string(dlr.seeds) +
                         (dlr.fallback[0] != '\0'
                              ? std::string(" fallback=") + dlr.fallback
                              : std::string()));
        }
        if (corrupted) {
          if (q.algo == core::AlgoKind::Bfs && ar.payload.levels) {
            // The modelled copy moved no real bytes; realize the corruption
            // on the levels so validation (when active) sees it — the
            // pre-redesign behavior.
            std::vector<std::int32_t> lv = *ar.payload.levels;
            sim::FaultInjector::global().corrupt_levels(lv);
            ar.payload.levels =
                std::make_shared<const std::vector<std::int32_t>>(
                    std::move(lv));
          } else {
            // Non-BFS payloads have no realization hook; treat the pending
            // transfer corruption as a failed attempt rather than serving
            // a payload the detector can't check.
            last = note_attempt_failure(
                g,
                xbfs::Status::Corruption("transfer corruption pending on " +
                                         std::string(eng.name())),
                primary);
            if (log) {
              log->event(wall_us(), "corrupted", eng.name());
              log->rung(make_rung(sink, eng.name(), "corrupt", g,
                                  out.attempts, static_cast<unsigned>(rung),
                                  1, attempt_us, wall_us()));
            }
            obs::FlightRecorder::global().trigger("validation_failure");
            backoff(out.attempts);
            continue;
          }
        }
        if (validate) {
          const std::string verr = validate_payload(q, ar.payload, dsnap);
          if (!verr.empty()) {
            last = note_attempt_failure(g, xbfs::Status::Corruption(verr),
                                        primary);
            if (log) {
              log->event(wall_us(), "validation_failed", verr);
              log->rung(make_rung(sink, eng.name(), "corrupt", g,
                                  out.attempts, static_cast<unsigned>(rung),
                                  1, attempt_us, wall_us()));
            }
            obs::FlightRecorder::global().trigger("validation_failure");
            backoff(out.attempts);
            continue;
          }
          validated_results_.fetch_add(1, std::memory_order_relaxed);
          if (log) log->event(wall_us(), "validated");
        }
        // A straggler keeps its result but eats a breaker failure instead
        // of a success (which would reset the failure streak).
        if (!note_dispatch_time(g, dispatch_us)) health_.record_success(g);
        out.res = std::move(ar.payload);
        out.modelled_ms = ar.total_ms;
        out.engine = eng.name();
        out.gcd = g;
        out.fp = dsnap ? dsnap.fingerprint
                       : graph_fp_.load(std::memory_order_acquire);
        // Degraded: a failed sweep preceded this, or we are below rung 0.
        out.degraded = attempts_so_far > 0 || rung > 0;
        out.validated = validate;
        out.status = xbfs::Status::Ok();
        if (log) {
          log->rung(make_rung(sink, out.engine, "ok", g, out.attempts,
                              static_cast<unsigned>(rung), 1, attempt_us,
                              wall_us()));
          log->event(wall_us(), "resolved",
                     "engine=" + out.engine + " gcd=" + std::to_string(g));
        }
        return out;
      } catch (const sim::FaultInjected& e) {
        last = note_attempt_failure(g, xbfs::Status::Fault(e.what()),
                                    primary);
        if (log) {
          log->event(wall_us(), "fault", e.what());
          log->rung(make_rung(sink, eng.name(), "fault", g, out.attempts,
                              static_cast<unsigned>(rung), 1, attempt_us,
                              wall_us()));
        }
        backoff(out.attempts);
      } catch (const std::exception& e) {
        last = note_attempt_failure(g, xbfs::Status::Internal(e.what()),
                                    primary);
        if (log) {
          log->event(wall_us(), "error", e.what());
          log->rung(make_rung(sink, eng.name(), "error", g, out.attempts,
                              static_cast<unsigned>(rung), 1, attempt_us,
                              wall_us()));
        }
        backoff(out.attempts);
      }
    }
  }

  core::AlgorithmEngine* host = host_engines_[kidx].get();
  if (cfg_.host_fallback && host != nullptr) {
    // Terminal rung: the host CPU engine never touches the simulated
    // device, so no injected fault can reach it.  Dynamic servers pin one
    // snapshot so the traversal, validation and cache key agree even if an
    // update lands mid-run.
    const double host_us = wall_us();
    if (log) {
      log->event(host_us, "host_fallback",
                 "engine=" + std::string(host->name()));
    }
    dyn::Snapshot hsnap;
    core::ResultPayload payload;
    if (host_dyn_ != nullptr && q.algo == core::AlgoKind::Bfs) {
      hsnap = store_->snapshot();
      core::BfsResult br = host_dyn_->run_on(hsnap, q.source);
      payload.kind = core::AlgoKind::Bfs;
      payload.levels = std::make_shared<const std::vector<std::int32_t>>(
          std::move(br.levels));
      payload.depth = br.depth;
    } else {
      payload = host->solve(q).payload;
    }
    host_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
    if (mx.enabled()) mx.counter("serve.host_fallbacks").add();
    if (validate) {
      const std::string verr = validate_payload(q, payload, hsnap);
      if (!verr.empty()) {
        // Cannot happen short of a bug in the host engine itself; report
        // rather than serve a wrong answer.
        out.status = xbfs::Status::Internal(
            "host fallback failed validation: " + verr);
        if (log) log->event(wall_us(), "validation_failed", verr);
        return out;
      }
      validated_results_.fetch_add(1, std::memory_order_relaxed);
    }
    out.res = std::move(payload);
    out.engine = host->name();
    out.degraded = true;
    out.validated = validate;
    out.status = xbfs::Status::Ok();
    out.fp = hsnap ? hsnap.fingerprint
                   : graph_fp_.load(std::memory_order_acquire);
    if (log) {
      // The host rung runs no simulated device work, so its attribution
      // record is all-zero counters — rung index one past the ladder.
      obs::RungAttribution ha;
      ha.engine = out.engine;
      ha.gcd = out.gcd;
      ha.attempt = out.attempts;
      ha.rung = static_cast<unsigned>(rungs);
      ha.wall_start_us = host_us;
      ha.wall_dur_us = wall_us() - host_us;
      log->rung(std::move(ha));
      log->event(wall_us(), "resolved", "engine=" + out.engine);
    }
    return out;
  }

  out.status = last;
  if (log) log->event(wall_us(), "exhausted", last.to_string());
  obs::FlightRecorder::global().record("serve", "budget_exhausted",
                                       xbfs::status_code_name(last.code()),
                                       primary, preferred);
  return out;
}

void Server::deliver_unit(const DispatchKey& key, const Resolution& res,
                          QueryMap& by_key, double dispatch_us,
                          unsigned batch_size,
                          const obs::QueryTrace* batch_log) {
  auto waiters = by_key.find(key);
  if (waiters == by_key.end()) return;
  const double complete_us = wall_us();
  const auto kidx = static_cast<std::size_t>(key.algo);

  bool published = false;
  if (res.res) {
    computed_sources_.fetch_add(1, std::memory_order_relaxed);
    // Publish before resolving waiters so a submit racing with completion
    // can already hit.  When validation is active only validated results
    // are cacheable — a corrupted entry must never outlive its query.
    bool publish = !validation_active() || res.validated;
    bool wanted = false;
    for (const PendingQuery& p : waiters->second) wanted |= !p.bypass_cache;
    // Keyed under the fingerprint of the graph that actually produced the
    // result; on a dynamic server that may trail the live fingerprint, in
    // which case the entry is unreachable (and purged on the next bump)
    // rather than served stale.
    if (publish && wanted) {
      cache_.put(res.fp, key.algo, key.phash, key.source, res.res);
      published = true;
    }
  }

  for (PendingQuery& p : waiters->second) {
    if (p.trace) {
      // Batch-shared work first (sweep attempts), then this unit's own
      // resolution log; wall clocks keep the merged record ordered.
      if (batch_log != nullptr) p.trace->absorb(*batch_log);
      if (res.log != nullptr) p.trace->absorb(*res.log);
      if (published) {
        p.trace->event(complete_us, "cache_publish",
                       "fp=" + std::to_string(res.fp));
      }
    }
    QueryResult r;
    r.id = p.id;
    r.algo = key.algo;
    r.source = p.source;
    r.batch_size = batch_size;
    r.gcd = res.gcd;
    r.engine = res.engine;
    r.attempts = res.attempts;
    r.degraded = res.degraded;
    r.validated = res.validated;
    r.queue_ms = (dispatch_us - p.enqueue_us) / 1000.0;
    r.service_ms = (complete_us - dispatch_us) / 1000.0;
    r.total_ms = (complete_us - p.enqueue_us) / 1000.0;
    if (res.res) {
      r.status = QueryStatus::Completed;
      r.payload = res.res;
      r.levels = res.res.levels;
      r.depth = res.res.depth;
      if (res.degraded) {
        degraded_queries_.fetch_add(1, std::memory_order_relaxed);
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_latency(r);
    } else {
      r.status = QueryStatus::Failed;
      r.error = res.status;
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      if (mx.enabled()) mx.counter("serve.failed").add();
      (void)kidx;
    }
    finish_query(std::move(p), std::move(r));
  }
}

void Server::run_batch(unsigned worker,
                       const std::vector<graph::vid_t>& batch,
                       QueryMap& by_key, double dispatch_us) {
  const bool singleton = batch.size() == 1;
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  if (singleton) singleton_sweeps_.fetch_add(1, std::memory_order_relaxed);

  const bool validate = validation_active();
  std::vector<Resolution> outcomes(batch.size());
  double modelled_ms = 0.0;
  bool solved = false;
  unsigned sweep_attempts = 0;

  // Batch-shared scratch trace: sweep-stage events and attribution,
  // absorbed into every member's QueryTrace at delivery (shared_members
  // marks work amortized across the whole batch).
  obs::QueryTracePtr batch_log;
  if (cfg_.query_tracing && !singleton) {
    batch_log = std::make_shared<obs::QueryTrace>(0, batch[0]);
  }

  if (!singleton) {
    // Stage 1: the shared 64-way sweep, retried across healthy GCDs.  One
    // corrupted or faulted attempt fails the whole unit; per-source
    // resolution below is the degradation path.
    while (sweep_attempts < cfg_.max_attempts) {
      const unsigned g = health_.pick(worker, wall_us());
      if (g == HealthTracker::kNone) break;
      if (g != worker) rerouted_.fetch_add(1, std::memory_order_relaxed);
      if (sweep_attempts > 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
      ++sweep_attempts;
      Gcd& gcd = *gcds_[g];
      const double attempt_us = wall_us();
      if (batch_log) {
        batch_log->event(attempt_us, "attempt",
                         "engine=sweep gcd=" + std::to_string(g) +
                             " members=" + std::to_string(batch.size()) +
                             " attempt=" + std::to_string(sweep_attempts));
      }
      sim::AttributionSink sink;
      try {
        algos::MultiBfsResult r;
        bool corrupted = false;
        std::uint64_t corrupt_pick = 0;
        {
          std::lock_guard<sim::RankedMutex> lk(gcd.mu);
          sim::ScopedAttribution attr(*gcd.dev, sink);
          r = algos::multi_source_bfs(*gcd.dev, gcd.dg, batch);
          corrupted = gcd.dev->take_pending_corruption();
          // The device counters are plain fields; read them only while
          // holding the device (rerouted lanes mutate them concurrently).
          if (corrupted) corrupt_pick = gcd.dev->corrupted_copies();
        }
        if (corrupted) {
          // The modelled copy moved no real bytes; realize the corruption
          // on one deterministic source's levels so validation sees it.
          sim::FaultInjector::global().corrupt_levels(
              r.levels[corrupt_pick % batch.size()]);
        }
        if (validate) {
          std::string verr;
          for (std::size_t i = 0; i < batch.size() && verr.empty(); ++i) {
            verr = graph::validate_levels_graph500(*host_g_, batch[i],
                                                   r.levels[i]);
          }
          if (!verr.empty()) {
            note_attempt_failure(g, xbfs::Status::Corruption(verr));
            if (batch_log) {
              batch_log->event(wall_us(), "validation_failed", verr);
              batch_log->rung(make_rung(
                  sink, "sweep", "corrupt", g, sweep_attempts, 0,
                  static_cast<unsigned>(batch.size()), attempt_us,
                  wall_us()));
            }
            obs::FlightRecorder::global().trigger("validation_failure");
            backoff(sweep_attempts);
            continue;
          }
          validated_results_.fetch_add(batch.size(),
                                       std::memory_order_relaxed);
          if (batch_log) batch_log->event(wall_us(), "validated");
        }
        // A straggler keeps its result but eats a breaker failure instead
        // of a success (which would reset the failure streak).
        if (!note_dispatch_time(g, dispatch_us)) health_.record_success(g);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          std::int32_t max_level = 0;
          for (const std::int32_t lv : r.levels[i]) {
            max_level = std::max(max_level, lv);
          }
          Resolution& o = outcomes[i];
          o.res.kind = core::AlgoKind::Bfs;
          o.res.levels = std::make_shared<const std::vector<std::int32_t>>(
              std::move(r.levels[i]));
          // Same convention as every TraversalEngine: number of BFS levels
          // run, i.e. deepest reached level + 1.
          o.res.depth = static_cast<std::uint32_t>(max_level) + 1;
          o.engine = "sweep";
          o.attempts = sweep_attempts;
          o.gcd = g;
          o.validated = validate;
          o.status = xbfs::Status::Ok();
          o.fp = graph_fp_.load(std::memory_order_acquire);
        }
        modelled_ms += r.total_ms;
        solved = true;
        if (batch_log) {
          batch_log->rung(make_rung(sink, "sweep", "ok", g, sweep_attempts,
                                    0, static_cast<unsigned>(batch.size()),
                                    attempt_us, wall_us()));
          batch_log->event(wall_us(), "resolved",
                           "engine=sweep gcd=" + std::to_string(g));
        }
        break;
      } catch (const sim::FaultInjected& e) {
        note_attempt_failure(g, xbfs::Status::Fault(e.what()));
        if (batch_log) {
          batch_log->event(wall_us(), "fault", e.what());
          batch_log->rung(make_rung(sink, "sweep", "fault", g,
                                    sweep_attempts, 0,
                                    static_cast<unsigned>(batch.size()),
                                    attempt_us, wall_us()));
        }
        backoff(sweep_attempts);
      } catch (const std::exception& e) {
        note_attempt_failure(g, xbfs::Status::Internal(e.what()));
        if (batch_log) {
          batch_log->event(wall_us(), "error", e.what());
          batch_log->rung(make_rung(sink, "sweep", "error", g,
                                    sweep_attempts, 0,
                                    static_cast<unsigned>(batch.size()),
                                    attempt_us, wall_us()));
        }
        backoff(sweep_attempts);
      }
    }
  }

  if (!solved) {
    // Stage 2: per-source resolution through the BFS engine ladder (also
    // the normal path for singleton batches, where ladder[0] is exactly
    // the pre-resilience adaptive Xbfs run).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const DispatchKey key{core::AlgoKind::Bfs, bfs_phash_, batch[i]};
      const auto w = by_key.find(key);
      const QueryId primary =
          (w != by_key.end() && !w->second.empty()) ? w->second.front().id
                                                    : 0;
      core::AlgoQuery q;
      q.algo = core::AlgoKind::Bfs;
      q.source = batch[i];
      outcomes[i] = resolve_query(worker, q, sweep_attempts, dispatch_us,
                                  primary);
      modelled_ms += outcomes[i].modelled_ms;
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    deliver_unit(DispatchKey{core::AlgoKind::Bfs, bfs_phash_, batch[i]},
                 outcomes[i], by_key, dispatch_us,
                 static_cast<unsigned>(batch.size()), batch_log.get());
  }

  {
    std::lock_guard<sim::RankedMutex> lk(agg_mu_);
    occupancy_sum_ += static_cast<double>(batch.size()) / cfg_.max_batch;
    sources_per_sweep_sum_ += static_cast<double>(batch.size());
    modelled_busy_ms_ += modelled_ms;
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.histogram("serve.batch_occupancy")
        .observe(static_cast<double>(batch.size()) / cfg_.max_batch);
    mx.counter("serve.sweeps").add();
  }
}

void Server::run_algo(unsigned worker, const DispatchKey& key,
                      QueryMap& by_key, double dispatch_us) {
  algo_dispatches_.fetch_add(1, std::memory_order_relaxed);
  const auto w = by_key.find(key);
  if (w == by_key.end() || w->second.empty()) return;
  // The dedup representative: every waiter under this key agrees on
  // (algo, params-hash, source), so the front query stands for all.
  const core::AlgoQuery q = w->second.front().query;
  const QueryId primary = w->second.front().id;

  Resolution res = resolve_query(worker, q, 0, dispatch_us, primary);
  {
    std::lock_guard<sim::RankedMutex> lk(agg_mu_);
    modelled_busy_ms_ += res.modelled_ms;
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("serve.algo_dispatches").add();
  deliver_unit(key, res, by_key, dispatch_us, /*batch_size=*/1, nullptr);
}

void Server::complete_expired(PendingQuery&& p, double now_us) {
  QueryResult r;
  r.id = p.id;
  r.algo = p.query.algo;
  r.source = p.source;
  r.status = QueryStatus::Expired;
  r.queue_ms = (now_us - p.enqueue_us) / 1000.0;
  r.total_ms = r.queue_ms;
  expired_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("serve.expired").add();
  finish_query(std::move(p), std::move(r));
}

void Server::complete_from_cache(PendingQuery&& p, CachedResult hit,
                                 double now_us) {
  QueryResult r;
  r.id = p.id;
  r.algo = p.query.algo;
  r.source = p.source;
  r.status = QueryStatus::Completed;
  r.depth = hit.depth;
  r.levels = hit.levels;
  r.payload = std::move(hit);
  r.cache_hit = true;
  r.queue_ms = (now_us - p.enqueue_us) / 1000.0;
  r.total_ms = r.queue_ms;
  if (p.trace) {
    p.trace->event(now_us, "cache_hit", "depth=" + std::to_string(r.depth));
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  cache_hits_by_algo_[static_cast<std::size_t>(p.query.algo)].fetch_add(
      1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  record_latency(r);
  finish_query(std::move(p), std::move(r));
}

void Server::finish_query(PendingQuery&& p, QueryResult&& r) {
  if (p.trace != nullptr) r.trace = p.trace;
  note_terminal(r);
  {
    std::lock_guard<sim::RankedMutex> lk(inflight_mu_);
    inflight_.erase(p.id);
  }
  p.promise.set_value(std::move(r));
  retire_one();
}

void Server::note_terminal(QueryResult& r) {
  const bool ok = r.status == QueryStatus::Completed;
  // Cache hits and expiries never touched a device lane: r.batch_size is
  // 0 exactly when no traversal ran, and an out-of-range lane attributes
  // to the scope aggregate only.
  const unsigned lane = r.batch_size > 0 ? r.gcd : cfg_.num_gcds;
  if (slo_ != nullptr) {
    slo_->record(lane, ok, r.total_ms, obs::slo_now_ms());
  }
  if (obs::SloScope* ks = slo_by_algo_[static_cast<std::size_t>(r.algo)]) {
    ks->record(lane, ok, r.total_ms, obs::slo_now_ms());
  }
  const char* status = query_status_name(r.status);
  if (r.trace != nullptr) {
    traced_.fetch_add(1, std::memory_order_relaxed);
    std::string detail = "total_ms=" + fmt_double(r.total_ms);
    if (!r.engine.empty()) detail += " engine=" + r.engine;
    if (r.cache_hit) detail += " cache_hit=1";
    if (!ok && !r.error.ok()) detail += " error=" + r.error.to_string();
    r.trace->event(wall_us(), status, std::move(detail));
    obs::TraceSession& tr = obs::TraceSession::global();
    if (tr.enabled()) obs::emit_query_spans(tr, *r.trace, status);
  }
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  if (fr.enabled()) {
    fr.record("serve",
              ok ? "query_completed"
                 : r.status == QueryStatus::Expired ? "query_expired"
                                                    : "query_failed",
              r.engine, r.id, r.gcd);
    // Post-mortem dumps on the escalations worth a snapshot: a query that
    // exhausted its resilience budget, and a deadline miss.
    if (r.status == QueryStatus::Failed) fr.trigger("query_failed");
    if (r.status == QueryStatus::Expired) fr.trigger("deadline_miss");
  }
}

std::string Server::flight_context_json() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("scope", cfg_.slo_scope);
  w.kv("queue_depth", static_cast<std::uint64_t>(queue_.size()));
  w.kv("queue_capacity", static_cast<std::uint64_t>(queue_.capacity()));
  w.kv("accepted", accepted_.load(std::memory_order_relaxed));
  w.kv("retired", retired_.load(std::memory_order_relaxed));
  w.kv("graph_fp", graph_fp_.load(std::memory_order_acquire));
  w.key("breakers").begin_array();
  for (unsigned i = 0; i < cfg_.num_gcds; ++i) {
    w.value(breaker_state_name(health_.state(i)));
  }
  w.end_array();
  w.key("inflight").begin_array();
  {
    std::lock_guard<sim::RankedMutex> lk(inflight_mu_);
    std::size_t emitted = 0;
    for (const QueryId id : inflight_) {
      if (++emitted > 64) break;  // cap the dump; the depth is above
      w.value(static_cast<std::uint64_t>(id));
    }
  }
  w.end_array();
  w.end_object();
  return os.str();
}

void Server::retire_one() {
  // The empty critical section orders the increment against drain()'s
  // predicate check, so the final retirement can't slip between a
  // drainer's check and its wait (lost wakeup).
  retired_.fetch_add(1, std::memory_order_release);
  { std::lock_guard<sim::RankedMutex> lk(drain_mu_); }
  drain_cv_.notify_all();
}

void Server::record_latency(const QueryResult& r) {
  latency_ms_.observe(r.total_ms);
  queue_ms_.observe(r.queue_ms);
  const auto kidx = static_cast<std::size_t>(r.algo);
  if (kidx < core::kNumAlgoKinds) {
    latency_by_algo_[kidx].observe(r.total_ms);
    completed_by_algo_[kidx].fetch_add(1, std::memory_order_relaxed);
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.histogram("serve.latency_ms").observe(r.total_ms);
    mx.histogram("serve.queue_ms").observe(r.queue_ms);
    mx.counter("serve.completed").add();
    if (r.cache_hit) mx.counter("serve.cache_hits").add();
  }
}

void Server::drain() {
  if (cfg_.manual_dispatch) {
    while (retired_.load(std::memory_order_acquire) <
           accepted_.load(std::memory_order_acquire)) {
      if (dispatch_once() == 0) std::this_thread::yield();
    }
    return;
  }
  std::unique_lock<sim::RankedMutex> lk(drain_mu_);
  drain_cv_.wait(lk, [&] {
    return retired_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

void Server::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.close();
  if (scheduler_.joinable()) {
    scheduler_.join();
  } else {
    // Manual mode: retire whatever is still queued.
    while (dispatch_once() != 0) {
    }
  }
  // The context provider captures `this`; drop it before the members it
  // samples go away.
  if (flight_ctx_ != 0) {
    obs::FlightRecorder::global().unregister_context(flight_ctx_);
    flight_ctx_ = 0;
  }
  emit_summary();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.dispatch_cycles = dispatch_cycles_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.singleton_sweeps = singleton_sweeps_.load(std::memory_order_relaxed);
  s.algo_dispatches = algo_dispatches_.load(std::memory_order_relaxed);
  s.computed_sources = computed_sources_.load(std::memory_order_relaxed);

  s.failed = failed_.load(std::memory_order_relaxed);
  s.faults_seen = faults_seen_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.validation_failures =
      validation_failures_.load(std::memory_order_relaxed);
  s.validated_results = validated_results_.load(std::memory_order_relaxed);
  s.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  s.host_fallbacks = host_fallbacks_.load(std::memory_order_relaxed);
  s.dispatch_timeouts = dispatch_timeouts_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  const HealthTracker::Counters hc = health_.counters();
  s.breaker_opens = hc.opens;
  s.breaker_half_opens = hc.half_opens;
  s.breaker_closes = hc.closes;

  s.updates_submitted = updates_submitted_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.updates_expired = updates_expired_.load(std::memory_order_relaxed);
  s.update_edges_applied =
      update_edges_applied_.load(std::memory_order_relaxed);
  s.update_noops = update_noops_.load(std::memory_order_relaxed);
  s.updates_rejected_durability =
      updates_rejected_durability_.load(std::memory_order_relaxed);
  s.recovery_stale_rejected =
      recovery_stale_rejected_.load(std::memory_order_relaxed);
  if (store_) {
    s.graph_epoch = store_->epoch();
    s.compactions = store_->stats().compactions;
    if (const dyn::DurabilityHook* hook = store_->durability()) {
      const dyn::DurabilityStats ds = hook->stats();
      s.durable = true;
      s.wal_appends = ds.wal_appends;
      s.wal_append_failures = ds.wal_append_failures;
      s.wal_fsync_failures = ds.fsync_failures;
      s.wal_bytes = ds.wal_bytes;
      s.snapshots_spilled = ds.snapshots_spilled;
      s.wal_rotations = ds.wal_rotations;
      s.last_durable_epoch = ds.last_durable_epoch;
      s.recovered = ds.recovered;
      s.recovery_torn_tail = ds.torn_tail_detected;
      s.recovered_epoch = ds.recovered_epoch;
      s.recovery_replayed = ds.wal_records_replayed;
      s.recovery_truncated_bytes = ds.wal_bytes_truncated;
    }
    for (const auto& gp : gcds_) {
      if (gp->inc) {
        const dyn::DynEngineStats es = gp->inc->stats();
        s.repairs += es.repairs;
        s.recomputes += es.recomputes;
        s.repair_fallbacks += es.fallbacks_ratio + es.fallbacks_log;
      }
      if (gp->inc_cc) {
        const dyn::IncCcStats cs = gp->inc_cc->stats();
        s.repairs += cs.repairs;
        s.recomputes += cs.recomputes;
        s.repair_fallbacks += cs.fallbacks_delete + cs.fallbacks_log;
      }
    }
  }

  const ResultCache::Stats cs = cache_.stats();
  s.cache_evictions = cs.evictions;
  s.cache_entries = cs.entries;
  s.cache_epoch_bumps = cs.epoch_bumps;
  s.cache_purged_stale = cs.purged_stale;
  s.cache_stale_hits_avoided = cs.stale_hits_avoided;
  s.cache_hit_rate =
      s.completed == 0
          ? 0.0
          : static_cast<double>(s.cache_hits) / static_cast<double>(s.completed);

  {
    std::lock_guard<sim::RankedMutex> lk(agg_mu_);
    s.mean_batch_occupancy = s.sweeps == 0 ? 0.0 : occupancy_sum_ / s.sweeps;
    s.mean_sources_per_sweep =
        s.sweeps == 0 ? 0.0 : sources_per_sweep_sum_ / s.sweeps;
    s.modelled_busy_ms = modelled_busy_ms_;
  }

  s.traced_queries = traced_.load(std::memory_order_relaxed);
  s.slo_proactive_degrades =
      slo_proactive_degrades_.load(std::memory_order_relaxed);
  if (slo_ != nullptr) s.slo = slo_->snapshot(obs::slo_now_ms());

  s.wall_elapsed_ms = wall_us() / 1000.0;
  s.qps = s.wall_elapsed_ms <= 0.0
              ? 0.0
              : static_cast<double>(s.completed) / (s.wall_elapsed_ms / 1000.0);

  for (std::size_t k = 0; k < core::kNumAlgoKinds; ++k) {
    AlgoClassStats& a = s.per_algo[k];
    a.submitted = submitted_by_algo_[k].load(std::memory_order_relaxed);
    a.completed = completed_by_algo_[k].load(std::memory_order_relaxed);
    a.cache_hits = cache_hits_by_algo_[k].load(std::memory_order_relaxed);
    a.queued =
        queue_.class_counters(static_cast<core::AlgoKind>(k)).depth;
    a.latency_p50_ms = latency_by_algo_[k].percentile(0.50);
    a.latency_p99_ms = latency_by_algo_[k].percentile(0.99);
    a.qps = s.wall_elapsed_ms <= 0.0
                ? 0.0
                : static_cast<double>(a.completed) /
                      (s.wall_elapsed_ms / 1000.0);
  }

  s.latency_p50_ms = latency_ms_.percentile(0.50);
  s.latency_p95_ms = latency_ms_.percentile(0.95);
  s.latency_p99_ms = latency_ms_.percentile(0.99);
  s.latency_mean_ms = latency_ms_.mean();
  s.latency_max_ms = latency_ms_.max();
  s.queue_p50_ms = queue_ms_.percentile(0.50);
  s.queue_p99_ms = queue_ms_.percentile(0.99);
  return s;
}

void Server::emit_summary() {
  const ServerStats st = stats();
  std::string slo_gcd_burns;
  for (const obs::SloWindow& wnd : st.slo.per_gcd) {
    if (!slo_gcd_burns.empty()) slo_gcd_burns += ",";
    slo_gcd_burns += fmt_double(wnd.burn_rate);
  }
  std::string algo_list;
  for (const core::AlgoKind k : cfg_.algos) {
    if (!algo_list.empty()) algo_list += ",";
    algo_list += core::algo_kind_name(k);
  }

  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.gauge("serve.qps").set(st.qps);
    mx.gauge("serve.cache_hit_rate").set(st.cache_hit_rate);
    mx.gauge("serve.batch_occupancy").set(st.mean_batch_occupancy);
    mx.gauge("serve.breaker_opens").set(static_cast<double>(st.breaker_opens));
    mx.gauge("serve.retries").set(static_cast<double>(st.retries));
  }

  obs::ReportSession& rs = obs::ReportSession::global();
  if (!rs.enabled()) return;
  obs::RunRecord r;
  r.tool = "serve";
  // The historical record name for BFS-only servers; mixed-family servers
  // say so (run-report consumers key off `tool` either way).
  r.algorithm =
      cfg_.algos.size() == 1 && cfg_.algos[0] == core::AlgoKind::Bfs
          ? "bfs-serving"
          : "family-serving";
  if (store_) {
    const dyn::Snapshot snap = store_->snapshot();
    r.n = snap.graph->num_vertices();
    r.m = snap.graph->num_edges();
  } else {
    r.n = host_g_->num_vertices();
    r.m = host_g_->num_edges();
  }
  r.source = -1;
  r.total_ms = st.wall_elapsed_ms;
  r.config = {
      {"num_gcds", std::to_string(cfg_.num_gcds)},
      {"max_batch", std::to_string(cfg_.max_batch)},
      {"queue_capacity", std::to_string(cfg_.queue_capacity)},
      {"cache_capacity", std::to_string(cfg_.cache_capacity)},
      {"batching", cfg_.batching ? "1" : "0"},
      {"algos", algo_list},
      {"submitted", std::to_string(st.submitted)},
      {"accepted", std::to_string(st.accepted)},
      {"completed", std::to_string(st.completed)},
      {"expired", std::to_string(st.expired)},
      {"rejected_full", std::to_string(st.rejected_full)},
      {"rejected_invalid", std::to_string(st.rejected_invalid)},
      {"rejected_shutdown", std::to_string(st.rejected_shutdown)},
      {"cache_hits", std::to_string(st.cache_hits)},
      {"cache_hit_rate", fmt_double(st.cache_hit_rate)},
      {"cache_evictions", std::to_string(st.cache_evictions)},
      {"sweeps", std::to_string(st.sweeps)},
      {"singleton_sweeps", std::to_string(st.singleton_sweeps)},
      {"algo_dispatches", std::to_string(st.algo_dispatches)},
      {"computed_sources", std::to_string(st.computed_sources)},
      {"batch_occupancy", fmt_double(st.mean_batch_occupancy)},
      {"sources_per_sweep", fmt_double(st.mean_sources_per_sweep)},
      {"qps", fmt_double(st.qps)},
      {"p50_ms", fmt_double(st.latency_p50_ms)},
      {"p95_ms", fmt_double(st.latency_p95_ms)},
      {"p99_ms", fmt_double(st.latency_p99_ms)},
      {"mean_ms", fmt_double(st.latency_mean_ms)},
      {"max_ms", fmt_double(st.latency_max_ms)},
      {"queue_p50_ms", fmt_double(st.queue_p50_ms)},
      {"queue_p99_ms", fmt_double(st.queue_p99_ms)},
      {"modelled_busy_ms", fmt_double(st.modelled_busy_ms)},
      {"wall_elapsed_ms", fmt_double(st.wall_elapsed_ms)},
      {"failed", std::to_string(st.failed)},
      {"faults_seen", std::to_string(st.faults_seen)},
      {"retries", std::to_string(st.retries)},
      {"validation_failures", std::to_string(st.validation_failures)},
      {"validated_results", std::to_string(st.validated_results)},
      {"degraded_queries", std::to_string(st.degraded_queries)},
      {"host_fallbacks", std::to_string(st.host_fallbacks)},
      {"dispatch_timeouts", std::to_string(st.dispatch_timeouts)},
      {"rerouted", std::to_string(st.rerouted)},
      {"breaker_opens", std::to_string(st.breaker_opens)},
      {"breaker_half_opens", std::to_string(st.breaker_half_opens)},
      {"breaker_closes", std::to_string(st.breaker_closes)},
      {"max_attempts", std::to_string(cfg_.max_attempts)},
      {"host_fallback", cfg_.host_fallback ? "1" : "0"},
      {"dynamic", dynamic() ? "1" : "0"},
      {"updates_applied", std::to_string(st.updates_applied)},
      {"updates_expired", std::to_string(st.updates_expired)},
      {"update_edges_applied", std::to_string(st.update_edges_applied)},
      {"update_noops", std::to_string(st.update_noops)},
      {"graph_epoch", std::to_string(st.graph_epoch)},
      {"compactions", std::to_string(st.compactions)},
      {"cache_epoch_bumps", std::to_string(st.cache_epoch_bumps)},
      {"cache_purged_stale", std::to_string(st.cache_purged_stale)},
      {"cache_stale_hits_avoided",
       std::to_string(st.cache_stale_hits_avoided)},
      {"repairs", std::to_string(st.repairs)},
      {"recomputes", std::to_string(st.recomputes)},
      {"repair_fallbacks", std::to_string(st.repair_fallbacks)},
      {"durable", st.durable ? "1" : "0"},
      {"wal_appends", std::to_string(st.wal_appends)},
      {"wal_append_failures", std::to_string(st.wal_append_failures)},
      {"wal_fsync_failures", std::to_string(st.wal_fsync_failures)},
      {"snapshots_spilled", std::to_string(st.snapshots_spilled)},
      {"wal_rotations", std::to_string(st.wal_rotations)},
      {"last_durable_epoch", std::to_string(st.last_durable_epoch)},
      {"updates_rejected_durability",
       std::to_string(st.updates_rejected_durability)},
      {"recovered", st.recovered ? "1" : "0"},
      {"recovery_torn_tail", st.recovery_torn_tail ? "1" : "0"},
      {"recovered_epoch", std::to_string(st.recovered_epoch)},
      {"recovery_replayed", std::to_string(st.recovery_replayed)},
      {"recovery_truncated_bytes",
       std::to_string(st.recovery_truncated_bytes)},
      {"recovery_stale_rejected",
       std::to_string(st.recovery_stale_rejected)},
      {"query_tracing", cfg_.query_tracing ? "1" : "0"},
      {"traced_queries", std::to_string(st.traced_queries)},
      {"slo_scope", cfg_.slo_scope},
      {"slo_active", st.slo.active ? "1" : "0"},
      {"slo_good", std::to_string(st.slo.total_good)},
      {"slo_bad", std::to_string(st.slo.total_bad)},
      {"slo_slow", std::to_string(st.slo.total_slow)},
      {"slo_budget_remaining", fmt_double(st.slo.budget_remaining)},
      {"slo_budget_exhausted", st.slo.budget_exhausted ? "1" : "0"},
      {"slo_window_burn", fmt_double(st.slo.window.burn_rate)},
      {"slo_gcd_burns", slo_gcd_burns},
      {"slo_proactive_degrades",
       std::to_string(st.slo_proactive_degrades)},
      {"flight_dumps",
       std::to_string(obs::FlightRecorder::global().dumps())},
  };
  // Per-kind serving columns, one block per served algorithm.
  for (const core::AlgoKind k : cfg_.algos) {
    const AlgoClassStats& a = st.per_algo[static_cast<std::size_t>(k)];
    const std::string p = core::algo_kind_name(k);
    r.config.emplace_back(p + "_submitted", std::to_string(a.submitted));
    r.config.emplace_back(p + "_completed", std::to_string(a.completed));
    r.config.emplace_back(p + "_cache_hits", std::to_string(a.cache_hits));
    r.config.emplace_back(p + "_p50_ms", fmt_double(a.latency_p50_ms));
    r.config.emplace_back(p + "_p99_ms", fmt_double(a.latency_p99_ms));
    r.config.emplace_back(p + "_qps", fmt_double(a.qps));
  }
  rs.add(std::move(r));
}

}  // namespace xbfs::serve
