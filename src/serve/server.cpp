#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "algos/multi_bfs.h"
#include "baseline/cpu_bfs.h"
#include "baseline/simple_scan.h"
#include "dyn/delta_ref.h"
#include "dyn/incremental_bfs.h"
#include "graph/g500_validate.h"
#include "hipsim/device.h"
#include "hipsim/fault.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace xbfs::serve {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Comma-trick helper: runs in the constructor's member-init list so an
/// invalid config throws before any device is built.
const ServeConfig& checked(const ServeConfig& cfg) {
  if (const xbfs::Status s = cfg.validate(); !s.ok()) {
    throw std::invalid_argument("ServeConfig: " + s.to_string());
  }
  return cfg;
}

/// Fold one attempt's AttributionSink into a per-query rung record.
obs::RungAttribution make_rung(const sim::AttributionSink& sink,
                               std::string engine, const char* outcome,
                               unsigned gcd, unsigned attempt, unsigned rung,
                               unsigned shared, double start_us,
                               double end_us) {
  obs::RungAttribution a;
  a.engine = std::move(engine);
  a.outcome = outcome;
  a.gcd = gcd;
  a.attempt = attempt;
  a.rung = rung;
  a.shared_members = shared;
  a.launches = sink.launches;
  a.memcpys = sink.memcpys;
  a.fetch_bytes = sink.counters.fetch_bytes;
  a.bytes_read = sink.counters.bytes_read;
  a.atomics = sink.counters.atomics;
  const std::uint64_t accesses = sink.counters.l2_hits + sink.counters.l2_misses;
  a.l2_hit_pct =
      accesses == 0
          ? 0.0
          : 100.0 * static_cast<double>(sink.counters.l2_hits) /
                static_cast<double>(accesses);
  a.modelled_us = sink.modelled_us;
  a.wall_start_us = start_us;
  a.wall_dur_us = end_us - start_us;
  return a;
}

}  // namespace

const char* query_status_name(QueryStatus s) {
  switch (s) {
    case QueryStatus::Completed: return "completed";
    case QueryStatus::Expired: return "expired";
    case QueryStatus::Failed: return "failed";
  }
  return "?";
}

xbfs::Status ServeConfig::validate() const {
  if (queue_capacity < 1) {
    return xbfs::Status::Invalid("queue_capacity must be >= 1");
  }
  if (num_gcds < 1) return xbfs::Status::Invalid("num_gcds must be >= 1");
  if (device_workers < 1) {
    return xbfs::Status::Invalid("device_workers must be >= 1");
  }
  if (max_batch < 1 || max_batch > algos::kMaxConcurrentSources) {
    return xbfs::Status::Invalid(
        "max_batch must be in [1, " +
        std::to_string(algos::kMaxConcurrentSources) + "], got " +
        std::to_string(max_batch));
  }
  if (min_sweep_sources < 1 ||
      min_sweep_sources > algos::kMaxConcurrentSources) {
    return xbfs::Status::Invalid(
        "min_sweep_sources must be in [1, " +
        std::to_string(algos::kMaxConcurrentSources) + "], got " +
        std::to_string(min_sweep_sources));
  }
  if (cache_shards < 1) {
    return xbfs::Status::Invalid("cache_shards must be >= 1");
  }
  if (batch_window_ms < 0.0) {
    return xbfs::Status::Invalid("batch_window_ms must be >= 0");
  }
  if (max_attempts < 1) {
    return xbfs::Status::Invalid("max_attempts must be >= 1");
  }
  if (retry_backoff_ms < 0.0 || retry_backoff_max_ms < 0.0) {
    return xbfs::Status::Invalid("retry backoffs must be >= 0");
  }
  if (breaker_failure_threshold < 1) {
    return xbfs::Status::Invalid("breaker_failure_threshold must be >= 1");
  }
  if (breaker_cooldown_ms < 0.0) {
    return xbfs::Status::Invalid("breaker_cooldown_ms must be >= 0");
  }
  return xbfs.validate();
}

Server::Server(const graph::Csr& g, ServeConfig cfg)
    : Server(&g, nullptr, std::move(cfg)) {}

Server::Server(dyn::GraphStore& store, ServeConfig cfg)
    : Server(nullptr, &store, std::move(cfg)) {}

Server::Server(const graph::Csr* g, dyn::GraphStore* store, ServeConfig cfg)
    : host_g_(g),
      store_(store),
      cfg_((checked(cfg), std::move(cfg))),
      queue_(cfg_.queue_capacity),
      cache_(cfg_.cache_capacity, cfg_.cache_shards),
      health_(cfg_.num_gcds,
              BreakerConfig{cfg_.breaker_failure_threshold,
                            cfg_.breaker_cooldown_ms}),
      epoch_(std::chrono::steady_clock::now()) {
  // The server reports one serving summary; per-query run records would
  // swamp XBFS_RUN_REPORT under load.
  cfg_.xbfs.report_runs = false;

  if (store_) {
    const dyn::Snapshot snap = store_->snapshot();
    n_vertices_ = snap.graph->num_vertices();
    graph_fp_.store(snap.fingerprint, std::memory_order_release);
    // Registers the serving fingerprint so the first epoch bump already
    // has a previous epoch to retire lazily.
    cache_.prime(snap.fingerprint);
  } else {
    n_vertices_ = host_g_->num_vertices();
    graph_fp_.store(host_g_->fingerprint(), std::memory_order_release);
  }

  gcds_.reserve(cfg_.num_gcds);
  for (unsigned i = 0; i < cfg_.num_gcds; ++i) {
    auto gcd = std::make_unique<Gcd>();
    gcd->dev = std::make_unique<sim::Device>(
        cfg_.profile,
        sim::SimOptions{.num_workers = cfg_.device_workers,
                        .profiling = cfg_.device_profiling});
    gcd->dev->set_trace_label("GCD " + std::to_string(i));
    gcd->dev->warmup();
    if (store_) {
      // Dynamic ladder: one rung, the incremental-repair engine (it owns
      // its own delta-aware device mirror; no static DeviceCsr upload).
      auto inc =
          std::make_unique<dyn::IncrementalBfs>(*gcd->dev, *store_, cfg_.xbfs);
      gcd->inc = inc.get();
      gcd->ladder.push_back(std::move(inc));
    } else {
      gcd->dg = graph::DeviceCsr::upload(*gcd->dev, *host_g_);
      // Degradation ladder, fastest first.  The simple-scan baseline is the
      // second rung: far fewer kernel launches per traversal than adaptive
      // XBFS, so under a high kernel-fault rate it has fewer chances to
      // draw a fault while still running on the device.
      gcd->ladder.push_back(
          std::make_unique<core::Xbfs>(*gcd->dev, gcd->dg, cfg_.xbfs));
      gcd->ladder.push_back(
          std::make_unique<baseline::SimpleScanBfs>(*gcd->dev, gcd->dg));
    }
    gcds_.push_back(std::move(gcd));
  }
  if (store_) {
    auto host = std::make_unique<dyn::HostDeltaBfs>(*store_);
    host_dyn_ = host.get();
    host_engine_ = std::move(host);
  } else {
    host_engine_ = std::make_unique<baseline::CpuBfsEngine>(
        *host_g_, baseline::CpuBfsEngine::Mode::Serial);
  }
  // One pool lane per GCD (the scheduler thread participates as lane 0),
  // reusing the simulator's chunked-cursor worker pool.
  pool_ = std::make_unique<sim::ThreadPool>(cfg_.num_gcds);

  obs::SloEngine& slo_eng = obs::SloEngine::global();
  if (slo_eng.enabled()) {
    slo_ = &slo_eng.scope(cfg_.slo_scope, cfg_.num_gcds);
  }
  flight_ctx_ = obs::FlightRecorder::global().register_context(
      "server[" + cfg_.slo_scope + "]",
      [this] { return flight_context_json(); });

  if (!cfg_.manual_dispatch) {
    scheduler_ = std::thread([this] { scheduler_loop(); });
  }
}

Server::~Server() { shutdown(); }

double Server::wall_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Admission Server::submit(graph::vid_t source, QueryOptions opt) {
  Admission a;
  a.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  submitted_.fetch_add(1, std::memory_order_relaxed);

  if (shut_down_.load(std::memory_order_acquire)) {
    a.status = xbfs::Status::ShuttingDown("server is shutting down");
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }
  if (source >= n_vertices_) {
    a.status = xbfs::Status::Invalid(
        "source " + std::to_string(source) + " >= |V| = " +
        std::to_string(n_vertices_));
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }

  const double now = wall_us();

  // Cache fast path: resolve without ever touching the queue.
  if (cache_.enabled() && !opt.bypass_cache) {
    if (CachedResult hit =
            cache_.get(graph_fp_.load(std::memory_order_acquire), source)) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      std::promise<QueryResult> pr;
      a.result = pr.get_future();
      a.accepted = true;
      QueryResult r;
      r.id = a.id;
      r.source = source;
      r.status = QueryStatus::Completed;
      r.levels = std::move(hit.levels);
      r.depth = hit.depth;
      r.cache_hit = true;
      r.total_ms = (wall_us() - now) / 1000.0;
      if (cfg_.query_tracing) {
        r.trace = std::make_shared<obs::QueryTrace>(a.id, source);
        r.trace->event(now, "admitted", "source=" + std::to_string(source));
        r.trace->event(wall_us(), "cache_hit",
                       "depth=" + std::to_string(r.depth));
      }
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_latency(r);
      note_terminal(r);
      pr.set_value(std::move(r));
      retire_one();
      return a;
    }
  }

  PendingQuery p;
  p.id = a.id;
  p.source = source;
  p.bypass_cache = opt.bypass_cache;
  p.enqueue_us = now;
  const double timeout_ms =
      opt.timeout_ms != 0.0 ? opt.timeout_ms : cfg_.default_timeout_ms;
  p.deadline_us = timeout_ms >= 0.0 ? now + timeout_ms * 1000.0 : -1.0;
  if (cfg_.query_tracing) {
    p.trace = std::make_shared<obs::QueryTrace>(a.id, source);
    std::string detail = "source=" + std::to_string(source);
    if (p.deadline_us >= 0.0) {
      detail += " deadline_ms=" + fmt_double(timeout_ms);
    }
    p.trace->event(now, "admitted", std::move(detail));
  }
  std::future<QueryResult> fut = p.promise.get_future();

  xbfs::Status st = queue_.try_push(std::move(p));
  if (!st.ok()) {
    if (st == xbfs::StatusCode::QueueFull) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    }
    a.status = std::move(st);
    return a;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    inflight_.insert(a.id);
  }
  a.accepted = true;
  a.result = std::move(fut);
  return a;
}

UpdateAdmission Server::submit_update(const dyn::EdgeBatch& batch) {
  UpdateAdmission a;
  updates_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!store_) {
    a.status = xbfs::Status::Invalid(
        "static server: graph updates need the GraphStore constructor");
    return a;
  }
  if (shut_down_.load(std::memory_order_acquire)) {
    a.status = xbfs::Status::ShuttingDown("server is shutting down");
    return a;
  }

  // Writes serialized per graph; reads are never blocked — the store
  // publishes a new snapshot while in-flight queries keep theirs, and the
  // fingerprint/cache flip below makes new submissions see the new epoch.
  std::lock_guard<std::mutex> lk(update_mu_);
  if (cfg_.query_tracing) {
    a.trace = std::make_shared<obs::QueryTrace>(0, 0);
    a.trace->event(wall_us(), "update_submitted",
                   "ops=" + std::to_string(batch.size()));
  }
  a.applied = store_->apply(batch);
  const dyn::Snapshot snap = store_->snapshot();
  a.epoch = snap.epoch;
  a.fingerprint = snap.fingerprint;
  graph_fp_.store(snap.fingerprint, std::memory_order_release);
  a.cache_purged = cache_.epoch_bump(snap.fingerprint);
  a.accepted = true;
  if (a.trace) {
    a.trace->event(
        wall_us(), "update_applied",
        "epoch=" + std::to_string(a.epoch) + " applied=" +
            std::to_string(a.applied.inserts_applied +
                           a.applied.deletes_applied) +
            " noops=" + std::to_string(a.applied.noops) +
            " purged=" + std::to_string(a.cache_purged));
  }
  obs::FlightRecorder::global().record(
      "dyn", "update", {}, 0, a.epoch,
      a.applied.inserts_applied + a.applied.deletes_applied);

  updates_applied_.fetch_add(1, std::memory_order_relaxed);
  update_edges_applied_.fetch_add(
      a.applied.inserts_applied + a.applied.deletes_applied,
      std::memory_order_relaxed);
  update_noops_.fetch_add(a.applied.noops, std::memory_order_relaxed);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.counter("serve.updates").add();
    mx.counter("serve.cache_purged")
        .add(static_cast<std::uint64_t>(a.cache_purged));
  }
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    tr.instant("serve.update", "serve", "serve", 0, wall_us(),
               {{"epoch", std::to_string(a.epoch), true},
                {"purged", std::to_string(a.cache_purged), true}});
  }
  return a;
}

void Server::scheduler_loop() {
  std::vector<PendingQuery> pending;
  const std::size_t target =
      static_cast<std::size_t>(cfg_.max_batch) * gcds_.size();
  for (;;) {
    pending.clear();
    const std::size_t got =
        queue_.pop_batch(pending, target, cfg_.batch_window_ms * 1000.0);
    if (got == 0) {
      if (queue_.closed()) return;
      continue;
    }
    process_cycle(pending);
  }
}

std::size_t Server::dispatch_once() {
  std::vector<PendingQuery> pending;
  const std::size_t target =
      static_cast<std::size_t>(cfg_.max_batch) * gcds_.size();
  if (queue_.try_pop_batch(pending, target) == 0) return 0;
  return process_cycle(pending);
}

std::size_t Server::process_cycle(std::vector<PendingQuery>& pending) {
  std::lock_guard<std::mutex> cycle_lock(cycle_mu_);
  obs::TraceSession& tr = obs::TraceSession::global();
  const std::uint64_t span = tr.begin("serve.cycle", "serve", "serve");
  const std::uint64_t cycle =
      dispatch_cycles_.fetch_add(1, std::memory_order_relaxed) + 1;
  const double dispatch_us = wall_us();
  const std::size_t cycle_queries = pending.size();

  // Triage: expire past-deadline queries (reported, never dropped) and
  // serve queries whose source landed in the cache while they queued.
  std::vector<PendingQuery> work;
  work.reserve(pending.size());
  for (PendingQuery& p : pending) {
    if (p.deadline_us >= 0.0 && dispatch_us > p.deadline_us) {
      complete_expired(std::move(p), dispatch_us);
      continue;
    }
    if (cache_.enabled() && !p.bypass_cache) {
      if (CachedResult hit = cache_.get(
              graph_fp_.load(std::memory_order_acquire), p.source)) {
        complete_from_cache(std::move(p), std::move(hit), dispatch_us);
        continue;
      }
    }
    if (p.trace) {
      p.trace->event(dispatch_us, "dispatched",
                     "cycle=" + std::to_string(cycle));
    }
    work.push_back(std::move(p));
  }
  pending.clear();

  if (!work.empty()) {
    // Deduplicate: all queries for one source share one traversal.
    SourceMap by_src;
    std::vector<graph::vid_t> uniq;
    for (PendingQuery& p : work) {
      auto& waiters = by_src[p.source];
      if (waiters.empty()) uniq.push_back(p.source);
      waiters.push_back(std::move(p));
    }

    std::vector<std::vector<graph::vid_t>> batches;
    if (cfg_.batching && !dynamic()) {
      if (cfg_.group_by_neighborhood && uniq.size() > 1) {
        uniq = algos::group_sources(*host_g_, std::move(uniq), cfg_.max_batch);
      }
      for (std::size_t b = 0; b < uniq.size(); b += cfg_.max_batch) {
        const std::size_t e = std::min(b + cfg_.max_batch, uniq.size());
        if (e - b < cfg_.min_sweep_sources) {
          // Too narrow to amortize a sweep's fixed full-vertex-scan cost:
          // per-source adaptive runs, spread across the GCD lanes.
          for (std::size_t i = b; i < e; ++i) batches.push_back({uniq[i]});
        } else {
          batches.emplace_back(uniq.begin() + b, uniq.begin() + e);
        }
      }
    } else {
      // Naive serving mode, and every dynamic cycle: one traversal per
      // distinct source (the bit-parallel sweep and neighborhood grouping
      // both need the static CSR).
      for (const graph::vid_t s : uniq) batches.push_back({s});
    }

    pool_->parallel_for(batches.size(),
                        [&](unsigned worker, std::uint64_t bi) {
                          run_batch(worker, batches[bi], by_src, dispatch_us);
                        });
  }

  if (span != 0) {
    tr.attr(span, "queries", static_cast<double>(cycle_queries));
    tr.end(span);
  }
  return cycle_queries;
}

bool Server::validation_active() const {
  switch (cfg_.validate_results) {
    case ValidateResults::Always: return true;
    case ValidateResults::Never: return false;
    case ValidateResults::Auto: return sim::FaultInjector::global().enabled();
  }
  return false;
}

void Server::backoff(unsigned attempt) {
  if (cfg_.retry_backoff_ms <= 0.0) return;
  double ms = cfg_.retry_backoff_ms;
  for (unsigned i = 1; i < attempt && ms < cfg_.retry_backoff_max_ms; ++i) {
    ms *= 2.0;
  }
  ms = std::min(ms, cfg_.retry_backoff_max_ms);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

xbfs::Status Server::note_attempt_failure(unsigned gcd,
                                          const xbfs::Status& why,
                                          QueryId primary) {
  obs::FlightRecorder::global().record("serve", "attempt_failed",
                                       xbfs::status_code_name(why.code()),
                                       primary, gcd);
  if (why == xbfs::StatusCode::FaultInjected) {
    faults_seen_.fetch_add(1, std::memory_order_relaxed);
  } else if (why == xbfs::StatusCode::DataCorruption) {
    faults_seen_.fetch_add(1, std::memory_order_relaxed);
    validation_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  health_.record_failure(gcd, wall_us());
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.counter("serve.faults").add();
    if (why == xbfs::StatusCode::DataCorruption) {
      mx.counter("serve.validation_failures").add();
    }
  }
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    tr.instant("serve.fault", "serve", "serve", 0, wall_us(),
               {{"gcd", std::to_string(gcd), true},
                {"status", xbfs::status_code_name(why.code()), false}});
  }
  return why;
}

bool Server::note_dispatch_time(unsigned gcd, double dispatch_us) {
  if (cfg_.dispatch_timeout_ms < 0.0) return false;
  const double elapsed_ms = (wall_us() - dispatch_us) / 1000.0;
  if (elapsed_ms <= cfg_.dispatch_timeout_ms) return false;
  // Straggler: the work itself completed (the result is still used), but
  // the device blew its budget — report it unhealthy so the next dispatch
  // routes elsewhere while its breaker cools down.
  dispatch_timeouts_.fetch_add(1, std::memory_order_relaxed);
  health_.record_failure(gcd, wall_us());
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("serve.dispatch_timeouts").add();
  return true;
}

Server::Resolution Server::resolve_single(unsigned preferred,
                                          graph::vid_t src,
                                          unsigned attempts_so_far,
                                          double dispatch_us,
                                          QueryId primary) {
  Resolution out;
  out.attempts = attempts_so_far;
  out.gcd = preferred;
  if (cfg_.query_tracing) {
    out.log = std::make_shared<obs::QueryTrace>(primary, src);
  }
  obs::QueryTrace* log = out.log.get();
  const bool validate = validation_active();
  xbfs::Status last = xbfs::Status::Unavailable("no device attempt made");
  unsigned budget = cfg_.max_attempts;
  const std::size_t rungs = gcds_[0]->ladder.size();

  // SLO-aware proactive degrade: when the error budget is exhausted (or
  // the window burn runs past burn_fast), start on the cheaper rung
  // instead of spending device attempts the objective can't afford.
  std::size_t start_rung = 0;
  if (slo_ != nullptr && rungs > 1 && slo_->prefer_cheap(obs::slo_now_ms())) {
    start_rung = 1;
    slo_proactive_degrades_.fetch_add(1, std::memory_order_relaxed);
    if (log) log->event(wall_us(), "slo_degrade", "start_rung=1");
    obs::FlightRecorder::global().record("serve", "slo_degrade", {}, primary,
                                         preferred);
  }

  for (std::size_t rung = start_rung; rung < rungs && budget > 0; ++rung) {
    while (budget > 0) {
      const unsigned g = health_.pick(preferred, wall_us());
      if (g == HealthTracker::kNone) {
        last = xbfs::Status::Unavailable("all GCD circuit breakers open");
        if (log) log->event(wall_us(), "unavailable", "all breakers open");
        budget = 0;
        break;
      }
      if (g != preferred) rerouted_.fetch_add(1, std::memory_order_relaxed);
      if (out.attempts > 0) retries_.fetch_add(1, std::memory_order_relaxed);
      ++out.attempts;
      --budget;
      Gcd& gcd = *gcds_[g];
      const double attempt_us = wall_us();
      if (log) {
        log->event(attempt_us, "attempt",
                   "engine=" + std::string(gcd.ladder[rung]->name()) +
                       " gcd=" + std::to_string(g) + " rung=" +
                       std::to_string(rung) + " attempt=" +
                       std::to_string(out.attempts));
      }
      // Declared outside the try: a faulted run keeps the partial counters
      // it accumulated before the fault (the faulted launch itself
      // attributes nothing — hipsim throws before executing it).
      sim::AttributionSink sink;
      try {
        core::BfsResult br;
        bool corrupted = false;
        dyn::Snapshot dsnap;
        dyn::IncrementalBfs::LastRun dlr;
        {
          std::lock_guard<std::mutex> lk(gcd.mu);
          sim::ScopedAttribution attr(*gcd.dev, sink);
          br = gcd.ladder[rung]->run(src);
          corrupted = gcd.dev->take_pending_corruption();
          // Dynamic: pin the exact snapshot this run traversed (still under
          // the GCD lock — served() follows run()'s serialization) so
          // validation and the cache key match the graph that was served,
          // not whatever epoch the store is on by now.
          if (gcd.inc) {
            dsnap = gcd.inc->served();
            dlr = gcd.inc->last_run();
          }
        }
        if (log && dlr.valid) {
          log->event(wall_us(), dlr.repair ? "repair" : "recompute",
                     "epoch=" + std::to_string(dlr.epoch) + " dirty=" +
                         std::to_string(dlr.dirty) + " seeds=" +
                         std::to_string(dlr.seeds) +
                         (dlr.fallback[0] != '\0'
                              ? std::string(" fallback=") + dlr.fallback
                              : std::string()));
        }
        if (corrupted) sim::FaultInjector::global().corrupt_levels(br.levels);
        if (validate) {
          const std::string verr =
              dsnap ? dyn::validate_levels(*dsnap.graph, src, br.levels)
                    : graph::validate_levels_graph500(*host_g_, src,
                                                      br.levels);
          if (!verr.empty()) {
            last = note_attempt_failure(g, xbfs::Status::Corruption(verr),
                                        primary);
            if (log) {
              log->event(wall_us(), "validation_failed", verr);
              log->rung(make_rung(sink, gcd.ladder[rung]->name(), "corrupt",
                                  g, out.attempts,
                                  static_cast<unsigned>(rung), 1, attempt_us,
                                  wall_us()));
            }
            obs::FlightRecorder::global().trigger("validation_failure");
            backoff(out.attempts);
            continue;
          }
          validated_results_.fetch_add(1, std::memory_order_relaxed);
          if (log) log->event(wall_us(), "validated");
        }
        // A straggler keeps its result but eats a breaker failure instead
        // of a success (which would reset the failure streak).
        if (!note_dispatch_time(g, dispatch_us)) health_.record_success(g);
        out.res.levels = std::make_shared<const std::vector<std::int32_t>>(
            std::move(br.levels));
        out.res.depth = br.depth;
        out.modelled_ms = br.total_ms;
        out.engine = gcd.ladder[rung]->name();
        out.gcd = g;
        out.fp = dsnap ? dsnap.fingerprint
                       : graph_fp_.load(std::memory_order_acquire);
        // Degraded: a failed sweep preceded this, or we are below rung 0.
        out.degraded = attempts_so_far > 0 || rung > 0;
        out.validated = validate;
        out.status = xbfs::Status::Ok();
        if (log) {
          log->rung(make_rung(sink, out.engine, "ok", g, out.attempts,
                              static_cast<unsigned>(rung), 1, attempt_us,
                              wall_us()));
          log->event(wall_us(), "resolved",
                     "engine=" + out.engine + " gcd=" + std::to_string(g));
        }
        return out;
      } catch (const sim::FaultInjected& e) {
        last = note_attempt_failure(g, xbfs::Status::Fault(e.what()),
                                    primary);
        if (log) {
          log->event(wall_us(), "fault", e.what());
          log->rung(make_rung(sink, gcd.ladder[rung]->name(), "fault", g,
                              out.attempts, static_cast<unsigned>(rung), 1,
                              attempt_us, wall_us()));
        }
        backoff(out.attempts);
      } catch (const std::exception& e) {
        last = note_attempt_failure(g, xbfs::Status::Internal(e.what()),
                                    primary);
        if (log) {
          log->event(wall_us(), "error", e.what());
          log->rung(make_rung(sink, gcd.ladder[rung]->name(), "error", g,
                              out.attempts, static_cast<unsigned>(rung), 1,
                              attempt_us, wall_us()));
        }
        backoff(out.attempts);
      }
    }
  }

  if (cfg_.host_fallback) {
    // Terminal rung: the host CPU engine never touches the simulated
    // device, so no injected fault can reach it.  Dynamic servers pin one
    // snapshot so the traversal, validation and cache key agree even if an
    // update lands mid-run.
    const double host_us = wall_us();
    if (log) {
      log->event(host_us, "host_fallback",
                 "engine=" + std::string(host_engine_->name()));
    }
    dyn::Snapshot hsnap;
    core::BfsResult br;
    if (host_dyn_) {
      hsnap = store_->snapshot();
      br = host_dyn_->run_on(hsnap, src);
    } else {
      br = host_engine_->run(src);
    }
    host_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
    if (mx.enabled()) mx.counter("serve.host_fallbacks").add();
    if (validate) {
      const std::string verr =
          hsnap ? dyn::validate_levels(*hsnap.graph, src, br.levels)
                : graph::validate_levels_graph500(*host_g_, src, br.levels);
      if (!verr.empty()) {
        // Cannot happen short of a bug in the host engine itself; report
        // rather than serve a wrong answer.
        out.status = xbfs::Status::Internal("host fallback failed validation: " + verr);
        if (log) log->event(wall_us(), "validation_failed", verr);
        return out;
      }
      validated_results_.fetch_add(1, std::memory_order_relaxed);
    }
    out.res.levels = std::make_shared<const std::vector<std::int32_t>>(
        std::move(br.levels));
    out.res.depth = br.depth;
    out.engine = host_engine_->name();
    out.degraded = true;
    out.validated = validate;
    out.status = xbfs::Status::Ok();
    out.fp = hsnap ? hsnap.fingerprint
                   : graph_fp_.load(std::memory_order_acquire);
    if (log) {
      // The host rung runs no simulated device work, so its attribution
      // record is all-zero counters — rung index one past the ladder.
      obs::RungAttribution ha;
      ha.engine = out.engine;
      ha.gcd = out.gcd;
      ha.attempt = out.attempts;
      ha.rung = static_cast<unsigned>(rungs);
      ha.wall_start_us = host_us;
      ha.wall_dur_us = wall_us() - host_us;
      log->rung(std::move(ha));
      log->event(wall_us(), "resolved", "engine=" + out.engine);
    }
    return out;
  }

  out.status = last;
  if (log) log->event(wall_us(), "exhausted", last.to_string());
  obs::FlightRecorder::global().record("serve", "budget_exhausted",
                                       xbfs::status_code_name(last.code()),
                                       primary, preferred);
  return out;
}

void Server::deliver_source(graph::vid_t src, const Resolution& res,
                            SourceMap& by_src, double dispatch_us,
                            unsigned batch_size,
                            const obs::QueryTrace* batch_log) {
  auto waiters = by_src.find(src);
  if (waiters == by_src.end()) return;
  const double complete_us = wall_us();

  bool published = false;
  if (res.res) {
    computed_sources_.fetch_add(1, std::memory_order_relaxed);
    // Publish before resolving waiters so a submit racing with completion
    // can already hit.  When validation is active only validated results
    // are cacheable — a corrupted entry must never outlive its query.
    bool publish = !validation_active() || res.validated;
    bool wanted = false;
    for (const PendingQuery& p : waiters->second) wanted |= !p.bypass_cache;
    // Keyed under the fingerprint of the graph that actually produced the
    // result; on a dynamic server that may trail the live fingerprint, in
    // which case the entry is unreachable (and purged on the next bump)
    // rather than served stale.
    if (publish && wanted) {
      cache_.put(res.fp, src, res.res);
      published = true;
    }
  }

  for (PendingQuery& p : waiters->second) {
    if (p.trace) {
      // Batch-shared work first (sweep attempts), then this source's own
      // resolution log; wall clocks keep the merged record ordered.
      if (batch_log != nullptr) p.trace->absorb(*batch_log);
      if (res.log != nullptr) p.trace->absorb(*res.log);
      if (published) {
        p.trace->event(complete_us, "cache_publish",
                       "fp=" + std::to_string(res.fp));
      }
    }
    QueryResult r;
    r.id = p.id;
    r.source = p.source;
    r.batch_size = batch_size;
    r.gcd = res.gcd;
    r.engine = res.engine;
    r.attempts = res.attempts;
    r.degraded = res.degraded;
    r.validated = res.validated;
    r.queue_ms = (dispatch_us - p.enqueue_us) / 1000.0;
    r.service_ms = (complete_us - dispatch_us) / 1000.0;
    r.total_ms = (complete_us - p.enqueue_us) / 1000.0;
    if (res.res) {
      r.status = QueryStatus::Completed;
      r.levels = res.res.levels;
      r.depth = res.res.depth;
      if (res.degraded) {
        degraded_queries_.fetch_add(1, std::memory_order_relaxed);
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_latency(r);
    } else {
      r.status = QueryStatus::Failed;
      r.error = res.status;
      failed_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      if (mx.enabled()) mx.counter("serve.failed").add();
    }
    finish_query(std::move(p), std::move(r));
  }
}

void Server::run_batch(unsigned worker,
                       const std::vector<graph::vid_t>& batch,
                       SourceMap& by_src, double dispatch_us) {
  const bool singleton = batch.size() == 1;
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  if (singleton) singleton_sweeps_.fetch_add(1, std::memory_order_relaxed);

  const bool validate = validation_active();
  std::vector<Resolution> outcomes(batch.size());
  double modelled_ms = 0.0;
  bool solved = false;
  unsigned sweep_attempts = 0;

  // Batch-shared scratch trace: sweep-stage events and attribution,
  // absorbed into every member's QueryTrace at delivery (shared_members
  // marks work amortized across the whole batch).
  obs::QueryTracePtr batch_log;
  if (cfg_.query_tracing && !singleton) {
    batch_log = std::make_shared<obs::QueryTrace>(0, batch[0]);
  }

  if (!singleton) {
    // Stage 1: the shared 64-way sweep, retried across healthy GCDs.  One
    // corrupted or faulted attempt fails the whole unit; per-source
    // resolution below is the degradation path.
    while (sweep_attempts < cfg_.max_attempts) {
      const unsigned g = health_.pick(worker, wall_us());
      if (g == HealthTracker::kNone) break;
      if (g != worker) rerouted_.fetch_add(1, std::memory_order_relaxed);
      if (sweep_attempts > 0) {
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
      ++sweep_attempts;
      Gcd& gcd = *gcds_[g];
      const double attempt_us = wall_us();
      if (batch_log) {
        batch_log->event(attempt_us, "attempt",
                         "engine=sweep gcd=" + std::to_string(g) +
                             " members=" + std::to_string(batch.size()) +
                             " attempt=" + std::to_string(sweep_attempts));
      }
      sim::AttributionSink sink;
      try {
        algos::MultiBfsResult r;
        bool corrupted = false;
        std::uint64_t corrupt_pick = 0;
        {
          std::lock_guard<std::mutex> lk(gcd.mu);
          sim::ScopedAttribution attr(*gcd.dev, sink);
          r = algos::multi_source_bfs(*gcd.dev, gcd.dg, batch);
          corrupted = gcd.dev->take_pending_corruption();
          // The device counters are plain fields; read them only while
          // holding the device (rerouted lanes mutate them concurrently).
          if (corrupted) corrupt_pick = gcd.dev->corrupted_copies();
        }
        if (corrupted) {
          // The modelled copy moved no real bytes; realize the corruption
          // on one deterministic source's levels so validation sees it.
          sim::FaultInjector::global().corrupt_levels(
              r.levels[corrupt_pick % batch.size()]);
        }
        if (validate) {
          std::string verr;
          for (std::size_t i = 0; i < batch.size() && verr.empty(); ++i) {
            verr = graph::validate_levels_graph500(*host_g_, batch[i],
                                                   r.levels[i]);
          }
          if (!verr.empty()) {
            note_attempt_failure(g, xbfs::Status::Corruption(verr));
            if (batch_log) {
              batch_log->event(wall_us(), "validation_failed", verr);
              batch_log->rung(make_rung(
                  sink, "sweep", "corrupt", g, sweep_attempts, 0,
                  static_cast<unsigned>(batch.size()), attempt_us,
                  wall_us()));
            }
            obs::FlightRecorder::global().trigger("validation_failure");
            backoff(sweep_attempts);
            continue;
          }
          validated_results_.fetch_add(batch.size(),
                                       std::memory_order_relaxed);
          if (batch_log) batch_log->event(wall_us(), "validated");
        }
        // A straggler keeps its result but eats a breaker failure instead
        // of a success (which would reset the failure streak).
        if (!note_dispatch_time(g, dispatch_us)) health_.record_success(g);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          std::int32_t max_level = 0;
          for (const std::int32_t lv : r.levels[i]) {
            max_level = std::max(max_level, lv);
          }
          Resolution& o = outcomes[i];
          o.res.levels = std::make_shared<const std::vector<std::int32_t>>(
              std::move(r.levels[i]));
          // Same convention as every TraversalEngine: number of BFS levels
          // run, i.e. deepest reached level + 1.
          o.res.depth = static_cast<std::uint32_t>(max_level) + 1;
          o.engine = "sweep";
          o.attempts = sweep_attempts;
          o.gcd = g;
          o.validated = validate;
          o.status = xbfs::Status::Ok();
          o.fp = graph_fp_.load(std::memory_order_acquire);
        }
        modelled_ms += r.total_ms;
        solved = true;
        if (batch_log) {
          batch_log->rung(make_rung(sink, "sweep", "ok", g, sweep_attempts,
                                    0, static_cast<unsigned>(batch.size()),
                                    attempt_us, wall_us()));
          batch_log->event(wall_us(), "resolved",
                           "engine=sweep gcd=" + std::to_string(g));
        }
        break;
      } catch (const sim::FaultInjected& e) {
        note_attempt_failure(g, xbfs::Status::Fault(e.what()));
        if (batch_log) {
          batch_log->event(wall_us(), "fault", e.what());
          batch_log->rung(make_rung(sink, "sweep", "fault", g,
                                    sweep_attempts, 0,
                                    static_cast<unsigned>(batch.size()),
                                    attempt_us, wall_us()));
        }
        backoff(sweep_attempts);
      } catch (const std::exception& e) {
        note_attempt_failure(g, xbfs::Status::Internal(e.what()));
        if (batch_log) {
          batch_log->event(wall_us(), "error", e.what());
          batch_log->rung(make_rung(sink, "sweep", "error", g,
                                    sweep_attempts, 0,
                                    static_cast<unsigned>(batch.size()),
                                    attempt_us, wall_us()));
        }
        backoff(sweep_attempts);
      }
    }
  }

  if (!solved) {
    // Stage 2: per-source resolution through the engine ladder (also the
    // normal path for singleton batches, where ladder[0] is exactly the
    // pre-resilience adaptive Xbfs run).
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto w = by_src.find(batch[i]);
      const QueryId primary =
          (w != by_src.end() && !w->second.empty()) ? w->second.front().id
                                                    : 0;
      outcomes[i] = resolve_single(worker, batch[i], sweep_attempts,
                                   dispatch_us, primary);
      modelled_ms += outcomes[i].modelled_ms;
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    deliver_source(batch[i], outcomes[i], by_src, dispatch_us,
                   static_cast<unsigned>(batch.size()), batch_log.get());
  }

  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    occupancy_sum_ += static_cast<double>(batch.size()) / cfg_.max_batch;
    sources_per_sweep_sum_ += static_cast<double>(batch.size());
    modelled_busy_ms_ += modelled_ms;
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.histogram("serve.batch_occupancy")
        .observe(static_cast<double>(batch.size()) / cfg_.max_batch);
    mx.counter("serve.sweeps").add();
  }
}

void Server::complete_expired(PendingQuery&& p, double now_us) {
  QueryResult r;
  r.id = p.id;
  r.source = p.source;
  r.status = QueryStatus::Expired;
  r.queue_ms = (now_us - p.enqueue_us) / 1000.0;
  r.total_ms = r.queue_ms;
  expired_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("serve.expired").add();
  finish_query(std::move(p), std::move(r));
}

void Server::complete_from_cache(PendingQuery&& p, CachedResult hit,
                                 double now_us) {
  QueryResult r;
  r.id = p.id;
  r.source = p.source;
  r.status = QueryStatus::Completed;
  r.levels = std::move(hit.levels);
  r.depth = hit.depth;
  r.cache_hit = true;
  r.queue_ms = (now_us - p.enqueue_us) / 1000.0;
  r.total_ms = r.queue_ms;
  if (p.trace) {
    p.trace->event(now_us, "cache_hit", "depth=" + std::to_string(r.depth));
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  record_latency(r);
  finish_query(std::move(p), std::move(r));
}

void Server::finish_query(PendingQuery&& p, QueryResult&& r) {
  if (p.trace != nullptr) r.trace = p.trace;
  note_terminal(r);
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    inflight_.erase(p.id);
  }
  p.promise.set_value(std::move(r));
  retire_one();
}

void Server::note_terminal(QueryResult& r) {
  const bool ok = r.status == QueryStatus::Completed;
  if (slo_ != nullptr) {
    // Cache hits and expiries never touched a device lane: r.batch_size is
    // 0 exactly when no traversal ran, and an out-of-range lane attributes
    // to the scope aggregate only.
    const unsigned lane = r.batch_size > 0 ? r.gcd : cfg_.num_gcds;
    slo_->record(lane, ok, r.total_ms, obs::slo_now_ms());
  }
  const char* status = query_status_name(r.status);
  if (r.trace != nullptr) {
    traced_.fetch_add(1, std::memory_order_relaxed);
    std::string detail = "total_ms=" + fmt_double(r.total_ms);
    if (!r.engine.empty()) detail += " engine=" + r.engine;
    if (r.cache_hit) detail += " cache_hit=1";
    if (!ok && !r.error.ok()) detail += " error=" + r.error.to_string();
    r.trace->event(wall_us(), status, std::move(detail));
    obs::TraceSession& tr = obs::TraceSession::global();
    if (tr.enabled()) obs::emit_query_spans(tr, *r.trace, status);
  }
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  if (fr.enabled()) {
    fr.record("serve",
              ok ? "query_completed"
                 : r.status == QueryStatus::Expired ? "query_expired"
                                                    : "query_failed",
              r.engine, r.id, r.gcd);
    // Post-mortem dumps on the escalations worth a snapshot: a query that
    // exhausted its resilience budget, and a deadline miss.
    if (r.status == QueryStatus::Failed) fr.trigger("query_failed");
    if (r.status == QueryStatus::Expired) fr.trigger("deadline_miss");
  }
}

std::string Server::flight_context_json() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("scope", cfg_.slo_scope);
  w.kv("queue_depth", static_cast<std::uint64_t>(queue_.size()));
  w.kv("queue_capacity", static_cast<std::uint64_t>(queue_.capacity()));
  w.kv("accepted", accepted_.load(std::memory_order_relaxed));
  w.kv("retired", retired_.load(std::memory_order_relaxed));
  w.kv("graph_fp", graph_fp_.load(std::memory_order_acquire));
  w.key("breakers").begin_array();
  for (unsigned i = 0; i < cfg_.num_gcds; ++i) {
    w.value(breaker_state_name(health_.state(i)));
  }
  w.end_array();
  w.key("inflight").begin_array();
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    std::size_t emitted = 0;
    for (const QueryId id : inflight_) {
      if (++emitted > 64) break;  // cap the dump; the depth is above
      w.value(static_cast<std::uint64_t>(id));
    }
  }
  w.end_array();
  w.end_object();
  return os.str();
}

void Server::retire_one() {
  // The empty critical section orders the increment against drain()'s
  // predicate check, so the final retirement can't slip between a
  // drainer's check and its wait (lost wakeup).
  retired_.fetch_add(1, std::memory_order_release);
  { std::lock_guard<std::mutex> lk(drain_mu_); }
  drain_cv_.notify_all();
}

void Server::record_latency(const QueryResult& r) {
  latency_ms_.observe(r.total_ms);
  queue_ms_.observe(r.queue_ms);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.histogram("serve.latency_ms").observe(r.total_ms);
    mx.histogram("serve.queue_ms").observe(r.queue_ms);
    mx.counter("serve.completed").add();
    if (r.cache_hit) mx.counter("serve.cache_hits").add();
  }
}

void Server::drain() {
  if (cfg_.manual_dispatch) {
    while (retired_.load(std::memory_order_acquire) <
           accepted_.load(std::memory_order_acquire)) {
      if (dispatch_once() == 0) std::this_thread::yield();
    }
    return;
  }
  std::unique_lock<std::mutex> lk(drain_mu_);
  drain_cv_.wait(lk, [&] {
    return retired_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

void Server::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.close();
  if (scheduler_.joinable()) {
    scheduler_.join();
  } else {
    // Manual mode: retire whatever is still queued.
    while (dispatch_once() != 0) {
    }
  }
  // The context provider captures `this`; drop it before the members it
  // samples go away.
  if (flight_ctx_ != 0) {
    obs::FlightRecorder::global().unregister_context(flight_ctx_);
    flight_ctx_ = 0;
  }
  emit_summary();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.dispatch_cycles = dispatch_cycles_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.singleton_sweeps = singleton_sweeps_.load(std::memory_order_relaxed);
  s.computed_sources = computed_sources_.load(std::memory_order_relaxed);

  s.failed = failed_.load(std::memory_order_relaxed);
  s.faults_seen = faults_seen_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.validation_failures =
      validation_failures_.load(std::memory_order_relaxed);
  s.validated_results = validated_results_.load(std::memory_order_relaxed);
  s.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  s.host_fallbacks = host_fallbacks_.load(std::memory_order_relaxed);
  s.dispatch_timeouts = dispatch_timeouts_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  const HealthTracker::Counters hc = health_.counters();
  s.breaker_opens = hc.opens;
  s.breaker_half_opens = hc.half_opens;
  s.breaker_closes = hc.closes;

  s.updates_submitted = updates_submitted_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.update_edges_applied =
      update_edges_applied_.load(std::memory_order_relaxed);
  s.update_noops = update_noops_.load(std::memory_order_relaxed);
  if (store_) {
    s.graph_epoch = store_->epoch();
    s.compactions = store_->stats().compactions;
    for (const auto& gp : gcds_) {
      if (!gp->inc) continue;
      const dyn::DynEngineStats es = gp->inc->stats();
      s.repairs += es.repairs;
      s.recomputes += es.recomputes;
      s.repair_fallbacks += es.fallbacks_ratio + es.fallbacks_log;
    }
  }

  const ResultCache::Stats cs = cache_.stats();
  s.cache_evictions = cs.evictions;
  s.cache_entries = cs.entries;
  s.cache_epoch_bumps = cs.epoch_bumps;
  s.cache_purged_stale = cs.purged_stale;
  s.cache_stale_hits_avoided = cs.stale_hits_avoided;
  s.cache_hit_rate =
      s.completed == 0
          ? 0.0
          : static_cast<double>(s.cache_hits) / static_cast<double>(s.completed);

  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    s.mean_batch_occupancy = s.sweeps == 0 ? 0.0 : occupancy_sum_ / s.sweeps;
    s.mean_sources_per_sweep =
        s.sweeps == 0 ? 0.0 : sources_per_sweep_sum_ / s.sweeps;
    s.modelled_busy_ms = modelled_busy_ms_;
  }

  s.traced_queries = traced_.load(std::memory_order_relaxed);
  s.slo_proactive_degrades =
      slo_proactive_degrades_.load(std::memory_order_relaxed);
  if (slo_ != nullptr) s.slo = slo_->snapshot(obs::slo_now_ms());

  s.wall_elapsed_ms = wall_us() / 1000.0;
  s.qps = s.wall_elapsed_ms <= 0.0
              ? 0.0
              : static_cast<double>(s.completed) / (s.wall_elapsed_ms / 1000.0);

  s.latency_p50_ms = latency_ms_.percentile(0.50);
  s.latency_p95_ms = latency_ms_.percentile(0.95);
  s.latency_p99_ms = latency_ms_.percentile(0.99);
  s.latency_mean_ms = latency_ms_.mean();
  s.latency_max_ms = latency_ms_.max();
  s.queue_p50_ms = queue_ms_.percentile(0.50);
  s.queue_p99_ms = queue_ms_.percentile(0.99);
  return s;
}

void Server::emit_summary() {
  const ServerStats st = stats();
  std::string slo_gcd_burns;
  for (const obs::SloWindow& wnd : st.slo.per_gcd) {
    if (!slo_gcd_burns.empty()) slo_gcd_burns += ",";
    slo_gcd_burns += fmt_double(wnd.burn_rate);
  }

  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.gauge("serve.qps").set(st.qps);
    mx.gauge("serve.cache_hit_rate").set(st.cache_hit_rate);
    mx.gauge("serve.batch_occupancy").set(st.mean_batch_occupancy);
    mx.gauge("serve.breaker_opens").set(static_cast<double>(st.breaker_opens));
    mx.gauge("serve.retries").set(static_cast<double>(st.retries));
  }

  obs::ReportSession& rs = obs::ReportSession::global();
  if (!rs.enabled()) return;
  obs::RunRecord r;
  r.tool = "serve";
  r.algorithm = "bfs-serving";
  if (store_) {
    const dyn::Snapshot snap = store_->snapshot();
    r.n = snap.graph->num_vertices();
    r.m = snap.graph->num_edges();
  } else {
    r.n = host_g_->num_vertices();
    r.m = host_g_->num_edges();
  }
  r.source = -1;
  r.total_ms = st.wall_elapsed_ms;
  r.config = {
      {"num_gcds", std::to_string(cfg_.num_gcds)},
      {"max_batch", std::to_string(cfg_.max_batch)},
      {"queue_capacity", std::to_string(cfg_.queue_capacity)},
      {"cache_capacity", std::to_string(cfg_.cache_capacity)},
      {"batching", cfg_.batching ? "1" : "0"},
      {"submitted", std::to_string(st.submitted)},
      {"accepted", std::to_string(st.accepted)},
      {"completed", std::to_string(st.completed)},
      {"expired", std::to_string(st.expired)},
      {"rejected_full", std::to_string(st.rejected_full)},
      {"rejected_invalid", std::to_string(st.rejected_invalid)},
      {"rejected_shutdown", std::to_string(st.rejected_shutdown)},
      {"cache_hits", std::to_string(st.cache_hits)},
      {"cache_hit_rate", fmt_double(st.cache_hit_rate)},
      {"cache_evictions", std::to_string(st.cache_evictions)},
      {"sweeps", std::to_string(st.sweeps)},
      {"singleton_sweeps", std::to_string(st.singleton_sweeps)},
      {"computed_sources", std::to_string(st.computed_sources)},
      {"batch_occupancy", fmt_double(st.mean_batch_occupancy)},
      {"sources_per_sweep", fmt_double(st.mean_sources_per_sweep)},
      {"qps", fmt_double(st.qps)},
      {"p50_ms", fmt_double(st.latency_p50_ms)},
      {"p95_ms", fmt_double(st.latency_p95_ms)},
      {"p99_ms", fmt_double(st.latency_p99_ms)},
      {"mean_ms", fmt_double(st.latency_mean_ms)},
      {"max_ms", fmt_double(st.latency_max_ms)},
      {"queue_p50_ms", fmt_double(st.queue_p50_ms)},
      {"queue_p99_ms", fmt_double(st.queue_p99_ms)},
      {"modelled_busy_ms", fmt_double(st.modelled_busy_ms)},
      {"wall_elapsed_ms", fmt_double(st.wall_elapsed_ms)},
      {"failed", std::to_string(st.failed)},
      {"faults_seen", std::to_string(st.faults_seen)},
      {"retries", std::to_string(st.retries)},
      {"validation_failures", std::to_string(st.validation_failures)},
      {"validated_results", std::to_string(st.validated_results)},
      {"degraded_queries", std::to_string(st.degraded_queries)},
      {"host_fallbacks", std::to_string(st.host_fallbacks)},
      {"dispatch_timeouts", std::to_string(st.dispatch_timeouts)},
      {"rerouted", std::to_string(st.rerouted)},
      {"breaker_opens", std::to_string(st.breaker_opens)},
      {"breaker_half_opens", std::to_string(st.breaker_half_opens)},
      {"breaker_closes", std::to_string(st.breaker_closes)},
      {"max_attempts", std::to_string(cfg_.max_attempts)},
      {"host_fallback", cfg_.host_fallback ? "1" : "0"},
      {"dynamic", dynamic() ? "1" : "0"},
      {"updates_applied", std::to_string(st.updates_applied)},
      {"update_edges_applied", std::to_string(st.update_edges_applied)},
      {"update_noops", std::to_string(st.update_noops)},
      {"graph_epoch", std::to_string(st.graph_epoch)},
      {"compactions", std::to_string(st.compactions)},
      {"cache_epoch_bumps", std::to_string(st.cache_epoch_bumps)},
      {"cache_purged_stale", std::to_string(st.cache_purged_stale)},
      {"cache_stale_hits_avoided",
       std::to_string(st.cache_stale_hits_avoided)},
      {"repairs", std::to_string(st.repairs)},
      {"recomputes", std::to_string(st.recomputes)},
      {"repair_fallbacks", std::to_string(st.repair_fallbacks)},
      {"query_tracing", cfg_.query_tracing ? "1" : "0"},
      {"traced_queries", std::to_string(st.traced_queries)},
      {"slo_scope", cfg_.slo_scope},
      {"slo_active", st.slo.active ? "1" : "0"},
      {"slo_good", std::to_string(st.slo.total_good)},
      {"slo_bad", std::to_string(st.slo.total_bad)},
      {"slo_slow", std::to_string(st.slo.total_slow)},
      {"slo_budget_remaining", fmt_double(st.slo.budget_remaining)},
      {"slo_budget_exhausted", st.slo.budget_exhausted ? "1" : "0"},
      {"slo_window_burn", fmt_double(st.slo.window.burn_rate)},
      {"slo_gcd_burns", slo_gcd_burns},
      {"slo_proactive_degrades",
       std::to_string(st.slo_proactive_degrades)},
      {"flight_dumps",
       std::to_string(obs::FlightRecorder::global().dumps())},
  };
  rs.add(std::move(r));
}

}  // namespace xbfs::serve
