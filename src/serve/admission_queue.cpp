#include "serve/admission_queue.h"

#include <algorithm>
#include <chrono>

namespace xbfs::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

xbfs::Status AdmissionQueue::try_push(PendingQuery&& q) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) {
      return xbfs::Status::ShuttingDown("admission queue closed");
    }
    if (q_.size() >= capacity_) {
      return xbfs::Status::QueueFull(
          "admission queue at capacity (" + std::to_string(capacity_) + ")");
    }
    q_.push_back(std::move(q));
  }
  cv_.notify_all();
  return xbfs::Status::Ok();
}

std::size_t AdmissionQueue::pop_batch(std::vector<PendingQuery>& out,
                                      std::size_t max_items,
                                      double window_us) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
  if (window_us > 0.0 && q_.size() < max_items && !closed_) {
    // Batching window: give concurrent submitters a beat to fill the sweep.
    cv_.wait_for(lk, std::chrono::duration<double, std::micro>(window_us),
                 [&] { return closed_ || q_.size() >= max_items; });
  }
  std::size_t popped = 0;
  while (!q_.empty() && popped < max_items) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
    ++popped;
  }
  return popped;
}

std::size_t AdmissionQueue::try_pop_batch(std::vector<PendingQuery>& out,
                                          std::size_t max_items) {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t popped = 0;
  while (!q_.empty() && popped < max_items) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
    ++popped;
  }
  return popped;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return q_.size();
}

}  // namespace xbfs::serve
