#include "serve/admission_queue.h"

#include <algorithm>
#include <chrono>

#include "hipsim/chk_point.h"

namespace xbfs::serve {

AdmissionQueue::AdmissionQueue(std::size_t capacity,
                               std::array<unsigned, core::kNumAlgoKinds> weights)
    : capacity_(std::max<std::size_t>(1, capacity)), weights_(weights) {
  for (unsigned& w : weights_) w = std::max(1u, w);
}

xbfs::Status AdmissionQueue::try_push(PendingQuery&& q) {
  const std::size_t cls = static_cast<std::size_t>(q.query.algo);
  // SchedCheck yield point, deliberately *outside* the critical section
  // (chk_point discipline: a suspended task must hold no shared locks):
  // the checker interleaves producers against consumers right where the
  // admit/ full / closed decision races.
  sim::chk_point("serve.admission.push", cls);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) {
      return xbfs::Status::ShuttingDown("admission queue closed");
    }
    if (total_ >= capacity_) {
      return xbfs::Status::QueueFull(
          "admission queue at capacity (" + std::to_string(capacity_) + ")");
    }
    q_[cls].push_back(std::move(q));
    ++pushed_[cls];
    ++total_;
  }
  cv_.notify_all();
  return xbfs::Status::Ok();
}

std::size_t AdmissionQueue::drain_locked(std::vector<PendingQuery>& out,
                                         std::size_t max_items) {
  std::size_t popped = 0;
  while (total_ != 0 && popped < max_items) {
    // One turn of the wheel: each class yields up to its weight.  The
    // cursor persists across calls so a class the previous drain stopped
    // at does not get a fresh full share ahead of its peers.
    for (std::size_t i = 0; i < core::kNumAlgoKinds && popped < max_items;
         ++i) {
      const std::size_t cls = wheel_;
      std::deque<PendingQuery>& dq = q_[cls];
      for (unsigned taken = 0;
           taken < weights_[cls] && !dq.empty() && popped < max_items;
           ++taken) {
        out.push_back(std::move(dq.front()));
        dq.pop_front();
        ++popped_[cls];
        --total_;
        ++popped;
      }
      // Advance past the class unless it still holds un-yielded share (it
      // only keeps the cursor when the batch filled mid-share).
      if (dq.empty() || popped < max_items) {
        wheel_ = (wheel_ + 1) % core::kNumAlgoKinds;
      }
    }
  }
  return popped;
}

std::size_t AdmissionQueue::pop_batch(std::vector<PendingQuery>& out,
                                      std::size_t max_items,
                                      double window_us) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return closed_ || total_ != 0; });
  if (window_us > 0.0 && total_ < max_items && !closed_) {
    // Batching window: give concurrent submitters a beat to fill the sweep.
    cv_.wait_for(lk, std::chrono::duration<double, std::micro>(window_us),
                 [&] { return closed_ || total_ >= max_items; });
  }
  return drain_locked(out, max_items);
}

std::size_t AdmissionQueue::try_pop_batch(std::vector<PendingQuery>& out,
                                          std::size_t max_items) {
  sim::chk_point("serve.admission.pop", max_items);
  std::lock_guard<std::mutex> lk(mu_);
  return drain_locked(out, max_items);
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

AdmissionQueue::ClassCounters AdmissionQueue::class_counters(
    core::AlgoKind k) const {
  const std::size_t cls = static_cast<std::size_t>(k);
  std::lock_guard<std::mutex> lk(mu_);
  ClassCounters c;
  c.pushed = pushed_[cls];
  c.popped = popped_[cls];
  c.depth = q_[cls].size();
  return c;
}

}  // namespace xbfs::serve
