#include "serve/result_cache.h"

#include <algorithm>

namespace xbfs::serve {

ResultCache::ResultCache(std::size_t capacity, unsigned shards) {
  shards = std::max(1u, shards);
  if (capacity != 0) {
    // Ceil-divide so the aggregate capacity is never below the request.
    shard_capacity_ = (capacity + shards - 1) / shards;
  }
  shards_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CachedResult ResultCache::get(std::uint64_t graph_fp, core::AlgoKind algo,
                              std::uint64_t params_hash,
                              graph::vid_t source) {
  const Key k{graph_fp, params_hash, source, algo};
  Shard& s = shard_of(k);
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.map.find(k);
  if (it == s.map.end()) {
    ++s.misses;
    // Lazy reap: a miss for the live fingerprint whose prior-epoch twin is
    // still resident means a fingerprint-less cache would have returned
    // that stale entry.  Drop it and count the avoided stale hit.
    if (primed_.load(std::memory_order_acquire) &&
        graph_fp == current_fp_.load(std::memory_order_relaxed)) {
      const std::uint64_t prev = prev_fp_.load(std::memory_order_relaxed);
      if (prev != graph_fp) {
        const Key stale{prev, params_hash, source, algo};
        Shard& ss = shard_of(stale);
        // Same shard ⇒ the lock is already held; reap inline.
        auto reap = [&](Shard& sh) {
          if (const auto sit = sh.map.find(stale); sit != sh.map.end()) {
            sh.lru.erase(sit->second);
            sh.map.erase(sit);
            stale_hits_avoided_.fetch_add(1, std::memory_order_relaxed);
          }
        };
        if (&ss == &s) {
          reap(s);
        } else {
          std::lock_guard<std::mutex> slk(ss.mu);
          reap(ss);
        }
      }
    }
    return {};
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // bump to MRU
  return it->second->second;
}

void ResultCache::put(std::uint64_t graph_fp, core::AlgoKind algo,
                      std::uint64_t params_hash, graph::vid_t source,
                      CachedResult v) {
  if (!enabled() || !v) return;
  const Key k{graph_fp, params_hash, source, algo};
  Shard& s = shard_of(k);
  std::lock_guard<std::mutex> lk(s.mu);
  if (const auto it = s.map.find(k); it != s.map.end()) {
    it->second->second = std::move(v);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= shard_capacity_) {
    s.map.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.emplace_front(k, std::move(v));
  s.map[k] = s.lru.begin();
  ++s.inserts;
}

void ResultCache::prime(std::uint64_t graph_fp) {
  current_fp_.store(graph_fp, std::memory_order_relaxed);
  prev_fp_.store(graph_fp, std::memory_order_relaxed);
  primed_.store(true, std::memory_order_release);
}

std::size_t ResultCache::epoch_bump(std::uint64_t new_fp) {
  prev_fp_.store(current_fp_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  current_fp_.store(new_fp, std::memory_order_relaxed);
  primed_.store(true, std::memory_order_release);
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  std::size_t purged = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    for (auto it = sp->lru.begin(); it != sp->lru.end();) {
      if (it->first.fp != new_fp) {
        sp->map.erase(it->first);
        it = sp->lru.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
  }
  purged_stale_.fetch_add(purged, std::memory_order_relaxed);
  return purged;
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    out.hits += sp->hits;
    out.misses += sp->misses;
    out.evictions += sp->evictions;
    out.inserts += sp->inserts;
    out.entries += sp->lru.size();
  }
  out.epoch_bumps = epoch_bumps_.load(std::memory_order_relaxed);
  out.purged_stale = purged_stale_.load(std::memory_order_relaxed);
  out.stale_hits_avoided =
      stale_hits_avoided_.load(std::memory_order_relaxed);
  return out;
}

std::size_t ResultCache::size() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    n += sp->lru.size();
  }
  return n;
}

void ResultCache::clear() {
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    sp->lru.clear();
    sp->map.clear();
  }
}

}  // namespace xbfs::serve
