#include "serve/result_cache.h"

#include <algorithm>

namespace xbfs::serve {

ResultCache::ResultCache(std::size_t capacity, unsigned shards) {
  shards = std::max(1u, shards);
  if (capacity != 0) {
    // Ceil-divide so the aggregate capacity is never below the request.
    shard_capacity_ = (capacity + shards - 1) / shards;
  }
  shards_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CachedResult ResultCache::get(std::uint64_t graph_fp, graph::vid_t source) {
  const Key k{graph_fp, source};
  Shard& s = shard_of(k);
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.map.find(k);
  if (it == s.map.end()) {
    ++s.misses;
    return {};
  }
  ++s.hits;
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // bump to MRU
  return it->second->second;
}

void ResultCache::put(std::uint64_t graph_fp, graph::vid_t source,
                      CachedResult v) {
  if (!enabled() || !v) return;
  const Key k{graph_fp, source};
  Shard& s = shard_of(k);
  std::lock_guard<std::mutex> lk(s.mu);
  if (const auto it = s.map.find(k); it != s.map.end()) {
    it->second->second = std::move(v);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= shard_capacity_) {
    s.map.erase(s.lru.back().first);
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.emplace_front(k, std::move(v));
  s.map[k] = s.lru.begin();
  ++s.inserts;
}

ResultCache::Stats ResultCache::stats() const {
  Stats out;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    out.hits += sp->hits;
    out.misses += sp->misses;
    out.evictions += sp->evictions;
    out.inserts += sp->inserts;
    out.entries += sp->lru.size();
  }
  return out;
}

std::size_t ResultCache::size() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    n += sp->lru.size();
  }
  return n;
}

void ResultCache::clear() {
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    sp->lru.clear();
    sp->map.clear();
  }
}

}  // namespace xbfs::serve
