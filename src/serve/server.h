// The query-serving engine: turns the offline XBFS reproduction into a
// traffic-handling system for the whole algorithm family.
//
//   clients --submit()--> AdmissionQueue --(scheduler thread)--> batches
//                              |  (QoS-classed, weighted drain)      |
//                        backpressure                    sim::ThreadPool, one
//                       (reject w/ reason)               simulated GCD/worker
//                                                                   |
//                  ResultCache <--publish-- multi_source_bfs (<=64-way sweep),
//                       |                   per-kind AlgorithmEngine ladders
//                  hits resolve             (core::EngineRegistry)
//                  at submit()
//
// One server admits core::AlgoQuery of every kind listed in
// ServeConfig::algos.  BFS keeps its historical fast path — dedup by
// source, neighborhood grouping, the 64-way bit-parallel sweep.  Every
// other kind dispatches as its own unit, deduplicated by
// (algo, params-hash, source): concurrent identical SSSP queries share one
// delta-stepping run exactly like repeated BFS sources share a sweep, and
// whole-graph kinds (CC, k-core, SCC) dedup per graph.  Each kind resolves
// through its own degradation ladder built from the EngineRegistry
// (device rungs in rung order, then the registered host oracle as the
// fault-immune terminal rung), so the resilience machinery — retries,
// breakers, validation, SLO-aware degrades — is shared by all kinds.
//
// The scheduler drains the queue weighted round-robin across QoS classes
// (one class per algorithm kind; ServeConfig::qos_weights), expires
// queries past their deadline (reported through their futures, never
// dropped), and dispatches units across the GCD worker pool.  Every
// query's end-to-end latency feeds both the aggregate and a per-kind
// p50/p95/p99 histogram; shutdown() emits one summary record with
// per-kind completed/p99/QPS columns into XBFS_RUN_REPORT.
//
// Served payloads are bit-identical to a fresh engine run: every
// registered engine of a kind is conformant with its host oracle (the
// cross-engine conformance suite enforces it), and cache hits alias the
// very vectors a cold run produced.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/algorithm_engine.h"
#include "core/engine_registry.h"
#include "core/xbfs.h"
#include "dyn/graph_store.h"
#include "graph/device_csr.h"
#include "hipsim/lock_rank.h"
#include "hipsim/thread_pool.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/admission_queue.h"
#include "serve/health.h"
#include "serve/query.h"
#include "serve/result_cache.h"

namespace xbfs::dyn {
class HostDeltaBfs;
class IncrementalBfs;
class IncrementalCc;
}  // namespace xbfs::dyn

namespace xbfs::serve {

/// When the serving engine re-validates computed payloads (per-kind host
/// validators: Graph500 level rules for BFS, relaxed-edge/partition/peeling
/// checks for SSSP/CC/k-core) before delivering/caching them.
enum class ValidateResults {
  Auto,    ///< validate iff fault injection is active (sim::FaultInjector)
  Always,
  Never,
};

struct ServeConfig {
  /// Admission-queue capacity; submissions beyond it are rejected with
  /// StatusCode::QueueFull (backpressure).
  std::size_t queue_capacity = 4096;
  /// Simulated GCDs served concurrently (one worker thread drives each).
  unsigned num_gcds = 1;
  /// Simulator worker threads inside each GCD (1 = deterministic profile
  /// mode; serving parallelism comes from num_gcds).
  unsigned device_workers = 1;
  /// Sources per bit-parallel sweep; clamped to [1, 64].
  unsigned max_batch = 64;
  /// Cost-aware dispatch: batches narrower than this run as per-source
  /// adaptive core::Xbfs traversals (spread across the GCD lanes) instead
  /// of one bit-parallel sweep.  The sweep pays a large fixed cost — it
  /// scans the full vertex set every level with none of XBFS's adaptive
  /// strategies — so it only beats per-source runs once enough searches
  /// share it (measured crossover ~16 on scale-18 RMAT).  1 = always
  /// sweep.
  unsigned min_sweep_sources = 16;
  /// Result-cache entries across all shards; 0 disables caching.
  std::size_t cache_capacity = 4096;
  unsigned cache_shards = 8;
  /// Deadline applied to queries that don't set their own (ms from
  /// enqueue); non-positive = none.  (A default of exactly 0 historically
  /// expired every inheriting query at dispatch; resolve_deadline_us is
  /// the fixed shared implementation.)
  double default_timeout_ms = -1.0;
  /// How long the scheduler waits for the backlog to fill a full cycle
  /// before dispatching what is there (0 = dispatch immediately).
  double batch_window_ms = 1.0;
  /// false = naive mode: one core::Xbfs::run per query, no sharing (the
  /// serving bench's baseline).  BFS only; other kinds always dispatch as
  /// deduplicated per-unit runs.
  bool batching = true;
  /// Order each cycle's distinct BFS sources with algos::group_sources.
  bool group_by_neighborhood = true;
  /// Tests: no scheduler thread; call dispatch_once() explicitly.
  bool manual_dispatch = false;
  /// Per-launch profiler rows on the worker devices (off: a long-running
  /// server would grow the row list without bound).
  bool device_profiling = false;
  /// Per-worker traversal configuration.  report_runs is forced off — the
  /// server emits one summary record instead of one record per query.
  core::XbfsConfig xbfs;
  sim::DeviceProfile profile = sim::DeviceProfile::mi250x_gcd();

  // --- algorithm family ----------------------------------------------------
  /// Kinds this server builds engine ladders for; queries of any other
  /// kind are rejected Invalid at submit.  Static servers may list any
  /// registered kind; dynamic servers support Bfs (incremental repair) and
  /// Cc (incremental union-find) — the constructor throws on others.
  std::vector<core::AlgoKind> algos = {core::AlgoKind::Bfs};
  /// QoS drain weights, indexed by AlgoKind: class k is offered up to
  /// qos_weights[k] queue slots per turn of the scheduler's round-robin
  /// wheel.  0 entries mean weight 1 (fair share).
  std::array<unsigned, core::kNumAlgoKinds> qos_weights{};

  // --- resilience ----------------------------------------------------------
  /// Device attempts per dispatch unit (sweep or per-source run) before
  /// degrading down the engine ladder / to the host.  1 = no retry.
  unsigned max_attempts = 3;
  /// Exponential backoff between retries: base * 2^(attempt-1), capped.
  double retry_backoff_ms = 0.2;
  double retry_backoff_max_ms = 5.0;
  /// Straggler budget per dispatch (wall ms): a device that exceeds it is
  /// reported to the health tracker so later work routes around it;
  /// negative = none.
  double dispatch_timeout_ms = -1.0;
  /// Consecutive failures that open a GCD's circuit breaker, and how long
  /// the breaker rejects work before probing (serve/health.h).
  unsigned breaker_failure_threshold = 3;
  double breaker_cooldown_ms = 25.0;
  /// Result validation on the serving path (corruption detector).
  ValidateResults validate_results = ValidateResults::Auto;
  /// Terminal ladder rung: serve from the registered host engine when
  /// every device attempt failed.  false = such queries resolve as Failed.
  bool host_fallback = true;

  // --- durability (dynamic servers; docs/durability.md) --------------------
  /// Require the GraphStore to carry a durability hook (store::open_durable
  /// / store::recover_store): the constructor throws std::invalid_argument
  /// for a dynamic server whose store has no WAL behind it, so a deployment
  /// that promises durability cannot silently serve from a volatile store.
  /// Ignored (must stay false) for static servers.
  bool require_durability = false;

  // --- observability --------------------------------------------------------
  /// Allocate a QueryTrace per admitted query: the causal event record
  /// plus per-rung kernel-counter attribution returned on QueryResult.
  bool query_tracing = true;
  /// SLO scope this server records outcomes into (obs::SloEngine; active
  /// only when XBFS_SLO / configure() enabled the engine).  Distinct
  /// servers may share a scope name to aggregate, or use their own.  Each
  /// served kind additionally records into "<slo_scope>:<kind>" so
  /// per-algorithm objectives can be set independently.
  std::string slo_scope = "serve";

  /// Reject nonsense configurations (counts >= 1, batch widths within the
  /// 64-bit sweep mask, non-negative windows/backoffs, non-empty
  /// duplicate-free algos, xbfs.validate()).  Checked by the Server
  /// constructor, which throws std::invalid_argument.
  xbfs::Status validate() const;
};

/// Per-algorithm-kind serving counters + latency snapshot; zero for kinds
/// the server does not serve.
struct AlgoClassStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t queued = 0;       ///< currently in the admission queue
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double qps = 0.0;               ///< completed / server wall elapsed
};

/// Monotonic counters + latency snapshot; see docs/serving.md for the
/// glossary.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;   ///< entered the queue or hit the cache
  std::uint64_t completed = 0;  ///< futures resolved with a payload
  std::uint64_t expired = 0;    ///< futures resolved past-deadline
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;

  std::uint64_t cache_hits = 0;    ///< queries served from cache
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  double cache_hit_rate = 0.0;     ///< cache_hits / completed

  std::uint64_t dispatch_cycles = 0;
  std::uint64_t sweeps = 0;            ///< BFS multi-source + singleton dispatches
  std::uint64_t singleton_sweeps = 0;  ///< served by the core::Xbfs fallback
  std::uint64_t algo_dispatches = 0;   ///< non-BFS dispatch units resolved
  std::uint64_t computed_sources = 0;  ///< distinct units actually run
  double mean_sources_per_sweep = 0.0;
  double mean_batch_occupancy = 0.0;   ///< mean(batch size / max_batch)

  /// Per-kind submitted/completed/cache-hit counts and latency
  /// percentiles, indexed by AlgoKind.
  std::array<AlgoClassStats, core::kNumAlgoKinds> per_algo{};

  // --- resilience ----------------------------------------------------------
  std::uint64_t failed = 0;               ///< futures resolved Failed
  std::uint64_t faults_seen = 0;          ///< injected faults caught
  std::uint64_t retries = 0;              ///< re-dispatches after a failure
  std::uint64_t validation_failures = 0;  ///< results rejected by validation
  std::uint64_t validated_results = 0;    ///< results that passed validation
  std::uint64_t degraded_queries = 0;     ///< served below the preferred rung
  std::uint64_t host_fallbacks = 0;       ///< units served by the host rung
  std::uint64_t dispatch_timeouts = 0;    ///< straggler budget exceeded
  std::uint64_t rerouted = 0;             ///< attempts on a non-home GCD
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;

  // --- dynamic graph (all zero on a static server; docs/dynamic.md) --------
  std::uint64_t updates_submitted = 0;
  std::uint64_t updates_applied = 0;       ///< batches through the store
  std::uint64_t updates_expired = 0;       ///< update deadline passed pre-apply
  std::uint64_t update_edges_applied = 0;  ///< undirected insert+delete ops
  std::uint64_t update_noops = 0;          ///< ops the graph already satisfied
  std::uint64_t graph_epoch = 0;           ///< store epoch at stats() time
  std::uint64_t compactions = 0;           ///< delta-CSR overlay folds
  std::uint64_t cache_epoch_bumps = 0;     ///< per-epoch cache purges run
  std::uint64_t cache_purged_stale = 0;    ///< entries swept by those purges
  std::uint64_t cache_stale_hits_avoided = 0;
  std::uint64_t repairs = 0;               ///< runs served by incremental repair
  std::uint64_t recomputes = 0;            ///< full recomputes (incl. fallbacks)
  std::uint64_t repair_fallbacks = 0;      ///< ratio-bound + log-gap fallbacks

  // --- durability (zero unless the store carries a WAL; docs/durability.md)
  bool durable = false;                    ///< store has a durability hook
  std::uint64_t wal_appends = 0;           ///< records made durable
  std::uint64_t wal_append_failures = 0;   ///< torn/short writes (update rejected)
  std::uint64_t wal_fsync_failures = 0;    ///< syncs that failed (update rejected)
  std::uint64_t wal_bytes = 0;             ///< current WAL segment size
  std::uint64_t snapshots_spilled = 0;     ///< compacted bases written to disk
  std::uint64_t wal_rotations = 0;         ///< segment switches after a spill
  std::uint64_t last_durable_epoch = 0;    ///< newest fsync'd epoch
  std::uint64_t updates_rejected_durability = 0;  ///< batches refused pre-publish
  bool recovered = false;                  ///< this store came from recovery
  bool recovery_torn_tail = false;         ///< CRC cut a partial tail record
  std::uint64_t recovered_epoch = 0;       ///< epoch proven at startup
  std::uint64_t recovery_replayed = 0;     ///< WAL records replayed at startup
  std::uint64_t recovery_truncated_bytes = 0;  ///< torn-tail bytes discarded
  std::uint64_t recovery_stale_rejected = 0;   ///< result_still_valid refusals

  // --- observability --------------------------------------------------------
  std::uint64_t traced_queries = 0;         ///< terminals carrying a trace
  std::uint64_t slo_proactive_degrades = 0; ///< queries started below rung 0
  obs::SloSnapshot slo;                     ///< this server's scope; inactive
                                            ///< when the SLO engine is off

  double wall_elapsed_ms = 0.0;
  double qps = 0.0;                 ///< completed / wall_elapsed
  double modelled_busy_ms = 0.0;    ///< summed modelled device time

  double latency_p50_ms = 0.0;      ///< enqueue -> complete
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_max_ms = 0.0;
  double queue_p50_ms = 0.0;        ///< enqueue -> dispatch
  double queue_p99_ms = 0.0;
};

/// Options for the update-admission lane (Server::submit_update).
struct UpdateOptions {
  /// Deadline budget from submission, in wall milliseconds: if the batch
  /// is still waiting on the (serialized) write lane past it, the update
  /// is rejected DeadlineExceeded without being applied.  Non-positive =
  /// no deadline (the lane default; the query-side default_timeout_ms is
  /// deliberately not inherited — dropping a write because reads are slow
  /// is never what a caller means).
  double timeout_ms = 0.0;
};

/// Outcome of submit_update(): whether the batch was applied, the epoch and
/// fingerprint the graph moved to, per-op apply accounting, and how many
/// cache entries the epoch bump purged.
struct UpdateAdmission {
  bool accepted = false;
  xbfs::Status status;
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;
  dyn::ApplyStats applied;
  std::size_t cache_purged = 0;
  /// Write-lane trace (submit -> apply -> epoch bump -> cache purge); null
  /// when ServeConfig::query_tracing is off or the batch was rejected.
  obs::QueryTracePtr trace;
};

class Server {
 public:
  /// Static serving: `g` must outlive the server (it backs group_sources
  /// ordering, the per-GCD device uploads, and the host oracles).
  /// submit_update() rejects.
  explicit Server(const graph::Csr& g, ServeConfig cfg = {});
  /// Dynamic serving over a mutable graph store: BFS queries run on
  /// dyn::IncrementalBfs engines (and CC on dyn::IncrementalCc) against
  /// refcounted snapshots, updates enter through submit_update().  The
  /// store must outlive the server.  Batched sweeps and neighborhood
  /// grouping need the static CSR, so dynamic dispatch is always per-unit.
  explicit Server(dyn::GraphStore& store, ServeConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one typed query.  Cache hits resolve immediately; otherwise the
  /// query enters the admission queue, or is rejected with a reason when
  /// the queue is full / the server is shutting down / the source is
  /// invalid / the kind is not in ServeConfig::algos.  Sources and params
  /// irrelevant to the kind are normalized (whole-graph kinds to source 0,
  /// parameterless kinds to default params) so equivalent queries dedup
  /// and share cache entries.
  Admission submit(core::AlgoQuery q, QueryOptions opt = {});
  /// BFS shorthand — the pre-redesign signature.
  Admission submit(graph::vid_t source, QueryOptions opt = {});

  /// The update-admission lane (dynamic servers only): apply one edge batch
  /// to the graph store, advance the serving fingerprint, and purge cache
  /// entries keyed under retired epochs.  Writes are serialized per graph;
  /// readers are never blocked — in-flight queries finish on the snapshot
  /// they started with.  Rejected with InvalidArgument on a static server,
  /// ShuttingDown after shutdown() began, and DeadlineExceeded when
  /// opt.timeout_ms elapsed before the lane could apply the batch.
  UpdateAdmission submit_update(const dyn::EdgeBatch& batch,
                                UpdateOptions opt = {});

  bool dynamic() const { return store_ != nullptr; }
  /// Whether queries of kind `k` are admitted (k is in ServeConfig::algos).
  bool serves(core::AlgoKind k) const {
    return enabled_[static_cast<std::size_t>(k)];
  }

  /// One scheduler cycle over whatever is pending right now (manual mode,
  /// but safe in threaded mode too for tests that want to force progress).
  /// Returns the number of queries retired this cycle.
  std::size_t dispatch_once();

  /// Block until every accepted query has been retired.
  void drain();

  /// Stop accepting, finish pending work, stop the scheduler, and emit the
  /// summary run-report record + final metrics.  Idempotent; the
  /// destructor calls it.
  void shutdown();

  ServerStats stats() const;
  const ServeConfig& config() const { return cfg_; }
  /// The fingerprint queries are currently cached under; moves with every
  /// applied update batch on a dynamic server.
  std::uint64_t graph_fingerprint() const {
    return graph_fp_.load(std::memory_order_acquire);
  }
  /// Content-addressed result validity: true iff `fingerprint` is the state
  /// this server currently serves.  After crash recovery this is the proof
  /// obligation for results handed out before the crash — epochs lost to a
  /// torn WAL tail can never reproduce the recovered fingerprint, so a
  /// stale cached result is refused here rather than served.  Refusals are
  /// counted in ServerStats::recovery_stale_rejected.
  bool result_still_valid(std::uint64_t fingerprint) const;
  const ResultCache& cache() const { return cache_; }

 private:
  struct Gcd {
    std::unique_ptr<sim::Device> dev;
    graph::DeviceCsr dg;  ///< static servers only (dynamic mirrors DeltaCsr)
    /// Per-kind degradation ladders, fastest rung first, built from the
    /// EngineRegistry (static servers) or the incremental engines
    /// (dynamic: Bfs -> IncrementalBfs, Cc -> IncrementalCc).  Empty for
    /// kinds outside ServeConfig::algos.
    std::array<std::vector<std::unique_ptr<core::AlgorithmEngine>>,
               core::kNumAlgoKinds>
        ladders;
    /// Non-owning views of the dynamic incremental engines (for stats()
    /// and served-snapshot reads); null on static servers.
    dyn::IncrementalBfs* inc = nullptr;
    dyn::IncrementalCc* inc_cc = nullptr;
    /// With rerouting, lanes other than this GCD's home lane may dispatch
    /// here; the device's modelled clocks are not thread-safe.  Ranked
    /// (serve.gcd=40): taken inside the cycle lock, outside the device's
    /// pool lock (docs/modelcheck.md lock ranks).
    sim::RankedMutex mu{40, "serve.gcd"};
  };

  /// Dedup/delivery key of one dispatch unit: all queued queries agreeing
  /// on it share one engine run (for BFS, all with one source share a
  /// sweep lane; whole-graph kinds collapse to source 0).
  struct DispatchKey {
    core::AlgoKind algo = core::AlgoKind::Bfs;
    std::uint64_t phash = 0;
    graph::vid_t source = 0;
    bool operator==(const DispatchKey& o) const {
      return algo == o.algo && phash == o.phash && source == o.source;
    }
  };
  struct DispatchKeyHash {
    std::size_t operator()(const DispatchKey& k) const {
      std::uint64_t h = k.phash ^ (static_cast<std::uint64_t>(k.source) *
                                   0x9E3779B97F4A7C15ull);
      h ^= static_cast<std::uint64_t>(k.algo) + (h << 6) + (h >> 2);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<std::size_t>(h);
    }
  };
  using QueryMap =
      std::unordered_map<DispatchKey, std::vector<PendingQuery>,
                         DispatchKeyHash>;

  /// Outcome of resolving one dispatch unit through the resilience ladder.
  struct Resolution {
    CachedResult res;           ///< falsy payload = failed
    xbfs::Status status;        ///< terminal failure when res is falsy
    std::string engine;         ///< engine (or "sweep") that produced res
    unsigned attempts = 0;
    unsigned gcd = 0;
    bool degraded = false;
    bool validated = false;
    double modelled_ms = 0.0;   ///< modelled device time consumed (0 = host)
    /// Per-resolution scratch trace: attempt events + rung attribution,
    /// absorbed into every waiter's QueryTrace at delivery.  Null when
    /// query_tracing is off.
    obs::QueryTracePtr log;
    /// Fingerprint of the exact graph that produced res (cache key).  On a
    /// dynamic server this is the engine's served snapshot, which may trail
    /// graph_fp_ if an update landed mid-flight — caching under it keeps
    /// the entry unreachable rather than wrong.
    std::uint64_t fp = 0;
  };

  /// Common constructor body behind the two public constructors; exactly
  /// one of g / store is non-null.
  Server(const graph::Csr* g, dyn::GraphStore* store, ServeConfig cfg);

  double wall_us() const;
  bool validation_active() const;
  void scheduler_loop();
  std::size_t process_cycle(std::vector<PendingQuery>& pending);
  /// BFS dispatch unit: the (possibly 64-way-swept) batch of sources.
  void run_batch(unsigned worker, const std::vector<graph::vid_t>& batch,
                 QueryMap& by_key, double dispatch_us);
  /// Non-BFS dispatch unit: one deduplicated (algo, params, source) run.
  void run_algo(unsigned worker, const DispatchKey& key, QueryMap& by_key,
                double dispatch_us);
  /// One device attempt bookkeeping: fault/validation counters, health
  /// report, trace instant, flight-recorder event (`primary` tags it with
  /// the query/trace id when known).  Returns the recorded Status.
  xbfs::Status note_attempt_failure(unsigned gcd, const xbfs::Status& why,
                                    QueryId primary = 0);
  /// Straggler check: report + penalize when the dispatch ran past budget.
  /// Returns true when a failure was recorded — the caller must then skip
  /// its record_success, which would reset the breaker's failure streak
  /// and erase the penalty.
  bool note_dispatch_time(unsigned gcd, double dispatch_us);
  /// Resolve one query through its kind's per-GCD engine ladder, then the
  /// host fallback.  `attempts_so_far` carries sweep attempts already
  /// burned (reporting only; the ladder gets its own max_attempts budget).
  Resolution resolve_query(unsigned preferred, const core::AlgoQuery& q,
                           unsigned attempts_so_far, double dispatch_us,
                           QueryId primary);
  /// Per-kind host validation of a computed payload: empty string = valid
  /// (or no validator exists for the kind — see payload_validatable).
  std::string validate_payload(const core::AlgoQuery& q,
                               const CachedResult& res,
                               const dyn::Snapshot& snap) const;
  bool payload_validatable(core::AlgoKind k) const;
  void deliver_unit(const DispatchKey& key, const Resolution& r,
                    QueryMap& by_key, double dispatch_us,
                    unsigned batch_size, const obs::QueryTrace* batch_log);
  void backoff(unsigned attempt);
  void complete_expired(PendingQuery&& p, double now_us);
  void complete_from_cache(PendingQuery&& p, CachedResult hit, double now_us);
  void finish_query(PendingQuery&& p, QueryResult&& r);
  void retire_one();
  void record_latency(const QueryResult& r);
  /// Terminal bookkeeping common to every resolution path: SLO outcome
  /// (aggregate + per-kind scope), trace terminal event + Chrome-trace
  /// emission, flight-recorder event (and dump trigger on Failed /
  /// Expired terminals).
  void note_terminal(QueryResult& r);
  /// Live-state JSON fragment sampled by the flight recorder at dump time
  /// (queue depth, breaker states, in-flight trace ids).
  std::string flight_context_json() const;
  void emit_summary();

  /// Exactly one of host_g_ / store_ is set (static vs dynamic serving).
  const graph::Csr* host_g_ = nullptr;
  dyn::GraphStore* store_ = nullptr;
  graph::vid_t n_vertices_ = 0;
  ServeConfig cfg_;
  /// enabled_[k] <=> AlgoKind k is in cfg_.algos.
  std::array<bool, core::kNumAlgoKinds> enabled_{};
  /// The BFS dedup/cache phash (default AlgoParams, computed once).
  std::uint64_t bfs_phash_ = 0;
  std::atomic<std::uint64_t> graph_fp_{0};

  AdmissionQueue queue_;
  ResultCache cache_;
  std::vector<std::unique_ptr<Gcd>> gcds_;
  std::unique_ptr<sim::ThreadPool> pool_;  ///< one lane per GCD
  HealthTracker health_;
  /// Terminal rungs, one per kind: host engines from the registry (static)
  /// or dyn::HostDeltaBfs (dynamic BFS), immune to simulated-device
  /// faults.  Null for kinds without a registered host engine.
  std::array<std::unique_ptr<core::AlgorithmEngine>, core::kNumAlgoKinds>
      host_engines_;
  /// Non-owning view of host_engines_[Bfs] on a dynamic server (run_on
  /// pins the validated snapshot); null on static servers.
  dyn::HostDeltaBfs* host_dyn_ = nullptr;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<QueryId> next_id_{0};

  // Monotonic counters (relaxed; exact totals are read under drain_mu_).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> retired_{0};  ///< completed + expired
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> dispatch_cycles_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> singleton_sweeps_{0};
  std::atomic<std::uint64_t> algo_dispatches_{0};
  std::atomic<std::uint64_t> computed_sources_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> faults_seen_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> validation_failures_{0};
  std::atomic<std::uint64_t> validated_results_{0};
  std::atomic<std::uint64_t> degraded_queries_{0};
  std::atomic<std::uint64_t> host_fallbacks_{0};
  std::atomic<std::uint64_t> dispatch_timeouts_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> updates_submitted_{0};
  std::atomic<std::uint64_t> updates_applied_{0};
  std::atomic<std::uint64_t> updates_expired_{0};
  std::atomic<std::uint64_t> update_edges_applied_{0};
  std::atomic<std::uint64_t> update_noops_{0};
  std::atomic<std::uint64_t> updates_rejected_durability_{0};
  /// result_still_valid() refusals; mutable because validity checks are
  /// logically const reads of the serving fingerprint.
  mutable std::atomic<std::uint64_t> recovery_stale_rejected_{0};
  std::atomic<std::uint64_t> traced_{0};
  std::atomic<std::uint64_t> slo_proactive_degrades_{0};
  // Per-kind counters, indexed by AlgoKind.
  std::array<std::atomic<std::uint64_t>, core::kNumAlgoKinds>
      submitted_by_algo_{};
  std::array<std::atomic<std::uint64_t>, core::kNumAlgoKinds>
      completed_by_algo_{};
  std::array<std::atomic<std::uint64_t>, core::kNumAlgoKinds>
      cache_hits_by_algo_{};

  /// This server's SLO scope (stable SloEngine reference); null when the
  /// engine is disabled at construction.
  obs::SloScope* slo_ = nullptr;
  /// Per-kind SLO scopes ("<slo_scope>:<kind>"), registered for served
  /// kinds only; null elsewhere.
  std::array<obs::SloScope*, core::kNumAlgoKinds> slo_by_algo_{};
  /// Flight-recorder context-provider token (0 = none registered).
  std::uint64_t flight_ctx_ = 0;
  /// Queries admitted to the queue and not yet terminal, for the flight
  /// recorder's dump context.
  mutable sim::RankedMutex inflight_mu_{64, "serve.inflight"};
  std::unordered_set<QueryId> inflight_;

  /// Writes serialized per graph (update lane); taken before the store's
  /// writer/publish locks (ranks 30/32).
  sim::RankedMutex update_mu_{12, "serve.update"};

  /// One dispatch cycle at a time (pool_ is shared).  The outermost lock
  /// of the serving stack: everything else nests inside a cycle.
  sim::RankedMutex cycle_mu_{10, "serve.cycle"};

  /// Guards the non-atomic aggregates below.
  mutable sim::RankedMutex agg_mu_{60, "serve.agg"};
  double occupancy_sum_ = 0.0;
  double sources_per_sweep_sum_ = 0.0;
  double modelled_busy_ms_ = 0.0;

  obs::Histogram latency_ms_;  ///< enqueue -> complete
  obs::Histogram queue_ms_;    ///< enqueue -> dispatch
  /// Per-kind enqueue -> complete latency (indexed by AlgoKind).
  std::array<obs::Histogram, core::kNumAlgoKinds> latency_by_algo_;

  mutable sim::RankedMutex drain_mu_{68, "serve.drain"};
  std::condition_variable_any drain_cv_;

  std::thread scheduler_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace xbfs::serve
