#include "serve/workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "hipsim/thread_pool.h"

namespace xbfs::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t& state) {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::size_t n, double s, std::uint64_t seed)
    : state_(seed ^ 0xD1B54A32D192ED03ull) {
  n = std::max<std::size_t>(1, n);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfGenerator::next() {
  const double u = uniform01(state_);
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1
                                                   : it - cdf_.begin());
}

std::vector<graph::vid_t> zipf_sources(
    const std::vector<graph::vid_t>& candidates, std::size_t count, double s,
    std::uint64_t seed) {
  std::vector<graph::vid_t> out;
  if (candidates.empty()) return out;
  out.reserve(count);
  ZipfGenerator zipf(candidates.size(), s, seed);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(candidates[zipf.next()]);
  }
  return out;
}

LoadReport run_closed_loop(Server& server,
                           const std::vector<graph::vid_t>& sources,
                           const LoadOptions& opt) {
  LoadReport rep;
  if (sources.empty()) return rep;

  std::atomic<std::uint64_t> accepted{0}, rejected{0}, completed{0},
      expired{0};
  QueryOptions qopt;
  qopt.timeout_ms = opt.timeout_ms;

  const auto t0 = std::chrono::steady_clock::now();
  {
    sim::ThreadPool clients(std::max(1u, opt.clients));
    clients.parallel_for(sources.size(), [&](unsigned, std::uint64_t i) {
      Admission a = server.submit(sources[i], qopt);
      if (!a.accepted) {
        rejected.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      accepted.fetch_add(1, std::memory_order_relaxed);
      const QueryResult r = a.result.get();
      if (r.status == QueryStatus::Expired) {
        expired.fetch_add(1, std::memory_order_relaxed);
      } else {
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const auto t1 = std::chrono::steady_clock::now();

  rep.attempted = sources.size();
  rep.accepted = accepted.load();
  rep.rejected = rejected.load();
  rep.completed = completed.load();
  rep.expired = expired.load();
  rep.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  rep.qps = rep.wall_ms <= 0.0 ? 0.0 : rep.completed / (rep.wall_ms / 1000.0);
  return rep;
}

LoadReport run_open_loop(Server& server,
                         const std::vector<graph::vid_t>& sources,
                         const LoadOptions& opt) {
  LoadReport rep;
  if (sources.empty()) return rep;

  QueryOptions qopt;
  qopt.timeout_ms = opt.timeout_ms;
  const double gap_us =
      opt.arrival_qps > 0.0 ? 1.0e6 / opt.arrival_qps : 0.0;

  std::vector<std::future<QueryResult>> inflight;
  inflight.reserve(sources.size());

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (gap_us > 0.0) {
      // Pace against the schedule, not the previous submit, so a slow
      // submit doesn't shift every later arrival.
      const auto due =
          t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::micro>(gap_us * i));
      std::this_thread::sleep_until(due);
    }
    Admission a = server.submit(sources[i], qopt);
    if (a.accepted) {
      inflight.push_back(std::move(a.result));
    } else {
      ++rep.rejected;
    }
  }
  rep.accepted = inflight.size();
  for (std::future<QueryResult>& f : inflight) {
    const QueryResult r = f.get();
    if (r.status == QueryStatus::Expired) {
      ++rep.expired;
    } else {
      ++rep.completed;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  rep.attempted = sources.size();
  rep.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  rep.qps = rep.wall_ms <= 0.0 ? 0.0 : rep.completed / (rep.wall_ms / 1000.0);
  return rep;
}

}  // namespace xbfs::serve
