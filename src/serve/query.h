// Query-serving vocabulary types: what a client submits, what it gets
// back, and why a submission may be turned away at the door.
//
// A query is one algorithm request against the loaded graph — "BFS levels
// from source s" historically, and since the AlgorithmEngine redesign any
// core::AlgoQuery (SSSP distances, component labels, k-core membership,
// ...).  Admission is synchronous — submit() either hands back a future for
// the result or rejects with a reason (backpressure, shutdown, bad source,
// unserved algorithm).  Accepted queries always resolve: completed, or
// expired past their deadline (expired queries are *reported* through the
// same future and the serving counters, never dropped silently).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm_engine.h"
#include "core/status_code.h"
#include "graph/csr.h"
#include "obs/query_trace.h"

namespace xbfs::serve {

using QueryId = std::uint64_t;

/// Shared immutable BFS levels (-1 = unreached).  Cache hits hand out the
/// same underlying object the cold run produced, so a hit costs one
/// refcount bump, not a copy.
using Levels = std::shared_ptr<const std::vector<std::int32_t>>;

/// What the result cache stores per (graph, algo, params, source): the
/// typed shared payload plus the fixpoint depth.  This used to be a
/// BFS-only {levels, depth} struct; it collapsed into core::ResultPayload
/// (same `levels`/`depth` member names, so BFS call sites read unchanged —
/// docs/api.md has the migration table).
using CachedResult = core::ResultPayload;

enum class QueryStatus {
  Completed,  ///< payload is valid
  Expired,    ///< deadline passed while queued; no traversal was run
  Failed,     ///< every rung of the resilience ladder failed; see error
};

const char* query_status_name(QueryStatus s);

struct QueryOptions {
  /// Deadline budget from enqueue, in wall milliseconds.  0 inherits the
  /// server default; a non-positive value after inheritance (explicit
  /// negative, or a server default <= 0) means no deadline — only a
  /// strictly positive budget ever expires a query.
  double timeout_ms = 0.0;
  /// Skip the result cache for this query (forces a fresh traversal and
  /// does not publish the result into the cache).
  bool bypass_cache = false;
};

/// Deadline arithmetic shared by every admission lane (Server::submit,
/// ShardRouter::submit, the update lane): 0 inherits `default_timeout_ms`,
/// and only a strictly positive resolved budget creates a deadline.
/// Historically a resolved budget of exactly 0 produced `deadline == now`
/// — every such query expired at dispatch despite the "0 inherits the
/// default" contract; this helper is the single fixed implementation.
inline double resolve_deadline_us(double timeout_ms, double default_timeout_ms,
                                  double now_us) {
  const double t = timeout_ms != 0.0 ? timeout_ms : default_timeout_ms;
  return t > 0.0 ? now_us + t * 1000.0 : -1.0;
}

/// Delivered through the future of an accepted query.
struct QueryResult {
  QueryId id = 0;
  core::AlgoKind algo = core::AlgoKind::Bfs;
  graph::vid_t source = 0;   ///< 0 when !algo_needs_source(algo)
  QueryStatus status = QueryStatus::Completed;
  /// The typed per-vertex answer (payload.kind == algo); empty when
  /// status != Completed.
  core::ResultPayload payload;
  Levels levels;             ///< == payload.levels (BFS); null otherwise
  std::uint32_t depth = 0;   ///< == payload.depth (fixpoint rounds run)
  bool cache_hit = false;
  unsigned batch_size = 0;   ///< distinct sources sharing the sweep (1 = singleton path; 0 = no traversal)
  unsigned gcd = 0;          ///< worker/device that served it
  double queue_ms = 0.0;     ///< enqueue -> dispatch (wall)
  double service_ms = 0.0;   ///< dispatch -> complete (wall)
  double total_ms = 0.0;     ///< enqueue -> complete (wall)

  // --- resilience annotations ---------------------------------------------
  std::string engine;        ///< AlgorithmEngine::name that produced payload
                             ///< ("sweep" for the 64-way path; empty = cache)
  unsigned attempts = 0;     ///< dispatch attempts consumed (1 = clean)
  bool degraded = false;     ///< served below the preferred rung (fallback)
  bool validated = false;    ///< payload passed its kind's host validator
  xbfs::Status error;        ///< terminal failure detail when status==Failed

  // --- sharded serving (shard::ShardRouter; zero on single-graph servers) --
  unsigned shards = 0;       ///< shard owners fanned out to (0 = unsharded)
  unsigned shards_lost = 0;  ///< owners with no healthy replica this query
  /// Some shard had no healthy replica: levels are complete for the live
  /// shards' vertex ranges and -1 in the lost ranges (status stays
  /// Completed, degraded is set, and `error` carries the Unavailable
  /// detail).  Partial results are never cached or validated.
  bool partial = false;

  /// Query-scoped trace: the causal event record (admission -> every
  /// retry/rung -> terminal) plus per-rung kernel-counter attribution.
  /// Null when ServeConfig::query_tracing is off.
  obs::QueryTracePtr trace;
};

/// Outcome of Server::submit().
struct Admission {
  bool accepted = false;
  xbfs::Status status;              ///< Ok iff accepted
  QueryId id = 0;
  std::future<QueryResult> result;  ///< valid only when accepted
};

}  // namespace xbfs::serve
