// Query-serving vocabulary types: what a client submits, what it gets
// back, and why a submission may be turned away at the door.
//
// A query is one BFS request ("levels from source s on the loaded graph").
// Admission is synchronous — submit() either hands back a future for the
// result or rejects with a reason (backpressure, shutdown, bad source).
// Accepted queries always resolve: completed, or expired past their
// deadline (expired queries are *reported* through the same future and the
// serving counters, never dropped silently).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/status_code.h"
#include "graph/csr.h"
#include "obs/query_trace.h"

namespace xbfs::serve {

using QueryId = std::uint64_t;

/// Shared immutable BFS levels (-1 = unreached).  Cache hits hand out the
/// same underlying object the cold run produced, so a hit costs one
/// refcount bump, not a copy.
using Levels = std::shared_ptr<const std::vector<std::int32_t>>;

/// What the result cache stores per (graph, source): the shared levels
/// plus the traversal depth (so hits never rescan the levels array).
struct CachedResult {
  Levels levels;  ///< null = cache miss sentinel
  std::uint32_t depth = 0;
  explicit operator bool() const { return static_cast<bool>(levels); }
};

enum class QueryStatus {
  Completed,  ///< levels are valid
  Expired,    ///< deadline passed while queued; no traversal was run
  Failed,     ///< every rung of the resilience ladder failed; see error
};

const char* query_status_name(QueryStatus s);

struct QueryOptions {
  /// Deadline budget from enqueue, in wall milliseconds.  0 inherits the
  /// server default; negative = no deadline.
  double timeout_ms = 0.0;
  /// Skip the result cache for this query (forces a fresh traversal and
  /// does not publish the result into the cache).
  bool bypass_cache = false;
};

/// Delivered through the future of an accepted query.
struct QueryResult {
  QueryId id = 0;
  graph::vid_t source = 0;
  QueryStatus status = QueryStatus::Completed;
  Levels levels;             ///< null when status != Completed
  std::uint32_t depth = 0;   ///< BFS levels run (deepest level + 1), as BfsResult::depth
  bool cache_hit = false;
  unsigned batch_size = 0;   ///< distinct sources sharing the sweep (1 = singleton Xbfs path; 0 = no traversal)
  unsigned gcd = 0;          ///< worker/device that served it
  double queue_ms = 0.0;     ///< enqueue -> dispatch (wall)
  double service_ms = 0.0;   ///< dispatch -> complete (wall)
  double total_ms = 0.0;     ///< enqueue -> complete (wall)

  // --- resilience annotations ---------------------------------------------
  std::string engine;        ///< TraversalEngine::name that produced levels
                             ///< ("sweep" for the 64-way path; empty = cache)
  unsigned attempts = 0;     ///< dispatch attempts consumed (1 = clean)
  bool degraded = false;     ///< served below the preferred rung (fallback)
  bool validated = false;    ///< levels passed validate_levels_graph500
  xbfs::Status error;        ///< terminal failure detail when status==Failed

  // --- sharded serving (shard::ShardRouter; zero on single-graph servers) --
  unsigned shards = 0;       ///< shard owners fanned out to (0 = unsharded)
  unsigned shards_lost = 0;  ///< owners with no healthy replica this query
  /// Some shard had no healthy replica: levels are complete for the live
  /// shards' vertex ranges and -1 in the lost ranges (status stays
  /// Completed, degraded is set, and `error` carries the Unavailable
  /// detail).  Partial results are never cached or validated.
  bool partial = false;

  /// Query-scoped trace: the causal event record (admission -> every
  /// retry/rung -> terminal) plus per-rung kernel-counter attribution.
  /// Null when ServeConfig::query_tracing is off.
  obs::QueryTracePtr trace;
};

/// Outcome of Server::submit().
struct Admission {
  bool accepted = false;
  xbfs::Status status;              ///< Ok iff accepted
  QueryId id = 0;
  std::future<QueryResult> result;  ///< valid only when accepted
};

}  // namespace xbfs::serve
