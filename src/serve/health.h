// Per-GCD health tracking with a circuit breaker, the serving engine's
// defence against a persistently faulty device.
//
// Each GCD slot runs the classic three-state breaker:
//
//   Closed ----(failures >= threshold)----> Open
//   Open   ----(cooldown elapsed)---------> HalfOpen (one probe allowed)
//   HalfOpen --(probe succeeds)-----------> Closed
//   HalfOpen --(probe fails)--------------> Open (cooldown restarts)
//
// The dispatcher asks allow(gcd) before routing work to a device and
// reports record_success / record_failure afterwards; pick() finds a
// healthy GCD, preferring the caller's own lane so a fault-free server
// keeps its exact pre-resilience routing.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace xbfs::serve {

enum class BreakerState { Closed, Open, HalfOpen };

const char* breaker_state_name(BreakerState s);

struct BreakerConfig {
  /// Consecutive failures that trip a Closed breaker.
  unsigned failure_threshold = 3;
  /// How long an Open breaker rejects work before probing again.
  double cooldown_ms = 25.0;
};

class HealthTracker {
 public:
  static constexpr unsigned kNone = ~0u;

  HealthTracker(unsigned num_slots, BreakerConfig cfg);

  HealthTracker(const HealthTracker&) = delete;
  HealthTracker& operator=(const HealthTracker&) = delete;

  /// May work be routed to this slot right now?  An Open breaker whose
  /// cooldown has elapsed transitions to HalfOpen and hands out exactly one
  /// probe token (subsequent calls say no until the probe resolves).
  bool allow(unsigned slot, double now_us);

  void record_success(unsigned slot);
  void record_failure(unsigned slot, double now_us);

  BreakerState state(unsigned slot) const;

  /// First allowed slot, preferring `preferred`; kNone when every breaker
  /// is open (callers then degrade to the host ladder).
  unsigned pick(unsigned preferred, double now_us);

  /// pick() restricted to a replica group: the first allowed slot among
  /// `group`, preferring `preferred` (a slot id, not a group index).  The
  /// sharded router keeps one tracker across shards x replicas and routes
  /// each shard's work within its own group; kNone means the shard has no
  /// healthy replica and the query degrades to a partial result.
  unsigned pick_in(const std::vector<unsigned>& group, unsigned preferred,
                   double now_us);

  unsigned num_slots() const { return static_cast<unsigned>(slots_.size()); }

  struct Counters {
    std::uint64_t failures = 0;
    std::uint64_t successes = 0;
    std::uint64_t opens = 0;       ///< Closed/HalfOpen -> Open transitions
    std::uint64_t half_opens = 0;  ///< Open -> HalfOpen probes granted
    std::uint64_t closes = 0;      ///< HalfOpen -> Closed recoveries
  };
  Counters counters() const;

 private:
  struct Slot {
    mutable std::mutex mu;
    BreakerState state = BreakerState::Closed;
    unsigned consecutive_failures = 0;
    double opened_at_us = 0.0;
    bool probe_outstanding = false;
  };

  BreakerConfig cfg_;
  std::vector<Slot> slots_;

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace xbfs::serve
