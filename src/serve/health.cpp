#include "serve/health.h"

#include <algorithm>

#include "hipsim/chk_point.h"
#include "obs/flight_recorder.h"

namespace xbfs::serve {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

HealthTracker::HealthTracker(unsigned num_slots, BreakerConfig cfg)
    : cfg_(cfg), slots_(std::max(1u, num_slots)) {
  cfg_.failure_threshold = std::max(1u, cfg_.failure_threshold);
}

bool HealthTracker::allow(unsigned slot, double now_us) {
  if (slot >= slots_.size()) return false;
  // SchedCheck yield points sit before each transition's critical section
  // (never inside — chk_point discipline) so explored interleavings hit
  // the allow/success/failure decision races: e.g. two callers racing for
  // the single half-open probe token.
  sim::chk_point("serve.health.allow", slot);
  Slot& s = slots_[slot];
  std::lock_guard<std::mutex> lk(s.mu);
  switch (s.state) {
    case BreakerState::Closed:
      return true;
    case BreakerState::Open:
      if (now_us - s.opened_at_us >= cfg_.cooldown_ms * 1000.0) {
        s.state = BreakerState::HalfOpen;
        s.probe_outstanding = true;
        obs::FlightRecorder::global().record("serve", "breaker_half_open", {},
                                             0, slot);
        std::lock_guard<std::mutex> clk(counters_mu_);
        ++counters_.half_opens;
        return true;
      }
      return false;
    case BreakerState::HalfOpen:
      // One probe at a time: the slot stays quarantined until it resolves.
      if (s.probe_outstanding) return false;
      s.probe_outstanding = true;
      return true;
  }
  return false;
}

void HealthTracker::record_success(unsigned slot) {
  if (slot >= slots_.size()) return;
  sim::chk_point("serve.health.success", slot);
  Slot& s = slots_[slot];
  bool closed = false;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.consecutive_failures = 0;
    s.probe_outstanding = false;
    if (s.state == BreakerState::HalfOpen) {
      s.state = BreakerState::Closed;
      closed = true;
    }
  }
  if (closed) {
    obs::FlightRecorder::global().record("serve", "breaker_close", {}, 0,
                                         slot);
  }
  std::lock_guard<std::mutex> clk(counters_mu_);
  ++counters_.successes;
  if (closed) ++counters_.closes;
}

void HealthTracker::record_failure(unsigned slot, double now_us) {
  if (slot >= slots_.size()) return;
  sim::chk_point("serve.health.failure", slot);
  Slot& s = slots_[slot];
  bool opened = false;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    s.probe_outstanding = false;
    ++s.consecutive_failures;
    if (s.state == BreakerState::HalfOpen ||
        (s.state == BreakerState::Closed &&
         s.consecutive_failures >= cfg_.failure_threshold)) {
      s.state = BreakerState::Open;
      s.opened_at_us = now_us;
      opened = true;
    }
  }
  if (opened) {
    obs::FlightRecorder::global().record("serve", "breaker_open", {}, 0,
                                         slot);
  }
  std::lock_guard<std::mutex> clk(counters_mu_);
  ++counters_.failures;
  if (opened) ++counters_.opens;
}

BreakerState HealthTracker::state(unsigned slot) const {
  // Out-of-range slots answer Open — never routable — mirroring allow().
  if (slot >= slots_.size()) return BreakerState::Open;
  const Slot& s = slots_[slot];
  std::lock_guard<std::mutex> lk(s.mu);
  return s.state;
}

unsigned HealthTracker::pick(unsigned preferred, double now_us) {
  const unsigned n = num_slots();
  if (preferred < n && allow(preferred, now_us)) return preferred;
  for (unsigned i = 0; i < n; ++i) {
    if (i == preferred) continue;
    if (allow(i, now_us)) return i;
  }
  return kNone;
}

unsigned HealthTracker::pick_in(const std::vector<unsigned>& group,
                                unsigned preferred, double now_us) {
  const unsigned n = num_slots();
  // Membership gate first: allow() may hand out a HalfOpen probe token, so
  // it must never be asked about a slot this pick cannot return.
  bool preferred_in_group = false;
  for (const unsigned slot : group) {
    if (slot == preferred) preferred_in_group = true;
  }
  if (preferred_in_group && preferred < n && allow(preferred, now_us)) {
    return preferred;
  }
  for (const unsigned slot : group) {
    if (slot == preferred) continue;
    if (slot < n && allow(slot, now_us)) return slot;
  }
  return kNone;
}

HealthTracker::Counters HealthTracker::counters() const {
  std::lock_guard<std::mutex> lk(counters_mu_);
  return counters_;
}

}  // namespace xbfs::serve
