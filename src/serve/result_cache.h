// Sharded LRU result cache keyed by (graph fingerprint, algorithm kind,
// parameter hash, source).
//
// Serving workloads are Zipf-skewed — a few hot sources absorb most
// queries — so a small cache of immutable payload vectors turns the hot
// tail into refcount bumps.  Keys carry the graph's structural fingerprint
// (graph::Csr::fingerprint) so a cache shared across graph reloads can
// never serve a stale topology's result, plus the algo kind and the
// AlgoParams::hash() salt so distinct algorithms — or the same algorithm
// under different parameters (SSSP weight seed, k-core k) — can never
// collide on one entry.  Whole-graph kinds (CC, k-core, SCC) key source 0.
// Shards (each its own mutex + LRU list) keep submit-path lookups from
// serializing behind one lock.
// Dynamic graphs (src/dyn) add epoch awareness: each update batch bumps
// the graph fingerprint (Csr::fingerprint mixes the epoch), so entries
// keyed under the previous fingerprint become unreachable garbage rather
// than stale hits.  epoch_bump() sweeps them eagerly and counts the purge;
// get() additionally reaps the prior epoch's twin of each missed key so a
// churning hot set can't pin dead entries until LRU pressure finds them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/algorithm_engine.h"
#include "serve/query.h"

namespace xbfs::serve {

/// The parameter-hash salt BFS entries are keyed under (BFS ignores
/// AlgoParams, so submit paths normalize them to the default before
/// hashing).  The two-argument get/put overloads — the pre-redesign API,
/// still what the BFS-only ShardRouter uses — key through this.
inline std::uint64_t bfs_params_hash() {
  static const std::uint64_t h = core::AlgoParams{}.hash();
  return h;
}

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
    std::size_t entries = 0;
    /// Dynamic-graph invalidation (zero on static graphs): epoch_bump()
    /// calls, entries purged by those sweeps, and prior-epoch twins reaped
    /// lazily by get() misses — each one a stale hit that a fingerprint-less
    /// cache would have served.
    std::uint64_t epoch_bumps = 0;
    std::uint64_t purged_stale = 0;
    std::uint64_t stale_hits_avoided = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// `capacity` total entries split evenly across `shards` (each shard gets
  /// at least one slot).  capacity == 0 constructs a disabled cache: every
  /// get() misses, put() is a no-op.
  explicit ResultCache(std::size_t capacity, unsigned shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const { return shard_capacity_ != 0; }

  /// Lookup; bumps the entry to most-recently-used and counts hit/miss.
  /// A returned falsy payload (no vector set) is a miss.
  CachedResult get(std::uint64_t graph_fp, core::AlgoKind algo,
                   std::uint64_t params_hash, graph::vid_t source);
  /// Insert/overwrite; evicts the shard's least-recently-used entry when
  /// the shard is full.
  void put(std::uint64_t graph_fp, core::AlgoKind algo,
           std::uint64_t params_hash, graph::vid_t source, CachedResult v);

  /// BFS convenience overloads (kind Bfs, default-params salt) — the
  /// pre-redesign two-key API, kept for BFS-only callers (ShardRouter).
  CachedResult get(std::uint64_t graph_fp, graph::vid_t source) {
    return get(graph_fp, core::AlgoKind::Bfs, bfs_params_hash(), source);
  }
  void put(std::uint64_t graph_fp, graph::vid_t source, CachedResult v) {
    put(graph_fp, core::AlgoKind::Bfs, bfs_params_hash(), source,
        std::move(v));
  }

  /// Register the serving fingerprint without counting a bump — called once
  /// at dynamic-server startup so the first epoch_bump() has a "previous"
  /// epoch to retire.  No-op sweep-wise.
  void prime(std::uint64_t graph_fp);
  /// The graph moved to a new epoch/fingerprint: sweep every entry keyed
  /// under any other fingerprint (their topology can no longer be served)
  /// and remember the retired fingerprint for lazy reaping in get().
  /// Returns the number of entries purged.
  std::size_t epoch_bump(std::uint64_t new_fp);

  Stats stats() const;
  std::size_t size() const;
  void clear();

 private:
  struct Key {
    std::uint64_t fp;
    std::uint64_t phash;
    graph::vid_t src;
    core::AlgoKind algo;
    bool operator==(const Key& o) const {
      return fp == o.fp && phash == o.phash && src == o.src && algo == o.algo;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.fp ^ (static_cast<std::uint64_t>(k.src) *
                                0x9E3779B97F4A7C15ull);
      h ^= k.phash + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      h ^= static_cast<std::uint64_t>(k.algo) * 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<std::size_t>(h);
    }
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<Key, CachedResult>> lru;
    std::unordered_map<Key, std::list<std::pair<Key, CachedResult>>::iterator,
                       KeyHash>
        map;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
  };

  Shard& shard_of(const Key& k) {
    return *shards_[KeyHash{}(k) % shards_.size()];
  }

  std::size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Epoch bookkeeping (dynamic graphs only; untouched on static servers).
  std::atomic<bool> primed_{false};
  std::atomic<std::uint64_t> current_fp_{0};
  std::atomic<std::uint64_t> prev_fp_{0};
  std::atomic<std::uint64_t> epoch_bumps_{0};
  std::atomic<std::uint64_t> purged_stale_{0};
  std::atomic<std::uint64_t> stale_hits_avoided_{0};
};

}  // namespace xbfs::serve
