#include "store/file.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "hipsim/fault.h"

namespace xbfs::store {

namespace {

std::atomic<std::uint64_t> g_disk_ops{0};
std::atomic<std::uint64_t> g_crash_at{0};  // 0 = disarmed
std::atomic<double> g_crash_frac{0.5};

/// Parse XBFS_DURABLE_CRASH ("at=N[,frac=F]") once, before the first op.
void load_crash_env() {
  static const bool loaded = [] {
    if (const char* env = std::getenv("XBFS_DURABLE_CRASH")) {
      std::uint64_t at = 0;
      double frac = 0.5;
      const std::string spec(env);
      std::size_t pos = 0;
      while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos) end = spec.size();
        const std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = item.substr(0, eq);
        const char* val = item.c_str() + eq + 1;
        if (key == "at") at = std::strtoull(val, nullptr, 10);
        else if (key == "frac") frac = std::strtod(val, nullptr);
      }
      if (at != 0) arm_crash_at_op(at, frac);
    }
    return true;
  }();
  (void)loaded;
}

/// Count one physical op; returns the fraction to persist before dying, or
/// a negative value when this op does not crash.
double next_op_crash_fraction() {
  load_crash_env();
  const std::uint64_t op = g_disk_ops.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t at = g_crash_at.load(std::memory_order_relaxed);
  if (at != 0 && op == at) {
    return g_crash_frac.load(std::memory_order_relaxed);
  }
  return -1.0;
}

[[noreturn]] void die_now() {
  // SIGKILL, not abort(): no handlers, no atexit flushes — the process
  // vanishes exactly like an OOM kill or power loss would take it.
  ::raise(SIGKILL);
  ::_exit(137);  // unreachable; keeps [[noreturn]] honest
}

xbfs::Status errno_status(const char* op, const std::string& path) {
  return xbfs::Status::Internal(std::string(op) + " failed for '" + path +
                                "': " + std::strerror(errno));
}

/// Loop a full write of [data, data+n) at the current offset.
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::uint64_t disk_ops() { return g_disk_ops.load(std::memory_order_relaxed); }

void arm_crash_at_op(std::uint64_t op_index, double write_fraction) {
  if (write_fraction < 0.0) write_fraction = 0.0;
  if (write_fraction > 1.0) write_fraction = 1.0;
  g_crash_frac.store(write_fraction, std::memory_order_relaxed);
  g_crash_at.store(op_index, std::memory_order_relaxed);
}

File::~File() { close(); }

File::File(File&& o) noexcept
    : fd_(o.fd_), size_(o.size_), path_(std::move(o.path_)) {
  o.fd_ = -1;
  o.size_ = 0;
}

File& File::operator=(File&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    size_ = o.size_;
    path_ = std::move(o.path_);
    o.fd_ = -1;
    o.size_ = 0;
  }
  return *this;
}

xbfs::Status File::open_append(const std::string& path, File* out) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return errno_status("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const xbfs::Status s = errno_status("fstat", path);
    ::close(fd);
    return s;
  }
  out->close();
  out->fd_ = fd;
  out->size_ = static_cast<std::uint64_t>(st.st_size);
  out->path_ = path;
  return xbfs::Status::Ok();
}

xbfs::Status File::append(const void* data, std::size_t n) {
  if (fd_ < 0) return xbfs::Status::Internal("File::append: not open");
  if (n == 0) return xbfs::Status::Ok();
  const auto* bytes = static_cast<const std::uint8_t*>(data);

  const double crash_frac = next_op_crash_fraction();
  if (crash_frac >= 0.0) {
    // Armed crash: persist a prefix, then vanish — the torn-write the
    // recovery path must detect via CRC and truncate, never replay.
    const std::size_t keep =
        static_cast<std::size_t>(static_cast<double>(n) * crash_frac);
    if (keep > 0) (void)write_all(fd_, bytes, keep);
    die_now();
  }

  auto& fi = sim::FaultInjector::global();
  if (fi.enabled()) {
    if (fi.should_inject(sim::FaultKind::DiskTornWrite)) {
      const std::size_t keep = n / 2;
      if (keep > 0 && write_all(fd_, bytes, keep)) size_ += keep;
      return xbfs::Status::Fault("disk-torn-write: " + std::to_string(keep) +
                                 "/" + std::to_string(n) + " bytes of '" +
                                 path_ + "'");
    }
    if (fi.should_inject(sim::FaultKind::DiskShortWrite)) {
      const std::size_t keep = n - 1;
      if (keep > 0 && write_all(fd_, bytes, keep)) size_ += keep;
      return xbfs::Status::Fault("disk-short-write: " + std::to_string(keep) +
                                 "/" + std::to_string(n) + " bytes of '" +
                                 path_ + "'");
    }
  }

  if (!write_all(fd_, bytes, n)) return errno_status("write", path_);
  size_ += n;
  return xbfs::Status::Ok();
}

xbfs::Status File::sync() {
  if (fd_ < 0) return xbfs::Status::Internal("File::sync: not open");
  if (next_op_crash_fraction() >= 0.0) die_now();
  auto& fi = sim::FaultInjector::global();
  if (fi.enabled() && fi.should_inject(sim::FaultKind::FsyncFail)) {
    return xbfs::Status::Fault("fsync-fail: '" + path_ + "'");
  }
  if (::fsync(fd_) != 0) return errno_status("fsync", path_);
  return xbfs::Status::Ok();
}

xbfs::Status File::truncate_to(std::uint64_t new_size) {
  if (fd_ < 0) return xbfs::Status::Internal("File::truncate_to: not open");
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return errno_status("ftruncate", path_);
  }
  size_ = new_size;
  return xbfs::Status::Ok();
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

xbfs::Status read_file(const std::string& path,
                       std::vector<std::uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_status("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const xbfs::Status s = errno_status("fstat", path);
    ::close(fd);
    return s;
  }
  out->resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < out->size()) {
    const ssize_t r = ::read(fd, out->data() + off, out->size() - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      const xbfs::Status s = errno_status("read", path);
      ::close(fd);
      return s;
    }
    if (r == 0) break;  // shrank underneath us; keep what we got
    off += static_cast<std::size_t>(r);
  }
  out->resize(off);
  ::close(fd);
  return xbfs::Status::Ok();
}

xbfs::Status atomic_publish(const std::string& tmp_path,
                            const std::string& final_path) {
  if (next_op_crash_fraction() >= 0.0) die_now();
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return errno_status("rename", final_path);
  }
  // fsync the directory so the rename itself survives power loss.
  std::string dir = final_path;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return xbfs::Status::Ok();
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void remove_file(const std::string& path) { ::unlink(path.c_str()); }

xbfs::Status ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return xbfs::Status::Ok();
  }
  return errno_status("mkdir", path);
}

}  // namespace xbfs::store
