#include "store/durability.h"

#include <chrono>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "store/manifest.h"
#include "store/recovery.h"
#include "store/snapshot_file.h"

namespace xbfs::store {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string wal_filename(std::uint64_t epoch) {
  return "wal-" + std::to_string(epoch) + ".xlog";
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityConfig cfg, WalWriter wal,
                                     std::uint64_t last_spill_epoch,
                                     std::string snapshot_file,
                                     dyn::DurabilityStats seed_stats)
    : cfg_(std::move(cfg)),
      wal_(std::move(wal)),
      last_spill_epoch_(last_spill_epoch),
      snapshot_file_(std::move(snapshot_file)),
      stats_(seed_stats) {}

bool DurabilityManager::want_compact(std::uint64_t next_epoch,
                                     double /*density*/, bool density_wants) {
  // Periodic compaction pressure: snapshots are only taken at compaction
  // points, so this is the "snapshot every N epochs" policy.
  return density_wants ||
         (cfg_.snapshot_every != 0 &&
          next_epoch >= last_spill_epoch_ + cfg_.snapshot_every);
}

xbfs::Status DurabilityManager::append(const dyn::EdgeBatch& batch,
                                       std::uint64_t epoch,
                                       std::uint64_t fingerprint,
                                       std::uint64_t prev_fingerprint,
                                       bool compacted) {
  WalRecord rec;
  rec.epoch = epoch;
  rec.fingerprint = fingerprint;
  rec.prev_fingerprint = prev_fingerprint;
  rec.flags = compacted ? WalRecord::kFlagCompacted : 0;
  rec.batch = batch;
  const xbfs::Status s = wal_.append(rec);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (s.ok()) {
      stats_.wal_appends += 1;
      stats_.fsyncs += 1;
      stats_.wal_bytes = wal_.bytes();
      stats_.last_durable_epoch = epoch;
      stats_.last_durable_fingerprint = fingerprint;
    } else if (s.detail().rfind("fsync-fail", 0) == 0) {
      stats_.fsync_failures += 1;
    } else {
      stats_.wal_append_failures += 1;
    }
  }
  if (!s.ok()) {
    obs::FlightRecorder::global().record("store", "wal_append_fail",
                                         s.detail(), epoch);
    auto& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) metrics.counter("store.wal.failures").add(1);
  }
  return s;
}

void DurabilityManager::published(const dyn::Snapshot& snap, bool compacted) {
  if (compacted) spill_and_rotate(snap);
}

void DurabilityManager::spill_and_rotate(const dyn::Snapshot& snap) {
  auto& metrics = obs::MetricsRegistry::global();
  // 1. Spill the freshly-compacted base, content-addressed + atomic.
  const auto t0 = std::chrono::steady_clock::now();
  std::string snap_name;
  xbfs::Status s = write_snapshot(cfg_.dir, snap.graph->base(), snap.epoch,
                                  snap.fingerprint, &snap_name);
  if (metrics.enabled()) {
    metrics.histogram("store.snapshot.spill_us").observe(elapsed_us(t0));
  }
  if (!s.ok()) {
    // Durability is unharmed — the old (snapshot, WAL) pair still covers
    // everything; the spill retries at the next compaction point.
    obs::FlightRecorder::global().record("store", "snapshot_spill_fail",
                                         s.detail(), snap.epoch);
    if (metrics.enabled()) metrics.counter("store.snapshot.failures").add(1);
    return;
  }
  // 2. Fresh WAL segment; appends only move there after the manifest names
  //    it, so no record can land where recovery won't look.
  const std::string new_wal = wal_filename(snap.epoch);
  WalWriter next;
  s = WalWriter::create(cfg_.dir + "/" + new_wal, &next);
  if (s.ok()) {
    // 3. Atomic manifest switch to the new pair.
    Manifest m;
    m.snapshot_file = snap_name;
    m.snapshot_epoch = snap.epoch;
    m.snapshot_fingerprint = snap.fingerprint;
    m.wal_file = new_wal;
    s = write_manifest(cfg_.dir, m);
  }
  if (!s.ok()) {
    obs::FlightRecorder::global().record("store", "wal_rotate_fail",
                                         s.detail(), snap.epoch);
    if (metrics.enabled()) metrics.counter("store.snapshot.failures").add(1);
    next.close();
    remove_file(cfg_.dir + "/" + new_wal);
    return;  // keep appending to the old segment
  }
  // 4. The new pair is durably named; the old pair is garbage.
  const std::string old_wal = wal_.path();
  const std::string old_snap = snapshot_file_;
  wal_.close();
  wal_ = std::move(next);
  remove_file(old_wal);
  if (!old_snap.empty() && old_snap != snap_name) {
    remove_file(cfg_.dir + "/" + old_snap);
  }
  snapshot_file_ = snap_name;
  last_spill_epoch_ = snap.epoch;
  obs::FlightRecorder::global().record("store", "snapshot_spill", snap_name,
                                       snap.epoch, snap.fingerprint);
  std::lock_guard<std::mutex> lk(mu_);
  stats_.snapshots_spilled += 1;
  stats_.wal_rotations += 1;
  stats_.wal_bytes = wal_.bytes();
}

dyn::DurabilityStats DurabilityManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

xbfs::Status open_durable(const DurabilityConfig& cfg, graph::Csr base,
                          core::XbfsConfig xbfs_cfg, std::size_t log_capacity,
                          DurableStore* out) {
  if (cfg.dir.empty()) {
    return xbfs::Status::Invalid("open_durable: empty storage dir");
  }
  if (const xbfs::Status s = ensure_dir(cfg.dir); !s.ok()) return s;
  if (file_exists(cfg.dir + "/" + kManifestName)) {
    return recover_store(cfg, xbfs_cfg, log_capacity, out);
  }

  // Fresh initialization: epoch-0 snapshot + empty WAL + manifest, so a
  // crash at any later point always finds a complete pair to recover.
  auto store = std::make_unique<dyn::GraphStore>(std::move(base), xbfs_cfg,
                                                 log_capacity);
  const dyn::Snapshot snap = store->snapshot();
  std::string snap_name;
  if (const xbfs::Status s =
          write_snapshot(cfg.dir, snap.graph->base(), snap.epoch,
                         snap.fingerprint, &snap_name);
      !s.ok()) {
    return s;
  }
  const std::string wal_name = wal_filename(snap.epoch);
  WalWriter wal;
  if (const xbfs::Status s = WalWriter::create(cfg.dir + "/" + wal_name, &wal);
      !s.ok()) {
    return s;
  }
  Manifest m;
  m.snapshot_file = snap_name;
  m.snapshot_epoch = snap.epoch;
  m.snapshot_fingerprint = snap.fingerprint;
  m.wal_file = wal_name;
  if (const xbfs::Status s = write_manifest(cfg.dir, m); !s.ok()) return s;

  dyn::DurabilityStats seed;
  seed.snapshots_spilled = 1;
  seed.last_durable_epoch = snap.epoch;
  seed.last_durable_fingerprint = snap.fingerprint;
  auto mgr = std::make_unique<DurabilityManager>(
      cfg, std::move(wal), snap.epoch, snap_name, seed);
  store->attach_durability(mgr.get());
  out->store = std::move(store);
  out->durability = std::move(mgr);
  return xbfs::Status::Ok();
}

}  // namespace xbfs::store
