// Write-ahead log for dyn::GraphStore edge batches (docs/durability.md).
//
// A WAL segment is an 8-byte header (magic + version) followed by
// self-delimiting records, one per applied EdgeBatch:
//
//   u32 record magic   "1CER"          (detects seek-into-garbage)
//   u32 payload length                 (ops only bound the allocation)
//   u32 CRC-32 of the payload          (IEEE 802.3, table-driven)
//   payload:
//     u64 epoch                        (the epoch this batch published)
//     u64 fingerprint                  (post-apply DeltaCsr::fingerprint)
//     u64 prev_fingerprint             (chain link to the prior epoch)
//     u32 op count
//     u8  flags                        (bit 0: apply compacted the store)
//     ops × { u32 u, u32 v, u8 insert }
//
// The CRC plus the length prefix give longest-valid-prefix recovery: a
// reader scans records until the bytes run out (clean tail), a record is
// shorter than its length prefix claims (torn tail), or a CRC/magic check
// fails (torn or corrupt tail).  Everything after the first bad byte is
// truncated, never replayed — a half-written final record from a crash
// mid-append rolls the store back to the last record that was fully
// fsync'd, which is exactly the durable-then-visible contract.
//
// The fingerprint chain (prev_fingerprint -> fingerprint per record) is
// what recovery verifies while replaying: any divergence between the
// recorded chain and the recomputed store state refuses recovery rather
// than serving a silently-wrong graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status_code.h"
#include "dyn/edge_batch.h"
#include "store/file.h"

namespace xbfs::store {

inline constexpr std::uint32_t kWalFileMagic = 0x314C5758;    // "XWL1"
inline constexpr std::uint32_t kWalFileVersion = 1;
inline constexpr std::uint32_t kWalRecordMagic = 0x52454331;  // "1CER"
inline constexpr std::size_t kWalHeaderBytes = 8;
/// Sanity bound on one record's payload (ops are ~9 bytes each; a batch
/// this large is garbage, not data — refuse the allocation).
inline constexpr std::uint32_t kWalMaxPayload = 1u << 28;

struct WalRecord {
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;       ///< post-apply DeltaCsr::fingerprint
  std::uint64_t prev_fingerprint = 0;  ///< fingerprint chain link
  std::uint8_t flags = 0;
  dyn::EdgeBatch batch;

  static constexpr std::uint8_t kFlagCompacted = 1;
  bool compacted() const { return (flags & kFlagCompacted) != 0; }
};

/// CRC-32 (IEEE 802.3, reflected, table-driven).  `seed` chains calls.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Append the framed encoding of `rec` to `out`.
void encode_record(const WalRecord& rec, std::vector<std::uint8_t>* out);

enum class DecodeResult {
  Ok,        ///< one record decoded; *consumed bytes eaten
  NeedMore,  ///< data ends mid-record (torn tail / still being written)
  Corrupt,   ///< magic or CRC mismatch, or absurd length — not a record
};

/// Decode one record from data[0..n).  On Ok, *consumed is the framed
/// record size.  Never reads past n, never throws on garbage.
DecodeResult decode_record(const std::uint8_t* data, std::size_t n,
                           WalRecord* rec, std::size_t* consumed);

struct WalReadResult {
  std::vector<WalRecord> records;
  std::uint64_t valid_bytes = 0;  ///< header + fully-valid records
  std::uint64_t total_bytes = 0;  ///< file size as read
  bool torn_tail = false;         ///< trailing bytes failed framing/CRC
};

/// Longest-valid-prefix scan of a WAL segment.  A missing file, short
/// header, or wrong magic/version is Corruption (the segment itself is not
/// trustworthy); torn/corrupt *records* are not an error — the scan stops
/// there, reports torn_tail, and valid_bytes marks the truncation point.
xbfs::Status read_wal(const std::string& path, WalReadResult* out);

/// Appending writer over one WAL segment.  Every append is write + fsync;
/// a failed write or fsync rolls the file back to the pre-record size so
/// the on-disk prefix is always a sequence of whole, valid records.
class WalWriter {
 public:
  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Start a fresh segment at `path` (truncating any prior content):
  /// writes + fsyncs the header.
  static xbfs::Status create(const std::string& path, WalWriter* out);
  /// Continue a recovered segment: drops everything past `valid_bytes`
  /// (the torn tail) and appends after it.
  static xbfs::Status open_existing(const std::string& path,
                                    std::uint64_t valid_bytes, WalWriter* out);

  /// Encode, append, fsync.  On any failure the segment is rolled back to
  /// its pre-call size and the fault status is returned: the record is
  /// durable iff this returns ok.  Yields at "store.wal.append" /
  /// "store.wal.fsync" for SchedCheck and observes append/fsync latency
  /// histograms (store.wal.append_us / store.wal.fsync_us).
  xbfs::Status append(const WalRecord& rec);

  bool is_open() const { return file_.is_open(); }
  const std::string& path() const { return file_.path(); }
  std::uint64_t bytes() const { return file_.size(); }
  void close() { file_.close(); }

 private:
  File file_;
};

}  // namespace xbfs::store
