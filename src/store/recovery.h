// Startup recovery for durable GraphStores (docs/durability.md).
//
// State machine (each arrow is a validated step; any failure after the
// manifest exists refuses recovery with DataCorruption and dumps the
// flight recorder — a durable store that cannot prove its state must not
// serve):
//
//   read MANIFEST ──► load snapshot (CRC + identity vs manifest)
//        │                 │
//        │ missing         ▼
//        ▼            anchor check: DeltaCsr(base, epoch).fingerprint()
//   Unavailable            must equal the recorded snapshot fingerprint
//   (fresh dir)            │
//                          ▼
//                     scan WAL tail (longest valid prefix; a CRC-failed
//                     final record is a torn tail — truncated, not
//                     replayed)
//                          │
//                          ▼
//                     replay records epoch by epoch, re-applying each
//                     batch (compacting exactly where the record says)
//                     and verifying the fingerprint chain:
//                       prev_fingerprint == store fingerprint before,
//                       fingerprint      == store fingerprint after
//                          │
//                          ▼
//                     reopen the WAL at the truncation point; hand back
//                     the store + manager with recovery stats filled in.
#pragma once

#include "core/config.h"
#include "core/status_code.h"
#include "store/durability.h"

namespace xbfs::store {

/// Recover a durable store from cfg.dir.  Unavailable = no manifest (the
/// caller initializes fresh); DataCorruption = durable state exists but
/// cannot be proven consistent (refused; flight recorder dumped).
xbfs::Status recover_store(const DurabilityConfig& cfg,
                           core::XbfsConfig xbfs_cfg,
                           std::size_t log_capacity, DurableStore* out);

}  // namespace xbfs::store
