#include "store/snapshot_file.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "store/file.h"
#include "store/wal.h"  // crc32

namespace xbfs::store {

namespace {

constexpr std::uint32_t kSnapMagic = 0x314E5358;  // "XSN1"
constexpr std::uint32_t kSnapVersion = 1;

template <typename T>
void put(std::vector<std::uint8_t>* out, T v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &v, sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

std::string snapshot_filename(std::uint64_t fingerprint) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%016llx.xsnap",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

xbfs::Status write_snapshot(const std::string& dir, const graph::Csr& base,
                            std::uint64_t epoch, std::uint64_t fingerprint,
                            std::string* filename_out) {
  std::vector<std::uint8_t> buf;
  const std::uint64_t n = base.num_vertices();
  const std::uint64_t m = base.num_edges();
  buf.reserve(40 + base.offsets().size() * sizeof(graph::eid_t) +
              base.cols().size() * sizeof(graph::vid_t) + 4);
  put<std::uint32_t>(&buf, kSnapMagic);
  put<std::uint32_t>(&buf, kSnapVersion);
  put<std::uint64_t>(&buf, epoch);
  put<std::uint64_t>(&buf, fingerprint);
  put<std::uint64_t>(&buf, n);
  put<std::uint64_t>(&buf, m);
  {
    const std::size_t at = buf.size();
    const std::size_t bytes = base.offsets().size() * sizeof(graph::eid_t);
    buf.resize(at + bytes);
    std::memcpy(buf.data() + at, base.offsets().data(), bytes);
  }
  {
    const std::size_t at = buf.size();
    const std::size_t bytes = base.cols().size() * sizeof(graph::vid_t);
    buf.resize(at + bytes);
    std::memcpy(buf.data() + at, base.cols().data(), bytes);
  }
  put<std::uint32_t>(&buf, crc32(buf.data(), buf.size()));

  const std::string name = snapshot_filename(fingerprint);
  const std::string tmp = dir + "/tmp-" + name;
  const std::string final_path = dir + "/" + name;
  File f;
  if (const xbfs::Status s = File::open_append(tmp, &f); !s.ok()) return s;
  if (f.size() != 0) {
    // A stale tmp from a crashed spill: start it over.
    if (const xbfs::Status s = f.truncate_to(0); !s.ok()) return s;
  }
  xbfs::Status s = f.append(buf.data(), buf.size());
  if (s.ok()) s = f.sync();
  f.close();
  if (!s.ok()) {
    remove_file(tmp);
    return s;
  }
  if (s = atomic_publish(tmp, final_path); !s.ok()) {
    remove_file(tmp);
    return s;
  }
  *filename_out = name;
  return xbfs::Status::Ok();
}

xbfs::Status read_snapshot(const std::string& path, graph::Csr* base,
                           std::uint64_t* epoch, std::uint64_t* fingerprint) {
  std::vector<std::uint8_t> buf;
  if (const xbfs::Status s = read_file(path, &buf); !s.ok()) return s;
  constexpr std::size_t kFixed = 4 + 4 + 8 + 8 + 8 + 8;
  if (buf.size() < kFixed + 4) {
    return xbfs::Status::Corruption("snapshot '" + path + "': short file");
  }
  if (get<std::uint32_t>(buf.data()) != kSnapMagic ||
      get<std::uint32_t>(buf.data() + 4) != kSnapVersion) {
    return xbfs::Status::Corruption("snapshot '" + path +
                                    "': bad magic/version");
  }
  const std::uint32_t want_crc = get<std::uint32_t>(buf.data() + buf.size() - 4);
  if (crc32(buf.data(), buf.size() - 4) != want_crc) {
    return xbfs::Status::Corruption("snapshot '" + path + "': CRC mismatch");
  }
  *epoch = get<std::uint64_t>(buf.data() + 8);
  *fingerprint = get<std::uint64_t>(buf.data() + 16);
  const std::uint64_t n = get<std::uint64_t>(buf.data() + 24);
  const std::uint64_t m = get<std::uint64_t>(buf.data() + 32);
  const std::size_t want =
      kFixed + (n + 1) * sizeof(graph::eid_t) + m * sizeof(graph::vid_t) + 4;
  if (buf.size() != want) {
    return xbfs::Status::Corruption("snapshot '" + path +
                                    "': size disagrees with header");
  }
  std::vector<graph::eid_t> offsets(n + 1);
  std::memcpy(offsets.data(), buf.data() + kFixed,
              offsets.size() * sizeof(graph::eid_t));
  std::vector<graph::vid_t> cols(m);
  std::memcpy(cols.data(),
              buf.data() + kFixed + offsets.size() * sizeof(graph::eid_t),
              cols.size() * sizeof(graph::vid_t));
  *base = graph::Csr(std::move(offsets), std::move(cols));
  return xbfs::Status::Ok();
}

}  // namespace xbfs::store
