// DurabilityManager — the store-side implementation of
// dyn::DurabilityHook, plus open_durable(), the one entry point callers
// use (docs/durability.md).
//
// Lifecycle of a durable GraphStore:
//
//   fresh dir:  epoch-0 snapshot spilled, empty WAL segment created,
//               manifest published — then every apply() appends one
//               fsync'd WAL record before the epoch becomes visible.
//   compaction: (density-triggered, or forced every snapshot_every epochs
//               by want_compact) the freshly-flattened base is spilled as
//               a content-addressed snapshot, a new WAL segment is
//               created, the manifest atomically switches to the new
//               (snapshot, WAL) pair, and the old pair is deleted.
//   restart:    open_durable sees the manifest and recovers instead
//               (store/recovery.h): snapshot + WAL-tail replay +
//               fingerprint-chain verification.
//
// Snapshots only happen at compaction points, where the DeltaCsr overlays
// are empty — so a recovered store (snapshot base + replayed tail, with
// per-record compaction flags re-applied) rebuilds the *identical*
// base/overlay split, and therefore the identical fingerprint sequence, as
// the store that wrote the log.  That is what makes recovered-vs-twin
// fingerprint equality provable rather than probabilistic.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/config.h"
#include "core/status_code.h"
#include "dyn/durability_hook.h"
#include "dyn/graph_store.h"
#include "graph/csr.h"
#include "store/wal.h"

namespace xbfs::store {

struct DurabilityConfig {
  std::string dir;  ///< storage directory (created if absent)
  /// Force a compaction — and with it a content-addressed snapshot spill +
  /// WAL rotation — every this many epochs, on top of the overlay-density
  /// trigger.  0 leaves spills to density compactions alone.
  std::uint64_t snapshot_every = 64;
};

class DurabilityManager final : public dyn::DurabilityHook {
 public:
  /// Built by open_durable / recover_store around a live WAL segment.
  DurabilityManager(DurabilityConfig cfg, WalWriter wal,
                    std::uint64_t last_spill_epoch, std::string snapshot_file,
                    dyn::DurabilityStats seed_stats);

  bool want_compact(std::uint64_t next_epoch, double density,
                    bool density_wants) override;
  xbfs::Status append(const dyn::EdgeBatch& batch, std::uint64_t epoch,
                      std::uint64_t fingerprint,
                      std::uint64_t prev_fingerprint, bool compacted) override;
  void published(const dyn::Snapshot& snap, bool compacted) override;
  dyn::DurabilityStats stats() const override;

 private:
  /// Spill snap as a snapshot, rotate the WAL, switch the manifest, delete
  /// the previous pair.  Failures are absorbed (flight-recorded + counted):
  /// the old (snapshot, longer-WAL) pair keeps full durability.
  void spill_and_rotate(const dyn::Snapshot& snap);

  const DurabilityConfig cfg_;
  // Writer-lane state (GraphStore serializes every hook call under its
  // writer mutex; no locking needed).
  WalWriter wal_;
  std::uint64_t last_spill_epoch_ = 0;
  std::string snapshot_file_;  ///< current manifest's snapshot, for GC
  /// Guards stats_ against concurrent stats() readers.
  mutable std::mutex mu_;
  dyn::DurabilityStats stats_;
};

/// A GraphStore with its attached durable write path.  `durability` must
/// outlive `store` traffic (the store holds a non-owning hook pointer).
struct DurableStore {
  std::unique_ptr<dyn::GraphStore> store;
  std::unique_ptr<DurabilityManager> durability;
};

/// Open-or-recover a durable GraphStore at cfg.dir.  A directory without a
/// manifest is initialized from `base` (epoch-0 snapshot + fresh WAL); a
/// directory with one recovers from it — `base` is then ignored, the graph
/// comes from the durable state.  Recovery-validation failures (broken
/// fingerprint chain, corrupt snapshot/manifest) refuse with
/// DataCorruption after a flight-recorder dump.
xbfs::Status open_durable(const DurabilityConfig& cfg, graph::Csr base,
                          core::XbfsConfig xbfs_cfg, std::size_t log_capacity,
                          DurableStore* out);

}  // namespace xbfs::store
