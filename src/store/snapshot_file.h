// Content-addressed snapshot spill files (docs/durability.md).
//
// A snapshot is the flat, freshly-compacted base of the store at one epoch
// — DeltaCsr overlays are empty at every spill point, so the file is just
// the graph::Csr arrays plus the identity that makes recovery provable:
//
//   u32 magic "XSN1", u32 version
//   u64 epoch            (the epoch the store published this state as)
//   u64 fingerprint      (DeltaCsr::fingerprint at that epoch — the chain
//                         anchor recovery verifies before replaying)
//   u64 n, u64 m
//   n+1 × u64 offsets, m × u32 cols
//   u32 CRC-32 over everything above
//
// Files are content-addressed — named snap-<fingerprint>.xsnap — and
// written tmp-then-atomic-rename, so a crash mid-spill can never alias a
// committed snapshot: the name exists iff the full content does.
#pragma once

#include <cstdint>
#include <string>

#include "core/status_code.h"
#include "graph/csr.h"

namespace xbfs::store {

/// "snap-<fingerprint hex>.xsnap"
std::string snapshot_filename(std::uint64_t fingerprint);

/// Serialize + fsync `base` under dir, content-addressed by `fingerprint`,
/// via tmp + atomic rename.  On ok, *filename_out is the relative name the
/// manifest should point at.
xbfs::Status write_snapshot(const std::string& dir, const graph::Csr& base,
                            std::uint64_t epoch, std::uint64_t fingerprint,
                            std::string* filename_out);

/// Load + CRC-verify a snapshot file (absolute/relative path).
xbfs::Status read_snapshot(const std::string& path, graph::Csr* base,
                           std::uint64_t* epoch, std::uint64_t* fingerprint);

}  // namespace xbfs::store
