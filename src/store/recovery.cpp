#include "store/recovery.h"

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "dyn/delta_csr.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "store/manifest.h"
#include "store/snapshot_file.h"
#include "store/wal.h"

namespace xbfs::store {

namespace {

/// A durable store that cannot prove its state must not serve: record the
/// reason, dump the flight recorder, refuse.
xbfs::Status refuse(const xbfs::Status& s, std::uint64_t epoch = 0) {
  auto& fr = obs::FlightRecorder::global();
  fr.record("store", "recovery_fail", s.detail(), epoch);
  fr.trigger("durability-recovery-failure");
  auto& metrics = obs::MetricsRegistry::global();
  if (metrics.enabled()) metrics.counter("store.recovery.failures").add(1);
  return s;
}

std::string hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

xbfs::Status recover_store(const DurabilityConfig& cfg,
                           core::XbfsConfig xbfs_cfg,
                           std::size_t log_capacity, DurableStore* out) {
  Manifest m;
  if (const xbfs::Status s = read_manifest(cfg.dir, &m); !s.ok()) {
    // Missing manifest (Unavailable) is the fresh-dir signal, not a
    // refusal; a garbled one is.
    return s == xbfs::StatusCode::Unavailable ? s : refuse(s);
  }

  graph::Csr base;
  std::uint64_t snap_epoch = 0;
  std::uint64_t snap_fp = 0;
  if (const xbfs::Status s = read_snapshot(cfg.dir + "/" + m.snapshot_file,
                                           &base, &snap_epoch, &snap_fp);
      !s.ok()) {
    return refuse(s);
  }
  if (snap_epoch != m.snapshot_epoch || snap_fp != m.snapshot_fingerprint) {
    return refuse(xbfs::Status::Corruption(
        "recovery: snapshot identity disagrees with manifest (epoch " +
        std::to_string(snap_epoch) + "/" + std::to_string(m.snapshot_epoch) +
        ", fp " + hex(snap_fp) + "/" + hex(m.snapshot_fingerprint) + ")"));
  }

  // Anchor check: the restored overlay-free state must reproduce the
  // fingerprint the snapshot was content-addressed by.
  std::shared_ptr<const dyn::DeltaCsr> restored;
  try {
    restored = std::make_shared<const dyn::DeltaCsr>(
        std::make_shared<const graph::Csr>(std::move(base)), snap_epoch);
  } catch (const std::exception& e) {
    return refuse(xbfs::Status::Corruption(
        std::string("recovery: snapshot base rejected: ") + e.what()));
  }
  if (restored->fingerprint() != snap_fp) {
    return refuse(xbfs::Status::Corruption(
        "recovery: snapshot fingerprint anchor mismatch (computed " +
        hex(restored->fingerprint()) + ", recorded " + hex(snap_fp) + ")"));
  }

  WalReadResult wal;
  if (const xbfs::Status s = read_wal(cfg.dir + "/" + m.wal_file, &wal);
      !s.ok()) {
    return refuse(s);
  }

  auto store = std::make_unique<dyn::GraphStore>(std::move(restored),
                                                 xbfs_cfg, log_capacity);
  dyn::DurabilityStats rs;
  rs.recovered = true;
  rs.torn_tail_detected = wal.torn_tail;
  rs.wal_bytes_truncated = wal.total_bytes - wal.valid_bytes;

  // Replay the tail, verifying the fsync'd fingerprint chain record by
  // record: each record must link to the state before it and reproduce the
  // state after it, or the log and the graph disagree about history.
  for (const WalRecord& rec : wal.records) {
    if (rec.epoch <= store->epoch()) continue;  // covered by the snapshot
    if (rec.epoch != store->epoch() + 1) {
      return refuse(
          xbfs::Status::Corruption(
              "recovery: WAL epoch gap (at " + std::to_string(rec.epoch) +
              ", store at " + std::to_string(store->epoch()) + ")"),
          rec.epoch);
    }
    if (rec.prev_fingerprint != store->fingerprint()) {
      return refuse(
          xbfs::Status::Corruption(
              "recovery: fingerprint chain broken before epoch " +
              std::to_string(rec.epoch) + " (store " +
              hex(store->fingerprint()) + ", record expects " +
              hex(rec.prev_fingerprint) + ")"),
          rec.epoch);
    }
    store->apply_replayed(rec.batch, rec.compacted());
    if (store->fingerprint() != rec.fingerprint) {
      return refuse(
          xbfs::Status::Corruption(
              "recovery: replayed state diverges at epoch " +
              std::to_string(rec.epoch) + " (computed " +
              hex(store->fingerprint()) + ", recorded " +
              hex(rec.fingerprint) + ")"),
          rec.epoch);
    }
    rs.wal_records_replayed += 1;
  }
  rs.recovered_epoch = store->epoch();
  rs.recovered_fingerprint = store->fingerprint();
  rs.last_durable_epoch = rs.recovered_epoch;
  rs.last_durable_fingerprint = rs.recovered_fingerprint;

  // Reopen the segment at the truncation point: the torn tail is cut off
  // durably before any new record can land after it.
  WalWriter wal_writer;
  if (const xbfs::Status s = WalWriter::open_existing(
          cfg.dir + "/" + m.wal_file, wal.valid_bytes, &wal_writer);
      !s.ok()) {
    return refuse(s);
  }
  rs.wal_bytes = wal_writer.bytes();

  obs::FlightRecorder::global().record(
      "store", "recovery_ok",
      wal.torn_tail ? "torn tail truncated" : "clean tail",
      rs.recovered_epoch, rs.recovered_fingerprint, rs.wal_records_replayed);
  auto& metrics = obs::MetricsRegistry::global();
  if (metrics.enabled()) {
    metrics.counter("store.recovery.replayed").add(rs.wal_records_replayed);
    if (wal.torn_tail) metrics.counter("store.recovery.torn_tails").add(1);
  }

  auto mgr = std::make_unique<DurabilityManager>(
      cfg, std::move(wal_writer), snap_epoch, m.snapshot_file, rs);
  store->attach_durability(mgr.get());
  out->store = std::move(store);
  out->durability = std::move(mgr);
  return xbfs::Status::Ok();
}

}  // namespace xbfs::store
