// The durability manifest: one tiny file that names the newest snapshot
// and the WAL tail that continues it (docs/durability.md).
//
// Text, line-oriented, CRC-sealed:
//
//   xbfs-manifest v1
//   snapshot <file> <epoch> <fingerprint-hex>
//   wal <file>
//   crc <hex over the lines above>
//
// The manifest is always written tmp-then-atomic-rename, and only AFTER
// the snapshot and the fresh WAL segment it names are durably in place —
// so at every instant, the manifest on disk names a complete, replayable
// (snapshot, WAL) pair.  Rotation garbage (the previous pair) is deleted
// only after the new manifest is published.
#pragma once

#include <cstdint>
#include <string>

#include "core/status_code.h"

namespace xbfs::store {

inline constexpr const char* kManifestName = "MANIFEST";

struct Manifest {
  std::string snapshot_file;  ///< relative to the store dir
  std::uint64_t snapshot_epoch = 0;
  std::uint64_t snapshot_fingerprint = 0;
  std::string wal_file;  ///< relative to the store dir
};

/// Parse + CRC-verify dir/MANIFEST.  A missing file is Unavailable (fresh
/// dir); a garbled one is Corruption.
xbfs::Status read_manifest(const std::string& dir, Manifest* out);

/// Serialize + atomically publish dir/MANIFEST (tmp + rename + dir fsync).
xbfs::Status write_manifest(const std::string& dir, const Manifest& m);

}  // namespace xbfs::store
