#include "store/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "store/file.h"
#include "store/wal.h"  // crc32

namespace xbfs::store {

namespace {

std::string render_body(const Manifest& m) {
  char line[256];
  std::string body = "xbfs-manifest v1\n";
  std::snprintf(line, sizeof(line), "snapshot %s %" PRIu64 " %016" PRIx64 "\n",
                m.snapshot_file.c_str(), m.snapshot_epoch,
                m.snapshot_fingerprint);
  body += line;
  body += "wal " + m.wal_file + "\n";
  return body;
}

}  // namespace

xbfs::Status read_manifest(const std::string& dir, Manifest* out) {
  const std::string path = dir + "/" + kManifestName;
  if (!file_exists(path)) {
    return xbfs::Status::Unavailable("no manifest at '" + path + "'");
  }
  std::vector<std::uint8_t> bytes;
  if (const xbfs::Status s = read_file(path, &bytes); !s.ok()) return s;
  const std::string text(bytes.begin(), bytes.end());

  // Split off the trailing "crc <hex>\n" line and verify it seals the body.
  const std::size_t crc_at = text.rfind("crc ");
  if (crc_at == std::string::npos || crc_at == 0 || text[crc_at - 1] != '\n') {
    return xbfs::Status::Corruption("manifest '" + path + "': missing crc");
  }
  const std::string body = text.substr(0, crc_at);
  unsigned long long want = 0;
  if (std::sscanf(text.c_str() + crc_at, "crc %llx", &want) != 1 ||
      crc32(body.data(), body.size()) != static_cast<std::uint32_t>(want)) {
    return xbfs::Status::Corruption("manifest '" + path + "': CRC mismatch");
  }

  Manifest m;
  char snap[128] = {0};
  char wal[128] = {0};
  std::uint64_t epoch = 0;
  unsigned long long fp = 0;
  if (std::sscanf(body.c_str(),
                  "xbfs-manifest v1\nsnapshot %127s %" SCNu64 " %llx\nwal %127s",
                  snap, &epoch, &fp, wal) != 4) {
    return xbfs::Status::Corruption("manifest '" + path + "': parse error");
  }
  m.snapshot_file = snap;
  m.snapshot_epoch = epoch;
  m.snapshot_fingerprint = static_cast<std::uint64_t>(fp);
  m.wal_file = wal;
  *out = m;
  return xbfs::Status::Ok();
}

xbfs::Status write_manifest(const std::string& dir, const Manifest& m) {
  std::string text = render_body(m);
  char line[32];
  std::snprintf(line, sizeof(line), "crc %08x\n",
                crc32(text.data(), text.size()));
  text += line;

  const std::string tmp = dir + "/tmp-manifest";
  const std::string final_path = dir + "/" + kManifestName;
  File f;
  if (const xbfs::Status s = File::open_append(tmp, &f); !s.ok()) return s;
  if (f.size() != 0) {
    if (const xbfs::Status s = f.truncate_to(0); !s.ok()) return s;
  }
  xbfs::Status s = f.append(text.data(), text.size());
  if (s.ok()) s = f.sync();
  f.close();
  if (!s.ok()) {
    remove_file(tmp);
    return s;
  }
  if (s = atomic_publish(tmp, final_path); !s.ok()) {
    remove_file(tmp);
    return s;
  }
  return xbfs::Status::Ok();
}

}  // namespace xbfs::store
