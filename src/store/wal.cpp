#include "store/wal.h"

#include <array>
#include <chrono>
#include <cstring>

#include "hipsim/chk_point.h"
#include "obs/metrics.h"

namespace xbfs::store {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

template <typename T>
void put(std::vector<std::uint8_t>* out, T v) {
  const std::size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &v, sizeof(T));
}

template <typename T>
T get(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr std::size_t kOpBytes = 2 * sizeof(std::uint32_t) + 1;
constexpr std::size_t kPayloadFixed =
    3 * sizeof(std::uint64_t) + sizeof(std::uint32_t) + 1;
constexpr std::size_t kFrameBytes = 3 * sizeof(std::uint32_t);

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void encode_record(const WalRecord& rec, std::vector<std::uint8_t>* out) {
  std::vector<std::uint8_t> payload;
  payload.reserve(kPayloadFixed + rec.batch.size() * kOpBytes);
  put<std::uint64_t>(&payload, rec.epoch);
  put<std::uint64_t>(&payload, rec.fingerprint);
  put<std::uint64_t>(&payload, rec.prev_fingerprint);
  put<std::uint32_t>(&payload, static_cast<std::uint32_t>(rec.batch.size()));
  put<std::uint8_t>(&payload, rec.flags);
  for (const dyn::EdgeOp& op : rec.batch.ops) {
    put<std::uint32_t>(&payload, op.u);
    put<std::uint32_t>(&payload, op.v);
    put<std::uint8_t>(&payload, op.insert ? 1 : 0);
  }
  put<std::uint32_t>(out, kWalRecordMagic);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  put<std::uint32_t>(out, crc32(payload.data(), payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

DecodeResult decode_record(const std::uint8_t* data, std::size_t n,
                           WalRecord* rec, std::size_t* consumed) {
  if (n < kFrameBytes) return DecodeResult::NeedMore;
  if (get<std::uint32_t>(data) != kWalRecordMagic) return DecodeResult::Corrupt;
  const std::uint32_t len = get<std::uint32_t>(data + 4);
  const std::uint32_t want_crc = get<std::uint32_t>(data + 8);
  if (len < kPayloadFixed || len > kWalMaxPayload) return DecodeResult::Corrupt;
  if (n < kFrameBytes + len) return DecodeResult::NeedMore;
  const std::uint8_t* payload = data + kFrameBytes;
  if (crc32(payload, len) != want_crc) return DecodeResult::Corrupt;
  rec->epoch = get<std::uint64_t>(payload);
  rec->fingerprint = get<std::uint64_t>(payload + 8);
  rec->prev_fingerprint = get<std::uint64_t>(payload + 16);
  const std::uint32_t ops = get<std::uint32_t>(payload + 24);
  rec->flags = payload[28];
  if (len != kPayloadFixed + static_cast<std::size_t>(ops) * kOpBytes) {
    // CRC passed but the op count disagrees with the length: structurally
    // corrupt (a CRC collision on garbage), refuse it.
    return DecodeResult::Corrupt;
  }
  rec->batch.ops.clear();
  rec->batch.ops.reserve(ops);
  const std::uint8_t* p = payload + kPayloadFixed;
  for (std::uint32_t i = 0; i < ops; ++i, p += kOpBytes) {
    rec->batch.ops.push_back({get<std::uint32_t>(p), get<std::uint32_t>(p + 4),
                              p[8] != 0});
  }
  *consumed = kFrameBytes + len;
  return DecodeResult::Ok;
}

xbfs::Status read_wal(const std::string& path, WalReadResult* out) {
  *out = WalReadResult{};
  std::vector<std::uint8_t> bytes;
  if (const xbfs::Status s = read_file(path, &bytes); !s.ok()) return s;
  out->total_bytes = bytes.size();
  if (bytes.size() < kWalHeaderBytes) {
    return xbfs::Status::Corruption("WAL '" + path + "': short header (" +
                                    std::to_string(bytes.size()) + " bytes)");
  }
  if (get<std::uint32_t>(bytes.data()) != kWalFileMagic ||
      get<std::uint32_t>(bytes.data() + 4) != kWalFileVersion) {
    return xbfs::Status::Corruption("WAL '" + path +
                                    "': bad magic/version header");
  }
  std::size_t off = kWalHeaderBytes;
  while (off < bytes.size()) {
    WalRecord rec;
    std::size_t consumed = 0;
    const DecodeResult r =
        decode_record(bytes.data() + off, bytes.size() - off, &rec, &consumed);
    if (r != DecodeResult::Ok) {
      // Longest valid prefix: the first short/garbled record is the torn
      // tail — report it and stop, never replay past it.
      out->torn_tail = true;
      break;
    }
    out->records.push_back(std::move(rec));
    off += consumed;
  }
  out->valid_bytes = off;
  return xbfs::Status::Ok();
}

xbfs::Status WalWriter::create(const std::string& path, WalWriter* out) {
  remove_file(path);
  WalWriter w;
  if (const xbfs::Status s = File::open_append(path, &w.file_); !s.ok()) {
    return s;
  }
  std::vector<std::uint8_t> header;
  put<std::uint32_t>(&header, kWalFileMagic);
  put<std::uint32_t>(&header, kWalFileVersion);
  if (const xbfs::Status s = w.file_.append(header.data(), header.size());
      !s.ok()) {
    return s;
  }
  if (const xbfs::Status s = w.file_.sync(); !s.ok()) return s;
  *out = std::move(w);
  return xbfs::Status::Ok();
}

xbfs::Status WalWriter::open_existing(const std::string& path,
                                      std::uint64_t valid_bytes,
                                      WalWriter* out) {
  WalWriter w;
  if (const xbfs::Status s = File::open_append(path, &w.file_); !s.ok()) {
    return s;
  }
  if (w.file_.size() < kWalHeaderBytes || valid_bytes < kWalHeaderBytes) {
    return xbfs::Status::Corruption("WAL '" + path +
                                    "': cannot continue a headerless segment");
  }
  if (valid_bytes < w.file_.size()) {
    // Drop the torn tail before the first new append lands after it.
    if (const xbfs::Status s = w.file_.truncate_to(valid_bytes); !s.ok()) {
      return s;
    }
    if (const xbfs::Status s = w.file_.sync(); !s.ok()) return s;
  }
  *out = std::move(w);
  return xbfs::Status::Ok();
}

xbfs::Status WalWriter::append(const WalRecord& rec) {
  if (!file_.is_open()) {
    return xbfs::Status::Internal("WalWriter::append: no open segment");
  }
  // Yield points for SchedCheck: the append/fsync/publish handshake is
  // where a crash or an interleaved reader is interesting.  Legal under
  // writer_mu_ for the same reason as dyn.store.publish — harnesses place
  // at most one writer task (docs/modelcheck.md).
  sim::chk_point("store.wal.append", rec.epoch);
  std::vector<std::uint8_t> buf;
  encode_record(rec, &buf);
  const std::uint64_t rollback = file_.size();
  auto& metrics = obs::MetricsRegistry::global();

  const auto t_append = std::chrono::steady_clock::now();
  xbfs::Status s = file_.append(buf.data(), buf.size());
  if (metrics.enabled()) {
    metrics.histogram("store.wal.append_us").observe(elapsed_us(t_append));
  }
  if (!s.ok()) {
    // Torn/short write: the prefix on disk is not a record — cut it off so
    // the segment stays a sequence of whole, valid records.
    (void)file_.truncate_to(rollback);
    return s;
  }

  sim::chk_point("store.wal.fsync", rec.epoch);
  const auto t_sync = std::chrono::steady_clock::now();
  s = file_.sync();
  if (metrics.enabled()) {
    metrics.histogram("store.wal.fsync_us").observe(elapsed_us(t_sync));
  }
  if (!s.ok()) {
    // The record may or may not have reached media; either way it is not
    // durable, so it must not become visible.  Roll the file back.
    (void)file_.truncate_to(rollback);
    (void)file_.sync();
    return s;
  }
  return xbfs::Status::Ok();
}

}  // namespace xbfs::store
