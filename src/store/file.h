// store::File — the single chokepoint between the durability layer and the
// filesystem (docs/durability.md).
//
// Every physical disk operation of the durable write path (WAL appends,
// fsyncs, snapshot spills, manifest renames) goes through this shim, which
// buys two things:
//
//   * Deterministic disk faults.  sim::FaultInjector's disk knobs
//     (XBFS_FAULTS=disk_torn=…,disk_short=…,fsync_fail=…) are realized
//     here: a torn write persists a prefix of the buffer and fails, a
//     short write persists all but the final bytes and fails, a failed
//     fsync reports failure without guaranteeing anything reached media.
//     Decisions are seeded and counter-based, so chaos runs replay.
//
//   * Crash-at-op chaos.  arm_crash_at_op(n, frac) — or the environment,
//     XBFS_DURABLE_CRASH="at=N[,frac=F]" — SIGKILLs the process at the
//     n-th physical disk op, after persisting only `frac` of that op's
//     buffer.  This is how the kill-and-recover harness lands a SIGKILL
//     mid-write and manufactures a torn final WAL record
//     (examples/durability_crash.cpp).
//
// POSIX-only (open/write/fsync/rename), like the rest of the Linux-hosted
// simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status_code.h"

namespace xbfs::store {

/// Physical disk ops performed so far process-wide (appends, fsyncs,
/// renames) — the coordinate system of the crash-at-op knob.
std::uint64_t disk_ops();

/// Arm a deterministic crash: at the `op_index`-th physical disk op
/// (1-based, counted across the process), persist `write_fraction` of the
/// op's buffer (appends only; fsync/rename crash before acting) and raise
/// SIGKILL.  0 disarms.  Also armed from XBFS_DURABLE_CRASH on first use.
void arm_crash_at_op(std::uint64_t op_index, double write_fraction = 0.5);

/// Append-only fd wrapper with fault injection.  Move-only; closes on
/// destruction (without fsync — durability is always an explicit sync()).
class File {
 public:
  File() = default;
  ~File();
  File(File&& o) noexcept;
  File& operator=(File&& o) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Open (creating if absent) for appending.  The write offset is always
  /// the end of file, including after truncate_to().
  static xbfs::Status open_append(const std::string& path, File* out);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  /// Current file size (bytes persisted + buffered); tracked, not stat'ed.
  std::uint64_t size() const { return size_; }

  /// Append `n` bytes.  An injected torn/short write persists a strict
  /// prefix and returns FaultInjected — callers roll back with
  /// truncate_to().  An armed crash SIGKILLs mid-write.
  xbfs::Status append(const void* data, std::size_t n);
  /// fsync.  An injected fsync failure returns FaultInjected and
  /// guarantees nothing about what reached media.
  xbfs::Status sync();
  /// Shrink to `new_size` (drops a torn tail / rolls back a failed append).
  xbfs::Status truncate_to(std::uint64_t new_size);
  void close();

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
};

/// Whole-file read (no fault injection — reads don't tear).
xbfs::Status read_file(const std::string& path, std::vector<std::uint8_t>* out);

/// rename(tmp, final) + fsync of the containing directory: the atomic
/// publish step of snapshot spills and manifest updates.  After an ok
/// return the final path durably names the new content; after a crash at
/// any prior point the final path is either absent or the old content.
xbfs::Status atomic_publish(const std::string& tmp_path,
                            const std::string& final_path);

bool file_exists(const std::string& path);
void remove_file(const std::string& path);  ///< best-effort
xbfs::Status ensure_dir(const std::string& path);

}  // namespace xbfs::store
