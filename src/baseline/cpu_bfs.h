// CPU BFS baselines (real wall-clock, no simulation): a serial queue BFS
// and a level-synchronous multithreaded BFS.  These anchor the examples and
// stand in for the CPU-based Graph500 implementation the paper compares
// per-GCD throughput against (0.4 GTEPS/GCD on Frontier, June 2024 list).
#pragma once

#include <cstdint>
#include <vector>

#include "core/traversal_engine.h"
#include "graph/csr.h"

namespace xbfs::baseline {

struct CpuBfsResult {
  std::vector<std::int32_t> levels;
  double wall_ms = 0.0;
  std::uint64_t edges_traversed = 0;  ///< undirected edges reached
  double gteps = 0.0;
};

/// Serial queue BFS, timed.
CpuBfsResult cpu_bfs_serial(const graph::Csr& g, graph::vid_t src);

/// Level-synchronous parallel BFS over `num_threads` std::threads with
/// atomic level claims.  num_threads==0 uses hardware concurrency.
CpuBfsResult cpu_bfs_parallel(const graph::Csr& g, graph::vid_t src,
                              unsigned num_threads = 0);

/// TraversalEngine adapter over the host BFS implementations.  Runs on real
/// CPU threads, never on the simulated device — which makes it immune to
/// injected device faults and the terminal rung of the serving engine's
/// degradation ladder.
class CpuBfsEngine final : public core::TraversalEngine {
 public:
  enum class Mode { Serial, Parallel };

  explicit CpuBfsEngine(const graph::Csr& g, Mode mode = Mode::Parallel,
                        unsigned num_threads = 0)
      : g_(g), mode_(mode), num_threads_(num_threads) {}

  core::BfsResult run(graph::vid_t src) override;

  const char* name() const override {
    return mode_ == Mode::Serial ? "cpu-serial" : "cpu-parallel";
  }
  core::EngineCapabilities capabilities() const override {
    return {};  // host-side: not on_device, not adaptive, no parents
  }

 private:
  const graph::Csr& g_;
  Mode mode_;
  unsigned num_threads_;
};

}  // namespace xbfs::baseline
