// CPU BFS baselines (real wall-clock, no simulation): a serial queue BFS
// and a level-synchronous multithreaded BFS.  These anchor the examples and
// stand in for the CPU-based Graph500 implementation the paper compares
// per-GCD throughput against (0.4 GTEPS/GCD on Frontier, June 2024 list).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace xbfs::baseline {

struct CpuBfsResult {
  std::vector<std::int32_t> levels;
  double wall_ms = 0.0;
  std::uint64_t edges_traversed = 0;  ///< undirected edges reached
  double gteps = 0.0;
};

/// Serial queue BFS, timed.
CpuBfsResult cpu_bfs_serial(const graph::Csr& g, graph::vid_t src);

/// Level-synchronous parallel BFS over `num_threads` std::threads with
/// atomic level claims.  num_threads==0 uses hardware concurrency.
CpuBfsResult cpu_bfs_parallel(const graph::Csr& g, graph::vid_t src,
                              unsigned num_threads = 0);

}  // namespace xbfs::baseline
