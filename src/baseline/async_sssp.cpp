#include "baseline/async_sssp.h"

#include <algorithm>
#include <utility>

#include "core/report.h"
#include "core/status.h"

namespace xbfs::baseline {

using core::auto_grid_blocks;
using core::kUnvisited;
using graph::eid_t;
using graph::vid_t;

AsyncSsspBfs::AsyncSsspBfs(sim::Device& dev, const graph::DeviceCsr& g,
                           AsyncSsspConfig cfg)
    : dev_(dev), g_(g), cfg_(cfg) {
  dist_ = dev.alloc<std::uint32_t>(g.n, "sssp.dist");
  dirty_ = dev.alloc<std::uint8_t>(g.n, "sssp.dirty");
  counters_ = dev.alloc<std::uint32_t>(2, "sssp.counters");
}

core::BfsResult AsyncSsspBfs::run(vid_t src) {
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  const std::size_t prof_start = dev_.profiler().records().size();
  core::BfsResult result;

  auto dist = dist_.span();
  auto dirty = dirty_.span();
  auto counters = counters_.span();
  auto offsets = g_.offsets_span();
  auto cols = g_.cols_span();
  const std::uint64_t n = g_.n;

  sim::LaunchConfig lc;
  lc.block_threads = cfg_.block_threads;
  lc.grid_blocks = auto_grid_blocks(dev_.profile(), n, cfg_.block_threads);
  dev_.launch(s, "sssp_init", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(n, [&](std::uint64_t v) {
      ctx.store(dist, v, v == src ? 0u : kUnvisited);
      ctx.store(dirty, v, v == src ? std::uint8_t{1} : std::uint8_t{0});
    });
  });

  std::uint64_t relaxations = 0;
  std::uint32_t rounds = 0;
  for (;; ++rounds) {
    dev_.profiler().set_context(static_cast<int>(rounds), "async-sssp");
    const double round_t0 = dev_.now_us();
    sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
    dev_.launch(s, "sssp_reset", rc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t < 2) ctx.store(counters, t, std::uint32_t{0});
      });
    });

    // Asynchronous relaxation sweep: every vertex that improved last round
    // pushes its distance to all neighbors via atomicMin.  No ordering, no
    // frontier queue — and therefore repeated improvement cascades.
    dev_.launch(s, "sssp_relax", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      // The dirty flags are deliberately unsynchronized (distances are the
      // atomics): a lost set re-marks next round via atomicMin's return, a
      // lost clear only re-relaxes an already-settled vertex.
      sim::racy_ok allow(ctx,
                         "async-sssp: unsynchronized dirty-flag set/clear; "
                         "convergence is driven by atomicMin on dist");
      blk.grid_stride(n, [&](std::uint64_t v) {
        if (!ctx.load(dirty, v)) {
          ctx.slots(1, 1);
          return;
        }
        ctx.store(dirty, v, std::uint8_t{0});
        const std::uint32_t dv = ctx.atomic_load(dist, v);
        if (dv == kUnvisited) return;
        const eid_t b = ctx.load(offsets, v);
        const eid_t e = ctx.load(offsets, v + 1);
        std::uint32_t relaxed = 0;
        for (eid_t j = b; j < e; ++j) {
          const vid_t w = ctx.load(cols, j);
          const std::uint32_t old = ctx.atomic_min(dist, w, dv + 1);
          ++relaxed;
          if (dv + 1 < old) {
            ctx.store(dirty, w, std::uint8_t{1});
            ctx.atomic_add(counters, 0, std::uint32_t{1});
          }
        }
        ctx.slots(2 * (e - b) + 2, 2 * (e - b) + 2);
        if (relaxed > 0) ctx.atomic_add(counters, 1, relaxed);
      });
    });
    s.synchronize();
    dev_.memcpy_d2h(s, counters_);
    relaxations += counters_.h_read(1);

    core::LevelStats st;
    st.level = rounds;
    st.strategy = core::Strategy::ScanFree;  // closest telemetry bucket
    st.time_ms = (dev_.now_us() - round_t0) / 1000.0;
    st.kernels = 2;
    result.level_stats.push_back(st);
    if (counters_.h_read(0) == 0) break;
  }
  last_relaxations_ = relaxations;

  dev_.memcpy_d2h(s, dist_);
  result.levels.resize(n);
  const std::uint32_t* dist_host = std::as_const(dist_).host_data();
  const eid_t* offsets_host = g_.offsets.host_data();
  for (std::uint64_t v = 0; v < n; ++v) {
    result.levels[v] = dist_host[v] == kUnvisited
                           ? std::int32_t{-1}
                           : static_cast<std::int32_t>(dist_host[v]);
  }
  s.synchronize();

  result.depth = static_cast<std::uint32_t>(result.level_stats.size());
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  std::uint64_t reached_degree = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (result.levels[v] >= 0) {
      reached_degree += offsets_host[v + 1] - offsets_host[v];
    }
  }
  result.edges_traversed = reached_degree / 2;
  result.gteps = core::safe_gteps(result.edges_traversed, result.total_ms);
  core::record_run(result, "async_sssp", g_.n, g_.m,
                   static_cast<std::int64_t>(src), nullptr,
                   &dev_.profiler(), prof_start);
  return result;
}

}  // namespace xbfs::baseline
