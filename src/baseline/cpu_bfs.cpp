#include "baseline/cpu_bfs.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>

#include "core/xbfs.h"
#include "graph/reference.h"

namespace xbfs::baseline {

using graph::Csr;
using graph::vid_t;

namespace {

CpuBfsResult finalize(const Csr& g, std::vector<std::int32_t> levels,
                      double wall_ms) {
  CpuBfsResult r;
  r.levels = std::move(levels);
  r.wall_ms = wall_ms;
  std::uint64_t reached_degree = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.levels[v] >= 0) reached_degree += g.degree(v);
  }
  r.edges_traversed = reached_degree / 2;
  r.gteps = core::safe_gteps(r.edges_traversed, wall_ms);
  return r;
}

}  // namespace

CpuBfsResult cpu_bfs_serial(const Csr& g, vid_t src) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::int32_t> levels = graph::reference_bfs(g, src);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return finalize(g, std::move(levels), ms);
}

CpuBfsResult cpu_bfs_parallel(const Csr& g, vid_t src, unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const vid_t n = g.num_vertices();
  std::vector<std::atomic<std::int32_t>> levels(n);
  for (auto& l : levels) l.store(-1, std::memory_order_relaxed);
  levels[src].store(0, std::memory_order_relaxed);

  std::vector<vid_t> frontier = {src};
  const auto t0 = std::chrono::steady_clock::now();
  std::int32_t level = 0;
  while (!frontier.empty()) {
    const std::int32_t next_level = level + 1;
    std::vector<std::vector<vid_t>> next_parts(num_threads);
    std::atomic<std::size_t> cursor{0};
    auto worker = [&](unsigned tid) {
      constexpr std::size_t kChunk = 64;
      std::vector<vid_t>& out = next_parts[tid];
      for (;;) {
        const std::size_t begin =
            cursor.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= frontier.size()) break;
        const std::size_t end =
            std::min(begin + kChunk, frontier.size());
        for (std::size_t i = begin; i < end; ++i) {
          for (vid_t w : g.neighbors(frontier[i])) {
            std::int32_t expected = -1;
            if (levels[w].compare_exchange_strong(
                    expected, next_level, std::memory_order_relaxed)) {
              out.push_back(w);
            }
          }
        }
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(num_threads - 1);
    for (unsigned t = 1; t < num_threads; ++t) threads.emplace_back(worker, t);
    worker(0);
    for (auto& t : threads) t.join();

    frontier.clear();
    for (auto& part : next_parts) {
      frontier.insert(frontier.end(), part.begin(), part.end());
    }
    ++level;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::vector<std::int32_t> out(n);
  for (vid_t v = 0; v < n; ++v) out[v] = levels[v].load(std::memory_order_relaxed);
  return finalize(g, std::move(out), ms);
}

core::BfsResult CpuBfsEngine::run(vid_t src) {
  CpuBfsResult host = mode_ == Mode::Serial
                          ? cpu_bfs_serial(g_, src)
                          : cpu_bfs_parallel(g_, src, num_threads_);
  core::BfsResult r;
  std::int32_t max_level = -1;
  for (std::int32_t l : host.levels) max_level = std::max(max_level, l);
  r.depth = static_cast<std::uint32_t>(max_level + 1);
  r.levels = std::move(host.levels);
  r.total_ms = host.wall_ms;
  r.edges_traversed = host.edges_traversed;
  r.gteps = host.gteps;
  return r;
}

}  // namespace xbfs::baseline
