// Hierarchical-queue BFS baseline (Luo, Wong, Hwu DAC'10 — paper Sec. II):
// each block accumulates discovered vertices in a small LDS-resident queue
// and flushes it to the global frontier in bulk.  "Performs well at levels
// with very few frontiers but suffers from enormous space consumption and
// inefficient strided memory access at levels with substantial frontiers"
// — both effects emerge from the simulation: the per-block queues overflow
// into global spill regions and the flush pattern is strided.
#pragma once

#include <cstdint>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::baseline {

struct HierQueueConfig {
  unsigned block_threads = 256;
  unsigned block_queue_capacity = 1024;  ///< LDS entries per block
};

class HierQueueBfs final : public core::TraversalEngine {
 public:
  HierQueueBfs(sim::Device& dev, const graph::DeviceCsr& g,
               HierQueueConfig cfg = {});

  core::BfsResult run(graph::vid_t src) override;

  const char* name() const override { return "hier-queue"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true};
  }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  HierQueueConfig cfg_;
  sim::DeviceBuffer<std::uint32_t> status_;
  sim::DeviceBuffer<graph::vid_t> frontier_a_;
  sim::DeviceBuffer<graph::vid_t> frontier_b_;
  sim::DeviceBuffer<std::uint32_t> counters_;  // [0]=next tail
};

}  // namespace xbfs::baseline
