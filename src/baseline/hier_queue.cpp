#include "baseline/hier_queue.h"

#include <algorithm>
#include <utility>

#include "core/report.h"
#include "core/status.h"

namespace xbfs::baseline {

using core::auto_grid_blocks;
using core::kUnvisited;
using graph::eid_t;
using graph::vid_t;

HierQueueBfs::HierQueueBfs(sim::Device& dev, const graph::DeviceCsr& g,
                           HierQueueConfig cfg)
    : dev_(dev), g_(g), cfg_(cfg) {
  status_ = dev.alloc<std::uint32_t>(g.n, "hq.status");
  frontier_a_ = dev.alloc<vid_t>(g.n, "hq.frontier_a");
  frontier_b_ = dev.alloc<vid_t>(g.n, "hq.frontier_b");
  counters_ = dev.alloc<std::uint32_t>(1, "hq.counters");
}

core::BfsResult HierQueueBfs::run(vid_t src) {
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  const std::size_t prof_start = dev_.profiler().records().size();
  core::BfsResult result;

  auto status = status_.span();
  auto counters = counters_.span();
  auto offsets = g_.offsets_span();
  auto cols = g_.cols_span();
  const eid_t* offsets_host = g_.offsets.host_data();

  core::launch_init_status(dev_, s, status, cfg_.block_threads);
  {
    auto frontier = frontier_a_.span();
    sim::LaunchConfig lc{.grid_blocks = 1, .block_threads = 64};
    dev_.launch(s, "hq_seed", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t != 0) return;
        ctx.store(status, src, std::uint32_t{0});
        ctx.store(frontier, 0, src);
      });
    });
  }

  const unsigned cap = cfg_.block_queue_capacity;
  std::uint32_t frontier_size = 1;
  bool use_a = true;
  for (std::uint32_t level = 0; frontier_size > 0; ++level) {
    dev_.profiler().set_context(static_cast<int>(level), "hier-queue");
    const double level_t0 = dev_.now_us();

    sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
    dev_.launch(s, "hq_reset", rc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t == 0) ctx.store(counters, 0, std::uint32_t{0});
      });
    });

    auto vin = use_a ? frontier_a_.cspan() : frontier_b_.cspan();
    auto vout = use_a ? frontier_b_.span() : frontier_a_.span();
    const std::uint32_t fsize = frontier_size;
    const std::uint32_t next_level = level + 1;

    sim::LaunchConfig ec;
    ec.block_threads = cfg_.block_threads;
    ec.grid_blocks =
        auto_grid_blocks(dev_.profile(), fsize, cfg_.block_threads);
    dev_.launch(s, "hq_expand", ec, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      // Block-local queue in LDS; overflow goes straight to the global
      // queue with a per-vertex atomic (the space/pressure pathology).
      vid_t* block_q = blk.shmem().alloc<vid_t>(cap);
      std::uint32_t block_count = 0;

      blk.grid_stride(fsize, [&](std::uint64_t i) {
        const vid_t v = ctx.load(vin, i);
        const eid_t b = ctx.load(offsets, v);
        const eid_t e = ctx.load(offsets, v + 1);
        for (eid_t j = b; j < e; ++j) {
          const vid_t w = ctx.load(cols, j);
          std::uint32_t seen;
          {
            // Cheap pre-check races with other blocks' CAS claims; a stale
            // read only falls through to the CAS, which decides atomically.
            sim::racy_ok allow(ctx,
                               "hier-queue: plain status pre-check before "
                               "the authoritative CAS claim");
            seen = ctx.load(status, w);
          }
          if (seen != kUnvisited) continue;
          const std::uint32_t old =
              ctx.atomic_cas(status, w, kUnvisited, next_level);
          if (old != kUnvisited) continue;
          if (block_count < cap) {
            block_q[block_count++] = w;  // LDS append (not global traffic)
          } else {
            const std::uint32_t slot =
                ctx.atomic_add(counters, 0, std::uint32_t{1});
            ctx.store(vout, slot, w);
          }
        }
        ctx.slots(2 * (e - b) + 1, 2 * (e - b) + 1);
      });

      // Bulk flush of the block queue: one tail atomic, then a burst of
      // strided stores (blocks flush to disjoint, scattered regions).
      if (block_count > 0) {
        const std::uint32_t base =
            ctx.atomic_add(counters, 0, block_count);
        for (std::uint32_t i = 0; i < block_count; ++i) {
          ctx.store(vout, base + i, block_q[i]);
        }
        ctx.slots(block_count, block_count);
      }
    });

    s.synchronize();
    dev_.memcpy_d2h(s, counters_);
    frontier_size = counters_.h_read(0);
    use_a = !use_a;

    core::LevelStats st;
    st.level = level;
    st.strategy = core::Strategy::ScanFree;  // closest telemetry bucket
    st.frontier_count = fsize;
    st.time_ms = (dev_.now_us() - level_t0) / 1000.0;
    st.kernels = 2;
    result.level_stats.push_back(st);
  }

  const std::uint64_t n = g_.n;
  dev_.memcpy_d2h(s, status_);
  result.levels.resize(n);
  const std::uint32_t* status_host = std::as_const(status_).host_data();
  for (std::uint64_t v = 0; v < n; ++v) {
    result.levels[v] = status_host[v] == kUnvisited
                           ? std::int32_t{-1}
                           : static_cast<std::int32_t>(status_host[v]);
  }
  s.synchronize();

  result.depth = static_cast<std::uint32_t>(result.level_stats.size());
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  std::uint64_t reached_degree = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (result.levels[v] >= 0) {
      reached_degree += offsets_host[v + 1] - offsets_host[v];
    }
  }
  result.edges_traversed = reached_degree / 2;
  result.gteps = core::safe_gteps(result.edges_traversed, result.total_ms);
  core::record_run(result, "hier_queue", g_.n, g_.m,
                   static_cast<std::int64_t>(src), nullptr,
                   &dev_.profiler(), prof_start);
  return result;
}

}  // namespace xbfs::baseline
