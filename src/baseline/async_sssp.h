// SSSP-style asynchronous BFS baseline (paper Sec. II): treating BFS as
// unit-weight SSSP removes level synchronization — any vertex whose
// tentative distance improves re-relaxes its neighbors — at the price of
// redundant re-visits across iterations, the overhead SIMD-X identified as
// the reason SSSP-based traversal loses to level-synchronous BFS.
//
// The simulation runs Bellman-Ford-style rounds (each round one kernel, no
// frontier, atomicMin distance updates) until a fixed point; the profiler
// exposes the redundant-relaxation count the paper's argument rests on.
#pragma once

#include <cstdint>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::baseline {

struct AsyncSsspConfig {
  unsigned block_threads = 256;
};

class AsyncSsspBfs final : public core::TraversalEngine {
 public:
  AsyncSsspBfs(sim::Device& dev, const graph::DeviceCsr& g,
               AsyncSsspConfig cfg = {});

  core::BfsResult run(graph::vid_t src) override;
  const char* name() const override { return "async-sssp"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true};
  }

  /// Edge relaxations performed by the last run (>= edges reached; the
  /// excess is the redundant work of the asynchronous formulation).
  std::uint64_t last_relaxations() const { return last_relaxations_; }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  AsyncSsspConfig cfg_;
  sim::DeviceBuffer<std::uint32_t> dist_;
  sim::DeviceBuffer<std::uint8_t> dirty_;  ///< vertex improved last round
  sim::DeviceBuffer<std::uint32_t> counters_;  // [0]=changed, [1..2]=relaxations lo/hi
  std::uint64_t last_relaxations_ = 0;
};

}  // namespace xbfs::baseline
