// Gunrock-style edge-frontier filtering BFS (the paper's Fig. 8 baseline).
//
// Level-synchronous advance/filter: `advance` gathers every neighbor of the
// vertex frontier into an *edge frontier* (no atomic claim, so duplicates
// survive), `filter` marks unvisited entries and compacts them into the next
// vertex frontier.  This is the design whose "excessive space consumption
// and duplicated frontiers at high-frontier levels" XBFS improves on
// (Sec. II) — both costs are reproduced faithfully here.
#pragma once

#include <cstdint>
#include <vector>

#include "core/xbfs.h"  // reuses BfsResult/LevelStats telemetry types
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::baseline {

struct GunrockConfig {
  unsigned block_threads = 256;
  unsigned grid_blocks = 0;  ///< 0 = auto
};

class GunrockLikeBfs final : public core::TraversalEngine {
 public:
  /// Allocates the O(|E|) edge-frontier buffers up front (the space cost
  /// the paper calls out).
  GunrockLikeBfs(sim::Device& dev, const graph::DeviceCsr& g,
                 GunrockConfig cfg = {});

  core::BfsResult run(graph::vid_t src) override;

  const char* name() const override { return "gunrock-like"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true};
  }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  GunrockConfig cfg_;
  sim::DeviceBuffer<std::uint32_t> status_;
  sim::DeviceBuffer<graph::vid_t> vertex_frontier_a_;
  sim::DeviceBuffer<graph::vid_t> vertex_frontier_b_;
  sim::DeviceBuffer<graph::vid_t> edge_frontier_;
  sim::DeviceBuffer<std::uint32_t> counters_;  // [0]=edge tail, [1]=vertex tail
};

}  // namespace xbfs::baseline
