#include "baseline/gunrock_like.h"

#include <algorithm>
#include <array>
#include <utility>

#include "core/report.h"
#include "core/status.h"
#include "hipsim/intrinsics.h"

namespace xbfs::baseline {

using core::kUnvisited;
using graph::eid_t;
using graph::vid_t;
using sim::mask_rank;
using sim::popcll;

namespace {
constexpr unsigned kMaxWave = 64;
constexpr std::size_t kEdgeTail = 0;
constexpr std::size_t kVertexTail = 1;
}  // namespace

GunrockLikeBfs::GunrockLikeBfs(sim::Device& dev, const graph::DeviceCsr& g,
                               GunrockConfig cfg)
    : dev_(dev), g_(g), cfg_(cfg) {
  status_ = dev.alloc<std::uint32_t>(g.n, "gunrock.status");
  vertex_frontier_a_ = dev.alloc<vid_t>(g.n, "gunrock.frontier_a");
  // Duplicates can push the compacted frontier past |V|; Gunrock sizes
  // these O(|E|) — the space cost the paper criticizes.
  vertex_frontier_b_ = dev.alloc<vid_t>(std::max<std::uint64_t>(g.m, g.n),
                                        "gunrock.frontier_b");
  edge_frontier_ = dev.alloc<vid_t>(std::max<std::uint64_t>(g.m, g.n),
                                    "gunrock.edge_frontier");
  counters_ = dev.alloc<std::uint32_t>(2, "gunrock.counters");
}

core::BfsResult GunrockLikeBfs::run(vid_t src) {
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  const std::size_t prof_start = dev_.profiler().records().size();
  core::BfsResult result;

  core::launch_init_status(dev_, s, status_.span(), cfg_.block_threads);

  // Seed the frontier.
  {
    auto status = status_.span();
    auto frontier = vertex_frontier_a_.span();
    sim::LaunchConfig lc{.grid_blocks = 1, .block_threads = 64};
    dev_.launch(s, "gunrock_enqueue_source", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t != 0) return;
        ctx.store(status, src, std::uint32_t{0});
        ctx.store(frontier, 0, src);
      });
    });
  }

  auto offsets = g_.offsets_span();
  auto cols = g_.cols_span();
  auto status = status_.span();
  auto counters = counters_.span();
  const eid_t* offsets_host = g_.offsets.host_data();

  std::uint32_t frontier_size = 1;
  bool use_a = true;
  for (std::uint32_t level = 0; frontier_size > 0; ++level) {
    dev_.profiler().set_context(static_cast<int>(level), "gunrock-like");
    const double level_t0 = dev_.now_us();

    // Reset tails.
    sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
    dev_.launch(s, "gunrock_reset", rc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t < 2) ctx.store(counters, t, std::uint32_t{0});
      });
    });

    auto vertex_in =
        use_a ? vertex_frontier_a_.cspan() : vertex_frontier_b_.cspan();
    auto vertex_out =
        use_a ? vertex_frontier_b_.span() : vertex_frontier_a_.span();
    auto edge_q = edge_frontier_.span();
    auto edge_qc = edge_frontier_.cspan();

    // --- advance: gather all neighbors of the frontier into the edge
    // frontier; a cheap visited pre-check drops some but races leave dupes.
    const std::uint32_t fsize = frontier_size;
    sim::LaunchConfig ac;
    ac.block_threads = cfg_.block_threads;
    ac.grid_blocks =
        cfg_.grid_blocks != 0
            ? cfg_.grid_blocks
            : core::auto_grid_blocks(dev_.profile(), fsize,
                                     cfg_.block_threads);
    dev_.launch(s, "gunrock_advance", ac, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.wavefronts([&](sim::WavefrontCtx& wf, unsigned) {
        const unsigned W = wf.size();
        const std::uint64_t total_wfs =
            std::uint64_t{blk.grid_blocks()} * blk.wavefronts_per_block();
        for (std::uint64_t base = std::uint64_t{wf.id()} * W; base < fsize;
             base += total_wfs * W) {
          for (unsigned l = 0; l < W; ++l) {
            const std::uint64_t i = base + l;
            if (i >= fsize) continue;
            const vid_t v = ctx.load(vertex_in, i);
            const eid_t b = ctx.load(offsets, v);
            const eid_t e = ctx.load(offsets, v + 1);
            for (eid_t j = b; j < e; ++j) {
              const vid_t w = ctx.load(cols, j);
              if (ctx.load(status, w) != kUnvisited) continue;
              const std::uint32_t slot =
                  ctx.atomic_add(counters, kEdgeTail, std::uint32_t{1});
              ctx.store(edge_q, slot, w);
            }
          }
          ctx.slots(W, W);
        }
      });
    });

    // Host reads the edge-frontier length for the filter launch (partial
    // copy: one of the two counter words).
    dev_.memcpy_d2h(s, sizeof(std::uint32_t));
    counters_.mark_host_synced();
    const std::uint32_t edge_count = counters_.h_read(kEdgeTail);

    // --- filter: claim unvisited entries, compact into the vertex frontier.
    const std::uint32_t next_level = level + 1;
    sim::LaunchConfig fc;
    fc.block_threads = cfg_.block_threads;
    fc.grid_blocks =
        cfg_.grid_blocks != 0
            ? cfg_.grid_blocks
            : core::auto_grid_blocks(
                  dev_.profile(), std::max<std::uint32_t>(edge_count, 1),
                  cfg_.block_threads);
    dev_.launch(s, "gunrock_filter", fc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.wavefronts([&](sim::WavefrontCtx& wf, unsigned) {
        const unsigned W = wf.size();
        const std::uint64_t total_wfs =
            std::uint64_t{blk.grid_blocks()} * blk.wavefronts_per_block();
        for (std::uint64_t base = std::uint64_t{wf.id()} * W;
             base < edge_count; base += total_wfs * W) {
          std::array<vid_t, kMaxWave> w{};
          std::uint64_t keep = 0;
          unsigned active = 0;
          for (unsigned l = 0; l < W; ++l) {
            const std::uint64_t i = base + l;
            if (i >= edge_count) continue;
            ++active;
            w[l] = ctx.load(edge_qc, i);
            // Gunrock's filter is not atomic: concurrent duplicates of the
            // same vertex can all pass.  The check-then-store races with
            // other blocks filtering the same vertex; losers only emit a
            // duplicate frontier entry with the same level.
            sim::racy_ok allow(ctx,
                               "gunrock filter: non-atomic claim admits "
                               "duplicates, all storing the same level");
            if (ctx.load(status, w[l]) == kUnvisited) {
              ctx.store(status, w[l], next_level);
              keep |= std::uint64_t{1} << l;
            }
          }
          ctx.slots(W, active);
          if (keep == 0) continue;
          const std::uint32_t qbase = ctx.atomic_add(
              counters, kVertexTail,
              static_cast<std::uint32_t>(popcll(keep)));
          for (unsigned l = 0; l < W; ++l) {
            if (!(keep & (std::uint64_t{1} << l))) continue;
            ctx.store(vertex_out, qbase + mask_rank(keep, l), w[l]);
          }
          ctx.slots(W, popcll(keep));
        }
      });
    });

    s.synchronize();
    dev_.memcpy_d2h(s, counters_);
    frontier_size = counters_.h_read(kVertexTail);
    use_a = !use_a;

    core::LevelStats st;
    st.level = level;
    st.strategy = core::Strategy::ScanFree;  // closest telemetry bucket
    st.frontier_count = fsize;
    st.time_ms = (dev_.now_us() - level_t0) / 1000.0;
    st.kernels = 3;
    result.level_stats.push_back(st);
  }

  // Read back levels.
  const std::uint64_t n = g_.n;
  dev_.memcpy_d2h(s, status_);
  result.levels.resize(n);
  const std::uint32_t* status_host = std::as_const(status_).host_data();
  for (std::uint64_t v = 0; v < n; ++v) {
    result.levels[v] = status_host[v] == kUnvisited
                           ? std::int32_t{-1}
                           : static_cast<std::int32_t>(status_host[v]);
  }
  s.synchronize();

  result.depth = static_cast<std::uint32_t>(result.level_stats.size());
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  std::uint64_t reached_degree = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (result.levels[v] >= 0) {
      reached_degree += offsets_host[v + 1] - offsets_host[v];
    }
  }
  result.edges_traversed = reached_degree / 2;
  result.gteps = core::safe_gteps(result.edges_traversed, result.total_ms);
  core::record_run(result, "gunrock_like", g_.n, g_.m,
                   static_cast<std::int64_t>(src), nullptr,
                   &dev_.profiler(), prof_start);
  return result;
}

}  // namespace xbfs::baseline
