// Enterprise-style scan BFS baseline: every level scans the full status
// array for current-level vertices and expands them in place — no frontier
// queue at all.  O(|V|) per level regardless of frontier size, which is
// exactly the overhead XBFS's scan-free strategy removes at sparse levels
// (paper Sec. II, "Scan Approach").
#pragma once

#include <cstdint>

#include "core/xbfs.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::baseline {

struct SimpleScanConfig {
  unsigned block_threads = 256;
  unsigned grid_blocks = 0;
};

class SimpleScanBfs final : public core::TraversalEngine {
 public:
  SimpleScanBfs(sim::Device& dev, const graph::DeviceCsr& g,
                SimpleScanConfig cfg = {});

  core::BfsResult run(graph::vid_t src) override;

  const char* name() const override { return "simple-scan"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true};
  }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  SimpleScanConfig cfg_;
  sim::DeviceBuffer<std::uint32_t> status_;
  sim::DeviceBuffer<std::uint32_t> counters_;  // [0] = newly visited
};

}  // namespace xbfs::baseline
