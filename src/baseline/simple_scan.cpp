#include "baseline/simple_scan.h"

#include <algorithm>
#include <utility>

#include "core/report.h"
#include "core/status.h"

namespace xbfs::baseline {

using core::kUnvisited;
using graph::eid_t;
using graph::vid_t;

SimpleScanBfs::SimpleScanBfs(sim::Device& dev, const graph::DeviceCsr& g,
                             SimpleScanConfig cfg)
    : dev_(dev), g_(g), cfg_(cfg) {
  status_ = dev.alloc<std::uint32_t>(g.n, "scan.status");
  counters_ = dev.alloc<std::uint32_t>(1, "scan.counters");
}

core::BfsResult SimpleScanBfs::run(vid_t src) {
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  const std::size_t prof_start = dev_.profiler().records().size();
  core::BfsResult result;

  core::launch_init_status(dev_, s, status_.span(), cfg_.block_threads);
  {
    auto status = status_.span();
    sim::LaunchConfig lc{.grid_blocks = 1, .block_threads = 64};
    dev_.launch(s, "scanbfs_seed", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t == 0) ctx.store(status, src, std::uint32_t{0});
      });
    });
  }

  auto offsets = g_.offsets_span();
  auto cols = g_.cols_span();
  auto status = status_.span();
  auto counters = counters_.span();
  const std::uint64_t n = g_.n;

  for (std::uint32_t level = 0;; ++level) {
    dev_.profiler().set_context(static_cast<int>(level), "simple-scan");
    const double level_t0 = dev_.now_us();
    sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
    dev_.launch(s, "scanbfs_reset", rc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t == 0) ctx.store(counters, 0, std::uint32_t{0});
      });
    });

    const std::uint32_t next_level = level + 1;
    sim::LaunchConfig lc;
    lc.block_threads = cfg_.block_threads;
    lc.grid_blocks = cfg_.grid_blocks != 0
                         ? cfg_.grid_blocks
                         : core::auto_grid_blocks(dev_.profile(), n,
                                                  cfg_.block_threads);
    dev_.launch(s, "scanbfs_scan_expand", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      // The whole scan races on status by design: pre-check loads vs the
      // plain next_level stores of other blocks.  Every interleaving either
      // stores the same value or defers the vertex to a rescan.
      sim::racy_ok allow(ctx,
                         "simple-scan: unsynchronized status pre-check and "
                         "same-value next_level store");
      blk.grid_stride(n, [&](std::uint64_t v) {
        if (ctx.load(status, v) != level) return;
        const eid_t b = ctx.load(offsets, v);
        const eid_t e = ctx.load(offsets, v + 1);
        std::uint32_t found = 0;
        for (eid_t j = b; j < e; ++j) {
          const vid_t w = ctx.load(cols, j);
          if (ctx.load(status, w) == kUnvisited) {
            ctx.store(status, w, next_level);  // benign same-value race
            ++found;
          }
        }
        ctx.slots(e - b, e - b);
        if (found > 0) ctx.atomic_add(counters, 0, found);
      });
    });

    s.synchronize();
    dev_.memcpy_d2h(s, counters_);
    const std::uint32_t newly = counters_.h_read(0);

    core::LevelStats st;
    st.level = level;
    st.strategy = core::Strategy::SingleScan;  // closest telemetry bucket
    st.time_ms = (dev_.now_us() - level_t0) / 1000.0;
    st.kernels = 2;
    result.level_stats.push_back(st);
    if (newly == 0) break;
  }

  dev_.memcpy_d2h(s, status_);
  result.levels.resize(n);
  const std::uint32_t* status_host = std::as_const(status_).host_data();
  const eid_t* offsets_host = g_.offsets.host_data();
  for (std::uint64_t v = 0; v < n; ++v) {
    result.levels[v] = status_host[v] == kUnvisited
                           ? std::int32_t{-1}
                           : static_cast<std::int32_t>(status_host[v]);
  }
  s.synchronize();

  result.depth = static_cast<std::uint32_t>(result.level_stats.size());
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  std::uint64_t reached_degree = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (result.levels[v] >= 0) {
      reached_degree += offsets_host[v + 1] - offsets_host[v];
    }
  }
  result.edges_traversed = reached_degree / 2;
  result.gteps = core::safe_gteps(result.edges_traversed, result.total_ms);
  core::record_run(result, "simple_scan", g_.n, g_.m,
                   static_cast<std::int64_t>(src), nullptr,
                   &dev_.profiler(), prof_start);
  return result;
}

}  // namespace xbfs::baseline
