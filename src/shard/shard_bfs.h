// The sharded direction-optimizing sweep: dist::DistBfs's phase structure
// run over a ShardedStore with three serving-tier extensions:
//
//   * plan-driven execution — the router hands run() one replica index per
//     shard; kLost marks a shard with no healthy replica, whose vertex
//     range simply never participates.  The result is then exactly BFS on
//     the subgraph with the lost shards' vertices removed (partial=true,
//     lost ranges stay -1), which is what lets the router degrade instead
//     of fail.
//   * compressed frontier exchange — candidate and cleaned slices travel
//     bitmap- or delta-varint-encoded (shard/frontier_codec.h), and the
//     modelled fabric is charged the encoded bytes, not the raw bitmap.
//   * 2D promotion for exchange-heavy levels — when the layout's grid has
//     more than one column, each top-down exchange is priced both flat
//     (one collective over all live shards) and two-phase (candidates
//     within grid-column groups, cleaned broadcast along grid rows — the
//     Buluc/Beamer 2D pattern with sqrt(p)-sized groups) and the cheaper
//     form is charged; ShardLevelStats::two_phase records the choice.
//
// A kernel fault on any replica surfaces as ShardSweepFault naming the
// (shard, replica) slot so the router can penalize exactly that breaker
// and reroute.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "shard/sharded_store.h"

namespace xbfs::shard {

struct ShardSweepConfig {
  double alpha = 0.1;  ///< bottom-up threshold on the global frontier ratio
};

struct ShardLevelStats {
  std::uint32_t level = 0;
  bool bottom_up = false;
  bool two_phase = false;  ///< 2D-promoted exchange was the cheaper form
  std::uint64_t frontier_count = 0;
  std::uint64_t frontier_edges = 0;
  double ratio = 0.0;
  double local_ms = 0.0;
  double comm_ms = 0.0;
  std::uint64_t raw_bytes = 0;   ///< uncompressed exchange payload
  std::uint64_t wire_bytes = 0;  ///< encoded payload the fabric was charged
};

struct ShardSweepResult {
  std::vector<std::int32_t> levels;  ///< global; -1 unreached or lost range
  std::vector<ShardLevelStats> level_stats;
  double total_ms = 0.0;
  double comm_ms = 0.0;
  std::uint64_t edges_traversed = 0;
  double gteps = 0.0;
  std::uint32_t depth = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t wire_bytes = 0;
  unsigned shards_live = 0;
  unsigned shards_lost = 0;
  bool partial = false;  ///< any shard was lost: lost ranges are all -1
};

/// An injected device fault inside the sweep, tagged with the slot that
/// faulted so the router can penalize and reroute precisely.
class ShardSweepFault : public std::runtime_error {
 public:
  ShardSweepFault(unsigned shard, unsigned replica, const std::string& what)
      : std::runtime_error(what), shard_(shard), replica_(replica) {}
  unsigned shard() const { return shard_; }
  unsigned replica() const { return replica_; }

 private:
  unsigned shard_;
  unsigned replica_;
};

class ShardSweep {
 public:
  static constexpr int kLost = -1;

  /// The store must outlive the sweep.  The sweep itself holds no device
  /// state — everything lives in the store's replicas, so one sweep object
  /// may be reused across runs and plans.
  explicit ShardSweep(ShardedStore& store, ShardSweepConfig cfg = {});

  /// Run one source through the plan (`plan[s]` = replica index for shard
  /// s, or kLost).  The caller owns the chosen replicas' locks for the
  /// duration (ShardedStore::Replica::mu) — the sweep does not lock.
  /// Throws std::invalid_argument when the plan is malformed or the
  /// source's owner shard is lost (no meaningful result exists), and
  /// ShardSweepFault on an injected device fault.
  ShardSweepResult run(graph::vid_t src, const std::vector<int>& plan);

 private:
  struct Exchange {  ///< one level's encoded-exchange accounting
    std::uint64_t raw = 0;
    std::uint64_t wire = 0;
  };

  ShardedStore::Replica& rep(unsigned s, const std::vector<int>& plan) {
    return store_.replica(s, static_cast<unsigned>(plan[s]));
  }
  void reset_for_run(graph::vid_t src, const std::vector<int>& plan);
  double run_local_topdown(const std::vector<int>& plan);
  double run_claim_phase(std::uint32_t level, const std::vector<int>& plan);
  double run_local_bottomup(std::uint32_t level,
                            const std::vector<int>& plan);
  /// Owner-side OR of every live sender's encoded candidate slice.
  Exchange merge_candidates(const std::vector<int>& plan);
  /// Owner-encoded cleaned slices broadcast to every live replica.
  Exchange broadcast_cleaned(const std::vector<int>& plan);

  ShardedStore& store_;
  ShardSweepConfig cfg_;
  std::size_t words_;
};

}  // namespace xbfs::shard
