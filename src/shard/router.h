// ShardRouter: the scatter-gather front door of the sharded serving tier.
//
//   clients --submit()--> AdmissionQueue --(router workers)--> plan + sweep
//                              |                                    |
//                        backpressure                  ShardSweep over the
//                       (reject w/ reason)             planned replicas
//                              |                                    |
//                  ResultCache <---- merged global levels <---------+
//
// Each query fans out to every shard owner: the router picks one healthy
// replica per shard (serve::HealthTracker with one breaker per
// shard-replica slot, routed within the shard's replica group via
// pick_in), locks the chosen replicas in slot order, and runs the
// distributed direction-optimizing sweep (shard/shard_bfs.h).  The merged
// per-shard level slices come back as one QueryResult, cached under the
// graph fingerprint mixed with the partition layout hash — a re-shard
// self-invalidates every cached entry.
//
// Resilience is per shard-replica, not per query: an injected fault opens
// that slot's breaker and the query retries on a sibling replica
// (rerouted, not failed).  A shard whose whole replica group is down
// degrades the query instead — the sweep runs without that shard, the
// lost vertex range reports -1, and the result carries partial=true plus
// an Unavailable detail in `error` while status stays Completed.  Only
// the source's own shard is unroutable-around: with no healthy replica
// there, the query fails Unavailable.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/admission_queue.h"
#include "serve/health.h"
#include "serve/query.h"
#include "serve/result_cache.h"
#include "serve/server.h"  // serve::ValidateResults
#include "shard/shard_bfs.h"
#include "shard/sharded_store.h"

namespace xbfs::shard {

struct RouterConfig {
  /// Admission-queue capacity; submissions beyond it are rejected with
  /// StatusCode::QueueFull (backpressure).
  std::size_t queue_capacity = 1024;
  /// Router worker threads.  Each runs whole distributed sweeps; workers
  /// parallelize across queries only when their plans pick disjoint
  /// replicas (replica locks serialize overlapping plans).
  unsigned workers = 2;
  /// Result-cache entries across all cache shards; 0 disables caching.
  std::size_t cache_capacity = 1024;
  unsigned cache_shards = 8;
  /// Deadline applied to queries that don't set their own (ms from
  /// enqueue); negative = none.
  double default_timeout_ms = -1.0;
  /// Sweep attempts per query before failing it (each retry replans
  /// around the slot that faulted).  1 = no retry.
  unsigned max_attempts = 3;
  /// Exponential backoff between retries: base * 2^(attempt-1), capped.
  double retry_backoff_ms = 0.2;
  double retry_backoff_max_ms = 5.0;
  /// Consecutive failures that open a shard-replica's circuit breaker and
  /// how long it rejects work before probing (serve/health.h).
  unsigned breaker_failure_threshold = 3;
  double breaker_cooldown_ms = 25.0;
  /// Result validation on the serving path (Graph500 level rules); Auto =
  /// validate iff fault injection is active.  Partial results are never
  /// validated — edges into a lost range legitimately break the rules.
  serve::ValidateResults validate_results = serve::ValidateResults::Auto;
  /// Serve queries with lost shards as partial results.  false = such
  /// queries fail with Unavailable instead.
  bool allow_partial = true;
  /// Tests: no worker threads; call dispatch_once() explicitly.
  bool manual_dispatch = false;
  /// Allocate a QueryTrace per admitted query.
  bool query_tracing = true;
  /// SLO scope (obs::SloEngine) with one lane per shard-replica slot,
  /// labelled "s<shard>r<replica>".
  std::string slo_scope = "shard-serve";
  ShardSweepConfig sweep;

  xbfs::Status validate() const;
};

/// Monotonic counters + latency snapshot for the sharded tier; the fields
/// shared with serve::ServerStats keep its glossary (docs/serving.md).
struct RouterStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;

  std::uint64_t cache_hits = 0;
  std::uint64_t cache_entries = 0;
  double cache_hit_rate = 0.0;

  std::uint64_t sweeps = 0;        ///< distributed sweeps run (incl. retries)
  std::uint64_t retries = 0;       ///< sweep re-plans after a failure
  std::uint64_t faults_seen = 0;   ///< injected faults caught
  std::uint64_t rerouted = 0;      ///< shard routed off its preferred replica
  std::uint64_t validated_results = 0;
  std::uint64_t validation_failures = 0;
  std::uint64_t degraded_queries = 0;      ///< partial or post-retry results
  std::uint64_t partial_queries = 0;       ///< served with >= 1 lost shard
  std::uint64_t lost_shard_events = 0;     ///< lost shards summed over sweeps
  std::uint64_t unavailable_failures = 0;  ///< source shard had no replica
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_opens = 0;
  std::uint64_t breaker_closes = 0;

  // --- exchange accounting --------------------------------------------------
  std::uint64_t levels_swept = 0;      ///< BFS levels run across all sweeps
  std::uint64_t two_phase_levels = 0;  ///< levels where 2D promotion won
  std::uint64_t exchange_raw_bytes = 0;
  std::uint64_t exchange_wire_bytes = 0;
  /// raw/wire across all exchanges (>= 1; 1.0 = no compression win).
  double compression_ratio = 0.0;

  // --- latency --------------------------------------------------------------
  double wall_elapsed_ms = 0.0;
  double qps = 0.0;
  /// Modelled device+fabric time per sweep — the simulator's scaling
  /// instrument (bench_dist_scaling's sublinearity record reads the p99).
  double modelled_p50_ms = 0.0;
  double modelled_p99_ms = 0.0;
  double modelled_total_ms = 0.0;
  double latency_p50_ms = 0.0;  ///< enqueue -> complete (wall)
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_max_ms = 0.0;
  double queue_p50_ms = 0.0;
  double queue_p99_ms = 0.0;

  std::uint64_t traced_queries = 0;
  obs::SloSnapshot slo;
};

class ShardRouter {
 public:
  /// The store must outlive the router (it owns every replica device the
  /// router plans onto).
  ShardRouter(ShardedStore& store, RouterConfig cfg = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Admit a query.  Cache hits resolve immediately; otherwise the query
  /// enters the admission queue, or is rejected with a reason when the
  /// queue is full / the router is shutting down / the source is invalid.
  serve::Admission submit(graph::vid_t source, serve::QueryOptions opt = {});

  /// Process everything pending right now on the caller's thread (manual
  /// mode, but safe in threaded mode too).  Returns queries retired.
  std::size_t dispatch_once();

  /// Block until every accepted query has been retired.
  void drain();

  /// Stop accepting, finish pending work, stop the workers, and emit the
  /// summary run-report record.  Idempotent; the destructor calls it.
  void shutdown();

  RouterStats stats() const;
  const RouterConfig& config() const { return cfg_; }
  const ShardedStore& store() const { return store_; }
  /// The cache key every result is published under: the CSR fingerprint
  /// mixed with the partition layout hash (re-shard => new key space).
  std::uint64_t serving_fingerprint() const { return fp_; }
  const serve::ResultCache& cache() const { return cache_; }
  serve::BreakerState breaker_state(unsigned shard, unsigned replica) const {
    return health_.state(store_.slot(shard, replica));
  }

 private:
  double wall_us() const;
  bool validation_active() const;
  void worker_loop();
  void backoff(unsigned attempt);
  /// One replica index per shard (ShardSweep::kLost = none healthy);
  /// `excluded` marks slots this query already saw fault.  Returns the
  /// number of lost shards.
  unsigned build_plan(serve::QueryId id, unsigned attempt,
                      const std::vector<char>& excluded,
                      std::vector<int>& plan, obs::QueryTrace* log);
  void process_query(serve::PendingQuery&& p);
  void complete_expired(serve::PendingQuery&& p, double now_us);
  void complete_from_cache(serve::PendingQuery&& p, serve::CachedResult hit,
                           double now_us);
  void finish_query(serve::PendingQuery&& p, serve::QueryResult&& r);
  void note_terminal(serve::QueryResult& r, unsigned lane);
  void record_latency(const serve::QueryResult& r);
  void retire_one();
  void emit_summary();

  ShardedStore& store_;
  RouterConfig cfg_;
  std::uint64_t fp_;  ///< graph fingerprint mixed with the layout hash

  serve::AdmissionQueue queue_;
  serve::ResultCache cache_;
  serve::HealthTracker health_;
  /// Stateless between runs; concurrent workers may share it because every
  /// mutable buffer a run touches lives in the replicas its plan locked.
  ShardSweep sweep_;

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<serve::QueryId> next_id_{0};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_invalid_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> faults_seen_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> validated_results_{0};
  std::atomic<std::uint64_t> validation_failures_{0};
  std::atomic<std::uint64_t> degraded_queries_{0};
  std::atomic<std::uint64_t> partial_queries_{0};
  std::atomic<std::uint64_t> lost_shard_events_{0};
  std::atomic<std::uint64_t> unavailable_failures_{0};
  std::atomic<std::uint64_t> levels_swept_{0};
  std::atomic<std::uint64_t> two_phase_levels_{0};
  std::atomic<std::uint64_t> exchange_raw_bytes_{0};
  std::atomic<std::uint64_t> exchange_wire_bytes_{0};
  std::atomic<std::uint64_t> traced_{0};

  obs::SloScope* slo_ = nullptr;

  mutable std::mutex agg_mu_;  ///< guards modelled_total_ms_
  double modelled_total_ms_ = 0.0;

  obs::Histogram latency_ms_;   ///< enqueue -> complete (wall)
  obs::Histogram queue_ms_;     ///< enqueue -> dispatch (wall)
  obs::Histogram modelled_ms_;  ///< per-sweep modelled time

  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::vector<std::thread> workers_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace xbfs::shard
