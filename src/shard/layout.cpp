#include "shard/layout.h"

namespace xbfs::shard {

ShardLayout::ShardLayout(graph::vid_t n, unsigned shards)
    : part_(n, shards) {
  // Largest divisor <= sqrt(shards) gives the near-square grid.
  for (unsigned c = 1; c * c <= shards; ++c) {
    if (shards % c == 0) grid_cols_ = c;
  }
  grid_rows_ = shards / grid_cols_;
}

std::uint64_t ShardLayout::layout_hash() const {
  std::uint64_t h = part_.layout_hash();
  h = graph::mix_fingerprint(h, grid_rows_);
  h = graph::mix_fingerprint(h, grid_cols_);
  return h;
}

}  // namespace xbfs::shard
