#include "shard/router.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "graph/g500_validate.h"
#include "hipsim/fault.h"
#include "obs/flight_recorder.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace xbfs::shard {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Comma-trick helper: runs in the constructor's member-init list so an
/// invalid config throws before any breaker/queue is built.
const RouterConfig& checked(const RouterConfig& cfg) {
  if (const xbfs::Status s = cfg.validate(); !s.ok()) {
    throw std::invalid_argument("RouterConfig: " + s.to_string());
  }
  return cfg;
}

}  // namespace

xbfs::Status RouterConfig::validate() const {
  if (queue_capacity < 1) {
    return xbfs::Status::Invalid("queue_capacity must be >= 1");
  }
  if (workers < 1) return xbfs::Status::Invalid("workers must be >= 1");
  if (cache_shards < 1) {
    return xbfs::Status::Invalid("cache_shards must be >= 1");
  }
  if (max_attempts < 1) {
    return xbfs::Status::Invalid("max_attempts must be >= 1");
  }
  if (retry_backoff_ms < 0.0 || retry_backoff_max_ms < 0.0) {
    return xbfs::Status::Invalid("retry backoffs must be >= 0");
  }
  if (breaker_failure_threshold < 1) {
    return xbfs::Status::Invalid("breaker_failure_threshold must be >= 1");
  }
  if (breaker_cooldown_ms < 0.0) {
    return xbfs::Status::Invalid("breaker_cooldown_ms must be >= 0");
  }
  return xbfs::Status::Ok();
}

ShardRouter::ShardRouter(ShardedStore& store, RouterConfig cfg)
    : store_(store),
      cfg_((checked(cfg), std::move(cfg))),
      fp_(graph::mix_fingerprint(store.graph().fingerprint(),
                                 store.fingerprint_salt())),
      queue_(cfg_.queue_capacity),
      cache_(cfg_.cache_capacity, cfg_.cache_shards),
      health_(store.num_slots(),
              serve::BreakerConfig{cfg_.breaker_failure_threshold,
                                   cfg_.breaker_cooldown_ms}),
      sweep_(store, cfg_.sweep),
      epoch_(std::chrono::steady_clock::now()) {
  obs::SloEngine& slo_eng = obs::SloEngine::global();
  if (slo_eng.enabled()) {
    slo_ = &slo_eng.scope(cfg_.slo_scope, store_.num_slots());
    for (unsigned s = 0; s < store_.shards(); ++s) {
      for (unsigned r = 0; r < store_.replicas(); ++r) {
        slo_->label_lane(store_.slot(s, r),
                         "s" + std::to_string(s) + "r" + std::to_string(r));
      }
    }
  }
  if (!cfg_.manual_dispatch) {
    workers_.reserve(cfg_.workers);
    for (unsigned w = 0; w < cfg_.workers; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ShardRouter::~ShardRouter() { shutdown(); }

double ShardRouter::wall_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool ShardRouter::validation_active() const {
  switch (cfg_.validate_results) {
    case serve::ValidateResults::Always: return true;
    case serve::ValidateResults::Never: return false;
    case serve::ValidateResults::Auto:
      return sim::FaultInjector::global().enabled();
  }
  return false;
}

serve::Admission ShardRouter::submit(graph::vid_t source,
                                     serve::QueryOptions opt) {
  serve::Admission a;
  a.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  submitted_.fetch_add(1, std::memory_order_relaxed);

  if (shut_down_.load(std::memory_order_acquire)) {
    a.status = xbfs::Status::ShuttingDown("router is shutting down");
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }
  const graph::vid_t n = store_.graph().num_vertices();
  if (source >= n) {
    a.status = xbfs::Status::Invalid("source " + std::to_string(source) +
                                     " >= |V| = " + std::to_string(n));
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    return a;
  }

  const double now = wall_us();

  // Cache fast path: resolve without ever touching the queue.
  if (cache_.enabled() && !opt.bypass_cache) {
    if (serve::CachedResult hit = cache_.get(fp_, source)) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      std::promise<serve::QueryResult> pr;
      a.result = pr.get_future();
      a.accepted = true;
      serve::QueryResult r;
      r.id = a.id;
      r.source = source;
      r.status = serve::QueryStatus::Completed;
      r.depth = hit.depth;
      r.levels = hit.levels;
      r.payload = std::move(hit);
      r.cache_hit = true;
      r.shards = store_.shards();
      r.total_ms = (wall_us() - now) / 1000.0;
      if (cfg_.query_tracing) {
        r.trace = std::make_shared<obs::QueryTrace>(a.id, source);
        r.trace->event(now, "admitted", "source=" + std::to_string(source));
        r.trace->event(wall_us(), "cache_hit",
                       "depth=" + std::to_string(r.depth));
      }
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_latency(r);
      note_terminal(r, store_.num_slots());  // aggregate lane: no device ran
      pr.set_value(std::move(r));
      retire_one();
      return a;
    }
  }

  serve::PendingQuery p;
  p.id = a.id;
  p.source = source;
  p.bypass_cache = opt.bypass_cache;
  p.enqueue_us = now;
  // Shared deadline arithmetic: 0 inherits the router default, and only a
  // strictly positive resolved budget creates a deadline (a default of
  // exactly 0 used to expire every inheriting query at dispatch).
  p.deadline_us =
      serve::resolve_deadline_us(opt.timeout_ms, cfg_.default_timeout_ms, now);
  if (cfg_.query_tracing) {
    p.trace = std::make_shared<obs::QueryTrace>(a.id, source);
    p.trace->event(now, "admitted", "source=" + std::to_string(source));
  }
  std::future<serve::QueryResult> fut = p.promise.get_future();

  xbfs::Status st = queue_.try_push(std::move(p));
  if (!st.ok()) {
    if (st == xbfs::StatusCode::QueueFull) {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    }
    a.status = std::move(st);
    return a;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  a.accepted = true;
  a.result = std::move(fut);
  return a;
}

void ShardRouter::worker_loop() {
  std::vector<serve::PendingQuery> batch;
  for (;;) {
    batch.clear();
    if (queue_.pop_batch(batch, 1, 0.0) == 0) {
      if (queue_.closed()) return;
      continue;
    }
    for (serve::PendingQuery& p : batch) process_query(std::move(p));
  }
}

std::size_t ShardRouter::dispatch_once() {
  std::vector<serve::PendingQuery> batch;
  const std::size_t got = queue_.try_pop_batch(batch, queue_.capacity());
  for (serve::PendingQuery& p : batch) process_query(std::move(p));
  return got;
}

void ShardRouter::backoff(unsigned attempt) {
  if (cfg_.retry_backoff_ms <= 0.0) return;
  double ms = cfg_.retry_backoff_ms;
  for (unsigned i = 1; i < attempt && ms < cfg_.retry_backoff_max_ms; ++i) {
    ms *= 2.0;
  }
  ms = std::min(ms, cfg_.retry_backoff_max_ms);
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

unsigned ShardRouter::build_plan(serve::QueryId id, unsigned attempt,
                                 const std::vector<char>& excluded,
                                 std::vector<int>& plan,
                                 obs::QueryTrace* log) {
  const unsigned S = store_.shards();
  const unsigned R = store_.replicas();
  plan.assign(S, ShardSweep::kLost);
  unsigned lost = 0;
  std::vector<unsigned> group;
  for (unsigned s = 0; s < S; ++s) {
    group.clear();
    for (unsigned r = 0; r < R; ++r) {
      const unsigned sl = store_.slot(s, r);
      if (store_.alive(s, r) && !excluded[sl]) group.push_back(sl);
    }
    if (group.empty()) {
      // Exclusion is a soft preference: when this query has already seen a
      // fault on every live replica of the shard, retrying one (faults are
      // transient) beats degrading the whole shard to lost.
      for (unsigned r = 0; r < R; ++r) {
        if (store_.alive(s, r)) group.push_back(store_.slot(s, r));
      }
    }
    // Spread load across the replica row by query id; retries rotate the
    // preference so a re-plan naturally lands elsewhere first.
    const unsigned pref = store_.slot(s, static_cast<unsigned>(
                                             (id + attempt) % R));
    const unsigned got = health_.pick_in(group, pref, wall_us());
    if (got == serve::HealthTracker::kNone) {
      ++lost;
      if (log) log->event(wall_us(), "shard_lost", "shard=" + std::to_string(s));
      continue;
    }
    if (got != pref) {
      rerouted_.fetch_add(1, std::memory_order_relaxed);
      if (log) {
        log->event(wall_us(), "rerouted",
                   "shard=" + std::to_string(s) + " slot=" +
                       std::to_string(got));
      }
    }
    plan[s] = static_cast<int>(got - store_.slot(s, 0));
  }
  return lost;
}

void ShardRouter::process_query(serve::PendingQuery&& p) {
  const double dispatch_us = wall_us();
  if (p.deadline_us >= 0.0 && dispatch_us > p.deadline_us) {
    complete_expired(std::move(p), dispatch_us);
    return;
  }
  if (cache_.enabled() && !p.bypass_cache) {
    if (serve::CachedResult hit = cache_.get(fp_, p.source)) {
      complete_from_cache(std::move(p), std::move(hit), dispatch_us);
      return;
    }
  }
  obs::QueryTrace* log = p.trace.get();
  if (log) log->event(dispatch_us, "dispatched", {});

  const unsigned S = store_.shards();
  const unsigned owner = store_.layout().owner(p.source);
  const bool validate = validation_active();
  std::vector<char> excluded(store_.num_slots(), 0);
  xbfs::Status last = xbfs::Status::Unavailable("no sweep attempt made");
  std::vector<int> plan;

  for (unsigned attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    const unsigned lost = build_plan(p.id, attempt, excluded, plan, log);
    if (plan[owner] == ShardSweep::kLost) {
      last = xbfs::Status::Unavailable(
          "source shard " + std::to_string(owner) +
          " has no healthy replica");
      unavailable_failures_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (lost > 0 && !cfg_.allow_partial) {
      last = xbfs::Status::Unavailable(
          std::to_string(lost) + " shard(s) have no healthy replica and "
          "partial results are disabled");
      unavailable_failures_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    const unsigned primary = store_.slot(owner,
                                         static_cast<unsigned>(plan[owner]));
    if (attempt > 0) retries_.fetch_add(1, std::memory_order_relaxed);
    sweeps_.fetch_add(1, std::memory_order_relaxed);

    // Chosen replicas locked in ascending slot order (plans are iterated
    // by shard, and slots grow with shard) — overlapping plans from
    // concurrent workers serialize instead of deadlocking.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(S);
    for (unsigned s = 0; s < S; ++s) {
      if (plan[s] == ShardSweep::kLost) continue;
      locks.emplace_back(
          store_.replica(s, static_cast<unsigned>(plan[s])).mu);
    }

    const double attempt_us = wall_us();
    if (log) {
      log->event(attempt_us, "attempt",
                 "engine=shard-sweep live=" + std::to_string(S - lost) +
                     " lost=" + std::to_string(lost) + " attempt=" +
                     std::to_string(attempt + 1));
    }
    try {
      ShardSweepResult sw = sweep_.run(p.source, plan);
      bool corrupted = false;
      unsigned corrupt_slot = primary;
      for (unsigned s = 0; s < S; ++s) {
        if (plan[s] == ShardSweep::kLost) continue;
        if (store_.replica(s, static_cast<unsigned>(plan[s]))
                .device->take_pending_corruption()) {
          corrupted = true;
          corrupt_slot = store_.slot(s, static_cast<unsigned>(plan[s]));
        }
      }
      locks.clear();
      if (corrupted) {
        // The modelled copy moved no real bytes; realize the corruption so
        // validation can see it.
        sim::FaultInjector::global().corrupt_levels(sw.levels);
      }
      if (validate && !sw.partial) {
        const std::string verr = graph::validate_levels_graph500(
            store_.graph(), p.source, sw.levels);
        if (!verr.empty()) {
          validation_failures_.fetch_add(1, std::memory_order_relaxed);
          if (corrupted) {
            faults_seen_.fetch_add(1, std::memory_order_relaxed);
          }
          health_.record_failure(corrupt_slot, wall_us());
          excluded[corrupt_slot] = 1;
          last = xbfs::Status::Corruption(verr);
          if (log) log->event(wall_us(), "validation_failed", verr);
          obs::FlightRecorder::global().record(
              "shard", "validation_failed", {}, p.id, corrupt_slot);
          backoff(attempt + 1);
          continue;
        }
        validated_results_.fetch_add(1, std::memory_order_relaxed);
        if (log) log->event(wall_us(), "validated");
      }
      for (unsigned s = 0; s < S; ++s) {
        if (plan[s] == ShardSweep::kLost) continue;
        health_.record_success(
            store_.slot(s, static_cast<unsigned>(plan[s])));
      }

      // --- exchange + timing accounting -----------------------------------
      levels_swept_.fetch_add(sw.level_stats.size(),
                              std::memory_order_relaxed);
      std::uint64_t two = 0;
      for (const ShardLevelStats& st : sw.level_stats) two += st.two_phase;
      two_phase_levels_.fetch_add(two, std::memory_order_relaxed);
      exchange_raw_bytes_.fetch_add(sw.raw_bytes, std::memory_order_relaxed);
      exchange_wire_bytes_.fetch_add(sw.wire_bytes,
                                     std::memory_order_relaxed);
      lost_shard_events_.fetch_add(sw.shards_lost,
                                   std::memory_order_relaxed);
      modelled_ms_.observe(sw.total_ms);
      {
        std::lock_guard<std::mutex> lk(agg_mu_);
        modelled_total_ms_ += sw.total_ms;
      }
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      if (mx.enabled()) {
        mx.histogram("shard.sweep_modelled_ms").observe(sw.total_ms);
        mx.histogram("shard.sweep_comm_ms").observe(sw.comm_ms);
      }

      const double complete_us = wall_us();
      serve::QueryResult r;
      r.id = p.id;
      r.source = p.source;
      r.status = serve::QueryStatus::Completed;
      r.depth = sw.depth;
      r.batch_size = 1;
      r.gcd = primary;
      r.engine = "shard-sweep";
      r.attempts = attempt + 1;
      r.validated = validate && !sw.partial;
      r.shards = S;
      r.shards_lost = sw.shards_lost;
      r.partial = sw.partial;
      r.degraded = sw.partial || attempt > 0;
      r.queue_ms = (dispatch_us - p.enqueue_us) / 1000.0;
      r.service_ms = (complete_us - dispatch_us) / 1000.0;
      r.total_ms = (complete_us - p.enqueue_us) / 1000.0;
      if (sw.partial) {
        r.error = xbfs::Status::Unavailable(
            std::to_string(sw.shards_lost) +
            " shard(s) had no healthy replica; their vertex ranges report "
            "-1");
        partial_queries_.fetch_add(1, std::memory_order_relaxed);
        if (log) {
          log->event(complete_us, "partial",
                     "lost=" + std::to_string(sw.shards_lost));
        }
      }
      const bool publish = !sw.partial && !p.bypass_cache &&
                           (!validate || r.validated);
      serve::CachedResult payload;
      payload.kind = core::AlgoKind::Bfs;
      payload.levels = std::make_shared<const std::vector<std::int32_t>>(
          std::move(sw.levels));
      payload.depth = sw.depth;
      if (publish && cache_.enabled()) {
        cache_.put(fp_, p.source, payload);
        if (log) {
          log->event(complete_us, "cache_publish",
                     "fp=" + std::to_string(fp_));
        }
      }
      r.levels = payload.levels;
      r.payload = std::move(payload);
      if (r.degraded) {
        degraded_queries_.fetch_add(1, std::memory_order_relaxed);
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      record_latency(r);
      if (log) {
        log->event(complete_us, "resolved",
                   "engine=shard-sweep slot=" + std::to_string(primary) +
                       " depth=" + std::to_string(r.depth));
      }
      finish_query(std::move(p), std::move(r));
      return;
    } catch (const ShardSweepFault& f) {
      const unsigned slot = store_.slot(f.shard(), f.replica());
      faults_seen_.fetch_add(1, std::memory_order_relaxed);
      health_.record_failure(slot, wall_us());
      excluded[slot] = 1;
      last = xbfs::Status::Fault(f.what());
      if (log) {
        log->event(wall_us(), "fault",
                   "slot=s" + std::to_string(f.shard()) + "r" +
                       std::to_string(f.replica()) + " " + f.what());
      }
      obs::FlightRecorder::global().record("shard", "sweep_fault", {}, p.id,
                                           slot);
      obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
      if (mx.enabled()) mx.counter("shard.faults").add();
      locks.clear();
      backoff(attempt + 1);
    } catch (const std::exception& e) {
      last = xbfs::Status::Internal(e.what());
      if (log) log->event(wall_us(), "error", e.what());
      locks.clear();
      backoff(attempt + 1);
    }
  }

  // Every attempt burned (or the source shard is gone): terminal failure.
  const double complete_us = wall_us();
  serve::QueryResult r;
  r.id = p.id;
  r.source = p.source;
  r.status = serve::QueryStatus::Failed;
  r.error = last;
  r.shards = S;
  r.queue_ms = (dispatch_us - p.enqueue_us) / 1000.0;
  r.service_ms = (complete_us - dispatch_us) / 1000.0;
  r.total_ms = (complete_us - p.enqueue_us) / 1000.0;
  failed_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("shard.failed").add();
  obs::FlightRecorder::global().record("shard", "query_failed",
                                       last.to_string(), p.id);
  if (log) log->event(complete_us, "exhausted", last.to_string());
  finish_query(std::move(p), std::move(r));
}

void ShardRouter::complete_expired(serve::PendingQuery&& p, double now_us) {
  serve::QueryResult r;
  r.id = p.id;
  r.source = p.source;
  r.status = serve::QueryStatus::Expired;
  r.shards = store_.shards();
  r.queue_ms = (now_us - p.enqueue_us) / 1000.0;
  r.total_ms = r.queue_ms;
  expired_.fetch_add(1, std::memory_order_relaxed);
  finish_query(std::move(p), std::move(r));
}

void ShardRouter::complete_from_cache(serve::PendingQuery&& p,
                                      serve::CachedResult hit,
                                      double now_us) {
  serve::QueryResult r;
  r.id = p.id;
  r.source = p.source;
  r.status = serve::QueryStatus::Completed;
  r.depth = hit.depth;
  r.levels = hit.levels;
  r.payload = std::move(hit);
  r.cache_hit = true;
  r.shards = store_.shards();
  r.queue_ms = (now_us - p.enqueue_us) / 1000.0;
  r.total_ms = r.queue_ms;
  if (p.trace) {
    p.trace->event(now_us, "cache_hit", "depth=" + std::to_string(r.depth));
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);
  record_latency(r);
  finish_query(std::move(p), std::move(r));
}

void ShardRouter::finish_query(serve::PendingQuery&& p,
                               serve::QueryResult&& r) {
  if (p.trace != nullptr) r.trace = p.trace;
  // Cache hits and expiries never touched a replica: attribute them to the
  // scope aggregate lane instead of a device lane.
  const unsigned lane = r.batch_size > 0 ? r.gcd : store_.num_slots();
  note_terminal(r, lane);
  p.promise.set_value(std::move(r));
  retire_one();
}

void ShardRouter::note_terminal(serve::QueryResult& r, unsigned lane) {
  const bool ok = r.status == serve::QueryStatus::Completed;
  if (slo_ != nullptr) slo_->record(lane, ok, r.total_ms, obs::slo_now_ms());
  if (r.trace != nullptr) {
    traced_.fetch_add(1, std::memory_order_relaxed);
    std::string detail = "total_ms=" + fmt_double(r.total_ms);
    if (r.shards_lost > 0) {
      detail += " shards_lost=" + std::to_string(r.shards_lost);
    }
    if (!ok && !r.error.ok()) detail += " error=" + r.error.to_string();
    r.trace->event(wall_us(), serve::query_status_name(r.status),
                   std::move(detail));
    obs::TraceSession& tr = obs::TraceSession::global();
    if (tr.enabled()) {
      obs::emit_query_spans(tr, *r.trace,
                            serve::query_status_name(r.status));
    }
  }
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  if (fr.enabled() && r.status == serve::QueryStatus::Failed) {
    fr.trigger("query_failed");
  }
}

void ShardRouter::record_latency(const serve::QueryResult& r) {
  latency_ms_.observe(r.total_ms);
  queue_ms_.observe(r.queue_ms);
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.histogram("shard.latency_ms").observe(r.total_ms);
    mx.counter("shard.completed").add();
    if (r.cache_hit) mx.counter("shard.cache_hits").add();
    if (r.partial) mx.counter("shard.partial").add();
  }
}

void ShardRouter::retire_one() {
  // The empty critical section orders the increment against drain()'s
  // predicate check (lost-wakeup guard, as in serve::Server).
  retired_.fetch_add(1, std::memory_order_release);
  { std::lock_guard<std::mutex> lk(drain_mu_); }
  drain_cv_.notify_all();
}

void ShardRouter::drain() {
  if (cfg_.manual_dispatch) {
    while (retired_.load(std::memory_order_acquire) <
           accepted_.load(std::memory_order_acquire)) {
      if (dispatch_once() == 0) std::this_thread::yield();
    }
    return;
  }
  std::unique_lock<std::mutex> lk(drain_mu_);
  drain_cv_.wait(lk, [&] {
    return retired_.load(std::memory_order_acquire) >=
           accepted_.load(std::memory_order_acquire);
  });
}

void ShardRouter::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Manual mode (and a safety net for races with close): retire leftovers.
  while (dispatch_once() != 0) {
  }
  emit_summary();
}

RouterStats ShardRouter::stats() const {
  RouterStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.sweeps = sweeps_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.faults_seen = faults_seen_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  s.validated_results = validated_results_.load(std::memory_order_relaxed);
  s.validation_failures =
      validation_failures_.load(std::memory_order_relaxed);
  s.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  s.partial_queries = partial_queries_.load(std::memory_order_relaxed);
  s.lost_shard_events = lost_shard_events_.load(std::memory_order_relaxed);
  s.unavailable_failures =
      unavailable_failures_.load(std::memory_order_relaxed);
  s.levels_swept = levels_swept_.load(std::memory_order_relaxed);
  s.two_phase_levels = two_phase_levels_.load(std::memory_order_relaxed);
  s.exchange_raw_bytes =
      exchange_raw_bytes_.load(std::memory_order_relaxed);
  s.exchange_wire_bytes =
      exchange_wire_bytes_.load(std::memory_order_relaxed);
  s.compression_ratio =
      s.exchange_wire_bytes == 0
          ? 0.0
          : static_cast<double>(s.exchange_raw_bytes) /
                static_cast<double>(s.exchange_wire_bytes);

  const serve::HealthTracker::Counters hc = health_.counters();
  s.breaker_opens = hc.opens;
  s.breaker_half_opens = hc.half_opens;
  s.breaker_closes = hc.closes;

  const serve::ResultCache::Stats cs = cache_.stats();
  s.cache_entries = cs.entries;
  s.cache_hit_rate =
      s.completed == 0 ? 0.0
                       : static_cast<double>(s.cache_hits) /
                             static_cast<double>(s.completed);

  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    s.modelled_total_ms = modelled_total_ms_;
  }
  s.modelled_p50_ms = modelled_ms_.percentile(0.50);
  s.modelled_p99_ms = modelled_ms_.percentile(0.99);
  s.latency_p50_ms = latency_ms_.percentile(0.50);
  s.latency_p95_ms = latency_ms_.percentile(0.95);
  s.latency_p99_ms = latency_ms_.percentile(0.99);
  s.latency_mean_ms = latency_ms_.mean();
  s.latency_max_ms = latency_ms_.max();
  s.queue_p50_ms = queue_ms_.percentile(0.50);
  s.queue_p99_ms = queue_ms_.percentile(0.99);

  s.traced_queries = traced_.load(std::memory_order_relaxed);
  if (slo_ != nullptr) s.slo = slo_->snapshot(obs::slo_now_ms());

  s.wall_elapsed_ms = wall_us() / 1000.0;
  s.qps = s.wall_elapsed_ms <= 0.0
              ? 0.0
              : static_cast<double>(s.completed) /
                    (s.wall_elapsed_ms / 1000.0);
  return s;
}

void ShardRouter::emit_summary() {
  const RouterStats st = stats();
  const ShardMemoryReport mem = store_.memory_report();

  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.gauge("shard.qps").set(st.qps);
    mx.gauge("shard.cache_hit_rate").set(st.cache_hit_rate);
    mx.gauge("shard.compression_ratio").set(st.compression_ratio);
    mx.gauge("shard.breaker_opens")
        .set(static_cast<double>(st.breaker_opens));
  }

  obs::ReportSession& rs = obs::ReportSession::global();
  if (!rs.enabled()) return;
  obs::RunRecord r;
  r.tool = "shard_router";
  r.algorithm = "sharded-bfs-serving";
  r.n = store_.graph().num_vertices();
  r.m = store_.graph().num_edges();
  r.source = -1;
  r.total_ms = st.wall_elapsed_ms;
  r.config = {
      {"shards", std::to_string(store_.shards())},
      {"replicas", std::to_string(store_.replicas())},
      {"grid_rows", std::to_string(store_.layout().grid_rows())},
      {"grid_cols", std::to_string(store_.layout().grid_cols())},
      {"budget_bytes", std::to_string(mem.budget_bytes)},
      {"single_device_bytes", std::to_string(mem.single_device_bytes)},
      {"max_shard_bytes", std::to_string(mem.max_shard_bytes)},
      {"oversubscription", fmt_double(mem.oversubscription)},
      {"serving_fingerprint", std::to_string(fp_)},
      {"submitted", std::to_string(st.submitted)},
      {"accepted", std::to_string(st.accepted)},
      {"completed", std::to_string(st.completed)},
      {"expired", std::to_string(st.expired)},
      {"failed", std::to_string(st.failed)},
      {"rejected_full", std::to_string(st.rejected_full)},
      {"rejected_invalid", std::to_string(st.rejected_invalid)},
      {"cache_hits", std::to_string(st.cache_hits)},
      {"cache_hit_rate", fmt_double(st.cache_hit_rate)},
      {"sweeps", std::to_string(st.sweeps)},
      {"retries", std::to_string(st.retries)},
      {"faults_seen", std::to_string(st.faults_seen)},
      {"rerouted", std::to_string(st.rerouted)},
      {"validated_results", std::to_string(st.validated_results)},
      {"validation_failures", std::to_string(st.validation_failures)},
      {"degraded_queries", std::to_string(st.degraded_queries)},
      {"partial_queries", std::to_string(st.partial_queries)},
      {"lost_shard_events", std::to_string(st.lost_shard_events)},
      {"unavailable_failures", std::to_string(st.unavailable_failures)},
      {"breaker_opens", std::to_string(st.breaker_opens)},
      {"breaker_half_opens", std::to_string(st.breaker_half_opens)},
      {"breaker_closes", std::to_string(st.breaker_closes)},
      {"levels_swept", std::to_string(st.levels_swept)},
      {"two_phase_levels", std::to_string(st.two_phase_levels)},
      {"exchange_raw_bytes", std::to_string(st.exchange_raw_bytes)},
      {"exchange_wire_bytes", std::to_string(st.exchange_wire_bytes)},
      {"compression_ratio", fmt_double(st.compression_ratio)},
      {"modelled_total_ms", fmt_double(st.modelled_total_ms)},
      {"modelled_p50_ms", fmt_double(st.modelled_p50_ms)},
      {"modelled_p99_ms", fmt_double(st.modelled_p99_ms)},
      {"qps", fmt_double(st.qps)},
      {"p50_ms", fmt_double(st.latency_p50_ms)},
      {"p95_ms", fmt_double(st.latency_p95_ms)},
      {"p99_ms", fmt_double(st.latency_p99_ms)},
      {"mean_ms", fmt_double(st.latency_mean_ms)},
      {"max_ms", fmt_double(st.latency_max_ms)},
      {"queue_p50_ms", fmt_double(st.queue_p50_ms)},
      {"queue_p99_ms", fmt_double(st.queue_p99_ms)},
      {"max_attempts", std::to_string(cfg_.max_attempts)},
      {"allow_partial", cfg_.allow_partial ? "1" : "0"},
      {"workers", std::to_string(cfg_.workers)},
      {"query_tracing", cfg_.query_tracing ? "1" : "0"},
      {"traced_queries", std::to_string(st.traced_queries)},
      {"slo_scope", cfg_.slo_scope},
      {"slo_active", st.slo.active ? "1" : "0"},
      {"slo_good", std::to_string(st.slo.total_good)},
      {"slo_bad", std::to_string(st.slo.total_bad)},
      {"slo_budget_remaining", fmt_double(st.slo.budget_remaining)},
  };
  rs.add(std::move(r));
}

}  // namespace xbfs::shard
