#include "shard/shard_bfs.h"

#include <algorithm>
#include <cassert>

#include "core/status.h"  // kUnvisited, auto_grid_blocks
#include "core/xbfs.h"    // safe_gteps
#include "hipsim/fault.h"
#include "shard/frontier_codec.h"

namespace xbfs::shard {

using core::auto_grid_blocks;
using core::kUnvisited;
using graph::eid_t;
using graph::vid_t;

namespace {
constexpr std::size_t kTail = 0;     ///< counters[0]: frontier queue tail
constexpr std::size_t kClaimed = 1;  ///< counters[1]: vertices claimed
}  // namespace

ShardSweep::ShardSweep(ShardedStore& store, ShardSweepConfig cfg)
    : store_(store), cfg_(cfg),
      words_((static_cast<std::size_t>(store.graph().num_vertices()) + 63) /
             64) {}

void ShardSweep::reset_for_run(vid_t src, const std::vector<int>& plan) {
  const unsigned owner = store_.layout().owner(src);
  for (unsigned s = 0; s < store_.shards(); ++s) {
    if (plan[s] == kLost) continue;
    ShardedStore::Replica& g = rep(s, plan);
    sim::Device& dev = *g.device;
    auto status = g.status.span();
    auto cur = g.cur_bm.span();
    auto next = g.next_bm.span();
    const vid_t rows = g.rows->num_rows;
    const vid_t first = g.rows->first_vertex;
    sim::LaunchConfig lc;
    lc.block_threads = store_.config().block_threads;
    lc.grid_blocks = auto_grid_blocks(dev.profile(),
                                      std::max<std::uint64_t>(rows, 1),
                                      lc.block_threads);
    const bool is_owner = s == owner;
    try {
      dev.launch("shard_init", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(rows, [&](std::uint64_t r) {
          ctx.store(status, r,
                    is_owner && first + r == src ? 0u : kUnvisited);
        });
        blk.grid_stride(cur.size(), [&](std::uint64_t w) {
          std::uint64_t word = 0;
          if (src / 64 == w) word = std::uint64_t{1} << (src % 64);
          ctx.store(cur, w, word);
          ctx.store(next, w, std::uint64_t{0});
        });
      });
    } catch (const sim::FaultInjected& f) {
      throw ShardSweepFault(s, static_cast<unsigned>(plan[s]), f.what());
    }
  }
}

double ShardSweep::run_local_topdown(const std::vector<int>& plan) {
  double slowest = 0;
  for (unsigned sh = 0; sh < store_.shards(); ++sh) {
    if (plan[sh] == kLost) continue;
    ShardedStore::Replica& g = rep(sh, plan);
    sim::Device& dev = *g.device;
    sim::Stream& s = dev.stream(0);
    const double t0 = dev.now_us();
    auto counters = g.counters.span();
    auto edges = g.edges.span();
    auto cur = g.cur_bm.cspan();
    auto next = g.next_bm.span();
    auto queue = g.queue.span();
    auto offsets = g.offsets.cspan();
    auto cols = g.cols.cspan();
    const vid_t first = g.rows->first_vertex;
    const vid_t rows = g.rows->num_rows;
    const unsigned block_threads = store_.config().block_threads;

    try {
      sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
      dev.launch(s, "shard_reset", rc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.threads([&](unsigned t) {
          if (t < 2) ctx.store(counters, t, std::uint32_t{0});
          if (t == 2) ctx.store(edges, 0, std::uint64_t{0});
        });
      });

      // Extract the owned slice of the frontier bitmap into a queue.
      const std::uint64_t w_begin = first / 64;
      const std::uint64_t w_end =
          (static_cast<std::uint64_t>(first) + rows + 63) / 64;
      sim::LaunchConfig gc;
      gc.block_threads = block_threads;
      gc.grid_blocks = auto_grid_blocks(
          dev.profile(), std::max<std::uint64_t>(w_end - w_begin, 1),
          block_threads);
      dev.launch(s, "shard_frontier_gen", gc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(w_end - w_begin, [&](std::uint64_t wi) {
          const std::uint64_t word = ctx.load(cur, w_begin + wi);
          if (word == 0) return;
          unsigned count = 0;
          vid_t found[64];
          for (unsigned b = 0; b < 64; ++b) {
            if (!(word & (std::uint64_t{1} << b))) continue;
            const std::uint64_t v = (w_begin + wi) * 64 + b;
            if (v < first || v >= static_cast<std::uint64_t>(first) + rows) {
              continue;  // edge words straddle the shard boundary
            }
            found[count++] = static_cast<vid_t>(v);
          }
          if (count == 0) return;
          const std::uint32_t base = ctx.atomic_add(counters, kTail, count);
          for (unsigned i = 0; i < count; ++i) {
            ctx.store(queue, base + i, found[i]);
          }
          ctx.slots(count, count);
        });
      });
      dev.memcpy_d2h(s, sizeof(std::uint32_t));
      g.counters.mark_host_synced();
      const std::uint32_t fsize = g.counters.h_read(kTail);

      if (fsize > 0) {
        sim::LaunchConfig ec;
        ec.block_threads = block_threads;
        ec.grid_blocks =
            auto_grid_blocks(dev.profile(), fsize, block_threads);
        dev.launch(s, "shard_topdown_expand", ec, [=](sim::BlockCtx& blk) {
          auto& ctx = blk.ctx();
          blk.grid_stride(fsize, [&](std::uint64_t i) {
            const vid_t v = ctx.load(queue, i);
            const vid_t r = v - first;
            const eid_t b = ctx.load(offsets, r);
            const eid_t e = ctx.load(offsets, r + 1);
            for (eid_t j = b; j < e; ++j) {
              const vid_t w = ctx.load(cols, j);
              // Candidate-bit pre-check dedups repeat discoveries locally.
              const std::uint64_t word = ctx.atomic_load(next, w / 64);
              const std::uint64_t bit = std::uint64_t{1} << (w % 64);
              if (!(word & bit)) ctx.atomic_or(next, w / 64, bit);
            }
            ctx.slots(2 * (e - b) + 1, 2 * (e - b) + 1);
          });
        });
      }
      s.synchronize();
    } catch (const sim::FaultInjected& f) {
      throw ShardSweepFault(sh, static_cast<unsigned>(plan[sh]), f.what());
    }
    slowest = std::max(slowest, dev.now_us() - t0);
  }
  return slowest;
}

double ShardSweep::run_claim_phase(std::uint32_t level,
                                   const std::vector<int>& plan) {
  const std::uint32_t next_level = level + 1;
  double slowest = 0;
  for (unsigned sh = 0; sh < store_.shards(); ++sh) {
    if (plan[sh] == kLost) continue;
    ShardedStore::Replica& g = rep(sh, plan);
    sim::Device& dev = *g.device;
    sim::Stream& s = dev.stream(0);
    const double t0 = dev.now_us();
    auto counters = g.counters.span();
    auto edges = g.edges.span();
    auto next = g.next_bm.span();
    auto status = g.status.span();
    auto offsets = g.offsets.cspan();
    const vid_t first = g.rows->first_vertex;
    const vid_t rows = g.rows->num_rows;
    const std::uint64_t w_begin = first / 64;
    const std::uint64_t w_end =
        (static_cast<std::uint64_t>(first) + rows + 63) / 64;
    sim::LaunchConfig cc;
    cc.block_threads = store_.config().block_threads;
    cc.grid_blocks = auto_grid_blocks(
        dev.profile(), std::max<std::uint64_t>(w_end - w_begin, 1),
        cc.block_threads);
    try {
      dev.launch(s, "shard_claim", cc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(w_end - w_begin, [&](std::uint64_t wi) {
          const std::uint64_t word = ctx.load(
              sim::dspan<const std::uint64_t>(next), w_begin + wi);
          if (word == 0) return;
          std::uint64_t cleaned = 0;
          std::uint32_t claimed = 0;
          std::uint64_t degree_sum = 0;
          for (unsigned b = 0; b < 64; ++b) {
            const std::uint64_t bit = std::uint64_t{1} << b;
            if (!(word & bit)) continue;
            const std::uint64_t v = (w_begin + wi) * 64 + b;
            if (v < first || v >= static_cast<std::uint64_t>(first) + rows) {
              continue;  // not owned: drop (the owner keeps its own copy)
            }
            const vid_t r = static_cast<vid_t>(v - first);
            if (ctx.load(status, r) == kUnvisited) {
              ctx.store(status, r, next_level);
              cleaned |= bit;
              ++claimed;
              degree_sum +=
                  ctx.load(offsets, r + 1) - ctx.load(offsets, r);
            }
          }
          if (cleaned != word) ctx.store(next, w_begin + wi, cleaned);
          if (claimed > 0) {
            ctx.atomic_add(counters, kClaimed, claimed);
            ctx.atomic_add(edges, 0, degree_sum);
          }
          ctx.slots(64, claimed + 1);
        });
      });
      s.synchronize();
    } catch (const sim::FaultInjected& f) {
      throw ShardSweepFault(sh, static_cast<unsigned>(plan[sh]), f.what());
    }
    slowest = std::max(slowest, dev.now_us() - t0);
  }
  return slowest;
}

double ShardSweep::run_local_bottomup(std::uint32_t level,
                                      const std::vector<int>& plan) {
  const std::uint32_t next_level = level + 1;
  double slowest = 0;
  for (unsigned sh = 0; sh < store_.shards(); ++sh) {
    if (plan[sh] == kLost) continue;
    ShardedStore::Replica& g = rep(sh, plan);
    sim::Device& dev = *g.device;
    sim::Stream& s = dev.stream(0);
    const double t0 = dev.now_us();
    auto counters = g.counters.span();
    auto edges = g.edges.span();
    auto cur = g.cur_bm.cspan();
    auto next = g.next_bm.span();
    auto status = g.status.span();
    auto offsets = g.offsets.cspan();
    auto cols = g.cols.cspan();
    const vid_t first = g.rows->first_vertex;
    const vid_t rows = g.rows->num_rows;

    try {
      sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
      dev.launch(s, "shard_reset", rc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.threads([&](unsigned t) {
          if (t < 2) ctx.store(counters, t, std::uint32_t{0});
          if (t == 2) ctx.store(edges, 0, std::uint64_t{0});
        });
      });

      sim::LaunchConfig bc;
      bc.block_threads = store_.config().block_threads;
      bc.grid_blocks = auto_grid_blocks(
          dev.profile(), std::max<vid_t>(rows, 1), bc.block_threads);
      dev.launch(s, "shard_bottomup", bc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(rows, [&](std::uint64_t r) {
          if (ctx.load(status, r) != kUnvisited) {
            ctx.slots(1, 1);
            return;
          }
          const eid_t b = ctx.load(offsets, r);
          const eid_t e = ctx.load(offsets, r + 1);
          std::uint64_t steps = 0;
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cols, j);
            ++steps;
            const std::uint64_t word = ctx.atomic_load(cur, w / 64);
            if (word & (std::uint64_t{1} << (w % 64))) {
              const vid_t v = first + static_cast<vid_t>(r);
              ctx.store(status, r, next_level);
              ctx.atomic_or(next, v / 64, std::uint64_t{1} << (v % 64));
              ctx.atomic_add(counters, kClaimed, std::uint32_t{1});
              ctx.atomic_add(edges, 0, static_cast<std::uint64_t>(e - b));
              break;
            }
          }
          ctx.slots(2 * steps + 1, 2 * steps + 1);
        });
      });
      s.synchronize();
    } catch (const sim::FaultInjected& f) {
      throw ShardSweepFault(sh, static_cast<unsigned>(plan[sh]), f.what());
    }
    slowest = std::max(slowest, dev.now_us() - t0);
  }
  return slowest;
}

ShardSweep::Exchange ShardSweep::merge_candidates(
    const std::vector<int>& plan) {
  // Owner-side OR standing in for the alltoall: every live sender's
  // candidate bits for owner o's word range travel encoded and are OR-
  // decoded into o's copy.  The wire time is charged by the caller from
  // the Exchange totals; host views are declared synced here because the
  // modelled fabric, not a memcpy, carries the bytes.
  Exchange ex;
  for (unsigned s = 0; s < store_.shards(); ++s) {
    if (plan[s] == kLost) continue;
    rep(s, plan).next_bm.mark_host_synced();
  }
  for (unsigned o = 0; o < store_.shards(); ++o) {
    if (plan[o] == kLost) continue;
    ShardedStore::Replica& owner = rep(o, plan);
    const std::uint64_t w_begin = owner.rows->first_vertex / 64;
    const std::uint64_t w_end = std::min<std::uint64_t>(
        words_, (static_cast<std::uint64_t>(owner.rows->first_vertex) +
                 owner.rows->num_rows + 63) /
                    64);
    for (unsigned s = 0; s < store_.shards(); ++s) {
      if (plan[s] == kLost || s == o) continue;
      const EncodedFrontier enc = encode_frontier(
          rep(s, plan).next_bm.host_data(), w_begin, w_end - w_begin);
      ex.raw += enc.raw_bytes();
      ex.wire += enc.wire_bytes();
      if (enc.set_bits != 0) {
        decode_frontier_or(enc, owner.next_bm.host_data());
      }
    }
  }
  return ex;
}

ShardSweep::Exchange ShardSweep::broadcast_cleaned(
    const std::vector<int>& plan) {
  // Each live owner encodes its cleaned, boundary-masked slice; every live
  // replica decodes the full set into its frontier copy.
  Exchange ex;
  for (unsigned s = 0; s < store_.shards(); ++s) {
    if (plan[s] == kLost) continue;
    rep(s, plan).next_bm.mark_host_synced();
  }
  std::vector<std::uint64_t> global(words_, 0);
  std::vector<std::uint64_t> slice;
  for (unsigned o = 0; o < store_.shards(); ++o) {
    if (plan[o] == kLost) continue;
    const ShardedStore::Replica& g = rep(o, plan);
    const std::uint64_t w_begin = g.rows->first_vertex / 64;
    const std::uint64_t w_end = std::min<std::uint64_t>(
        words_, (static_cast<std::uint64_t>(g.rows->first_vertex) +
                 g.rows->num_rows + 63) /
                    64);
    const std::uint64_t first = g.rows->first_vertex;
    const std::uint64_t last = first + g.rows->num_rows;  // exclusive
    slice.assign(w_end - w_begin, 0);
    for (std::uint64_t w = w_begin; w < w_end; ++w) {
      std::uint64_t mask = ~std::uint64_t{0};
      if (w * 64 < first) {
        mask &= ~((std::uint64_t{1} << (first - w * 64)) - 1);
      }
      if ((w + 1) * 64 > last) {
        const unsigned keep = static_cast<unsigned>(last - w * 64);
        mask &= keep >= 64 ? ~std::uint64_t{0}
                           : ((std::uint64_t{1} << keep) - 1);
      }
      slice[w - w_begin] = g.next_bm.host_data()[w] & mask;
    }
    EncodedFrontier enc = encode_frontier(slice.data(), 0, slice.size());
    // Re-anchor the slice at its global word range: payload positions are
    // relative to the slice start in both formats, so only the base moves.
    enc.word_begin = w_begin;
    ex.raw += enc.raw_bytes();
    ex.wire += enc.wire_bytes();
    decode_frontier_or(enc, global.data());
  }
  for (unsigned s = 0; s < store_.shards(); ++s) {
    if (plan[s] == kLost) continue;
    ShardedStore::Replica& g = rep(s, plan);
    std::copy(global.begin(), global.end(), g.next_bm.host_data());
    g.next_bm.mark_device_synced();
  }
  return ex;
}

ShardSweepResult ShardSweep::run(vid_t src, const std::vector<int>& plan) {
  const graph::Csr& host_g = store_.graph();
  const unsigned S = store_.shards();
  if (plan.size() != S) {
    throw std::invalid_argument("ShardSweep: plan size " +
                                std::to_string(plan.size()) + " != shards " +
                                std::to_string(S));
  }
  assert(src < host_g.num_vertices());
  unsigned live = 0;
  for (unsigned s = 0; s < S; ++s) {
    if (plan[s] == kLost) continue;
    if (plan[s] < 0 || static_cast<unsigned>(plan[s]) >= store_.replicas()) {
      throw std::invalid_argument("ShardSweep: bad replica index in plan");
    }
    ++live;
  }
  const unsigned src_owner = store_.layout().owner(src);
  if (plan[src_owner] == kLost) {
    throw std::invalid_argument(
        "ShardSweep: source shard " + std::to_string(src_owner) +
        " is lost — no meaningful result exists");
  }

  ShardSweepResult result;
  result.shards_live = live;
  result.shards_lost = S - live;
  result.partial = result.shards_lost > 0;
  reset_for_run(src, plan);

  const dist::FabricModel& fabric = store_.config().fabric;
  const unsigned grid_rows = store_.layout().grid_rows();
  const unsigned grid_cols = store_.layout().grid_cols();
  const bool promotable = live >= 4 && grid_cols > 1;

  // Level-0 frontier metadata from the owner's local rows.
  const ShardedStore::Replica& owner_rep =
      store_.replica(src_owner, static_cast<unsigned>(plan[src_owner]));
  const vid_t r0 = src - owner_rep.rows->first_vertex;
  std::uint64_t frontier_count = 1;
  std::uint64_t frontier_edges =
      owner_rep.rows->offsets[r0 + 1] - owner_rep.rows->offsets[r0];
  const std::uint64_t m = host_g.num_edges();

  double clock_us = 0, comm_total_us = 0;
  for (std::uint32_t level = 0;; ++level) {
    const double ratio =
        static_cast<double>(frontier_edges) / static_cast<double>(m ? m : 1);
    const bool bottom_up = ratio > cfg_.alpha;

    ShardLevelStats st;
    st.level = level;
    st.bottom_up = bottom_up;
    st.frontier_count = frontier_count;
    st.frontier_edges = frontier_edges;
    st.ratio = ratio;

    double local_us = 0, comm_us = 0;
    if (bottom_up) {
      local_us = run_local_bottomup(level, plan);
      // Claimed bits are already owner-clean: one encoded broadcast.
      const Exchange bx = broadcast_cleaned(plan);
      st.raw_bytes += bx.raw;
      st.wire_bytes += bx.wire;
      comm_us = fabric.allgather_us(live, bx.wire);
    } else {
      local_us = run_local_topdown(plan);
      const Exchange cx = merge_candidates(plan);
      local_us += run_claim_phase(level, plan);
      const Exchange bx = broadcast_cleaned(plan);
      st.raw_bytes += cx.raw + bx.raw;
      st.wire_bytes += cx.wire + bx.wire;
      // Flat: both collectives span every live shard.  Two-phase (the 2D
      // promotion): candidates move within grid-column groups, the cleaned
      // frontier broadcasts along grid rows — each collective runs over a
      // factor-of-p-sized group instead of all p.
      const double flat = fabric.allgather_us(live, cx.wire) +
                          fabric.allgather_us(live, bx.wire);
      if (promotable) {
        const double two = fabric.allgather_us(grid_rows, cx.wire) +
                           fabric.allgather_us(grid_cols, bx.wire);
        st.two_phase = two < flat;
        comm_us = std::min(two, flat);
      } else {
        comm_us = flat;
      }
    }
    comm_us += fabric.allreduce_scalar_us(live);

    // Claim totals travel in the scalar allreduce just charged.
    std::uint64_t next_count = 0, next_edges = 0;
    for (unsigned s = 0; s < S; ++s) {
      if (plan[s] == kLost) continue;
      ShardedStore::Replica& g = rep(s, plan);
      g.counters.mark_host_synced();
      g.edges.mark_host_synced();
      next_count += g.counters.h_read(kClaimed);
      next_edges += g.edges.h_read(0);
    }

    st.local_ms = local_us / 1000.0;
    st.comm_ms = comm_us / 1000.0;
    result.level_stats.push_back(st);
    result.raw_bytes += st.raw_bytes;
    result.wire_bytes += st.wire_bytes;
    clock_us += local_us + comm_us;
    comm_total_us += comm_us;

    if (next_count == 0) break;
    frontier_count = next_count;
    frontier_edges = next_edges;

    // Swap bitmaps and clear the new candidate map on every live replica.
    double clear_us = 0;
    for (unsigned sh = 0; sh < S; ++sh) {
      if (plan[sh] == kLost) continue;
      ShardedStore::Replica& g = rep(sh, plan);
      std::swap(g.cur_bm, g.next_bm);
      sim::Device& dev = *g.device;
      auto next = g.next_bm.span();
      sim::LaunchConfig lc;
      lc.block_threads = store_.config().block_threads;
      lc.grid_blocks =
          auto_grid_blocks(dev.profile(), words_, lc.block_threads);
      const double t0 = dev.now_us();
      try {
        dev.launch("shard_clear_bitmap", lc, [=](sim::BlockCtx& blk) {
          auto& ctx = blk.ctx();
          blk.grid_stride(next.size(), [&](std::uint64_t w) {
            ctx.store(next, w, std::uint64_t{0});
          });
        });
      } catch (const sim::FaultInjected& f) {
        throw ShardSweepFault(sh, static_cast<unsigned>(plan[sh]), f.what());
      }
      clear_us = std::max(clear_us, dev.now_us() - t0);
    }
    clock_us += clear_us;
  }

  // Gather global levels from the live owned status slices; lost shards'
  // ranges stay -1 (the partial contract).
  result.levels.assign(host_g.num_vertices(), -1);
  std::uint64_t reached_degree = 0;
  for (unsigned s = 0; s < S; ++s) {
    if (plan[s] == kLost) continue;
    const ShardedStore::Replica& g = rep(s, plan);
    g.device->memcpy_d2h(g.rows->num_rows * sizeof(std::uint32_t));
    g.status.mark_host_synced();
    for (vid_t r = 0; r < g.rows->num_rows; ++r) {
      const std::uint32_t stv = g.status.h_read(r);
      if (stv != kUnvisited) {
        result.levels[g.rows->first_vertex + r] =
            static_cast<std::int32_t>(stv);
        reached_degree += g.rows->offsets[r + 1] - g.rows->offsets[r];
      }
    }
  }

  result.depth = static_cast<std::uint32_t>(result.level_stats.size());
  result.total_ms = clock_us / 1000.0;
  result.comm_ms = comm_total_us / 1000.0;
  result.edges_traversed = reached_degree / 2;
  result.gteps = core::safe_gteps(result.edges_traversed, result.total_ms);
  return result;
}

}  // namespace xbfs::shard
