// ShardedStore: one CSR resident across a group of simulated GCDs, with a
// replica group per shard — the storage tier behind the scatter-gather
// router (shard/router.h).
//
// Each (shard, replica) pair owns a full simulated device holding the
// shard's rows (dist::extract_local_rows), a status slice, and the global
// frontier bitmaps the distributed sweep exchanges.  Device residency is
// budget-checked: a replica whose allocation exceeds the configured
// modelled memory budget fails construction with the minimum shard count
// that would fit — this is the mechanism that makes "a graph 2x one GCD's
// memory" a hard constraint the bench can demonstrate rather than a slide
// claim.
//
// Replicas exist for availability, not throughput: the router routes each
// shard's work to any healthy replica (serve::HealthTracker breaker per
// slot), kill_replica() models a lost GCD for chaos tests, and a shard
// whose whole group is down degrades queries to partial results instead of
// failing them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/status_code.h"
#include "dist/interconnect.h"
#include "dist/partition.h"
#include "graph/csr.h"
#include "hipsim/buffer.h"
#include "hipsim/device.h"
#include "shard/layout.h"

namespace xbfs::shard {

struct ShardStoreConfig {
  unsigned shards = 4;
  unsigned replicas = 1;  ///< replica group size per shard
  /// Modelled device-memory budget per replica, bytes.  0 = take
  /// XBFS_SHARD_BUDGET_MB from the environment, falling back to the
  /// profile's device_mem_bytes (64 GB for an MI250X GCD).
  std::uint64_t device_budget_bytes = 0;
  unsigned block_threads = 256;
  dist::FabricModel fabric = dist::FabricModel::frontier();
  sim::DeviceProfile profile = sim::DeviceProfile::mi250x_gcd();
  sim::SimOptions device_options = {};

  xbfs::Status validate() const;
  /// The budget after env/profile resolution.
  std::uint64_t resolved_budget() const;
};

/// How the graph's device residency relates to the budget; the serving
/// bench's oversubscription record comes from here.
struct ShardMemoryReport {
  std::uint64_t budget_bytes = 0;
  /// What a single device would have to allocate to hold the whole graph
  /// (shards = 1 residency: CSR + status + bitmaps + queue).
  std::uint64_t single_device_bytes = 0;
  std::uint64_t max_shard_bytes = 0;  ///< largest replica footprint built
  /// single_device_bytes / budget: >= 2 means the served graph is at least
  /// twice one GCD's modelled memory.
  double oversubscription = 0.0;
  unsigned min_shards = 1;  ///< smallest shard count whose slices all fit
  bool fits = false;        ///< max_shard_bytes <= budget_bytes
};

class ShardedStore {
 public:
  /// One shard replica: a full simulated device plus the sweep's working
  /// set.  Buffer roles mirror dist::DistBfs (status is local-row indexed,
  /// bitmaps are global, queue holds owned frontier vertices).
  struct Replica {
    std::unique_ptr<sim::Device> device;
    std::shared_ptr<const dist::LocalRows> rows;  ///< shared across replicas
    sim::DeviceBuffer<graph::eid_t> offsets;
    sim::DeviceBuffer<graph::vid_t> cols;
    sim::DeviceBuffer<std::uint32_t> status;
    sim::DeviceBuffer<std::uint64_t> cur_bm;
    sim::DeviceBuffer<std::uint64_t> next_bm;
    sim::DeviceBuffer<graph::vid_t> queue;
    sim::DeviceBuffer<std::uint32_t> counters;
    sim::DeviceBuffer<std::uint64_t> edges;
    /// Sweeps serialize per replica (the device's modelled clocks are not
    /// thread-safe); the router locks each query's chosen replicas in slot
    /// order before running the distributed sweep.
    std::mutex mu;
    std::atomic<bool> dead{false};
  };

  /// Builds every replica's device residency; throws std::invalid_argument
  /// on a bad config or when any replica exceeds the memory budget (the
  /// message names the minimum shard count that fits).  `g` must outlive
  /// the store.
  ShardedStore(const graph::Csr& g, ShardStoreConfig cfg);
  ~ShardedStore();

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  const graph::Csr& graph() const { return *g_; }
  const ShardLayout& layout() const { return layout_; }
  const ShardStoreConfig& config() const { return cfg_; }
  unsigned shards() const { return cfg_.shards; }
  unsigned replicas() const { return cfg_.replicas; }
  unsigned num_slots() const { return cfg_.shards * cfg_.replicas; }

  /// Flat slot id of (shard, replica) — the HealthTracker/SLO lane index.
  unsigned slot(unsigned s, unsigned r) const { return s * cfg_.replicas + r; }
  Replica& replica(unsigned s, unsigned r) { return *replicas_[slot(s, r)]; }
  const Replica& replica(unsigned s, unsigned r) const {
    return *replicas_[slot(s, r)];
  }

  bool alive(unsigned s, unsigned r) const {
    return !replica(s, r).dead.load(std::memory_order_acquire);
  }
  /// Chaos hooks: a killed replica stays allocated but is never planned
  /// into a sweep until revived (modelled GCD loss, not process death).
  void kill_replica(unsigned s, unsigned r);
  void revive_replica(unsigned s, unsigned r);
  unsigned healthy_replicas(unsigned s) const;

  ShardMemoryReport memory_report() const;

  /// Cache-key salt: results served by this store are cached under
  /// graph::mix_fingerprint(csr_fingerprint, fingerprint_salt()).
  std::uint64_t fingerprint_salt() const { return layout_.layout_hash(); }

  /// Worst-shard device bytes for `shards`-way residency of `g` — what one
  /// replica would allocate — without building anything.  The bench sizes
  /// its budget from this; the constructor uses it for min_shards guidance.
  static std::uint64_t estimate_replica_bytes(const graph::Csr& g,
                                              unsigned shards);

 private:
  const graph::Csr* g_;
  ShardStoreConfig cfg_;
  ShardLayout layout_;
  std::vector<std::unique_ptr<Replica>> replicas_;  ///< [shard][replica] flat
  std::uint64_t max_shard_bytes_ = 0;
};

}  // namespace xbfs::shard
