#include "shard/sharded_store.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace xbfs::shard {

using graph::eid_t;
using graph::vid_t;

xbfs::Status ShardStoreConfig::validate() const {
  if (shards < 1) return xbfs::Status::Invalid("shards must be >= 1");
  if (replicas < 1) return xbfs::Status::Invalid("replicas must be >= 1");
  if (block_threads < 1) {
    return xbfs::Status::Invalid("block_threads must be >= 1");
  }
  return xbfs::Status::Ok();
}

std::uint64_t ShardStoreConfig::resolved_budget() const {
  if (device_budget_bytes != 0) return device_budget_bytes;
  if (const char* env = std::getenv("XBFS_SHARD_BUDGET_MB");
      env != nullptr && *env != '\0') {
    const long long mb = std::atoll(env);
    if (mb > 0) return static_cast<std::uint64_t>(mb) * 1024 * 1024;
  }
  return profile.device_mem_bytes;
}

namespace {

/// Device bytes one replica of shard `s` allocates under `part`: the local
/// CSR slice plus the sweep working set.  Must mirror the constructor's
/// alloc calls exactly — this is what min_shards guidance is derived from.
std::uint64_t shard_bytes(const graph::Csr& g, const dist::Partition1D& part,
                          unsigned s) {
  const vid_t rows = part.owned(s);
  const eid_t edges = g.offsets()[part.end(s)] - g.offsets()[part.begin(s)];
  const std::uint64_t words =
      (static_cast<std::uint64_t>(g.num_vertices()) + 63) / 64;
  std::uint64_t b = 0;
  b += (static_cast<std::uint64_t>(rows) + 1) * sizeof(eid_t);    // offsets
  b += std::max<std::uint64_t>(1, edges) * sizeof(vid_t);         // cols
  b += std::max<std::uint64_t>(1, rows) * sizeof(std::uint32_t);  // status
  b += 2 * words * sizeof(std::uint64_t);                         // bitmaps
  b += std::max<std::uint64_t>(1, rows) * sizeof(vid_t);          // queue
  b += 2 * sizeof(std::uint32_t);                                 // counters
  b += sizeof(std::uint64_t);                                     // edges
  return b;
}

}  // namespace

std::uint64_t ShardedStore::estimate_replica_bytes(const graph::Csr& g,
                                                   unsigned shards) {
  const dist::Partition1D part(g.num_vertices(), std::max(1u, shards));
  std::uint64_t worst = 0;
  for (unsigned s = 0; s < part.parts(); ++s) {
    worst = std::max(worst, shard_bytes(g, part, s));
  }
  return worst;
}

ShardedStore::ShardedStore(const graph::Csr& g, ShardStoreConfig cfg)
    : g_(&g), cfg_(cfg), layout_(g.num_vertices(), std::max(1u, cfg.shards)) {
  if (const xbfs::Status st = cfg_.validate(); !st.ok()) {
    throw std::invalid_argument("ShardStoreConfig: " + st.to_string());
  }
  const std::uint64_t budget = cfg_.resolved_budget();
  const std::size_t words =
      (static_cast<std::size_t>(g.num_vertices()) + 63) / 64;

  replicas_.reserve(num_slots());
  for (unsigned s = 0; s < cfg_.shards; ++s) {
    const auto rows = std::make_shared<const dist::LocalRows>(
        dist::extract_local_rows(g, layout_.partition(), s));
    for (unsigned r = 0; r < cfg_.replicas; ++r) {
      auto rep = std::make_unique<Replica>();
      rep->rows = rows;
      rep->device =
          std::make_unique<sim::Device>(cfg_.profile, cfg_.device_options);
      rep->device->warmup();
      rep->device->set_trace_label("shard" + std::to_string(s) + "r" +
                                   std::to_string(r));
      sim::Device& dev = *rep->device;
      const std::string tag =
          "shard" + std::to_string(s) + "r" + std::to_string(r);
      rep->offsets = dev.alloc<eid_t>(rows->offsets.size(), tag + ".offsets");
      rep->offsets.h_copy_from(rows->offsets.data(), rows->offsets.size());
      rep->cols = dev.alloc<vid_t>(std::max<std::size_t>(1, rows->cols.size()),
                                   tag + ".cols");
      if (!rows->cols.empty()) {
        rep->cols.h_copy_from(rows->cols.data(), rows->cols.size());
      }
      // Modelled upload of the slice (cols buffer is padded to 1 element).
      dev.memcpy_h2d(rows->offsets.size() * sizeof(eid_t) +
                     rows->cols.size() * sizeof(vid_t));
      rep->offsets.mark_device_synced();
      rep->cols.mark_device_synced();
      rep->status = dev.alloc<std::uint32_t>(
          std::max<vid_t>(1, rows->num_rows), tag + ".status");
      rep->cur_bm = dev.alloc<std::uint64_t>(words, tag + ".cur_bm");
      rep->next_bm = dev.alloc<std::uint64_t>(words, tag + ".next_bm");
      rep->queue = dev.alloc<vid_t>(std::max<vid_t>(1, rows->num_rows),
                                    tag + ".queue");
      rep->counters = dev.alloc<std::uint32_t>(2, tag + ".counters");
      rep->edges = dev.alloc<std::uint64_t>(1, tag + ".edges");

      const std::uint64_t allocated = dev.allocated_bytes();
      max_shard_bytes_ = std::max(max_shard_bytes_, allocated);
      if (allocated > budget) {
        // Find the smallest shard count whose worst slice fits, so the
        // error tells the operator what to re-shard to.
        unsigned min_shards = cfg_.shards;
        for (unsigned k = cfg_.shards + 1; k <= 4096; k *= 2) {
          if (estimate_replica_bytes(g, k) <= budget) {
            min_shards = k;
            break;
          }
        }
        throw std::invalid_argument(
            "ShardedStore: shard " + std::to_string(s) + " needs " +
            std::to_string(allocated) + " bytes but the device budget is " +
            std::to_string(budget) + "; re-shard to >= " +
            std::to_string(min_shards) + " shards");
      }
      replicas_.push_back(std::move(rep));
    }
  }
}

ShardedStore::~ShardedStore() = default;

void ShardedStore::kill_replica(unsigned s, unsigned r) {
  replica(s, r).dead.store(true, std::memory_order_release);
}

void ShardedStore::revive_replica(unsigned s, unsigned r) {
  replica(s, r).dead.store(false, std::memory_order_release);
}

unsigned ShardedStore::healthy_replicas(unsigned s) const {
  unsigned healthy = 0;
  for (unsigned r = 0; r < cfg_.replicas; ++r) {
    if (alive(s, r)) ++healthy;
  }
  return healthy;
}

ShardMemoryReport ShardedStore::memory_report() const {
  ShardMemoryReport rep;
  rep.budget_bytes = cfg_.resolved_budget();
  rep.single_device_bytes = estimate_replica_bytes(*g_, 1);
  rep.max_shard_bytes = max_shard_bytes_;
  rep.oversubscription =
      rep.budget_bytes == 0
          ? 0.0
          : static_cast<double>(rep.single_device_bytes) /
                static_cast<double>(rep.budget_bytes);
  rep.fits = rep.max_shard_bytes <= rep.budget_bytes;
  rep.min_shards = 1;
  for (unsigned k = 1; k <= 4096; k *= 2) {
    rep.min_shards = k;
    if (estimate_replica_bytes(*g_, k) <= rep.budget_bytes) break;
  }
  return rep;
}

}  // namespace xbfs::shard
