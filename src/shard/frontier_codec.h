// Compressed frontier exchange format for the sharded tier.
//
// A frontier slice travels between shards in whichever of two encodings is
// smaller for its density — the classic sparse/dense switch the GPU-cluster
// BFS literature uses for frontier exchange:
//
//   * Bitmap      — the raw words, 8 bytes per 64 vertices.  Wins once the
//                   slice is dense (>~ 1 set bit per 9 vertices).
//   * DeltaVarint — the set positions as LEB128 varints of successive
//                   deltas (first position relative to the slice start).
//                   Sparse frontiers — the long tail of a direction-
//                   optimized BFS — shrink to ~1-2 bytes per vertex.
//
// The encoder picks per slice; the decoder ORs either form back into a
// destination bitmap, so the exchange stays an OR-merge exactly like the
// uncompressed dist::DistBfs path.  wire_bytes() is what the modelled
// fabric charges; raw_bytes() is the uncompressed cost the compression
// ratio is reported against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xbfs::shard {

enum class FrontierFormat : std::uint8_t {
  Bitmap = 0,
  DeltaVarint = 1,
};

const char* frontier_format_name(FrontierFormat f);

struct EncodedFrontier {
  FrontierFormat format = FrontierFormat::Bitmap;
  std::uint64_t word_begin = 0;  ///< first 64-bit word the slice covers
  std::uint64_t word_count = 0;
  std::uint32_t set_bits = 0;
  std::vector<std::uint8_t> payload;

  /// Modelled bytes on the wire: payload plus the fixed slice header
  /// (format byte + word range + count).
  std::uint64_t wire_bytes() const { return payload.size() + 21; }
  /// Uncompressed cost of the same slice.
  std::uint64_t raw_bytes() const {
    return word_count * sizeof(std::uint64_t);
  }
};

/// LEB128 varint helpers (exposed for tests).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
/// Decode one varint at `p` (strictly before `end`); returns the byte past
/// the varint, or nullptr on truncated input.
const std::uint8_t* get_varint(const std::uint8_t* p,
                               const std::uint8_t* end, std::uint64_t* out);

/// Encode `word_count` words starting at words[word_begin] (indices into
/// the *global* bitmap array).  Picks the smaller of the two formats.
EncodedFrontier encode_frontier(const std::uint64_t* words,
                                std::uint64_t word_begin,
                                std::uint64_t word_count);

/// OR the encoded slice back into a global bitmap (sized >= the slice's
/// word range).  Returns the number of set bits applied.
std::uint32_t decode_frontier_or(const EncodedFrontier& enc,
                                 std::uint64_t* words);

}  // namespace xbfs::shard
