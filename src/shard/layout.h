// Shard layout: how one CSR is cut across a group of simulated GCDs.
//
// Rows are partitioned 1D Graph500-style (dist::Partition1D): shard s owns
// the contiguous vertex range [begin(s), end(s)) and the full adjacency of
// those rows.  On top of the 1D cut the layout carries a near-square
// grid_rows x grid_cols factorization of the shard count — the shape the
// exchange promotes toward for communication-heavy levels: a 2D edge
// partition (Buluc/Beamer) runs its collectives over sqrt(p)-sized row and
// column groups instead of all p shards, and the sweep's cost model charges
// the cheaper of the flat and two-phase exchanges per level
// (shard/shard_bfs.h).
//
// layout_hash() feeds the cache-key contract: sharded results are cached
// under graph::mix_fingerprint(csr_fp, layout_hash()), so a re-shard (new
// shard count or new bounds) self-invalidates serve::ResultCache exactly
// like an epoch bump does for graph updates.
#pragma once

#include <cstdint>

#include "dist/partition.h"
#include "graph/csr.h"

namespace xbfs::shard {

class ShardLayout {
 public:
  ShardLayout(graph::vid_t n, unsigned shards);

  unsigned shards() const { return part_.parts(); }
  graph::vid_t n() const { return part_.n(); }

  const dist::Partition1D& partition() const { return part_; }
  graph::vid_t begin(unsigned s) const { return part_.begin(s); }
  graph::vid_t end(unsigned s) const { return part_.end(s); }
  graph::vid_t owned(unsigned s) const { return part_.owned(s); }
  unsigned owner(graph::vid_t v) const { return part_.owner(v); }

  /// Near-square factorization of the shard count (rows >= cols, both >= 1,
  /// rows * cols == shards): the 2D promotion shape for exchange-heavy
  /// levels.  A prime shard count degenerates to shards x 1, which makes
  /// the two-phase exchange cost equal the flat one — promotion simply
  /// never wins there.
  unsigned grid_rows() const { return grid_rows_; }
  unsigned grid_cols() const { return grid_cols_; }

  /// Layout identity for cache keys: the partition's bounds hash mixed with
  /// the promotion grid, so any re-shard — even one that keeps the bounds
  /// but regroups the exchange — yields a different key salt.
  std::uint64_t layout_hash() const;

 private:
  dist::Partition1D part_;
  unsigned grid_rows_ = 1;
  unsigned grid_cols_ = 1;
};

}  // namespace xbfs::shard
