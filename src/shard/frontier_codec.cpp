#include "shard/frontier_codec.h"

#include <bit>
#include <cstring>

namespace xbfs::shard {

const char* frontier_format_name(FrontierFormat f) {
  switch (f) {
    case FrontierFormat::Bitmap: return "bitmap";
    case FrontierFormat::DeltaVarint: return "delta-varint";
  }
  return "?";
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

const std::uint8_t* get_varint(const std::uint8_t* p,
                               const std::uint8_t* end, std::uint64_t* out) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (p < end) {
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      *out = v;
      return p;
    }
    shift += 7;
    if (shift >= 64) return nullptr;  // overlong encoding
  }
  return nullptr;  // truncated
}

EncodedFrontier encode_frontier(const std::uint64_t* words,
                                std::uint64_t word_begin,
                                std::uint64_t word_count) {
  EncodedFrontier enc;
  enc.word_begin = word_begin;
  enc.word_count = word_count;

  // First pass: count bits so the sparse path can bail out before paying
  // for an encoding it will throw away.  A varint delta costs >= 1 byte per
  // set bit, so the sparse form can only win below one bit per 8 raw bytes.
  std::uint64_t set = 0;
  for (std::uint64_t w = 0; w < word_count; ++w) {
    set += static_cast<std::uint64_t>(std::popcount(words[word_begin + w]));
  }
  enc.set_bits = static_cast<std::uint32_t>(set);

  const std::uint64_t raw = word_count * sizeof(std::uint64_t);
  if (set == 0) {
    // Empty slice: ship just the header.  Frequent in high-locality
    // graphs, where most sender/owner pairs exchange nothing at a level.
    enc.format = FrontierFormat::DeltaVarint;
    return enc;
  }
  if (set < raw) {
    std::vector<std::uint8_t> sparse;
    sparse.reserve(set * 2);
    const std::uint64_t base = word_begin * 64;
    std::uint64_t prev = base;
    for (std::uint64_t w = 0; w < word_count && sparse.size() < raw; ++w) {
      std::uint64_t word = words[word_begin + w];
      while (word != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(word));
        word &= word - 1;
        const std::uint64_t pos = (word_begin + w) * 64 + b;
        put_varint(sparse, pos - prev);
        prev = pos;
      }
    }
    if (sparse.size() < raw) {
      enc.format = FrontierFormat::DeltaVarint;
      enc.payload = std::move(sparse);
      return enc;
    }
  }

  enc.format = FrontierFormat::Bitmap;
  enc.payload.resize(raw);
  if (raw != 0) {
    std::memcpy(enc.payload.data(), words + word_begin, raw);
  }
  return enc;
}

std::uint32_t decode_frontier_or(const EncodedFrontier& enc,
                                 std::uint64_t* words) {
  if (enc.format == FrontierFormat::Bitmap) {
    std::uint32_t applied = 0;
    const auto* src =
        reinterpret_cast<const std::uint64_t*>(enc.payload.data());
    for (std::uint64_t w = 0; w < enc.word_count; ++w) {
      std::uint64_t word;
      std::memcpy(&word, src + w, sizeof(word));
      words[enc.word_begin + w] |= word;
      applied += static_cast<std::uint32_t>(std::popcount(word));
    }
    return applied;
  }

  const std::uint8_t* p = enc.payload.data();
  const std::uint8_t* end = p + enc.payload.size();
  std::uint64_t pos = enc.word_begin * 64;
  std::uint32_t applied = 0;
  for (std::uint32_t i = 0; i < enc.set_bits; ++i) {
    std::uint64_t delta = 0;
    p = get_varint(p, end, &delta);
    if (p == nullptr) break;  // truncated payload: apply what decoded
    pos += delta;
    words[pos / 64] |= std::uint64_t{1} << (pos % 64);
    ++applied;
  }
  return applied;
}

}  // namespace xbfs::shard
