#include "algos/cc_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/status.h"

namespace xbfs::algos {

using core::auto_grid_blocks;
using graph::eid_t;
using graph::vid_t;

LpCcEngine::LpCcEngine(sim::Device& dev, const graph::DeviceCsr& g,
                       CcEngineConfig cfg)
    : dev_(dev), g_(g), cfg_(cfg) {
  label_ = dev.alloc<vid_t>(g.n, "cc.label");
  counters_ = dev.alloc<std::uint32_t>(1, "cc.counters");
}

core::AlgoResult LpCcEngine::solve(const core::AlgoQuery&) {
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  core::AlgoResult result;
  result.payload.kind = core::AlgoKind::Cc;

  auto label = label_.span();
  auto counters = counters_.span();
  auto offsets = g_.offsets_span();
  auto cols = g_.cols_span();
  const std::uint64_t n = g_.n;
  const std::uint64_t m = std::max<std::uint64_t>(1, g_.m);

  sim::LaunchConfig lc;
  lc.block_threads = cfg_.block_threads;
  lc.grid_blocks = auto_grid_blocks(dev_.profile(), n, cfg_.block_threads);
  const sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};

  dev_.launch(s, "cc_init", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(n, [&](std::uint64_t v) {
      ctx.store(label, v, static_cast<vid_t>(v));
    });
  });

  std::uint64_t hooks = 0;
  std::uint32_t rounds = 0;
  for (;; ++rounds) {
    dev_.profiler().set_context(static_cast<int>(rounds), "lp-cc");
    const double round_t0 = dev_.now_us();
    dev_.launch(s, "cc_reset", rc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t == 0) ctx.store(counters, 0, 0u);
      });
    });

    // Hook: every edge pulls both endpoints toward the smaller label.  The
    // CSR is symmetric, so scattering from each vertex covers each
    // undirected edge in both directions.
    dev_.launch(s, "cc_hook", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      // Neighbor labels are read while other lanes atomicMin them; labels
      // only decrease, so a stale (larger) read can only under-hook — the
      // improved counter stays nonzero and the next round retries.
      sim::racy_ok allow(ctx,
                         "lp-cc hook: concurrent reads of monotonically "
                         "decreasing labels; fixpoint detected by the "
                         "improvement counter");
      blk.grid_stride(n, [&](std::uint64_t v) {
        const vid_t lv = ctx.atomic_load(label, v);
        const eid_t b = ctx.load(offsets, v);
        const eid_t e = ctx.load(offsets, v + 1);
        std::uint32_t improved = 0;
        for (eid_t j = b; j < e; ++j) {
          const vid_t w = ctx.load(cols, j);
          const vid_t old = ctx.atomic_min(label, w, lv);
          if (lv < old) ++improved;
        }
        ctx.slots(2 * (e - b) + 1, 2 * (e - b) + 1);
        if (improved > 0) ctx.atomic_add(counters, 0, improved);
      });
    });

    // Shortcut: compress label chains (v -> label[v] -> label[label[v]]
    // -> ...) to their root.  Chains are strictly decreasing vertex ids,
    // so the walk terminates; a concurrent improvement just means another
    // hook round follows.
    dev_.launch(s, "cc_jump", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      sim::racy_ok allow(ctx,
                         "lp-cc jump: pointer jumping over labels other "
                         "lanes are compressing; labels only decrease");
      blk.grid_stride(n, [&](std::uint64_t v) {
        vid_t l = ctx.atomic_load(label, v);
        unsigned steps = 0;
        for (;;) {
          const vid_t parent = ctx.atomic_load(label, l);
          if (parent == l) break;
          l = parent;
          ++steps;
        }
        if (steps > 0) ctx.atomic_min(label, v, l);
        ctx.slots(2 * (steps + 1), 2 * (steps + 1));
      });
    });

    s.synchronize();
    dev_.memcpy_d2h(s, counters_);
    const std::uint32_t improved = counters_.h_read(0);
    hooks += improved;

    core::LevelStats st;
    st.level = rounds;
    st.strategy = core::Strategy::SingleScan;  // full-vertex scans per round
    st.frontier_count = improved;
    st.frontier_edges = m;
    st.ratio = 1.0;
    st.time_ms = (dev_.now_us() - round_t0) / 1000.0;
    st.kernels = 3;
    result.level_stats.push_back(st);
    if (improved == 0) break;
  }

  dev_.memcpy_d2h(s, label_);
  s.synchronize();
  const vid_t* label_host = std::as_const(label_).host_data();
  result.payload.components = std::make_shared<const std::vector<vid_t>>(
      label_host, label_host + n);
  result.payload.depth = rounds + 1;
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  result.work_items = hooks;
  return result;
}

}  // namespace xbfs::algos
