#include "algos/scc.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "core/status.h"  // auto_grid_blocks

namespace xbfs::algos {

using core::auto_grid_blocks;
using graph::eid_t;
using graph::vid_t;

namespace {

constexpr vid_t kUnassigned = static_cast<vid_t>(-1);

/// Device-side per-vertex state of the FW-BW search.
struct SccState {
  sim::DeviceBuffer<vid_t> color;      ///< current partition id
  sim::DeviceBuffer<vid_t> scc;        ///< assigned component (kUnassigned)
  sim::DeviceBuffer<std::uint8_t> fw;  ///< forward-reachable mark
  sim::DeviceBuffer<std::uint8_t> bw;  ///< backward-reachable mark
  sim::DeviceBuffer<std::uint32_t> changed;
};

/// Frontier-less reachability sweep: propagate `mark` from marked vertices
/// along `g` inside one partition color until a sweep makes no progress.
void reachability(sim::Device& dev, const graph::DeviceCsr& g,
                  SccState& st, sim::dspan<std::uint8_t> mark, vid_t color_id,
                  const SccConfig& cfg, const char* kernel_name) {
  sim::Stream& s = dev.stream(0);
  auto offsets = g.offsets_span();
  auto cols = g.cols_span();
  auto color = st.color.cspan();
  auto scc = st.scc.cspan();
  auto changed = st.changed.span();
  const vid_t n = g.n;
  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = auto_grid_blocks(dev.profile(), n, cfg.block_threads);
  for (;;) {
    st.changed.h_write(0, 0);  // host reset; re-uploaded below
    dev.memcpy_h2d(s, st.changed);
    dev.launch(s, kernel_name, lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      // Mark propagation is monotonic 0->1 with no synchronization: plain
      // reads race with other blocks' plain same-value stores, and a stale
      // read only defers the mark to the next fixed-point sweep.
      sim::racy_ok allow(ctx,
                         "scc sweep: monotonic reachability marks; stale "
                         "reads retry on the next sweep iteration");
      blk.grid_stride(n, [&](std::uint64_t v) {
        if (!ctx.load(mark, v) || ctx.load(color, v) != color_id ||
            ctx.load(scc, v) != kUnassigned) {
          ctx.slots(3, 3);
          return;
        }
        const eid_t b = ctx.load(offsets, v);
        const eid_t e = ctx.load(offsets, v + 1);
        for (eid_t j = b; j < e; ++j) {
          const vid_t w = ctx.load(cols, j);
          if (ctx.load(color, w) != color_id) continue;
          if (ctx.load(scc, w) != kUnassigned) continue;
          if (!ctx.atomic_load(mark, w)) {
            ctx.store(mark, w, std::uint8_t{1});
            ctx.atomic_add(changed, 0, std::uint32_t{1});
          }
        }
        ctx.slots(3 * (e - b) + 3, 3 * (e - b) + 3);
      });
    });
    s.synchronize();
    dev.memcpy_d2h(s, st.changed);
    if (st.changed.h_read(0) == 0) break;
  }
}

}  // namespace

SccResult scc_fw_bw(sim::Device& dev, const graph::DeviceCsr& fwd,
                    const graph::DeviceCsr& bwd, const SccConfig& cfg) {
  const vid_t n = fwd.n;
  sim::Stream& s = dev.stream(0);
  const double t0 = dev.now_us();

  SccState st;
  st.color = dev.alloc<vid_t>(n, "scc.color");
  st.scc = dev.alloc<vid_t>(n, "scc.component");
  st.fw = dev.alloc<std::uint8_t>(n, "scc.fw_mark");
  st.bw = dev.alloc<std::uint8_t>(n, "scc.bw_mark");
  st.changed = dev.alloc<std::uint32_t>(1, "scc.changed");

  auto color = st.color.span();
  auto scc = st.scc.span();
  auto fw = st.fw.span();
  auto bw = st.bw.span();
  auto changed = st.changed.span();
  auto out_offsets = fwd.offsets_span();
  auto out_cols = fwd.cols_span();
  auto in_offsets = bwd.offsets_span();
  auto in_cols = bwd.cols_span();

  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = auto_grid_blocks(dev.profile(), n, cfg.block_threads);

  dev.launch(s, "scc_init", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(n, [&](std::uint64_t v) {
      ctx.store(color, v, vid_t{0});
      ctx.store(scc, v, kUnassigned);
    });
  });

  SccResult result;
  vid_t next_scc = 0;
  vid_t next_color = 1;

  // --- trim-1: vertices with no unassigned in- or out-neighbor in their
  // partition are singleton SCCs; iterate to a fixed point.
  for (;;) {
    st.changed.h_write(0, 0);
    dev.memcpy_h2d(s, st.changed);
    const vid_t scc_base = next_scc;
    dev.launch(s, "scc_trim", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        if (ctx.load(scc, v) != kUnassigned) {
          ctx.slots(1, 1);
          return;
        }
        const vid_t cv = ctx.load(color, v);
        const auto live = [&](sim::dspan<const eid_t> offs,
                              sim::dspan<const vid_t> cs) {
          const eid_t b = ctx.load(offs, v);
          const eid_t e = ctx.load(offs, v + 1);
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cs, j);
            if (w != v && ctx.load(color, w) == cv &&
                ctx.atomic_load(scc, w) == kUnassigned) {
              return true;
            }
          }
          return false;
        };
        if (!live(out_offsets, out_cols) || !live(in_offsets, in_cols)) {
          // Singleton SCC; the id is finalized host-side afterwards.  The
          // plain commit races with other blocks' atomic liveness probes:
          // a probe that still sees kUnassigned only defers that vertex's
          // trim to the next fixed-point round.
          sim::racy_ok allow(ctx,
                             "scc trim: plain singleton commit vs same-pass "
                             "atomic liveness probes");
          ctx.store(scc, v, scc_base + static_cast<vid_t>(
                                ctx.atomic_add(changed, 0, std::uint32_t{1})));
        }
        ctx.slots(8, 8);
      });
    });
    s.synchronize();
    dev.memcpy_d2h(s, st.changed);
    const std::uint32_t trimmed_now = st.changed.h_read(0);
    if (trimmed_now == 0) break;
    next_scc += trimmed_now;
    result.trimmed += trimmed_now;
  }

  // --- FW-BW rounds over a host-side partition worklist --------------------
  std::deque<vid_t> worklist{0};
  while (!worklist.empty()) {
    const vid_t part = worklist.front();
    worklist.pop_front();

    // Pivot: first unassigned vertex of this partition (host scan of the
    // host-resident state; the partial d2h cost is modelled).
    dev.memcpy_d2h(s, n * (sizeof(vid_t) + sizeof(vid_t)) / 8);
    st.color.mark_host_synced();
    st.scc.mark_host_synced();
    const vid_t* color_host = std::as_const(st.color).host_data();
    const vid_t* scc_host = std::as_const(st.scc).host_data();
    vid_t pivot = kUnassigned;
    for (vid_t v = 0; v < n; ++v) {
      if (color_host[v] == part && scc_host[v] == kUnassigned) {
        pivot = v;
        break;
      }
    }
    if (pivot == kUnassigned) continue;  // partition fully assigned
    ++result.fwbw_rounds;

    // Clear marks, seed the pivot.
    dev.launch(s, "scc_seed", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        const std::uint8_t seed = v == pivot ? 1 : 0;
        ctx.store(fw, v, seed);
        ctx.store(bw, v, seed);
      });
    });

    reachability(dev, fwd, st, fw, part, cfg, "scc_forward_sweep");
    reachability(dev, bwd, st, bw, part, cfg, "scc_backward_sweep");

    // Classify: fw&bw -> the pivot's SCC; fw-only / bw-only / neither form
    // up to three sub-partitions that go back on the worklist.
    const vid_t scc_id = next_scc++;
    const vid_t c_fw = next_color++;
    const vid_t c_bw = next_color++;
    const vid_t c_rest = next_color++;
    dev.launch(s, "scc_classify", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        if (ctx.load(color, v) != part ||
            ctx.load(scc, v) != kUnassigned) {
          ctx.slots(2, 2);
          return;
        }
        const bool f = ctx.load(fw, v) != 0;
        const bool b = ctx.load(bw, v) != 0;
        if (f && b) {
          ctx.store(scc, v, scc_id);
        } else {
          ctx.store(color, v, f ? c_fw : (b ? c_bw : c_rest));
        }
        ctx.slots(4, 4);
      });
    });
    s.synchronize();
    worklist.push_back(c_fw);
    worklist.push_back(c_bw);
    worklist.push_back(c_rest);
  }

  // Compact component ids (trim assigned provisional ids already unique).
  dev.memcpy_d2h(s, st.scc);
  const vid_t* final_scc = std::as_const(st.scc).host_data();
  result.component.assign(final_scc, final_scc + n);
  result.num_components = next_scc;
  result.total_ms = (dev.now_us() - t0) / 1000.0;
  return result;
}

std::vector<vid_t> scc_reference(const graph::Csr& g, vid_t* num_components) {
  // Iterative Tarjan.
  const vid_t n = g.num_vertices();
  std::vector<vid_t> comp(n, kUnassigned);
  std::vector<std::int64_t> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<vid_t> stack;
  std::int64_t next_index = 0;
  vid_t next_comp = 0;

  struct Frame {
    vid_t v;
    std::size_t child;
  };
  std::vector<Frame> call;
  for (vid_t root = 0; root < n; ++root) {
    if (index[root] >= 0) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      const vid_t v = f.v;
      if (f.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      const auto nb = g.neighbors(v);
      bool descended = false;
      while (f.child < nb.size()) {
        const vid_t w = nb[f.child++];
        if (index[w] < 0) {
          call.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        for (;;) {
          const vid_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      call.pop_back();
      if (!call.empty()) {
        low[call.back().v] = std::min(low[call.back().v], low[v]);
      }
    }
  }
  if (num_components) *num_components = next_comp;
  return comp;
}

bool same_partition(const std::vector<vid_t>& a, const std::vector<vid_t>& b) {
  if (a.size() != b.size()) return false;
  std::map<vid_t, vid_t> fwd, rev;
  for (std::size_t v = 0; v < a.size(); ++v) {
    auto [itf, newf] = fwd.emplace(a[v], b[v]);
    if (itf->second != b[v]) return false;
    auto [itr, newr] = rev.emplace(b[v], a[v]);
    if (itr->second != a[v]) return false;
  }
  return true;
}

}  // namespace xbfs::algos
