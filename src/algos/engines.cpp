#include "algos/engines.h"

#include <chrono>
#include <mutex>
#include <utility>
#include <vector>

#include "algos/cc_engine.h"
#include "algos/kcore_engine.h"
#include "algos/sssp_engine.h"
#include "baseline/async_sssp.h"
#include "baseline/cpu_bfs.h"
#include "baseline/simple_scan.h"
#include "core/engine_registry.h"
#include "core/xbfs.h"
#include "graph/builder.h"
#include "graph/reference.h"

namespace xbfs::algos {

using core::AlgoKind;
using core::AlgoQuery;
using core::AlgoResult;
using core::EngineContext;
using graph::vid_t;

BcEngine::BcEngine(sim::Device& dev, const graph::DeviceCsr& g, BcConfig cfg)
    : dev_(dev), g_(g), cfg_(cfg) {}

AlgoResult BcEngine::solve(const AlgoQuery& q) {
  BcResult r = betweenness_centrality(dev_, g_, {q.source}, cfg_);
  AlgoResult out;
  out.payload.kind = AlgoKind::Bc;
  out.payload.scores = std::make_shared<const std::vector<double>>(
      std::move(r.centrality));
  out.total_ms = r.total_ms;
  return out;
}

SccEngine::SccEngine(sim::Device& dev, const graph::Csr& host_g,
                     const graph::DeviceCsr& fwd, SccConfig cfg)
    : dev_(dev), fwd_(fwd), cfg_(cfg) {
  bwd_ = graph::DeviceCsr::upload(dev, graph::reverse_csr(host_g));
}

AlgoResult SccEngine::solve(const AlgoQuery&) {
  SccResult r = scc_fw_bw(dev_, fwd_, bwd_, cfg_);
  AlgoResult out;
  out.payload.kind = AlgoKind::Scc;
  out.payload.components = std::make_shared<const std::vector<vid_t>>(
      std::move(r.component));
  out.payload.depth = r.fwbw_rounds;
  out.total_ms = r.total_ms;
  out.work_items = r.trimmed;
  return out;
}

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// One fault-immune host oracle per kind: thin engine shells over the
/// graph/reference algorithms, registered as the host fallback rung the
/// serving ladder degrades to when every device rung has failed.
class HostSsspEngine final : public core::AlgorithmEngine {
 public:
  explicit HostSsspEngine(const graph::Csr& g) : g_(g) {}
  AlgoKind kind() const override { return AlgoKind::Sssp; }
  const char* name() const override { return "host-sssp"; }
  core::EngineCapabilities capabilities() const override { return {}; }
  AlgoResult solve(const AlgoQuery& q) override {
    const auto t0 = std::chrono::steady_clock::now();
    AlgoResult out;
    out.payload.kind = AlgoKind::Sssp;
    out.payload.distances = std::make_shared<const std::vector<std::uint32_t>>(
        graph::reference_sssp(g_, q.source, q.params.weight_seed,
                              q.params.max_weight));
    out.total_ms = wall_ms_since(t0);
    return out;
  }

 private:
  const graph::Csr& g_;
};

class HostCcEngine final : public core::AlgorithmEngine {
 public:
  explicit HostCcEngine(const graph::Csr& g) : g_(g) {}
  AlgoKind kind() const override { return AlgoKind::Cc; }
  const char* name() const override { return "host-cc"; }
  core::EngineCapabilities capabilities() const override { return {}; }
  AlgoResult solve(const AlgoQuery&) override {
    const auto t0 = std::chrono::steady_clock::now();
    AlgoResult out;
    out.payload.kind = AlgoKind::Cc;
    out.payload.components = std::make_shared<const std::vector<vid_t>>(
        graph::canonical_components(g_));
    out.total_ms = wall_ms_since(t0);
    return out;
  }

 private:
  const graph::Csr& g_;
};

class HostKcoreEngine final : public core::AlgorithmEngine {
 public:
  explicit HostKcoreEngine(const graph::Csr& g) : g_(g) {}
  AlgoKind kind() const override { return AlgoKind::KCore; }
  const char* name() const override { return "host-kcore"; }
  core::EngineCapabilities capabilities() const override { return {}; }
  AlgoResult solve(const AlgoQuery& q) override {
    const auto t0 = std::chrono::steady_clock::now();
    AlgoResult out;
    out.payload.kind = AlgoKind::KCore;
    out.payload.cores = std::make_shared<const std::vector<std::uint32_t>>(
        graph::reference_kcore(g_, q.params.k));
    out.total_ms = wall_ms_since(t0);
    return out;
  }

 private:
  const graph::Csr& g_;
};

class HostBcEngine final : public core::AlgorithmEngine {
 public:
  explicit HostBcEngine(const graph::Csr& g) : g_(g) {}
  AlgoKind kind() const override { return AlgoKind::Bc; }
  const char* name() const override { return "host-bc"; }
  core::EngineCapabilities capabilities() const override { return {}; }
  AlgoResult solve(const AlgoQuery& q) override {
    const auto t0 = std::chrono::steady_clock::now();
    AlgoResult out;
    out.payload.kind = AlgoKind::Bc;
    out.payload.scores = std::make_shared<const std::vector<double>>(
        betweenness_reference(g_, {q.source}));
    out.total_ms = wall_ms_since(t0);
    return out;
  }

 private:
  const graph::Csr& g_;
};

class HostSccEngine final : public core::AlgorithmEngine {
 public:
  explicit HostSccEngine(const graph::Csr& g) : g_(g) {}
  AlgoKind kind() const override { return AlgoKind::Scc; }
  const char* name() const override { return "host-scc"; }
  core::EngineCapabilities capabilities() const override { return {}; }
  AlgoResult solve(const AlgoQuery&) override {
    const auto t0 = std::chrono::steady_clock::now();
    AlgoResult out;
    out.payload.kind = AlgoKind::Scc;
    vid_t n_comp = 0;
    out.payload.components = std::make_shared<const std::vector<vid_t>>(
        scc_reference(g_, &n_comp));
    out.payload.depth = n_comp;
    out.total_ms = wall_ms_since(t0);
    return out;
  }

 private:
  const graph::Csr& g_;
};

bool device_ready(const EngineContext& ctx) {
  return ctx.dev != nullptr && ctx.dg != nullptr;
}

void do_register() {
  auto& reg = core::EngineRegistry::global();

  // --- Bfs: the pre-PR 8 serving ladder, now expressed as registrations.
  reg.register_engine(
      AlgoKind::Bfs, "xbfs", 0, true,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!device_ready(ctx)) return nullptr;
        return std::make_unique<core::Xbfs>(
            *ctx.dev, *ctx.dg, ctx.config ? *ctx.config : core::XbfsConfig{});
      });
  reg.register_engine(
      AlgoKind::Bfs, "simple-scan", 1, true,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!device_ready(ctx)) return nullptr;
        return std::make_unique<baseline::SimpleScanBfs>(*ctx.dev, *ctx.dg);
      });
  // Conformance/bench only (rung -1): the asynchronous SSSP-as-BFS
  // baseline never serves — the paper's point is that it loses to the
  // level-synchronous engines.
  reg.register_engine(
      AlgoKind::Bfs, "async-sssp", -1, true,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!device_ready(ctx)) return nullptr;
        return std::make_unique<baseline::AsyncSsspBfs>(*ctx.dev, *ctx.dg);
      });
  reg.register_engine(
      AlgoKind::Bfs, "cpu-bfs", 0, false,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!ctx.host_g) return nullptr;
        return std::make_unique<baseline::CpuBfsEngine>(*ctx.host_g);
      });

  // --- Sssp
  reg.register_engine(
      AlgoKind::Sssp, "delta-sssp", 0, true,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!device_ready(ctx)) return nullptr;
        SsspEngineConfig cfg;
        if (ctx.config) cfg.alpha = ctx.config->alpha;
        return std::make_unique<DeltaSsspEngine>(*ctx.dev, *ctx.dg, cfg);
      });
  reg.register_engine(
      AlgoKind::Sssp, "host-sssp", 0, false,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!ctx.host_g) return nullptr;
        return std::make_unique<HostSsspEngine>(*ctx.host_g);
      });

  // --- Cc
  reg.register_engine(
      AlgoKind::Cc, "lp-cc", 0, true,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!device_ready(ctx)) return nullptr;
        return std::make_unique<LpCcEngine>(*ctx.dev, *ctx.dg);
      });
  reg.register_engine(
      AlgoKind::Cc, "host-cc", 0, false,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!ctx.host_g) return nullptr;
        return std::make_unique<HostCcEngine>(*ctx.host_g);
      });

  // --- KCore
  reg.register_engine(
      AlgoKind::KCore, "kcore-pull", 0, true,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!device_ready(ctx)) return nullptr;
        return std::make_unique<KCorePullEngine>(*ctx.dev, *ctx.dg);
      });
  reg.register_engine(
      AlgoKind::KCore, "host-kcore", 0, false,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!ctx.host_g) return nullptr;
        return std::make_unique<HostKcoreEngine>(*ctx.host_g);
      });

  // --- Bc
  reg.register_engine(
      AlgoKind::Bc, "brandes-bc", 0, true,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!device_ready(ctx)) return nullptr;
        return std::make_unique<BcEngine>(*ctx.dev, *ctx.dg);
      });
  reg.register_engine(
      AlgoKind::Bc, "host-bc", 0, false,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!ctx.host_g) return nullptr;
        return std::make_unique<HostBcEngine>(*ctx.host_g);
      });

  // --- Scc (needs the host topology for the transpose upload)
  reg.register_engine(
      AlgoKind::Scc, "fwbw-scc", 0, true,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!device_ready(ctx) || !ctx.host_g) return nullptr;
        return std::make_unique<SccEngine>(*ctx.dev, *ctx.host_g, *ctx.dg);
      });
  reg.register_engine(
      AlgoKind::Scc, "host-scc", 0, false,
      [](const EngineContext& ctx) -> std::unique_ptr<core::AlgorithmEngine> {
        if (!ctx.host_g) return nullptr;
        return std::make_unique<HostSccEngine>(*ctx.host_g);
      });
}

}  // namespace

void register_builtin_engines() {
  static std::once_flag once;
  std::call_once(once, do_register);
}

}  // namespace xbfs::algos
