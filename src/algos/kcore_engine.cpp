#include "algos/kcore_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/status.h"

namespace xbfs::algos {

using core::auto_grid_blocks;
using graph::eid_t;
using graph::vid_t;

KCorePullEngine::KCorePullEngine(sim::Device& dev, const graph::DeviceCsr& g,
                                 KCoreEngineConfig cfg)
    : dev_(dev), g_(g), cfg_(cfg) {
  deg_ = dev.alloc<std::uint32_t>(g.n, "kcore.deg");
  alive_ = dev.alloc<std::uint8_t>(g.n, "kcore.alive");
  just_died_ = dev.alloc<std::uint8_t>(g.n, "kcore.just_died");
  core_ = dev.alloc<std::uint32_t>(g.n, "kcore.core");
  counters_ = dev.alloc<std::uint32_t>(3, "kcore.counters");
}

core::AlgoResult KCorePullEngine::solve(const core::AlgoQuery& q) {
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  core::AlgoResult result;
  result.payload.kind = core::AlgoKind::KCore;

  const std::uint32_t want_k = q.params.k;
  auto deg = deg_.span();
  auto alive = alive_.span();
  auto just_died = just_died_.span();
  auto core = core_.span();
  auto counters = counters_.span();
  auto offsets = g_.offsets_span();
  auto cols = g_.cols_span();
  const std::uint64_t n = g_.n;
  const std::uint64_t m = std::max<std::uint64_t>(1, g_.m);

  sim::LaunchConfig lc;
  lc.block_threads = cfg_.block_threads;
  lc.grid_blocks = auto_grid_blocks(dev_.profile(), n, cfg_.block_threads);
  const sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};

  // katana DegreeCounting + InitializeGraph: seed the current degrees and
  // the liveness flags.
  dev_.launch(s, "kcore_init", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(n, [&](std::uint64_t v) {
      const eid_t d = ctx.load(offsets, v + 1) - ctx.load(offsets, v);
      ctx.store(deg, v, static_cast<std::uint32_t>(d));
      ctx.store(alive, v, std::uint8_t{1});
      ctx.store(just_died, v, std::uint8_t{0});
      ctx.store(core, v, 0u);
    });
  });

  std::uint64_t trims = 0;
  std::uint32_t rounds = 0;

  // One peel at threshold kk: mark sub-threshold vertices dead, pull-trim
  // survivor degrees, repeat until the kk-core is stable.  Returns the
  // number of vertices removed.
  const auto peel = [&](std::uint32_t kk, core::LevelStats& st) {
    std::uint64_t removed_total = 0;
    for (;;) {
      dev_.launch(s, "kcore_reset", rc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.threads([&](unsigned t) {
          if (t < 3) ctx.store(counters, t, 0u);
        });
      });
      // katana LiveUpdate: flag this sub-round's casualties.
      dev_.launch(s, "kcore_mark", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(n, [&](std::uint64_t v) {
          if (!ctx.load(alive, v)) {
            ctx.slots(1, 1);
            return;
          }
          if (ctx.load(deg, v) >= kk) {
            ctx.slots(2, 2);
            return;
          }
          ctx.store(alive, v, std::uint8_t{0});
          ctx.store(just_died, v, std::uint8_t{1});
          ctx.store(core, v, kk - 1);
          ctx.atomic_add(counters, 0, 1u);
          ctx.slots(6, 6);
        });
      });
      s.synchronize();
      dev_.memcpy_d2h(s, counters_);
      const std::uint32_t removed = counters_.h_read(0);
      st.kernels += 2;
      if (removed == 0) break;
      removed_total += removed;

      // katana KCore pull: every survivor gathers its neighbors' death
      // flags and trims its current degree.  Flags were written by the
      // mark kernel and are cleared only after this kernel — strictly
      // level-synchronous, no races.
      dev_.launch(s, "kcore_pull", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(n, [&](std::uint64_t v) {
          if (!ctx.load(alive, v)) {
            ctx.slots(1, 1);
            return;
          }
          const eid_t b = ctx.load(offsets, v);
          const eid_t e = ctx.load(offsets, v + 1);
          std::uint32_t trim = 0;
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cols, j);
            if (ctx.load(just_died, w)) ++trim;
          }
          ctx.slots(2 * (e - b) + 1, 2 * (e - b) + 1);
          if (trim > 0) {
            ctx.store(deg, v, ctx.load(deg, v) - trim);
            ctx.atomic_add(counters, 2, trim);
          }
        });
      });
      dev_.launch(s, "kcore_clear", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(n, [&](std::uint64_t v) {
          if (ctx.load(just_died, v)) ctx.store(just_died, v, std::uint8_t{0});
          ctx.slots(2, 2);
        });
      });
      s.synchronize();
      dev_.memcpy_d2h(s, counters_);
      trims += counters_.h_read(2);
      st.kernels += 2;
      st.frontier_count += removed;
    }
    return removed_total;
  };

  // Survivor census; also stamps `stamp` into core[] for the live set.
  const auto census = [&](std::uint32_t stamp) {
    dev_.launch(s, "kcore_census", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        if (!ctx.load(alive, v)) {
          ctx.slots(1, 1);
          return;
        }
        ctx.store(core, v, stamp);
        ctx.atomic_add(counters, 1, 1u);
        ctx.slots(3, 3);
      });
    });
    s.synchronize();
    dev_.memcpy_d2h(s, counters_);
    return counters_.h_read(1);
  };

  if (want_k > 0) {
    // Membership: one peel at k, then 0/1-stamp the survivors.
    dev_.profiler().set_context(0, "kcore-pull");
    core::LevelStats st;
    st.level = 0;
    st.strategy = core::Strategy::BottomUp;
    st.frontier_edges = m;
    const double round_t0 = dev_.now_us();
    peel(want_k, st);
    // Reset core[] so dead vertices report 0 and survivors 1.
    dev_.launch(s, "kcore_member", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        ctx.store(core, v, ctx.load(alive, v) ? 1u : 0u);
        ctx.slots(2, 2);
      });
    });
    s.synchronize();
    st.kernels += 1;
    st.time_ms = (dev_.now_us() - round_t0) / 1000.0;
    result.level_stats.push_back(st);
    rounds = 1;
  } else {
    // Full decomposition: peel at k = 1, 2, ... until nothing survives; a
    // vertex's coreness is the last threshold it survived (stamped by the
    // census) or k-1 at removal (stamped by the mark kernel).
    for (std::uint32_t kk = 1;; ++kk) {
      dev_.profiler().set_context(static_cast<int>(kk), "kcore-pull");
      core::LevelStats st;
      st.level = kk;
      st.strategy = core::Strategy::BottomUp;
      st.frontier_edges = m;
      const double round_t0 = dev_.now_us();
      peel(kk, st);
      const std::uint32_t live = census(kk);
      st.kernels += 1;
      st.time_ms = (dev_.now_us() - round_t0) / 1000.0;
      result.level_stats.push_back(st);
      ++rounds;
      if (live == 0) break;
    }
  }

  dev_.memcpy_d2h(s, core_);
  s.synchronize();
  const std::uint32_t* core_host = std::as_const(core_).host_data();
  result.payload.cores = std::make_shared<const std::vector<std::uint32_t>>(
      core_host, core_host + n);
  result.payload.depth = rounds;
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  result.work_items = trims;
  return result;
}

}  // namespace xbfs::algos
