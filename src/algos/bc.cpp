#include "algos/bc.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "core/status.h"  // kUnvisited, auto_grid_blocks

namespace xbfs::algos {

using core::auto_grid_blocks;
using core::kUnvisited;
using graph::eid_t;
using graph::vid_t;

BcResult betweenness_centrality(sim::Device& dev, const graph::DeviceCsr& g,
                                const std::vector<graph::vid_t>& sources,
                                const BcConfig& cfg) {
  const vid_t n = g.n;
  sim::Stream& s = dev.stream(0);
  const double t0 = dev.now_us();

  auto level_buf = dev.alloc<std::uint32_t>(n, "bc.level");
  auto sigma_buf = dev.alloc<double>(n, "bc.sigma");
  auto delta_buf = dev.alloc<double>(n, "bc.delta");
  auto bc_buf = dev.alloc<double>(n, "bc.centrality");
  auto active_buf = dev.alloc<std::uint32_t>(1, "bc.active");

  auto level = level_buf.span();
  auto sigma = sigma_buf.span();
  auto delta = delta_buf.span();
  auto bc = bc_buf.span();
  auto active = active_buf.span();
  auto offsets = g.offsets_span();
  auto cols = g.cols_span();

  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = auto_grid_blocks(dev.profile(), n, cfg.block_threads);

  dev.launch(s, "bc_zero", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(n, [&](std::uint64_t v) { ctx.store(bc, v, 0.0); });
  });

  for (vid_t src : sources) {
    // --- forward phase: levels + shortest-path counts ---------------------
    dev.launch(s, "bc_init", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        ctx.store(level, v, v == src ? 0u : kUnvisited);
        ctx.store(sigma, v, v == src ? 1.0 : 0.0);
        ctx.store(delta, v, 0.0);
      });
    });

    std::uint32_t depth = 0;
    for (std::uint32_t cur = 0;; ++cur) {
      sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
      dev.launch(s, "bc_reset", rc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.threads([&](unsigned t) {
          if (t == 0) ctx.store(active, 0, std::uint32_t{0});
        });
      });
      // Pull step: unvisited vertices adjacent to the current level join
      // the next one and sum sigma over all current-level neighbors.
      dev.launch(s, "bc_forward", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(n, [&](std::uint64_t v) {
          if (ctx.load(level, v) != kUnvisited) {
            ctx.slots(1, 1);
            return;
          }
          const eid_t b = ctx.load(offsets, v);
          const eid_t e = ctx.load(offsets, v + 1);
          double paths = 0.0;
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cols, j);
            if (ctx.atomic_load(level, w) == cur) {
              paths += ctx.load(sigma, w);
            }
          }
          ctx.slots(2 * (e - b) + 1, 2 * (e - b) + 1);
          if (paths > 0.0) {
            {
              // Races with other blocks' atomic_load(level, v) probes: a
              // probe sees kUnvisited or cur+1, and neither equals cur, so
              // the sigma sum for this pull step is unaffected.
              sim::racy_ok allow(ctx,
                                 "bc pull: plain level commit vs same-pass "
                                 "atomic level probes; joiners are never "
                                 "read as the current level");
              ctx.store(level, v, cur + 1);
            }
            ctx.store(sigma, v, paths);
            ctx.atomic_add(active, 0, std::uint32_t{1});
          }
        });
      });
      s.synchronize();
      dev.memcpy_d2h(s, active_buf);
      if (active_buf.h_read(0) == 0) break;
      depth = cur + 1;
    }

    // --- backward phase: dependency accumulation, deepest level first -----
    for (std::uint32_t cur = depth; cur-- > 0;) {
      // Vertices at `cur` pull dependencies from their level cur+1
      // neighbors: delta[v] += sigma[v]/sigma[w] * (1 + delta[w]).
      dev.launch(s, "bc_backward", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(n, [&](std::uint64_t v) {
          if (ctx.load(level, v) != cur) {
            ctx.slots(1, 1);
            return;
          }
          const eid_t b = ctx.load(offsets, v);
          const eid_t e = ctx.load(offsets, v + 1);
          const double sv = ctx.load(sigma, v);
          double acc = 0.0;
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cols, j);
            if (ctx.load(level, w) == cur + 1) {
              acc += sv / ctx.load(sigma, w) * (1.0 + ctx.load(delta, w));
            }
          }
          ctx.slots(3 * (e - b) + 1, 3 * (e - b) + 1);
          if (acc != 0.0) ctx.store(delta, v, acc);
        });
      });
      s.synchronize();
    }
    // Accumulate this source's dependencies (excluding the source itself).
    dev.launch(s, "bc_accumulate", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        if (v == src) return;
        const double d = ctx.load(delta, v);
        if (d != 0.0) ctx.store(bc, v, ctx.load(bc, v) + d);
      });
    });
  }

  dev.memcpy_d2h(s, bc_buf);
  BcResult out;
  const double* bc_host = std::as_const(bc_buf).host_data();
  out.centrality.assign(bc_host, bc_host + n);
  out.total_ms = (dev.now_us() - t0) / 1000.0;
  return out;
}

std::vector<double> betweenness_reference(
    const graph::Csr& g, const std::vector<graph::vid_t>& sources) {
  const vid_t n = g.num_vertices();
  std::vector<double> bc(n, 0.0);
  for (vid_t src : sources) {
    std::vector<std::int32_t> dist(n, -1);
    std::vector<double> sigma(n, 0.0), delta(n, 0.0);
    std::vector<vid_t> order;  // BFS visit order
    order.reserve(n);
    std::deque<vid_t> queue{src};
    dist[src] = 0;
    sigma[src] = 1.0;
    while (!queue.empty()) {
      const vid_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (vid_t w : g.neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const vid_t w = *it;
      for (vid_t v : g.neighbors(w)) {
        if (dist[v] == dist[w] - 1) {
          delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != src) bc[w] += delta[w];
    }
  }
  return bc;
}

}  // namespace xbfs::algos
