// Strongly Connected Component detection on the simulated GPU via the
// Forward-Backward (FW-BW) algorithm with trim — the paper's introduction
// names SCC as the canonical forward+backward-BFS consumer [16, 28].
//
// The host orchestrates partitions; the device runs trim sweeps and the
// forward/backward reachability BFS within a partition.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::algos {

struct SccConfig {
  unsigned block_threads = 256;
};

struct SccResult {
  std::vector<graph::vid_t> component;  ///< component id per vertex
  graph::vid_t num_components = 0;
  double total_ms = 0.0;
  std::uint32_t fwbw_rounds = 0;  ///< pivot iterations run
  std::uint32_t trimmed = 0;      ///< vertices removed by trim-1
};

/// FW-BW SCC on a *directed* graph: `fwd` is the out-edge CSR, `bwd` its
/// transpose (graph::reverse_csr), both resident on `dev`.
SccResult scc_fw_bw(sim::Device& dev, const graph::DeviceCsr& fwd,
                    const graph::DeviceCsr& bwd, const SccConfig& cfg = {});

/// Serial Tarjan reference; component ids are arbitrary but consistent.
std::vector<graph::vid_t> scc_reference(const graph::Csr& g,
                                        graph::vid_t* num_components);

/// True when two component labelings describe the same partition.
bool same_partition(const std::vector<graph::vid_t>& a,
                    const std::vector<graph::vid_t>& b);

}  // namespace xbfs::algos
