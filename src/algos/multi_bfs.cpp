#include "algos/multi_bfs.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "core/status.h"  // auto_grid_blocks
#include "graph/csr.h"

namespace xbfs::algos {

using core::auto_grid_blocks;
using graph::eid_t;
using graph::vid_t;

MultiBfsResult multi_source_bfs(sim::Device& dev, const graph::DeviceCsr& g,
                                const std::vector<graph::vid_t>& sources,
                                const MultiBfsConfig& cfg) {
  if (sources.empty() || sources.size() > 64) {
    throw std::invalid_argument("multi_source_bfs takes 1..64 sources");
  }
  const unsigned S = static_cast<unsigned>(sources.size());
  const vid_t n = g.n;
  sim::Stream& s = dev.stream(0);
  const double t0 = dev.now_us();

  // Per-vertex state: which searches have visited it, which reached it
  // this level, and which reach it next level.
  auto visited = dev.alloc<std::uint64_t>(n, "mbfs.visited");
  auto frontier = dev.alloc<std::uint64_t>(n, "mbfs.frontier");
  auto next = dev.alloc<std::uint64_t>(n, "mbfs.next");
  auto active = dev.alloc<std::uint32_t>(1, "mbfs.active");
  // Discovery levels, packed per source on the host afterwards.
  auto levels = dev.alloc<std::int32_t>(static_cast<std::size_t>(n) * S,
                                        "mbfs.levels");

  auto visited_s = visited.span();
  auto frontier_s = frontier.span();
  auto next_s = next.span();
  auto active_s = active.span();
  auto levels_s = levels.span();
  auto offsets = g.offsets_span();
  auto cols = g.cols_span();

  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = auto_grid_blocks(dev.profile(), n, cfg.block_threads);

  // Init: no search anywhere, all levels -1.
  dev.launch(s, "mbfs_init", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(n, [&](std::uint64_t v) {
      ctx.store(visited_s, v, std::uint64_t{0});
      ctx.store(frontier_s, v, std::uint64_t{0});
      ctx.store(next_s, v, std::uint64_t{0});
      for (unsigned b = 0; b < S; ++b) {
        ctx.store(levels_s, v * S + b, std::int32_t{-1});
      }
    });
  });
  // Seed each search's source bit (host-prepared tiny kernel).
  {
    auto srcs = dev.alloc<vid_t>(S, "mbfs.sources");
    srcs.h_copy_from(sources.data(), S);
    dev.memcpy_h2d(s, srcs);
    auto srcs_s = srcs.cspan();
    sim::LaunchConfig seed{.grid_blocks = 1, .block_threads = 64};
    dev.launch(s, "mbfs_seed", seed, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t >= S) return;
        const vid_t v = ctx.load(srcs_s, t);
        ctx.atomic_or(visited_s, v, std::uint64_t{1} << t);
        ctx.atomic_or(frontier_s, v, std::uint64_t{1} << t);
        ctx.store(levels_s, static_cast<std::uint64_t>(v) * S + t,
                  std::int32_t{0});
      });
    });
  }

  std::uint32_t depth = 0;
  for (std::int32_t level = 1;; ++level) {
    sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
    dev.launch(s, "mbfs_reset", rc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.threads([&](unsigned t) {
        if (t == 0) ctx.store(active_s, 0, std::uint32_t{0});
      });
    });

    // One sweep advances all searches: gather the OR of neighbor frontier
    // masks, keep the bits not yet visited here.
    const std::uint64_t all_searches =
        S == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << S) - 1);
    dev.launch(s, "mbfs_sweep", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        const std::uint64_t seen = ctx.load(visited_s, v);
        if (seen == all_searches) {
          ctx.slots(1, 1);
          return;
        }
        const eid_t b = ctx.load(offsets, v);
        const eid_t e = ctx.load(offsets, v + 1);
        std::uint64_t gather = 0;
        for (eid_t j = b; j < e; ++j) {
          const vid_t w = ctx.load(cols, j);
          gather |= ctx.load(frontier_s, w);
          // Early exit once every search already covers this vertex.
          if ((gather | seen) == all_searches) break;
        }
        const std::uint64_t fresh = gather & ~seen;
        ctx.slots(2 * (e - b) + 2, 2 * (e - b) + 2);
        if (fresh == 0) return;
        ctx.store(visited_s, v, seen | fresh);
        ctx.store(next_s, v, fresh);
        ctx.atomic_add(active_s, 0, std::uint32_t{1});
        for (unsigned bit = 0; bit < S; ++bit) {
          if (fresh & (std::uint64_t{1} << bit)) {
            ctx.store(levels_s, v * S + bit, level);
          }
        }
      });
    });
    s.synchronize();
    dev.memcpy_d2h(s, active);
    const std::uint32_t found = active.h_read(0);
    if (found == 0) break;
    depth = static_cast<std::uint32_t>(level);

    // frontier <- next; next <- 0 (single pass).
    dev.launch(s, "mbfs_advance", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        ctx.store(frontier_s, v, ctx.load(next_s, v));
        ctx.store(next_s, v, std::uint64_t{0});
      });
    });
  }

  dev.memcpy_d2h(s, levels);
  MultiBfsResult out;
  out.levels.assign(S, std::vector<std::int32_t>(n, -1));
  const std::int32_t* levels_host = std::as_const(levels).host_data();
  for (vid_t v = 0; v < n; ++v) {
    for (unsigned b = 0; b < S; ++b) {
      out.levels[b][v] = levels_host[static_cast<std::size_t>(v) * S + b];
    }
  }
  out.depth = depth;
  out.total_ms = (dev.now_us() - t0) / 1000.0;
  return out;
}

MultiBfsResult multi_source_bfs_batched(sim::Device& dev,
                                        const graph::DeviceCsr& g,
                                        const std::vector<vid_t>& sources,
                                        const MultiBfsConfig& cfg) {
  if (sources.empty()) {
    throw std::invalid_argument("multi_source_bfs_batched takes >= 1 source");
  }
  MultiBfsResult out;
  out.levels.reserve(sources.size());
  for (std::size_t begin = 0; begin < sources.size();
       begin += kMaxConcurrentSources) {
    const std::size_t end =
        std::min(begin + kMaxConcurrentSources, sources.size());
    const std::vector<vid_t> chunk(sources.begin() + begin,
                                   sources.begin() + end);
    MultiBfsResult sweep = multi_source_bfs(dev, g, chunk, cfg);
    for (auto& lv : sweep.levels) out.levels.push_back(std::move(lv));
    out.total_ms += sweep.total_ms;
    out.depth = std::max(out.depth, sweep.depth);
  }
  return out;
}

std::vector<vid_t> group_sources(const graph::Csr& g,
                                 std::vector<vid_t> sources,
                                 unsigned group_size) {
  // Deduplicate, keeping the first occurrence's position: a repeated source
  // inside one sweep would burn a mask bit recomputing an identical search.
  {
    std::vector<vid_t> uniq;
    uniq.reserve(sources.size());
    std::vector<bool> seen_flag;
    for (const vid_t s : sources) {
      if (s >= seen_flag.size()) seen_flag.resize(s + 1, false);
      if (!seen_flag[s]) {
        seen_flag[s] = true;
        uniq.push_back(s);
      }
    }
    sources = std::move(uniq);
  }
  group_size = std::clamp(group_size, 1u, kMaxConcurrentSources);
  if (sources.size() <= 1 || group_size == 1) return sources;
  // Greedy GroupBy: repeatedly seed a group with the first unplaced source
  // and fill it with the unplaced sources most similar to the seed, where
  // similarity is the overlap between 1-hop neighborhoods (a cheap proxy
  // for early-frontier sharing).
  std::vector<vid_t> out;
  out.reserve(sources.size());
  std::vector<bool> placed(sources.size(), false);

  const auto overlap = [&](vid_t a, vid_t b) {
    // Sorted adjacency intersection size (builder keeps lists sorted).
    const auto na = g.neighbors(a);
    const auto nb = g.neighbors(b);
    std::size_t i = 0, j = 0, shared = 0;
    while (i < na.size() && j < nb.size()) {
      if (na[i] < nb[j]) {
        ++i;
      } else if (nb[j] < na[i]) {
        ++j;
      } else {
        ++shared;
        ++i;
        ++j;
      }
    }
    // Direct adjacency is as good as a shared neighbor.
    if (std::binary_search(na.begin(), na.end(), b)) ++shared;
    return shared;
  };

  for (std::size_t seed_idx = 0; seed_idx < sources.size(); ++seed_idx) {
    if (placed[seed_idx]) continue;
    const vid_t seed = sources[seed_idx];
    placed[seed_idx] = true;
    out.push_back(seed);
    // Score every unplaced source against the seed and take the best.
    std::vector<std::pair<std::size_t, std::size_t>> scored;  // (score, idx)
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (!placed[i]) scored.emplace_back(overlap(seed, sources[i]), i);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (std::size_t k = 0; k + 1 < group_size && k < scored.size(); ++k) {
      placed[scored[k].second] = true;
      out.push_back(sources[scored[k].second]);
    }
  }
  return out;
}

}  // namespace xbfs::algos
