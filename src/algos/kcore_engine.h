// k-core decomposition on the simulated GPU: pull-based trim following the
// katana `kcore_pull` structure (SNIPPETS.md Snippet 3).
//
// Vertices peel in rounds of increasing k.  Within a round, a mark kernel
// kills every live vertex whose current degree fell below k (recording its
// coreness, k-1), and a pull kernel — the katana LiveUpdate/KCore shape —
// has every survivor gather how many of its neighbors just died and trim
// its current degree by that count; the flags are then cleared and the
// round repeats until the k-core is stable.  All inter-kernel
// communication is level-synchronous (owner-written flags read after the
// kernel boundary), so no kernel needs a racy_ok annotation.
//
// AlgoParams::k selects the mode: k == 0 computes the full decomposition
// (payload cores[v] = coreness), k > 0 computes membership (cores[v] = 1
// iff v survives the k-core trim).
#pragma once

#include <cstdint>

#include "core/algorithm_engine.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::algos {

struct KCoreEngineConfig {
  unsigned block_threads = 256;
};

class KCorePullEngine final : public core::AlgorithmEngine {
 public:
  KCorePullEngine(sim::Device& dev, const graph::DeviceCsr& g,
                  KCoreEngineConfig cfg = {});

  core::AlgoKind kind() const override { return core::AlgoKind::KCore; }
  core::AlgoResult solve(const core::AlgoQuery& q) override;
  const char* name() const override { return "kcore-pull"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true};
  }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  KCoreEngineConfig cfg_;
  sim::DeviceBuffer<std::uint32_t> deg_;       ///< current (trimmed) degree
  sim::DeviceBuffer<std::uint8_t> alive_;
  sim::DeviceBuffer<std::uint8_t> just_died_;  ///< katana pull_flag
  sim::DeviceBuffer<std::uint32_t> core_;
  sim::DeviceBuffer<std::uint32_t> counters_;  ///< [0]=removed, [1]=alive, [2]=trim edges
};

}  // namespace xbfs::algos
