// Betweenness centrality (Brandes' algorithm) on the simulated GPU — the
// paper's introduction names BC as a primary BFS consumer [24].  Forward
// level-synchronous BFS accumulates shortest-path counts (sigma); the
// backward sweep walks levels in reverse accumulating dependencies (delta).
// Sampled sources give approximate BC, as is standard at scale.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::algos {

struct BcConfig {
  unsigned block_threads = 256;
};

struct BcResult {
  /// Accumulated (unnormalized) dependency per vertex over the sources.
  std::vector<double> centrality;
  double total_ms = 0.0;
};

/// Accumulate BC contributions of the given source vertices.
BcResult betweenness_centrality(sim::Device& dev, const graph::DeviceCsr& g,
                                const std::vector<graph::vid_t>& sources,
                                const BcConfig& cfg = {});

/// Serial host reference (exact for the same source set).
std::vector<double> betweenness_reference(const graph::Csr& g,
                                          const std::vector<graph::vid_t>& sources);

}  // namespace xbfs::algos
