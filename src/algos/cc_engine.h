// Connected components on the simulated GPU: min-label propagation with
// pointer-jumping shortcuts (the classic Shiloach-Vishkin-style GPU shape).
//
// Every vertex starts labeled with its own id; each round hooks every edge
// (atomicMin both endpoints toward the smaller label) and then compresses
// label chains by pointer jumping (label[v] = root of label[v]), so long
// paths converge in O(log diameter) rounds instead of O(diameter).  Labels
// only ever decrease — the same decrease-only fixpoint contract as BFS
// levels and SSSP distances — and the fixpoint labels every vertex with
// the smallest vertex id of its component, which is exactly
// graph::canonical_components: conformance is exact equality.
#pragma once

#include <cstdint>

#include "core/algorithm_engine.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::algos {

struct CcEngineConfig {
  unsigned block_threads = 256;
};

class LpCcEngine final : public core::AlgorithmEngine {
 public:
  LpCcEngine(sim::Device& dev, const graph::DeviceCsr& g,
             CcEngineConfig cfg = {});

  core::AlgoKind kind() const override { return core::AlgoKind::Cc; }
  core::AlgoResult solve(const core::AlgoQuery& q) override;
  const char* name() const override { return "lp-cc"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true};
  }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  CcEngineConfig cfg_;
  sim::DeviceBuffer<graph::vid_t> label_;
  sim::DeviceBuffer<std::uint32_t> counters_;  ///< [0]=hooks that improved
};

}  // namespace xbfs::algos
