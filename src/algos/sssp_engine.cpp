#include "algos/sssp_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/status.h"
#include "graph/reference.h"

namespace xbfs::algos {

using core::auto_grid_blocks;
using core::kUnreachedDist;
using graph::eid_t;
using graph::vid_t;

DeltaSsspEngine::DeltaSsspEngine(sim::Device& dev, const graph::DeviceCsr& g,
                                 SsspEngineConfig cfg)
    : dev_(dev), g_(g), cfg_(cfg) {
  dist_ = dev.alloc<std::uint32_t>(g.n, "sssp.dist");
  dirty_ = dev.alloc<std::uint8_t>(g.n, "sssp.dirty");
  counters_ = dev.alloc<std::uint32_t>(4, "sssp.counters");
}

core::AlgoResult DeltaSsspEngine::solve(const core::AlgoQuery& q) {
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  core::AlgoResult result;
  result.payload.kind = core::AlgoKind::Sssp;

  const vid_t src = q.source;
  const std::uint32_t max_weight = std::max(1u, q.params.max_weight);
  const std::uint64_t seed = q.params.weight_seed;
  const std::uint32_t delta =
      q.params.delta != 0 ? q.params.delta : max_weight;
  const double alpha = cfg_.alpha;

  auto dist = dist_.span();
  auto dirty = dirty_.span();
  auto counters = counters_.span();
  auto offsets = g_.offsets_span();
  auto cols = g_.cols_span();
  const std::uint64_t n = g_.n;
  const std::uint64_t m = std::max<std::uint64_t>(1, g_.m);

  sim::LaunchConfig lc;
  lc.block_threads = cfg_.block_threads;
  lc.grid_blocks = auto_grid_blocks(dev_.profile(), n, cfg_.block_threads);
  const sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};

  dev_.launch(s, "sssp_ds_init", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(n, [&](std::uint64_t v) {
      ctx.store(dist, v, v == src ? 0u : kUnreachedDist);
      ctx.store(dirty, v, v == src ? std::uint8_t{1} : std::uint8_t{0});
    });
  });

  std::uint64_t relaxations = 0;
  std::uint32_t buckets = 0;
  std::uint32_t bucket_lo = 0;
  bool done = src >= n;
  while (!done) {
    const std::uint32_t bucket_hi =
        bucket_lo > kUnreachedDist - delta ? kUnreachedDist : bucket_lo + delta;
    const double bucket_t0 = dev_.now_us();
    dev_.profiler().set_context(static_cast<int>(buckets), "delta-sssp");

    core::LevelStats st;
    st.level = buckets;
    st.strategy = core::Strategy::ScanFree;

    // Inner fixpoint: relax until no in-bucket vertex is dirty — only then
    // is every distance below bucket_hi final (weights are >= 1, so later
    // buckets cannot improve them).
    for (;;) {
      dev_.launch(s, "sssp_ds_reset", rc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.threads([&](unsigned t) {
          if (t < 4) {
            ctx.store(counters, t, t == 3 ? kUnreachedDist : 0u);
          }
        });
      });
      dev_.launch(s, "sssp_ds_scan", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.grid_stride(n, [&](std::uint64_t v) {
          if (!ctx.load(dirty, v)) {
            ctx.slots(1, 1);
            return;
          }
          const std::uint32_t dv = ctx.atomic_load(dist, v);
          if (dv >= bucket_hi) return;
          ctx.atomic_add(counters, 0, 1u);
          const eid_t deg = ctx.load(offsets, v + 1) - ctx.load(offsets, v);
          ctx.atomic_add(counters, 1, static_cast<std::uint32_t>(deg));
          ctx.slots(4, 4);
        });
      });
      s.synchronize();
      dev_.memcpy_d2h(s, counters_);
      const std::uint32_t active = counters_.h_read(0);
      if (active == 0) break;
      const std::uint32_t active_edges = counters_.h_read(1);
      st.frontier_count += active;
      st.frontier_edges += active_edges;

      // The paper's r-vs-alpha direction rule, applied per inner iteration:
      // gather (pull) when the in-bucket frontier's edges saturate the
      // graph, scatter (push) otherwise.
      const double r = static_cast<double>(active_edges) / static_cast<double>(m);
      const bool pull = r > alpha;
      if (pull) st.strategy = core::Strategy::BottomUp;

      if (!pull) {
        dev_.launch(s, "sssp_ds_push", lc, [=](sim::BlockCtx& blk) {
          auto& ctx = blk.ctx();
          // Same contract as async_sssp: the dirty flags are deliberately
          // unsynchronized (distances are the atomics) — a lost set
          // re-marks via atomicMin's return on the next improvement, a
          // lost clear only re-relaxes a settled vertex.
          sim::racy_ok allow(ctx,
                             "delta-sssp push: unsynchronized dirty-flag "
                             "set/clear; convergence is driven by atomicMin "
                             "on dist");
          blk.grid_stride(n, [&](std::uint64_t v) {
            if (!ctx.load(dirty, v)) {
              ctx.slots(1, 1);
              return;
            }
            if (ctx.atomic_load(dist, v) >= bucket_hi) return;  // keep dirty
            // Clear before re-loading the distance: an improvement landing
            // after the clear re-marks the flag, one landing before the
            // re-load is propagated by this very relaxation — either way
            // nothing is lost.
            ctx.store(dirty, v, std::uint8_t{0});
            const std::uint32_t dv = ctx.atomic_load(dist, v);
            const eid_t b = ctx.load(offsets, v);
            const eid_t e = ctx.load(offsets, v + 1);
            std::uint32_t relaxed = 0;
            for (eid_t j = b; j < e; ++j) {
              const vid_t w = ctx.load(cols, j);
              const std::uint32_t wt = graph::synth_weight(
                  static_cast<vid_t>(v), w, seed, max_weight);
              const std::uint32_t cand = dv + wt;
              const std::uint32_t old = ctx.atomic_min(dist, w, cand);
              ++relaxed;
              if (cand < old) ctx.store(dirty, w, std::uint8_t{1});
            }
            ctx.slots(2 * (e - b) + 2, 2 * (e - b) + 2);
            if (relaxed > 0) ctx.atomic_add(counters, 2, relaxed);
          });
        });
      } else {
        // One pull round propagates every settled/in-bucket distance to
        // all neighbors (each vertex reads its whole adjacency), so the
        // in-bucket dirty flags it supersedes are cleared first.
        dev_.launch(s, "sssp_ds_clear", lc, [=](sim::BlockCtx& blk) {
          auto& ctx = blk.ctx();
          blk.grid_stride(n, [&](std::uint64_t v) {
            if (ctx.load(dirty, v) && ctx.atomic_load(dist, v) < bucket_hi) {
              ctx.store(dirty, v, std::uint8_t{0});
            }
            ctx.slots(2, 2);
          });
        });
        dev_.launch(s, "sssp_ds_pull", lc, [=](sim::BlockCtx& blk) {
          auto& ctx = blk.ctx();
          // Gathers read neighbor distances other lanes are improving in
          // the same pass; tentative distances only decrease, so a stale
          // read is re-gathered on a later iteration (the vertex stays or
          // becomes dirty), never kept wrongly small.
          sim::racy_ok allow(ctx,
                             "delta-sssp pull: concurrent reads of "
                             "monotonically decreasing neighbor distances");
          blk.grid_stride(n, [&](std::uint64_t v) {
            const eid_t b = ctx.load(offsets, v);
            const eid_t e = ctx.load(offsets, v + 1);
            const std::uint32_t dv = ctx.atomic_load(dist, v);
            std::uint32_t best = dv;
            std::uint32_t relaxed = 0;
            for (eid_t j = b; j < e; ++j) {
              const vid_t w = ctx.load(cols, j);
              const std::uint32_t dw = ctx.atomic_load(dist, w);
              if (dw == kUnreachedDist) continue;
              const std::uint32_t wt = graph::synth_weight(
                  static_cast<vid_t>(v), w, seed, max_weight);
              ++relaxed;
              if (dw + wt < best) best = dw + wt;
            }
            if (best < dv) {
              ctx.atomic_min(dist, v, best);
              ctx.store(dirty, v, std::uint8_t{1});
            }
            ctx.slots(2 * (e - b) + 2, 2 * (e - b) + 2);
            if (relaxed > 0) ctx.atomic_add(counters, 2, relaxed);
          });
        });
      }
      s.synchronize();
      dev_.memcpy_d2h(s, counters_);
      relaxations += counters_.h_read(2);
      st.kernels += pull ? 4 : 3;
    }

    // Advance to the bucket holding the smallest still-dirty distance; no
    // dirty vertex left means the fixpoint is global.
    dev_.launch(s, "sssp_ds_next", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(n, [&](std::uint64_t v) {
        if (!ctx.load(dirty, v)) {
          ctx.slots(1, 1);
          return;
        }
        ctx.atomic_min(counters, 3, ctx.atomic_load(dist, v));
        ctx.slots(3, 3);
      });
    });
    s.synchronize();
    dev_.memcpy_d2h(s, counters_);
    const std::uint32_t next_dist = counters_.h_read(3);

    st.ratio = static_cast<double>(st.frontier_edges) / static_cast<double>(m);
    st.time_ms = (dev_.now_us() - bucket_t0) / 1000.0;
    st.kernels += 1;
    result.level_stats.push_back(st);
    ++buckets;

    if (next_dist == kUnreachedDist) {
      done = true;
    } else {
      bucket_lo = next_dist / delta * delta;
    }
  }

  dev_.memcpy_d2h(s, dist_);
  s.synchronize();
  const std::uint32_t* dist_host = std::as_const(dist_).host_data();
  result.payload.distances = std::make_shared<const std::vector<std::uint32_t>>(
      dist_host, dist_host + n);
  result.payload.depth = buckets;
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  result.work_items = relaxations;
  last_relaxations_ = relaxations;
  return result;
}

}  // namespace xbfs::algos
