// AlgorithmEngine promotions and the builtin registry population.
//
// BcEngine / SccEngine wrap the free-function entry points of algos/bc.h
// and algos/scc.h behind the typed engine interface, and
// register_builtin_engines() registers every engine the repository ships —
// the XBFS/baseline BFS family, the PR 8 device engines (delta-SSSP,
// label-propagation CC, pull k-core), these wrappers, and one fault-immune
// host oracle per kind (graph/reference) — into
// core::EngineRegistry::global().  The serving layer, examples, and the
// conformance suite all resolve engines through that one table.
#pragma once

#include <cstdint>
#include <memory>

#include "algos/bc.h"
#include "algos/scc.h"
#include "core/algorithm_engine.h"
#include "graph/csr.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::algos {

/// Single-source Brandes contribution behind the engine interface: solve()
/// accumulates the dependency scores of q.source alone (batched multi-
/// source BC remains a direct betweenness_centrality call).
class BcEngine final : public core::AlgorithmEngine {
 public:
  BcEngine(sim::Device& dev, const graph::DeviceCsr& g, BcConfig cfg = {});

  core::AlgoKind kind() const override { return core::AlgoKind::Bc; }
  core::AlgoResult solve(const core::AlgoQuery& q) override;
  const char* name() const override { return "brandes-bc"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true};
  }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  BcConfig cfg_;
};

/// FW-BW SCC behind the engine interface.  The constructor materializes
/// and uploads the transpose (graph::reverse_csr) once; solve() runs the
/// whole-graph partition (q.source is ignored).
class SccEngine final : public core::AlgorithmEngine {
 public:
  SccEngine(sim::Device& dev, const graph::Csr& host_g,
            const graph::DeviceCsr& fwd, SccConfig cfg = {});

  core::AlgoKind kind() const override { return core::AlgoKind::Scc; }
  core::AlgoResult solve(const core::AlgoQuery& q) override;
  const char* name() const override { return "fwbw-scc"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true};
  }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& fwd_;
  graph::DeviceCsr bwd_;
  SccConfig cfg_;
};

/// Populate core::EngineRegistry::global() with every builtin engine.
/// Idempotent and thread-safe; call before resolving engines (the serving
/// engine, examples, and tests all do).
void register_builtin_engines();

}  // namespace xbfs::algos
