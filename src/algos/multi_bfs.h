// Concurrent multi-source BFS (iBFS-style, Liu et al. SIGMOD'16 — cited by
// the paper as a consumer of fast BFS): up to 64 searches share one
// traversal by carrying a 64-bit reachability mask per vertex, so one
// memory sweep advances every search at once.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::algos {

struct MultiBfsConfig {
  unsigned block_threads = 256;
};

struct MultiBfsResult {
  /// levels[s][v]: hop distance from sources[s] to v (-1 unreached).
  std::vector<std::vector<std::int32_t>> levels;
  double total_ms = 0.0;
  std::uint32_t depth = 0;  ///< deepest level over all searches
};

/// Hard batch width of one bit-parallel sweep (one reachability bit per
/// search in a 64-bit mask).
inline constexpr unsigned kMaxConcurrentSources = 64;

/// Run up to 64 BFS searches concurrently on the simulated device.
MultiBfsResult multi_source_bfs(sim::Device& dev, const graph::DeviceCsr& g,
                                const std::vector<graph::vid_t>& sources,
                                const MultiBfsConfig& cfg = {});

/// Any number of sources: splits the input into consecutive sweeps of at
/// most kMaxConcurrentSources and concatenates the per-source levels in
/// input order (duplicates allowed; each occurrence gets its own levels
/// vector).  total_ms sums the sweeps, depth is the max over sweeps.
MultiBfsResult multi_source_bfs_batched(sim::Device& dev,
                                        const graph::DeviceCsr& g,
                                        const std::vector<graph::vid_t>& sources,
                                        const MultiBfsConfig& cfg = {});

/// iBFS's GroupBy heuristic: order sources so that batches of `group_size`
/// share as much traversal as possible — sources whose early frontiers
/// overlap (here approximated by shared/adjacent neighborhoods) land in the
/// same group, maximizing the bit-parallel sharing of multi_source_bfs.
///
/// Repeated sources are deduplicated (first occurrence wins — serving
/// workloads hammer hot sources, and a duplicate inside one sweep wastes a
/// mask bit), so the result may be shorter than the input.  `group_size` is
/// clamped to [1, kMaxConcurrentSources]: a larger group could never be
/// dispatched in one sweep.
std::vector<graph::vid_t> group_sources(const graph::Csr& g,
                                        std::vector<graph::vid_t> sources,
                                        unsigned group_size = 64);

}  // namespace xbfs::algos
