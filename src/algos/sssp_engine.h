// Delta-stepping SSSP on the simulated GPU — the weighted generalization
// of the paper's frontier machinery (PAPERS.md delta-stepping framing).
//
// Distances advance bucket by bucket (bucket width = AlgoParams::delta, 0
// = auto): within a bucket the engine relaxes to a fixed point before the
// bucket is declared settled, which is the same decrease-only fixpoint
// structure as BFS with the level barrier widened to `delta`.  Each inner
// iteration picks push (dirty vertices scatter atomicMin updates, the
// async_sssp shape) or pull (every vertex gathers its best tentative
// distance from its neighbors) by the paper's r-vs-alpha rule on the
// active frontier's edge ratio — bottom-up gathers win exactly when the
// in-bucket frontier saturates the graph.
//
// Edge weights are synthetic and deterministic (graph::synth_weight over
// AlgoParams::{weight_seed, max_weight}): the CSR stays unweighted, and
// the host Dijkstra oracle derives identical weights, so conformance is
// exact equality on distances.
#pragma once

#include <cstdint>

#include "core/algorithm_engine.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::algos {

struct SsspEngineConfig {
  unsigned block_threads = 256;
  /// Pull threshold on (active frontier edges)/|E| — the r-vs-alpha rule.
  double alpha = 0.1;
};

class DeltaSsspEngine final : public core::AlgorithmEngine {
 public:
  DeltaSsspEngine(sim::Device& dev, const graph::DeviceCsr& g,
                  SsspEngineConfig cfg = {});

  core::AlgoKind kind() const override { return core::AlgoKind::Sssp; }
  core::AlgoResult solve(const core::AlgoQuery& q) override;
  const char* name() const override { return "delta-sssp"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true, .adaptive = true};
  }

  /// Edge relaxations performed by the last solve().
  std::uint64_t last_relaxations() const { return last_relaxations_; }

 private:
  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  SsspEngineConfig cfg_;
  sim::DeviceBuffer<std::uint32_t> dist_;
  sim::DeviceBuffer<std::uint8_t> dirty_;  ///< improved since last relaxation
  /// [0]=active in-bucket count, [1]=their edges, [2]=relaxations,
  /// [3]=min dirty distance (next-bucket probe).
  sim::DeviceBuffer<std::uint32_t> counters_;
  std::uint64_t last_relaxations_ = 0;
};

}  // namespace xbfs::algos
