// Serial reference algorithms: the ground truth every simulated-GPU
// engine is validated against — BFS plus the algorithm-family oracles
// (SSSP, connected components, k-core) the cross-engine conformance suite
// and the serving validators run, and connectivity helpers used by
// benches to pick sources from the giant component (as Graph500 does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace xbfs::graph {

inline constexpr std::int32_t kUnreached = -1;
/// Unreached sentinel of the uint32 SSSP distance domain (the host-side
/// twin of core::kUnreachedDist; graph sits below core in the layering).
inline constexpr std::uint32_t kUnreachedW = 0xFFFFFFFFu;

/// Deterministic synthetic edge weight in [1, max_weight], symmetric in
/// (u, v).  The CSR stores no weights; SSSP engines and the Dijkstra
/// oracle derive identical weights from (edge, seed), which is what makes
/// device distances exactly comparable to the host's.
inline std::uint32_t synth_weight(vid_t u, vid_t v, std::uint64_t seed,
                                  std::uint32_t max_weight) {
  if (max_weight <= 1) return 1;
  const std::uint64_t a = u < v ? u : v;
  const std::uint64_t b = u < v ? v : u;
  std::uint64_t h = seed ^ 0x9E3779B97F4A7C15ull;
  h ^= a + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return 1 + static_cast<std::uint32_t>(h % max_weight);
}

/// Serial queue BFS; levels[v] = hops from src, kUnreached if not reachable.
std::vector<std::int32_t> reference_bfs(const Csr& g, vid_t src);

/// Connected components (undirected view); comp[v] in [0, n_components).
std::vector<vid_t> connected_components(const Csr& g, vid_t* n_components);

/// Vertices of the largest component, ascending.  Benches sample BFS
/// sources from this set so every run traverses the bulk of the graph.
std::vector<vid_t> largest_component_vertices(const Csr& g);

/// Validate a BFS level assignment without referencing any particular
/// traversal order.  Checks: level[src]==0; reachability matches; every
/// edge differs by at most one level; every level-k>0 vertex has a level
/// k-1 neighbor.  Returns empty string if valid, else a diagnostic.
std::string validate_bfs_levels(const Csr& g, vid_t src,
                                const std::vector<std::int32_t>& levels);

/// Validate a parent array against a level assignment: parent edges must
/// exist and span exactly one level.
std::string validate_bfs_parents(const Csr& g, vid_t src,
                                 const std::vector<std::int32_t>& levels,
                                 const std::vector<vid_t>& parent);

// --- algorithm-family oracles (PR 8) ---------------------------------------

/// Serial Dijkstra over synth_weight(seed, max_weight) edge weights;
/// dist[v] = shortest weighted distance from src, kUnreachedW if
/// unreachable.  Shortest distances are unique, so any correct SSSP engine
/// must match this exactly.
std::vector<std::uint32_t> reference_sssp(const Csr& g, vid_t src,
                                          std::uint64_t seed,
                                          std::uint32_t max_weight);

/// Canonical connected-component labels: comp[v] = smallest vertex id in
/// v's component.  Engines that emit min-id labels (label propagation,
/// incremental union-find) must match exactly; arbitrary-id labelings
/// compare via validate_components.
std::vector<vid_t> canonical_components(const Csr& g);

/// Serial k-core by iterative peeling.  k == 0: cores[v] = coreness of v
/// (the largest k such that v survives the k-core trim).  k > 0:
/// cores[v] = 1 iff v is in the k-core, else 0.
std::vector<std::uint32_t> reference_kcore(const Csr& g, std::uint32_t k);

/// Validate an SSSP distance assignment without referencing any particular
/// relaxation order: dist[src] == 0; no edge is relaxable (dist[w] <=
/// dist[v] + w(v,w)); every reached non-source vertex has a tight
/// predecessor; reachability matches BFS reachability.  Empty string if
/// valid, else a diagnostic.
std::string validate_sssp_distances(const Csr& g, vid_t src,
                                    const std::vector<std::uint32_t>& dist,
                                    std::uint64_t seed,
                                    std::uint32_t max_weight);

/// Validate a component labeling as a partition: both endpoints of every
/// edge share a label, and vertices with equal labels are connected
/// (checked against a reference labeling, O(V + E)).  Labels themselves
/// may be arbitrary ids.  Empty string if valid, else a diagnostic.
std::string validate_components(const Csr& g, const std::vector<vid_t>& comp);

/// Validate a k-core answer.  k == 0 (decomposition): recomputes the
/// peeling and requires exact coreness equality.  k > 0 (membership):
/// checks the marked set is the maximal subgraph with min degree >= k.
/// Empty string if valid, else a diagnostic.
std::string validate_kcore(const Csr& g, const std::vector<std::uint32_t>& cores,
                           std::uint32_t k);

}  // namespace xbfs::graph
