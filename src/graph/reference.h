// Serial reference algorithms: the ground truth every simulated-GPU BFS is
// validated against, plus connectivity helpers used by benches to pick
// sources from the giant component (as Graph500 does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace xbfs::graph {

inline constexpr std::int32_t kUnreached = -1;

/// Serial queue BFS; levels[v] = hops from src, kUnreached if not reachable.
std::vector<std::int32_t> reference_bfs(const Csr& g, vid_t src);

/// Connected components (undirected view); comp[v] in [0, n_components).
std::vector<vid_t> connected_components(const Csr& g, vid_t* n_components);

/// Vertices of the largest component, ascending.  Benches sample BFS
/// sources from this set so every run traverses the bulk of the graph.
std::vector<vid_t> largest_component_vertices(const Csr& g);

/// Validate a BFS level assignment without referencing any particular
/// traversal order.  Checks: level[src]==0; reachability matches; every
/// edge differs by at most one level; every level-k>0 vertex has a level
/// k-1 neighbor.  Returns empty string if valid, else a diagnostic.
std::string validate_bfs_levels(const Csr& g, vid_t src,
                                const std::vector<std::int32_t>& levels);

/// Validate a parent array against a level assignment: parent edges must
/// exist and span exactly one level.
std::string validate_bfs_parents(const Csr& g, vid_t src,
                                 const std::vector<std::int32_t>& levels,
                                 const std::vector<vid_t>& parent);

}  // namespace xbfs::graph
