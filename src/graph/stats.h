// Graph statistics: degree summaries and the per-level frontier-edge ratio
// trace that drives XBFS's adaptive strategy choice (and Fig. 6).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace xbfs::graph {

struct DegreeStats {
  vid_t min_degree = 0;
  vid_t max_degree = 0;
  double mean = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  std::uint64_t isolated = 0;  ///< degree-0 vertices
};

DegreeStats degree_stats(const Csr& g);

/// The paper's ratio: at each level k, (sum of degrees of level-k frontier
/// vertices) / |E| — the fraction of the edge set the *next* expansion will
/// touch.  Computed from a reference BFS so it is strategy-independent.
std::vector<double> frontier_edge_ratio(const Csr& g, vid_t src);

/// Per-level frontier sizes from the same traversal.
std::vector<std::uint64_t> frontier_sizes(const Csr& g, vid_t src);

/// Five-number summary used for Fig. 6's per-level box plot over seeds.
struct BoxSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t count = 0;
};
BoxSummary box_summary(std::vector<double> samples);

}  // namespace xbfs::graph
