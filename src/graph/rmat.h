// Graph500-style RMAT (recursive-matrix / stochastic Kronecker) generator,
// the workload family behind the paper's Rmat23/Rmat25 datasets and the
// Graph500 results it compares against.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.h"
#include "graph/csr.h"

namespace xbfs::graph {

struct RmatParams {
  unsigned scale = 20;      ///< n = 2^scale vertices
  unsigned edge_factor = 16;  ///< m = edge_factor * n generated edges
  double a = 0.57, b = 0.19, c = 0.19;  ///< Graph500 quadrant weights (d = 1-a-b-c)
  std::uint64_t seed = 1;
  bool permute_labels = true;  ///< Graph500 random vertex relabeling
  /// Per-recursion-level multiplicative noise on the quadrant weights, as
  /// used by Graph500 to avoid exactly self-similar structure.
  double noise = 0.1;
};

/// Generate the raw RMAT edge list (directed; duplicates possible).
std::vector<Edge> rmat_edges(const RmatParams& params);

/// Convenience: generate and build the undirected, deduplicated CSR.
Csr rmat_csr(const RmatParams& params, const BuildOptions& opt = {});

}  // namespace xbfs::graph
