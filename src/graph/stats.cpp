#include "graph/stats.h"

#include <algorithm>
#include <cassert>

#include "graph/reference.h"

namespace xbfs::graph {

DegreeStats degree_stats(const Csr& g) {
  DegreeStats s;
  const vid_t n = g.num_vertices();
  if (n == 0) return s;
  std::vector<vid_t> degs(n);
  std::uint64_t total = 0;
  for (vid_t v = 0; v < n; ++v) {
    degs[v] = g.degree(v);
    total += degs[v];
    if (degs[v] == 0) ++s.isolated;
  }
  std::sort(degs.begin(), degs.end());
  s.min_degree = degs.front();
  s.max_degree = degs.back();
  s.mean = static_cast<double>(total) / n;
  auto pct = [&](double q) {
    const std::size_t i =
        std::min<std::size_t>(n - 1, static_cast<std::size_t>(q * n));
    return static_cast<double>(degs[i]);
  };
  s.p50 = pct(0.50);
  s.p90 = pct(0.90);
  s.p99 = pct(0.99);
  return s;
}

std::vector<double> frontier_edge_ratio(const Csr& g, vid_t src) {
  const std::vector<std::int32_t> levels = reference_bfs(g, src);
  std::int32_t max_level = 0;
  for (std::int32_t l : levels) max_level = std::max(max_level, l);
  std::vector<std::uint64_t> edges_at_level(
      static_cast<std::size_t>(max_level) + 1, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] != kUnreached) {
      edges_at_level[static_cast<std::size_t>(levels[v])] += g.degree(v);
    }
  }
  std::vector<double> ratio(edges_at_level.size());
  const double m = static_cast<double>(g.num_edges());
  for (std::size_t k = 0; k < ratio.size(); ++k) {
    ratio[k] = m == 0 ? 0.0 : static_cast<double>(edges_at_level[k]) / m;
  }
  return ratio;
}

std::vector<std::uint64_t> frontier_sizes(const Csr& g, vid_t src) {
  const std::vector<std::int32_t> levels = reference_bfs(g, src);
  std::int32_t max_level = 0;
  for (std::int32_t l : levels) max_level = std::max(max_level, l);
  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(max_level) + 1, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] != kUnreached) ++sizes[static_cast<std::size_t>(levels[v])];
  }
  return sizes;
}

BoxSummary box_summary(std::vector<double> samples) {
  BoxSummary b;
  if (samples.empty()) return b;
  std::sort(samples.begin(), samples.end());
  b.count = samples.size();
  b.min = samples.front();
  b.max = samples.back();
  auto q = [&](double p) {
    const double idx = p * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return samples[lo] * (1 - frac) + samples[hi] * frac;
  };
  b.q1 = q(0.25);
  b.median = q(0.5);
  b.q3 = q(0.75);
  return b;
}

}  // namespace xbfs::graph
