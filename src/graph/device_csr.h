// A CSR graph resident in simulated device memory, with the modelled
// host-to-device upload cost (part of the paper's n-to-n end-to-end time,
// which dominates on small graphs like Dblp).
#pragma once

#include <cstring>

#include "graph/csr.h"
#include "hipsim/buffer.h"
#include "hipsim/device.h"

namespace xbfs::graph {

struct DeviceCsr {
  sim::DeviceBuffer<eid_t> offsets;  ///< n+1 row offsets (8-byte)
  sim::DeviceBuffer<vid_t> cols;     ///< m adjacency entries (4-byte)
  vid_t n = 0;
  eid_t m = 0;

  sim::dspan<const eid_t> offsets_span() const { return offsets.cspan(); }
  sim::dspan<const vid_t> cols_span() const { return cols.cspan(); }

  /// Allocate device buffers, copy the CSR payload and charge the modelled
  /// h2d transfer time to `stream`.
  static DeviceCsr upload(sim::Device& dev, sim::Stream& stream,
                          const Csr& g) {
    DeviceCsr d;
    d.n = g.num_vertices();
    d.m = g.num_edges();
    d.offsets = dev.alloc<eid_t>(g.offsets().size(), "csr.offsets");
    d.cols = dev.alloc<vid_t>(g.cols().size(), "csr.cols");
    d.offsets.h_copy_from(g.offsets().data(), g.offsets().size());
    if (!g.cols().empty()) {
      d.cols.h_copy_from(g.cols().data(), g.cols().size());
    }
    // Modelled transfer of the packed payload (offsets may be padded, so
    // charge the graph's own byte count); mark both device-synced.
    dev.memcpy_h2d(stream, g.payload_bytes());
    d.offsets.mark_device_synced();
    d.cols.mark_device_synced();
    return d;
  }
  static DeviceCsr upload(sim::Device& dev, const Csr& g) {
    return upload(dev, dev.stream(0), g);
  }
};

}  // namespace xbfs::graph
