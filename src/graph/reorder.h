// Degree-Aware Neighbor Order Re-arrangement (paper Sec. IV-B).
//
// Sorting each adjacency list by descending neighbor degree makes bottom-up
// early termination find an already-visited parent sooner: by the paper's
// probability model, a vertex with degree d has visit probability
// 1 - C(m-d, m_k)/C(m, m_k) after m_k edge visits, increasing in d.
#pragma once

#include <vector>

#include "graph/csr.h"

namespace xbfs::graph {

/// Neighbor ordering applied within each adjacency list.
enum class NeighborOrder {
  ById,              ///< ascending vertex id (builder default)
  ByDegreeDesc,      ///< paper's re-arrangement: high-degree first
  ByDegreeAsc,       ///< adversarial control for ablations
};

/// Return a copy of `g` with every adjacency list re-ordered.  Ties are
/// broken by ascending id so the result is deterministic.
Csr rearrange_neighbors(const Csr& g, NeighborOrder order);

/// True when every adjacency list of `g` is sorted according to `order`
/// (used by tests and as a cheap precondition check).
bool neighbors_ordered(const Csr& g, NeighborOrder order);

/// The paper's analytical visit probability: probability that a vertex of
/// degree `d` has at least one visited incident edge after `mk` of `m`
/// edges were visited.  Computed in log-space for stability.
double visit_probability(std::uint64_t m, std::uint64_t mk, std::uint64_t d);

// --- whole-graph vertex relabeling ----------------------------------------
// Complementary locality transformations (degree-ordered and BFS-ordered
// relabeling are the standard companions of the paper's per-list
// re-arrangement; exposed for the locality ablation bench).

/// Relabeling order for `relabel_vertices`.
enum class VertexOrder {
  ByDegreeDesc,  ///< hubs get the lowest ids (dense hot region)
  ByDegreeAsc,
  BfsFrom0,      ///< BFS visit order from vertex 0 (RCM-like locality)
};

struct Relabeling {
  Csr graph;                      ///< relabeled graph
  std::vector<vid_t> new_to_old;  ///< new_to_old[new_id] = original id
  std::vector<vid_t> old_to_new;
};

/// Permute vertex ids so that `order` holds, rebuilding the CSR.  The
/// result is isomorphic to the input (tests verify via the mappings).
Relabeling relabel_vertices(const Csr& g, VertexOrder order);

}  // namespace xbfs::graph
