// Edge-list I/O: whitespace-separated text ("u v" per line, '#' comments,
// SNAP style) and a compact binary format for round-tripping generated
// datasets between tools.
#pragma once

#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/csr.h"

namespace xbfs::graph {

/// Parse a SNAP-style text edge list.  Vertex ids are used as-is; `n` is
/// max id + 1 unless a larger value is forced via min_vertices.
std::vector<Edge> read_edge_list_text(const std::string& path,
                                      vid_t* out_n = nullptr);
void write_edge_list_text(const std::string& path,
                          const std::vector<Edge>& edges);

/// Binary format: u64 magic, u32 n, u64 m, then m (u32,u32) pairs.
std::vector<Edge> read_edge_list_binary(const std::string& path,
                                        vid_t* out_n = nullptr);
void write_edge_list_binary(const std::string& path, vid_t n,
                            const std::vector<Edge>& edges);

/// Serialize a whole CSR (offsets + cols) to a binary file and back.
void write_csr_binary(const std::string& path, const Csr& g);
Csr read_csr_binary(const std::string& path);

}  // namespace xbfs::graph
