#include "graph/g500_validate.h"

#include <algorithm>
#include <sstream>

#include "graph/reference.h"

namespace xbfs::graph {

namespace {
constexpr vid_t kNoParent = static_cast<vid_t>(-1);
}

std::vector<std::int32_t> levels_from_parents(
    const Csr& g, vid_t src, const std::vector<vid_t>& parent) {
  const vid_t n = g.num_vertices();
  std::vector<std::int32_t> levels(n, kUnreached);
  if (parent.size() != n || src >= n) return {};
  levels[src] = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (v == src || parent[v] == kNoParent) continue;
    // Walk to a vertex with a known level; path length bounded by n.
    std::vector<vid_t> chain;
    vid_t cur = v;
    while (levels[cur] == kUnreached) {
      chain.push_back(cur);
      const vid_t p = parent[cur];
      if (p >= n || p == kNoParent) return {};  // broken chain
      if (chain.size() > static_cast<std::size_t>(n)) return {};  // cycle
      cur = p;
    }
    std::int32_t level = levels[cur];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      levels[*it] = ++level;
    }
  }
  return levels;
}

std::string validate_graph500(const Csr& g, vid_t src,
                              const std::vector<vid_t>& parent) {
  std::ostringstream os;
  const vid_t n = g.num_vertices();
  if (parent.size() != n) return "parent array has wrong size";

  // Rule 5: root self-parented.
  if (parent[src] != src) {
    os << "rule 5: source " << src << " is not its own parent";
    return os.str();
  }

  // Rule 1: acyclic chains to the root (levels derivable).
  const std::vector<std::int32_t> levels = levels_from_parents(g, src, parent);
  if (levels.empty()) {
    return "rule 1: parent chains contain a cycle or out-of-range parent";
  }

  // Rule 2: every tree edge exists in the graph and spans exactly 1 level.
  for (vid_t v = 0; v < n; ++v) {
    if (v == src || parent[v] == kNoParent) continue;
    const vid_t p = parent[v];
    if (levels[v] != levels[p] + 1) {
      os << "rule 2: tree edge (" << p << "," << v << ") spans levels "
         << levels[p] << " -> " << levels[v];
      return os.str();
    }
    const auto nb = g.neighbors(v);
    if (std::find(nb.begin(), nb.end(), p) == nb.end()) {
      os << "rule 2: tree edge (" << p << "," << v
         << ") is not a graph edge";
      return os.str();
    }
  }

  // Rule 3: graph edges span at most one level (within the reached set).
  for (vid_t v = 0; v < n; ++v) {
    if (levels[v] == kUnreached) continue;
    for (vid_t w : g.neighbors(v)) {
      if (levels[w] == kUnreached) {
        os << "rule 3/4: reached vertex " << v << " has unreached neighbor "
           << w;
        return os.str();
      }
      if (std::abs(levels[v] - levels[w]) > 1) {
        os << "rule 3: edge (" << v << "," << w << ") spans levels "
           << levels[v] << " and " << levels[w];
        return os.str();
      }
    }
  }

  // Rule 4: the tree spans exactly the source's component.
  const std::vector<std::int32_t> ref = reference_bfs(g, src);
  for (vid_t v = 0; v < n; ++v) {
    const bool in_tree = v == src || parent[v] != kNoParent;
    const bool reachable = ref[v] != kUnreached;
    if (in_tree != reachable) {
      os << "rule 4: vertex " << v << (in_tree ? " is" : " is not")
         << " in the tree but" << (reachable ? " is" : " is not")
         << " reachable";
      return os.str();
    }
    // With rules 1-3 established, tree levels are exact BFS distances.
    if (reachable && levels[v] != ref[v]) {
      os << "rule 2: vertex " << v << " tree depth " << levels[v]
         << " != BFS distance " << ref[v];
      return os.str();
    }
  }
  return {};
}

std::string validate_levels_graph500(const Csr& g, vid_t src,
                                     const std::vector<std::int32_t>& levels) {
  std::ostringstream os;
  const vid_t n = g.num_vertices();
  if (levels.size() != n) {
    os << "levels array has size " << levels.size() << ", expected " << n;
    return os.str();
  }
  if (src >= n) {
    os << "source " << src << " out of range";
    return os.str();
  }

  // Rule 1: well-formed values, source (and only the source) at level 0.
  if (levels[src] != 0) {
    os << "rule 1: source " << src << " has level " << levels[src];
    return os.str();
  }
  for (vid_t v = 0; v < n; ++v) {
    const std::int32_t l = levels[v];
    if (l != kUnreached && (l < 0 || static_cast<vid_t>(l) >= n)) {
      os << "rule 1: vertex " << v << " has out-of-range level " << l;
      return os.str();
    }
    if (l == 0 && v != src) {
      os << "rule 1: non-source vertex " << v << " claims level 0";
      return os.str();
    }
  }

  for (vid_t v = 0; v < n; ++v) {
    const std::int32_t lv = levels[v];
    if (lv == kUnreached) continue;
    bool has_pred = lv == 0;  // the source needs no predecessor
    for (vid_t w : g.neighbors(v)) {
      const std::int32_t lw = levels[w];
      // Rule 2: reachability is closed over edges.
      if (lw == kUnreached) {
        os << "rule 2: edge (" << v << "," << w
           << ") joins reached and unreached vertices";
        return os.str();
      }
      // Rule 3: edges span at most one level.
      if (lw > lv + 1 || lv > lw + 1) {
        os << "rule 3: edge (" << v << "," << w << ") spans levels " << lv
           << " and " << lw;
        return os.str();
      }
      if (lw == lv - 1) has_pred = true;
    }
    // Rule 4: a level-k vertex is witnessed by a level-(k-1) neighbor.
    if (!has_pred) {
      os << "rule 4: vertex " << v << " at level " << lv
         << " has no neighbor at level " << lv - 1;
      return os.str();
    }
  }
  return {};
}

}  // namespace xbfs::graph
