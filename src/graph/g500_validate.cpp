#include "graph/g500_validate.h"

#include <algorithm>
#include <sstream>

#include "graph/reference.h"

namespace xbfs::graph {

namespace {
constexpr vid_t kNoParent = static_cast<vid_t>(-1);
}

std::vector<std::int32_t> levels_from_parents(
    const Csr& g, vid_t src, const std::vector<vid_t>& parent) {
  const vid_t n = g.num_vertices();
  std::vector<std::int32_t> levels(n, kUnreached);
  if (parent.size() != n || src >= n) return {};
  levels[src] = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (v == src || parent[v] == kNoParent) continue;
    // Walk to a vertex with a known level; path length bounded by n.
    std::vector<vid_t> chain;
    vid_t cur = v;
    while (levels[cur] == kUnreached) {
      chain.push_back(cur);
      const vid_t p = parent[cur];
      if (p >= n || p == kNoParent) return {};  // broken chain
      if (chain.size() > static_cast<std::size_t>(n)) return {};  // cycle
      cur = p;
    }
    std::int32_t level = levels[cur];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      levels[*it] = ++level;
    }
  }
  return levels;
}

std::string validate_graph500(const Csr& g, vid_t src,
                              const std::vector<vid_t>& parent) {
  std::ostringstream os;
  const vid_t n = g.num_vertices();
  if (parent.size() != n) return "parent array has wrong size";

  // Rule 5: root self-parented.
  if (parent[src] != src) {
    os << "rule 5: source " << src << " is not its own parent";
    return os.str();
  }

  // Rule 1: acyclic chains to the root (levels derivable).
  const std::vector<std::int32_t> levels = levels_from_parents(g, src, parent);
  if (levels.empty()) {
    return "rule 1: parent chains contain a cycle or out-of-range parent";
  }

  // Rule 2: every tree edge exists in the graph and spans exactly 1 level.
  for (vid_t v = 0; v < n; ++v) {
    if (v == src || parent[v] == kNoParent) continue;
    const vid_t p = parent[v];
    if (levels[v] != levels[p] + 1) {
      os << "rule 2: tree edge (" << p << "," << v << ") spans levels "
         << levels[p] << " -> " << levels[v];
      return os.str();
    }
    const auto nb = g.neighbors(v);
    if (std::find(nb.begin(), nb.end(), p) == nb.end()) {
      os << "rule 2: tree edge (" << p << "," << v
         << ") is not a graph edge";
      return os.str();
    }
  }

  // Rule 3: graph edges span at most one level (within the reached set).
  for (vid_t v = 0; v < n; ++v) {
    if (levels[v] == kUnreached) continue;
    for (vid_t w : g.neighbors(v)) {
      if (levels[w] == kUnreached) {
        os << "rule 3/4: reached vertex " << v << " has unreached neighbor "
           << w;
        return os.str();
      }
      if (std::abs(levels[v] - levels[w]) > 1) {
        os << "rule 3: edge (" << v << "," << w << ") spans levels "
           << levels[v] << " and " << levels[w];
        return os.str();
      }
    }
  }

  // Rule 4: the tree spans exactly the source's component.
  const std::vector<std::int32_t> ref = reference_bfs(g, src);
  for (vid_t v = 0; v < n; ++v) {
    const bool in_tree = v == src || parent[v] != kNoParent;
    const bool reachable = ref[v] != kUnreached;
    if (in_tree != reachable) {
      os << "rule 4: vertex " << v << (in_tree ? " is" : " is not")
         << " in the tree but" << (reachable ? " is" : " is not")
         << " reachable";
      return os.str();
    }
    // With rules 1-3 established, tree levels are exact BFS distances.
    if (reachable && levels[v] != ref[v]) {
      os << "rule 2: vertex " << v << " tree depth " << levels[v]
         << " != BFS distance " << ref[v];
      return os.str();
    }
  }
  return {};
}

}  // namespace xbfs::graph
