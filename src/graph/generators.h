// Synthetic generator families used as stand-ins for the SNAP datasets in
// Table II (LiveJournal, USpatent, Orkut, Dblp).  Each family is chosen to
// match the characteristic that drives XBFS's per-level behaviour: degree
// skew (strategy crossovers) and diameter class (number of BFS levels).
#pragma once

#include <cstdint>

#include "graph/builder.h"
#include "graph/csr.h"

namespace xbfs::graph {

/// Erdos-Renyi G(n, m): uniform random edges; short diameter, no skew.
Csr erdos_renyi(vid_t n, std::uint64_t target_edges, std::uint64_t seed,
                const BuildOptions& opt = {});

/// Watts-Strogatz small world: ring of n vertices, each joined to its k
/// nearest neighbours, each edge rewired with probability beta.  Clustered,
/// moderate diameter — the DBLP collaboration-graph stand-in.
Csr small_world(vid_t n, unsigned k, double beta, std::uint64_t seed,
                const BuildOptions& opt = {});

/// Layered citation-style graph: vertices are ordered into `layers` layers;
/// each vertex cites `avg_out` earlier vertices drawn from a recency window.
/// Low degree, long diameter — the USpatent stand-in (the dataset the paper
/// notes "requires more levels").
Csr layered_citation(vid_t n, unsigned layers, unsigned avg_out,
                     std::uint64_t seed, const BuildOptions& opt = {});

/// Barabasi-Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices with probability proportional to degree.
/// Heavy-tailed degrees with a connected core.
Csr barabasi_albert(vid_t n, unsigned attach, std::uint64_t seed,
                    const BuildOptions& opt = {});

}  // namespace xbfs::graph
