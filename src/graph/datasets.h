// Stand-ins for the paper's Table II datasets.
//
// The SNAP graphs (LiveJournal, USpatent, Orkut, Dblp) are not available
// offline, so each is substituted with a synthetic generator matched on the
// properties that govern XBFS's per-level behaviour: vertex count, average
// degree, degree skew and diameter class.  RMAT datasets are generated
// exactly as in Graph500.  `scale_divisor` shrinks vertex counts (keeping
// average degree) so profile-mode simulation stays fast; 1 reproduces paper
// sizes.  Every substitution is documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"

namespace xbfs::graph {

enum class DatasetId { LJ, UP, OR, DB, R23, R25 };

struct DatasetMeta {
  DatasetId id;
  std::string short_name;     ///< "LJ", "UP", ...
  std::string paper_name;     ///< "LiveJournal", ...
  std::uint64_t paper_vertices;
  std::uint64_t paper_edges;
  std::string substitution;   ///< generator family used as stand-in
};

/// Static metadata for all six datasets (Table II).
const std::vector<DatasetMeta>& all_datasets();
const DatasetMeta& dataset_meta(DatasetId id);
DatasetId dataset_from_name(const std::string& short_name);

/// Build the stand-in graph. Degree-preserving scale-down by scale_divisor.
Csr make_dataset(DatasetId id, unsigned scale_divisor = 16,
                 std::uint64_t seed = 1);

}  // namespace xbfs::graph
