#include "graph/io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xbfs::graph {

namespace {
constexpr std::uint64_t kEdgeMagic = 0x58424653'45444745ull;  // "XBFSEDGE"
constexpr std::uint64_t kCsrMagic = 0x58424653'43535230ull;   // "XBFSCSR0"

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error(path + ": " + why);
}
}  // namespace

std::vector<Edge> read_edge_list_text(const std::string& path, vid_t* out_n) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open");
  std::vector<Edge> edges;
  vid_t max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) fail(path, "malformed line: " + line);
    edges.push_back(
        Edge{static_cast<vid_t>(u), static_cast<vid_t>(v)});
    max_id = std::max({max_id, static_cast<vid_t>(u), static_cast<vid_t>(v)});
  }
  if (out_n) *out_n = edges.empty() ? 0 : max_id + 1;
  return edges;
}

void write_edge_list_text(const std::string& path,
                          const std::vector<Edge>& edges) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << "# xbfs_frontier edge list: " << edges.size() << " edges\n";
  for (const Edge& e : edges) out << e.u << ' ' << e.v << '\n';
  if (!out) fail(path, "write error");
}

std::vector<Edge> read_edge_list_binary(const std::string& path,
                                        vid_t* out_n) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  std::uint64_t magic = 0, m = 0;
  std::uint32_t n = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kEdgeMagic) fail(path, "bad magic (not an edge file)");
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  std::vector<Edge> edges(m);
  static_assert(sizeof(Edge) == 2 * sizeof(vid_t));
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) fail(path, "truncated edge file");
  if (out_n) *out_n = n;
  return edges;
}

void write_edge_list_binary(const std::string& path, vid_t n,
                            const std::vector<Edge>& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  const std::uint64_t m = edges.size();
  out.write(reinterpret_cast<const char*>(&kEdgeMagic), sizeof(kEdgeMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!out) fail(path, "write error");
}

void write_csr_binary(const std::string& path, const Csr& g) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  out.write(reinterpret_cast<const char*>(&kCsrMagic), sizeof(kCsrMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(eid_t)));
  out.write(reinterpret_cast<const char*>(g.cols().data()),
            static_cast<std::streamsize>(g.cols().size() * sizeof(vid_t)));
  if (!out) fail(path, "write error");
}

Csr read_csr_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  std::uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kCsrMagic) fail(path, "bad magic (not a CSR file)");
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  std::vector<eid_t> offsets(n + 1);
  std::vector<vid_t> cols(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid_t)));
  in.read(reinterpret_cast<char*>(cols.data()),
          static_cast<std::streamsize>(cols.size() * sizeof(vid_t)));
  if (!in) fail(path, "truncated CSR file");
  return Csr(std::move(offsets), std::move(cols));
}

}  // namespace xbfs::graph
