#include "graph/builder.h"

#include <algorithm>
#include <cassert>

namespace xbfs::graph {

Csr build_csr(vid_t n, std::vector<Edge> edges, const BuildOptions& opt) {
  if (opt.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  }
  for (const Edge& e : edges) {
    assert(e.u < n && e.v < n && "edge endpoint out of range");
    (void)e;
  }
  if (opt.symmetrize) {
    const std::size_t orig = edges.size();
    edges.reserve(orig * 2);
    for (std::size_t i = 0; i < orig; ++i) {
      edges.push_back(Edge{edges[i].v, edges[i].u});
    }
  }

  // Counting sort by source vertex, then per-list neighbor sort + dedup.
  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) ++offsets[e.u + 1];
  for (vid_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<vid_t> cols(edges.size());
  {
    std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) cols[cursor[e.u]++] = e.v;
  }

  if (opt.sort_neighbors || opt.dedup) {
    std::vector<vid_t> out_cols;
    out_cols.reserve(cols.size());
    std::vector<eid_t> out_offsets(static_cast<std::size_t>(n) + 1, 0);
    for (vid_t v = 0; v < n; ++v) {
      auto begin = cols.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      auto end = cols.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      std::sort(begin, end);
      if (opt.dedup) end = std::unique(begin, end);
      out_cols.insert(out_cols.end(), begin, end);
      out_offsets[v + 1] = static_cast<eid_t>(out_cols.size());
    }
    return Csr(std::move(out_offsets), std::move(out_cols));
  }
  return Csr(std::move(offsets), std::move(cols));
}

Csr reverse_csr(const Csr& g) {
  const vid_t n = g.num_vertices();
  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (eid_t e = 0; e < g.num_edges(); ++e) ++offsets[g.cols()[e] + 1];
  for (vid_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<vid_t> cols(g.num_edges());
  std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t w : g.neighbors(u)) cols[cursor[w]++] = u;
  }
  return Csr(std::move(offsets), std::move(cols));
}

}  // namespace xbfs::graph
