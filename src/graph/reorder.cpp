#include "graph/reorder.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

namespace xbfs::graph {

namespace {

bool less_for(const Csr& g, NeighborOrder order, vid_t a, vid_t b) {
  switch (order) {
    case NeighborOrder::ById:
      return a < b;
    case NeighborOrder::ByDegreeDesc: {
      const vid_t da = g.degree(a), db = g.degree(b);
      return da != db ? da > db : a < b;
    }
    case NeighborOrder::ByDegreeAsc: {
      const vid_t da = g.degree(a), db = g.degree(b);
      return da != db ? da < db : a < b;
    }
  }
  return a < b;
}

}  // namespace

Csr rearrange_neighbors(const Csr& g, NeighborOrder order) {
  std::vector<eid_t> offsets = g.offsets();
  std::vector<vid_t> cols = g.cols();
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    auto begin = cols.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
    auto end = cols.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
    std::sort(begin, end,
              [&](vid_t a, vid_t b) { return less_for(g, order, a, b); });
  }
  return Csr(std::move(offsets), std::move(cols));
}

bool neighbors_ordered(const Csr& g, NeighborOrder order) {
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 1; i < nb.size(); ++i) {
      if (less_for(g, order, nb[i], nb[i - 1])) return false;
    }
  }
  return true;
}

double visit_probability(std::uint64_t m, std::uint64_t mk, std::uint64_t d) {
  if (d >= m || mk >= m) return mk == 0 ? 0.0 : 1.0;
  if (mk == 0 || d == 0) return 0.0;
  // log C(m-d, mk) - log C(m, mk) = sum_{i=0..mk-1} log((m-d-i)/(m-i))
  double log_ratio = 0.0;
  for (std::uint64_t i = 0; i < mk; ++i) {
    if (m - d <= i) return 1.0;  // C(m-d, mk) == 0: certain visit
    log_ratio += std::log(static_cast<double>(m - d - i)) -
                 std::log(static_cast<double>(m - i));
    if (log_ratio < -60.0) return 1.0;  // underflow: probability ~= 1
  }
  return 1.0 - std::exp(log_ratio);
}

Relabeling relabel_vertices(const Csr& g, VertexOrder order) {
  const vid_t n = g.num_vertices();
  Relabeling out;
  out.new_to_old.resize(n);
  std::iota(out.new_to_old.begin(), out.new_to_old.end(), vid_t{0});

  switch (order) {
    case VertexOrder::ByDegreeDesc:
      std::stable_sort(out.new_to_old.begin(), out.new_to_old.end(),
                       [&](vid_t a, vid_t b) {
                         return g.degree(a) != g.degree(b)
                                    ? g.degree(a) > g.degree(b)
                                    : a < b;
                       });
      break;
    case VertexOrder::ByDegreeAsc:
      std::stable_sort(out.new_to_old.begin(), out.new_to_old.end(),
                       [&](vid_t a, vid_t b) {
                         return g.degree(a) != g.degree(b)
                                    ? g.degree(a) < g.degree(b)
                                    : a < b;
                       });
      break;
    case VertexOrder::BfsFrom0: {
      // BFS visit order; unreached vertices keep relative order at the end.
      std::vector<bool> seen(n, false);
      std::vector<vid_t> ordered;
      ordered.reserve(n);
      for (vid_t s = 0; s < n; ++s) {
        if (seen[s]) continue;
        std::deque<vid_t> queue{s};
        seen[s] = true;
        while (!queue.empty()) {
          const vid_t v = queue.front();
          queue.pop_front();
          ordered.push_back(v);
          for (vid_t w : g.neighbors(v)) {
            if (!seen[w]) {
              seen[w] = true;
              queue.push_back(w);
            }
          }
        }
      }
      out.new_to_old = std::move(ordered);
      break;
    }
  }

  out.old_to_new.resize(n);
  for (vid_t nv = 0; nv < n; ++nv) out.old_to_new[out.new_to_old[nv]] = nv;

  std::vector<eid_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t nv = 0; nv < n; ++nv) {
    offsets[nv + 1] = offsets[nv] + g.degree(out.new_to_old[nv]);
  }
  std::vector<vid_t> cols;
  cols.reserve(g.num_edges());
  for (vid_t nv = 0; nv < n; ++nv) {
    std::vector<vid_t> nb;
    nb.reserve(g.degree(out.new_to_old[nv]));
    for (vid_t w : g.neighbors(out.new_to_old[nv])) {
      nb.push_back(out.old_to_new[w]);
    }
    std::sort(nb.begin(), nb.end());
    cols.insert(cols.end(), nb.begin(), nb.end());
  }
  out.graph = Csr(std::move(offsets), std::move(cols));
  return out;
}

}  // namespace xbfs::graph
