// Edge-list -> CSR construction with the clean-up passes every real graph
// pipeline needs: symmetrization, self-loop removal, deduplication.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace xbfs::graph {

struct Edge {
  vid_t u = 0;
  vid_t v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

struct BuildOptions {
  bool symmetrize = true;      ///< add (v,u) for every (u,v): undirected BFS
  bool remove_self_loops = true;
  bool dedup = true;           ///< drop parallel edges
  bool sort_neighbors = true;  ///< ascending neighbor ids per adjacency list
};

/// Build a CSR over vertices [0, n) from an arbitrary edge list.
Csr build_csr(vid_t n, std::vector<Edge> edges, const BuildOptions& opt = {});

/// Transpose of a directed CSR: in-edges become out-edges.  Used by the
/// backward sweeps of directed algorithms (SCC).
Csr reverse_csr(const Csr& g);

}  // namespace xbfs::graph
