#include "graph/csr.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace xbfs::graph {

Csr::Csr(std::vector<eid_t> offsets, std::vector<vid_t> cols)
    : offsets_(std::move(offsets)), cols_(std::move(cols)) {
  assert(!offsets_.empty());
  n_ = static_cast<vid_t>(offsets_.size() - 1);
  m_ = static_cast<eid_t>(cols_.size());
  assert(offsets_.back() == m_);
}

vid_t Csr::max_degree() const {
  vid_t best = 0;
  for (vid_t v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

std::uint64_t Csr::fingerprint(std::uint64_t epoch) const {
  constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
  std::uint64_t h = kFnvOffset;
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (x & 0xff)) * kFnvPrime;
      x >>= 8;
    }
  };
  mix(n_);
  mix(m_);
  // Offsets pin the whole degree sequence; adjacency entries are sampled
  // with a bounded stride so fingerprinting stays O(n + 64k) on any size.
  for (const eid_t off : offsets_) mix(off);
  const eid_t stride = std::max<eid_t>(1, m_ / 65536);
  for (eid_t e = 0; e < m_; e += stride) mix(cols_[e]);
  if (m_ != 0) mix(cols_[m_ - 1]);
  // Epoch last, mixed unconditionally: a bumped epoch perturbs the final
  // hash even when the sampled structural walk is identical, which is what
  // lets serving-cache keys invalidate on every applied update batch.
  mix(epoch);
  return h;
}

std::string Csr::validate() const {
  if (offsets_.empty()) return "offsets array is empty";
  if (offsets_.front() != 0) return "offsets[0] != 0";
  if (offsets_.back() != m_) {
    return "offsets back does not match edge count";
  }
  for (vid_t v = 0; v < n_; ++v) {
    if (offsets_[v] > offsets_[v + 1]) {
      std::ostringstream os;
      os << "offsets not monotone at vertex " << v;
      return os.str();
    }
  }
  for (eid_t e = 0; e < m_; ++e) {
    if (cols_[e] >= n_) {
      std::ostringstream os;
      os << "adjacency entry " << e << " out of range: " << cols_[e];
      return os.str();
    }
  }
  return {};
}

}  // namespace xbfs::graph
