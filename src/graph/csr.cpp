#include "graph/csr.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace xbfs::graph {

Csr::Csr(std::vector<eid_t> offsets, std::vector<vid_t> cols)
    : offsets_(std::move(offsets)), cols_(std::move(cols)) {
  assert(!offsets_.empty());
  n_ = static_cast<vid_t>(offsets_.size() - 1);
  m_ = static_cast<eid_t>(cols_.size());
  assert(offsets_.back() == m_);
}

vid_t Csr::max_degree() const {
  vid_t best = 0;
  for (vid_t v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

std::string Csr::validate() const {
  if (offsets_.empty()) return "offsets array is empty";
  if (offsets_.front() != 0) return "offsets[0] != 0";
  if (offsets_.back() != m_) {
    return "offsets back does not match edge count";
  }
  for (vid_t v = 0; v < n_; ++v) {
    if (offsets_[v] > offsets_[v + 1]) {
      std::ostringstream os;
      os << "offsets not monotone at vertex " << v;
      return os.str();
    }
  }
  for (eid_t e = 0; e < m_; ++e) {
    if (cols_[e] >= n_) {
      std::ostringstream os;
      os << "adjacency entry " << e << " out of range: " << cols_[e];
      return os.str();
    }
  }
  return {};
}

}  // namespace xbfs::graph
