#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <random>

namespace xbfs::graph {

Csr erdos_renyi(vid_t n, std::uint64_t target_edges, std::uint64_t seed,
                const BuildOptions& opt) {
  assert(n >= 2);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  std::vector<Edge> edges;
  edges.reserve(target_edges);
  for (std::uint64_t i = 0; i < target_edges; ++i) {
    edges.push_back(Edge{pick(rng), pick(rng)});
  }
  return build_csr(n, std::move(edges), opt);
}

Csr small_world(vid_t n, unsigned k, double beta, std::uint64_t seed,
                const BuildOptions& opt) {
  assert(n > 2 * k);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::uniform_int_distribution<vid_t> pick(0, n - 1);
  std::vector<Edge> edges;
  edges.reserve(std::uint64_t{n} * k / 2);
  for (vid_t v = 0; v < n; ++v) {
    for (unsigned j = 1; j <= k / 2; ++j) {
      vid_t w = static_cast<vid_t>((v + j) % n);
      if (uni(rng) < beta) w = pick(rng);  // rewire
      edges.push_back(Edge{v, w});
    }
  }
  return build_csr(n, std::move(edges), opt);
}

Csr layered_citation(vid_t n, unsigned layers, unsigned avg_out,
                     std::uint64_t seed, const BuildOptions& opt) {
  assert(layers >= 2 && n >= layers);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const vid_t per_layer = n / layers;
  std::poisson_distribution<unsigned> out_deg(avg_out);
  std::vector<Edge> edges;
  edges.reserve(std::uint64_t{n} * avg_out);
  for (vid_t v = per_layer; v < n; ++v) {
    // Cite vertices from a recency window of ~4 layers back, geometric-ish
    // preference for recent work.
    const unsigned cites = std::max(1u, out_deg(rng));
    const vid_t window = std::min<vid_t>(v, per_layer * 4);
    for (unsigned j = 0; j < cites; ++j) {
      const double r = uni(rng) * uni(rng);  // bias toward recent
      const vid_t back = static_cast<vid_t>(r * window);
      const vid_t w = v - 1 - back;
      edges.push_back(Edge{v, w});
    }
  }
  return build_csr(n, std::move(edges), opt);
}

Csr barabasi_albert(vid_t n, unsigned attach, std::uint64_t seed,
                    const BuildOptions& opt) {
  assert(n > attach && attach >= 1);
  std::mt19937_64 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(std::uint64_t{n} * attach);
  // Repeated-endpoint list: picking a uniform entry is degree-proportional.
  std::vector<vid_t> endpoints;
  endpoints.reserve(2ull * n * attach);
  for (vid_t v = 0; v <= attach; ++v) {
    for (vid_t w = 0; w < v; ++w) {
      edges.push_back(Edge{v, w});
      endpoints.push_back(v);
      endpoints.push_back(w);
    }
  }
  for (vid_t v = attach + 1; v < n; ++v) {
    for (unsigned j = 0; j < attach; ++j) {
      std::uniform_int_distribution<std::size_t> pick(0, endpoints.size() - 1);
      const vid_t w = endpoints[pick(rng)];
      edges.push_back(Edge{v, w});
      endpoints.push_back(v);
      endpoints.push_back(w);
    }
  }
  return build_csr(n, std::move(edges), opt);
}

}  // namespace xbfs::graph
