// Compressed Sparse Row graph: the storage format XBFS traverses.
//
// Matching the paper's memory-efficiency model (Sec. V-F), row offsets are
// 8-byte edge indices and adjacency entries are 4-byte vertex ids, so a BFS
// that reads every vertex twice and every edge once moves 16|V| + 4|E| bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace xbfs::graph {

using vid_t = std::uint32_t;  ///< vertex id (4 bytes, as in the paper)
using eid_t = std::uint64_t;  ///< edge index (8 bytes, as in the paper)

class Csr {
 public:
  Csr() = default;
  /// Takes ownership of prebuilt arrays; offsets.size() must be n+1 and
  /// offsets.back() must equal cols.size().
  Csr(std::vector<eid_t> offsets, std::vector<vid_t> cols);

  vid_t num_vertices() const { return n_; }
  eid_t num_edges() const { return m_; }  ///< directed adjacency entries
  bool empty() const { return n_ == 0; }

  vid_t degree(vid_t v) const {
    return static_cast<vid_t>(offsets_[v + 1] - offsets_[v]);
  }
  std::span<const vid_t> neighbors(vid_t v) const {
    return {cols_.data() + offsets_[v], degree(v)};
  }
  std::span<vid_t> mutable_neighbors(vid_t v) {
    return {cols_.data() + offsets_[v], degree(v)};
  }

  const std::vector<eid_t>& offsets() const { return offsets_; }
  const std::vector<vid_t>& cols() const { return cols_; }

  double avg_degree() const {
    return n_ == 0 ? 0.0 : static_cast<double>(m_) / n_;
  }
  vid_t max_degree() const;

  /// Structural validation: monotone offsets, in-range adjacency entries.
  /// Returns an empty string when valid, else a diagnostic.
  std::string validate() const;

  /// Deterministic 64-bit structural fingerprint (FNV-1a over n, m, the
  /// offsets array and a bounded sample of adjacency entries), with the
  /// graph's dynamic `epoch` mixed into the hash.  Used as the graph half
  /// of serving-cache keys, so results computed against one graph are
  /// never returned for another.
  ///
  /// Epoch-mixing contract (docs/dynamic.md):
  ///   - equal structure + equal epoch  => equal fingerprint;
  ///   - any applied `dyn::EdgeBatch` bumps the owning store's epoch, so
  ///     the fingerprint changes even when the sampled adjacency entries
  ///     happen to miss the touched edges — serving-cache keys invalidate
  ///     on *every* update, not just structurally visible ones.
  /// Static graphs use the default epoch 0 and keep their old values.
  std::uint64_t fingerprint(std::uint64_t epoch = 0) const;

  /// Bytes of the CSR payload (the paper's "Data size" column).
  std::uint64_t payload_bytes() const {
    return offsets_.size() * sizeof(eid_t) + cols_.size() * sizeof(vid_t);
  }

 private:
  vid_t n_ = 0;
  eid_t m_ = 0;
  std::vector<eid_t> offsets_;  // n+1
  std::vector<vid_t> cols_;     // m
};

/// Continue a Csr::fingerprint-style FNV-1a hash with an extra salt.  The
/// sharded serving tier mixes the partition layout hash
/// (dist::Partition1D::layout_hash) into cache keys this way, giving the
/// same self-invalidation contract for re-shards that epoch mixing gives
/// for update batches: equal fp + equal salt => equal key; any salt change
/// perturbs the key even when the structural fingerprint is unchanged.
inline std::uint64_t mix_fingerprint(std::uint64_t fp, std::uint64_t salt) {
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
  std::uint64_t h = fp;
  for (int i = 0; i < 8; ++i) {
    h = (h ^ (salt & 0xff)) * kFnvPrime;
    salt >>= 8;
  }
  return h;
}

}  // namespace xbfs::graph
