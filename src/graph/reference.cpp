#include "graph/reference.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace xbfs::graph {

std::vector<std::int32_t> reference_bfs(const Csr& g, vid_t src) {
  std::vector<std::int32_t> levels(g.num_vertices(), kUnreached);
  std::deque<vid_t> queue;
  levels[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const vid_t v = queue.front();
    queue.pop_front();
    const std::int32_t next = levels[v] + 1;
    for (vid_t w : g.neighbors(v)) {
      if (levels[w] == kUnreached) {
        levels[w] = next;
        queue.push_back(w);
      }
    }
  }
  return levels;
}

std::vector<vid_t> connected_components(const Csr& g, vid_t* n_components) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> comp(n, static_cast<vid_t>(-1));
  vid_t next_comp = 0;
  std::deque<vid_t> queue;
  for (vid_t s = 0; s < n; ++s) {
    if (comp[s] != static_cast<vid_t>(-1)) continue;
    comp[s] = next_comp;
    queue.push_back(s);
    while (!queue.empty()) {
      const vid_t v = queue.front();
      queue.pop_front();
      for (vid_t w : g.neighbors(v)) {
        if (comp[w] == static_cast<vid_t>(-1)) {
          comp[w] = next_comp;
          queue.push_back(w);
        }
      }
    }
    ++next_comp;
  }
  if (n_components) *n_components = next_comp;
  return comp;
}

std::vector<vid_t> largest_component_vertices(const Csr& g) {
  vid_t n_comp = 0;
  const std::vector<vid_t> comp = connected_components(g, &n_comp);
  std::vector<std::uint64_t> sizes(n_comp, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) ++sizes[comp[v]];
  const vid_t best = static_cast<vid_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<vid_t> out;
  out.reserve(sizes[best]);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (comp[v] == best) out.push_back(v);
  }
  return out;
}

std::string validate_bfs_levels(const Csr& g, vid_t src,
                                const std::vector<std::int32_t>& levels) {
  std::ostringstream os;
  if (levels.size() != g.num_vertices()) {
    return "levels array has wrong size";
  }
  if (levels[src] != 0) {
    os << "source level is " << levels[src] << ", expected 0";
    return os.str();
  }
  const std::vector<std::int32_t> ref = reference_bfs(g, src);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if ((levels[v] == kUnreached) != (ref[v] == kUnreached)) {
      os << "vertex " << v << ": reachability mismatch (got " << levels[v]
         << ", ref " << ref[v] << ")";
      return os.str();
    }
  }
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == kUnreached) continue;
    bool has_pred = levels[v] == 0;
    for (vid_t w : g.neighbors(v)) {
      if (levels[w] == kUnreached) {
        os << "edge (" << v << "," << w << "): reached->unreached";
        return os.str();
      }
      if (std::abs(levels[v] - levels[w]) > 1) {
        os << "edge (" << v << "," << w << ") spans levels " << levels[v]
           << " and " << levels[w];
        return os.str();
      }
      if (levels[w] == levels[v] - 1) has_pred = true;
    }
    if (!has_pred) {
      os << "vertex " << v << " at level " << levels[v]
         << " has no level-" << (levels[v] - 1) << " neighbor";
      return os.str();
    }
  }
  return {};
}

std::string validate_bfs_parents(const Csr& g, vid_t src,
                                 const std::vector<std::int32_t>& levels,
                                 const std::vector<vid_t>& parent) {
  std::ostringstream os;
  if (parent.size() != g.num_vertices()) return "parent array has wrong size";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == kUnreached || v == src) continue;
    const vid_t p = parent[v];
    if (p >= g.num_vertices()) {
      os << "vertex " << v << " has out-of-range parent " << p;
      return os.str();
    }
    if (levels[p] != levels[v] - 1) {
      os << "vertex " << v << " (level " << levels[v] << ") has parent " << p
         << " at level " << levels[p];
      return os.str();
    }
    const auto nb = g.neighbors(v);
    if (std::find(nb.begin(), nb.end(), p) == nb.end()) {
      os << "parent " << p << " of vertex " << v << " is not a neighbor";
      return os.str();
    }
  }
  return {};
}

std::vector<std::uint32_t> reference_sssp(const Csr& g, vid_t src,
                                          std::uint64_t seed,
                                          std::uint32_t max_weight) {
  const vid_t n = g.num_vertices();
  std::vector<std::uint32_t> dist(n, kUnreachedW);
  if (src >= n) return dist;
  using Item = std::pair<std::uint64_t, vid_t>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[src] = 0;
  heap.push({0, src});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // stale heap entry
    for (vid_t w : g.neighbors(v)) {
      const std::uint64_t cand = d + synth_weight(v, w, seed, max_weight);
      if (cand < dist[w]) {
        dist[w] = static_cast<std::uint32_t>(cand);
        heap.push({cand, w});
      }
    }
  }
  return dist;
}

std::vector<vid_t> canonical_components(const Csr& g) {
  std::vector<vid_t> comp = connected_components(g, nullptr);
  // connected_components numbers components by their lowest-id vertex's
  // discovery order; remap each id to that lowest vertex itself.
  std::vector<vid_t> min_vertex;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (comp[v] >= min_vertex.size()) min_vertex.resize(comp[v] + 1, v);
  }
  for (vid_t v = 0; v < g.num_vertices(); ++v) comp[v] = min_vertex[comp[v]];
  return comp;
}

std::vector<std::uint32_t> reference_kcore(const Csr& g, std::uint32_t k) {
  const vid_t n = g.num_vertices();
  std::vector<std::uint64_t> deg(n);
  for (vid_t v = 0; v < n; ++v) deg[v] = g.degree(v);
  std::vector<char> alive(n, 1);
  std::vector<std::uint32_t> cores(n, 0);
  const auto peel_round = [&](std::uint32_t kk) {
    // Remove everything of degree < kk until the survivors stabilize.
    bool removed_any = false;
    bool changed = true;
    while (changed) {
      changed = false;
      for (vid_t v = 0; v < n; ++v) {
        if (!alive[v] || deg[v] >= kk) continue;
        alive[v] = 0;
        changed = true;
        removed_any = true;
        cores[v] = kk == 0 ? 0 : kk - 1;
        for (vid_t w : g.neighbors(v)) {
          if (alive[w] && deg[w] > 0) --deg[w];
        }
      }
    }
    return removed_any;
  };
  if (k > 0) {
    peel_round(k);
    for (vid_t v = 0; v < n; ++v) cores[v] = alive[v] ? 1 : 0;
    return cores;
  }
  // Full decomposition: peel at k = 1, 2, ... until nothing survives;
  // a vertex's coreness is the last k it survived.
  std::uint64_t live = n;
  for (std::uint32_t kk = 1; live > 0; ++kk) {
    peel_round(kk);
    live = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (alive[v]) {
        cores[v] = kk;  // survived the kk-core trim (so coreness >= kk)
        ++live;
      }
    }
  }
  return cores;
}

std::string validate_sssp_distances(const Csr& g, vid_t src,
                                    const std::vector<std::uint32_t>& dist,
                                    std::uint64_t seed,
                                    std::uint32_t max_weight) {
  std::ostringstream os;
  if (dist.size() != g.num_vertices()) return "distance array has wrong size";
  if (src >= g.num_vertices()) return "source out of range";
  if (dist[src] != 0) {
    os << "dist[src] = " << dist[src] << ", want 0";
    return os.str();
  }
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == kUnreachedW) continue;
    bool has_tight_pred = v == src;
    for (vid_t w : g.neighbors(v)) {
      const std::uint32_t wt = synth_weight(v, w, seed, max_weight);
      if (dist[w] != kUnreachedW &&
          static_cast<std::uint64_t>(dist[w]) + wt <
              static_cast<std::uint64_t>(dist[v])) {
        os << "edge (" << w << " -> " << v << ", weight " << wt
           << ") is relaxable: " << dist[w] << " + " << wt << " < " << dist[v];
        return os.str();
      }
      if (dist[w] != kUnreachedW &&
          static_cast<std::uint64_t>(dist[w]) + wt ==
              static_cast<std::uint64_t>(dist[v])) {
        has_tight_pred = true;
      }
    }
    if (!has_tight_pred) {
      os << "reached vertex " << v << " (dist " << dist[v]
         << ") has no tight predecessor";
      return os.str();
    }
  }
  // Reachability must match the unweighted reachability set.
  const std::vector<std::int32_t> levels = reference_bfs(g, src);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const bool reached = dist[v] != kUnreachedW;
    const bool reachable = levels[v] != kUnreached;
    if (reached != reachable) {
      os << "vertex " << v << (reached ? " reached" : " unreached")
         << " but BFS says " << (reachable ? "reachable" : "unreachable");
      return os.str();
    }
  }
  return {};
}

std::string validate_components(const Csr& g, const std::vector<vid_t>& comp) {
  std::ostringstream os;
  if (comp.size() != g.num_vertices()) return "component array has wrong size";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t w : g.neighbors(v)) {
      if (comp[v] != comp[w]) {
        os << "edge (" << v << ", " << w << ") spans labels " << comp[v]
           << " and " << comp[w];
        return os.str();
      }
    }
  }
  // Same-label vertices must actually be connected: the labeling must not
  // merge reference components.  Each submitted label may map to exactly
  // one reference component.
  const std::vector<vid_t> ref = connected_components(g, nullptr);
  std::unordered_map<vid_t, vid_t> label_to_ref;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto [it, inserted] = label_to_ref.emplace(comp[v], ref[v]);
    if (!inserted && it->second != ref[v]) {
      os << "label " << comp[v] << " spans two disconnected components";
      return os.str();
    }
  }
  return {};
}

std::string validate_kcore(const Csr& g, const std::vector<std::uint32_t>& cores,
                           std::uint32_t k) {
  std::ostringstream os;
  if (cores.size() != g.num_vertices()) return "core array has wrong size";
  const std::vector<std::uint32_t> want = reference_kcore(g, k);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (cores[v] != want[v]) {
      os << (k == 0 ? "coreness" : "membership") << " of vertex " << v
         << " is " << cores[v] << ", want " << want[v];
      return os.str();
    }
  }
  return {};
}

}  // namespace xbfs::graph
