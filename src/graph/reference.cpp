#include "graph/reference.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace xbfs::graph {

std::vector<std::int32_t> reference_bfs(const Csr& g, vid_t src) {
  std::vector<std::int32_t> levels(g.num_vertices(), kUnreached);
  std::deque<vid_t> queue;
  levels[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const vid_t v = queue.front();
    queue.pop_front();
    const std::int32_t next = levels[v] + 1;
    for (vid_t w : g.neighbors(v)) {
      if (levels[w] == kUnreached) {
        levels[w] = next;
        queue.push_back(w);
      }
    }
  }
  return levels;
}

std::vector<vid_t> connected_components(const Csr& g, vid_t* n_components) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> comp(n, static_cast<vid_t>(-1));
  vid_t next_comp = 0;
  std::deque<vid_t> queue;
  for (vid_t s = 0; s < n; ++s) {
    if (comp[s] != static_cast<vid_t>(-1)) continue;
    comp[s] = next_comp;
    queue.push_back(s);
    while (!queue.empty()) {
      const vid_t v = queue.front();
      queue.pop_front();
      for (vid_t w : g.neighbors(v)) {
        if (comp[w] == static_cast<vid_t>(-1)) {
          comp[w] = next_comp;
          queue.push_back(w);
        }
      }
    }
    ++next_comp;
  }
  if (n_components) *n_components = next_comp;
  return comp;
}

std::vector<vid_t> largest_component_vertices(const Csr& g) {
  vid_t n_comp = 0;
  const std::vector<vid_t> comp = connected_components(g, &n_comp);
  std::vector<std::uint64_t> sizes(n_comp, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) ++sizes[comp[v]];
  const vid_t best = static_cast<vid_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<vid_t> out;
  out.reserve(sizes[best]);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (comp[v] == best) out.push_back(v);
  }
  return out;
}

std::string validate_bfs_levels(const Csr& g, vid_t src,
                                const std::vector<std::int32_t>& levels) {
  std::ostringstream os;
  if (levels.size() != g.num_vertices()) {
    return "levels array has wrong size";
  }
  if (levels[src] != 0) {
    os << "source level is " << levels[src] << ", expected 0";
    return os.str();
  }
  const std::vector<std::int32_t> ref = reference_bfs(g, src);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if ((levels[v] == kUnreached) != (ref[v] == kUnreached)) {
      os << "vertex " << v << ": reachability mismatch (got " << levels[v]
         << ", ref " << ref[v] << ")";
      return os.str();
    }
  }
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == kUnreached) continue;
    bool has_pred = levels[v] == 0;
    for (vid_t w : g.neighbors(v)) {
      if (levels[w] == kUnreached) {
        os << "edge (" << v << "," << w << "): reached->unreached";
        return os.str();
      }
      if (std::abs(levels[v] - levels[w]) > 1) {
        os << "edge (" << v << "," << w << ") spans levels " << levels[v]
           << " and " << levels[w];
        return os.str();
      }
      if (levels[w] == levels[v] - 1) has_pred = true;
    }
    if (!has_pred) {
      os << "vertex " << v << " at level " << levels[v]
         << " has no level-" << (levels[v] - 1) << " neighbor";
      return os.str();
    }
  }
  return {};
}

std::string validate_bfs_parents(const Csr& g, vid_t src,
                                 const std::vector<std::int32_t>& levels,
                                 const std::vector<vid_t>& parent) {
  std::ostringstream os;
  if (parent.size() != g.num_vertices()) return "parent array has wrong size";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == kUnreached || v == src) continue;
    const vid_t p = parent[v];
    if (p >= g.num_vertices()) {
      os << "vertex " << v << " has out-of-range parent " << p;
      return os.str();
    }
    if (levels[p] != levels[v] - 1) {
      os << "vertex " << v << " (level " << levels[v] << ") has parent " << p
         << " at level " << levels[p];
      return os.str();
    }
    const auto nb = g.neighbors(v);
    if (std::find(nb.begin(), nb.end(), p) == nb.end()) {
      os << "parent " << p << " of vertex " << v << " is not a neighbor";
      return os.str();
    }
  }
  return {};
}

}  // namespace xbfs::graph
