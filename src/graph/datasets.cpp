#include "graph/datasets.h"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "graph/generators.h"
#include "graph/rmat.h"

namespace xbfs::graph {

namespace {

unsigned log2_floor(std::uint64_t v) {
  return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

}  // namespace

const std::vector<DatasetMeta>& all_datasets() {
  static const std::vector<DatasetMeta> kMeta = {
      {DatasetId::LJ, "LJ", "LiveJournal", 4036538, 69362378,
       "RMAT (A=.57,B=.19,C=.19) social-skew, edge factor 17"},
      {DatasetId::UP, "UP", "USpatent", 6009555, 33037896,
       "layered citation graph, avg out-degree 5, long diameter"},
      {DatasetId::OR, "OR", "Orkut", 3072627, 234370166,
       "RMAT social-skew with mild quadrant weights, edge factor 76"},
      {DatasetId::DB, "DB", "Dblp", 425957, 2099732,
       "Watts-Strogatz small world (k=10, beta=0.3)"},
      {DatasetId::R23, "R23", "Rmat23", 838809, 134214744,
       "Graph500 RMAT, edge factor 160 (dense, few levels)"},
      {DatasetId::R25, "R25", "Rmat25", 33554432, 536866130,
       "Graph500 RMAT scale 25, edge factor 16"},
  };
  return kMeta;
}

const DatasetMeta& dataset_meta(DatasetId id) {
  for (const DatasetMeta& m : all_datasets()) {
    if (m.id == id) return m;
  }
  throw std::logic_error("unknown dataset id");
}

DatasetId dataset_from_name(const std::string& short_name) {
  for (const DatasetMeta& m : all_datasets()) {
    if (m.short_name == short_name) return m.id;
  }
  throw std::invalid_argument("unknown dataset: " + short_name);
}

Csr make_dataset(DatasetId id, unsigned scale_divisor, std::uint64_t seed) {
  assert(scale_divisor >= 1);
  const DatasetMeta& meta = dataset_meta(id);
  const std::uint64_t n64 =
      std::max<std::uint64_t>(1024, meta.paper_vertices / scale_divisor);
  const vid_t n = static_cast<vid_t>(n64);

  switch (id) {
    case DatasetId::LJ: {
      RmatParams p;
      p.scale = log2_floor(n64);
      p.edge_factor = 17;  // 69.4M / 4.04M
      p.seed = seed;
      return rmat_csr(p);
    }
    case DatasetId::UP:
      // ~5.5 directed citations per patent; layered recency structure gives
      // the longest BFS of Table II (cit-Patents' effective diameter is in
      // the low twenties) without an artificial path-graph depth.
      return layered_citation(n, /*layers=*/60, /*avg_out=*/5, seed);
    case DatasetId::OR: {
      RmatParams p;
      p.scale = log2_floor(n64);
      p.edge_factor = 76;  // 234M / 3.07M
      p.a = 0.45;
      p.b = 0.22;
      p.c = 0.22;  // Orkut is less skewed than LJ
      p.seed = seed;
      return rmat_csr(p);
    }
    case DatasetId::DB:
      return small_world(n, /*k=*/10, /*beta=*/0.3, seed);
    case DatasetId::R23: {
      RmatParams p;
      // Paper's "Rmat23" row: 838809 vertices, 134.2M edges => effective
      // edge factor ~160 on ~2^20 vertices after trimming.
      p.scale = log2_floor(n64);
      p.edge_factor = 160;
      p.seed = seed;
      return rmat_csr(p);
    }
    case DatasetId::R25: {
      RmatParams p;
      p.scale = log2_floor(n64);
      p.edge_factor = 16;
      p.seed = seed;
      return rmat_csr(p);
    }
  }
  throw std::logic_error("unreachable");
}

}  // namespace xbfs::graph
