// Graph500-specification BFS result validation (the five checks of the
// official benchmark, applied to a parent array):
//   1. the BFS tree is a tree rooted at the source (each reached vertex has
//      a parent chain terminating at the root);
//   2. tree edges connect vertices whose BFS levels differ by exactly one;
//   3. every edge of the input graph connects vertices whose levels differ
//      by at most one;
//   4. the tree spans exactly the source's connected component;
//   5. the root's parent is itself and no unreached vertex has a parent.
//
// Used by examples/graph500_runner and the test suite; complements the
// level-based validators in graph/reference.h.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.h"

namespace xbfs::graph {

/// Validate a parent array per the Graph500 rules.  Returns empty on
/// success, else a diagnostic naming the violated rule.
std::string validate_graph500(const Csr& g, vid_t src,
                              const std::vector<vid_t>& parent);

/// Derive levels from a parent tree (root = 0); kUnreached for vertices
/// outside the tree, or an empty vector if the tree contains a cycle or an
/// out-of-range parent.
std::vector<std::int32_t> levels_from_parents(const Csr& g, vid_t src,
                                              const std::vector<vid_t>& parent);

/// Graph500-style validation of a *levels* array, without running a
/// reference traversal: O(|V| + |E|) and no allocation proportional to the
/// frontier.  Returns empty on success, else a diagnostic.
///
/// The four rules are a complete oracle — they hold iff `levels` equals the
/// exact hop distances from `src`:
///   1. levels[src] == 0 and no other vertex claims level 0 (and every
///      entry is kUnreached or in [0, |V|));
///   2. no edge joins a reached and an unreached vertex;
///   3. every edge between reached vertices spans at most one level;
///   4. every reached vertex at level k > 0 has a neighbor at level k-1.
/// (<=: distances satisfy all four.  =>: rules 1+4 give an edge path of
/// length k to any level-k vertex so dist <= level; rule 3 gives
/// level(v) <= level(u)+1 along any path from src, so by induction
/// level <= dist; rule 2 forces exactly the source's component reached.)
///
/// The serving engine uses this as its cheap corruption detector on the
/// retry path: any single corrupted entry violates one of the rules because
/// exact-distance labelings are unique.
std::string validate_levels_graph500(const Csr& g, vid_t src,
                                     const std::vector<std::int32_t>& levels);

}  // namespace xbfs::graph
