// Graph500-specification BFS result validation (the five checks of the
// official benchmark, applied to a parent array):
//   1. the BFS tree is a tree rooted at the source (each reached vertex has
//      a parent chain terminating at the root);
//   2. tree edges connect vertices whose BFS levels differ by exactly one;
//   3. every edge of the input graph connects vertices whose levels differ
//      by at most one;
//   4. the tree spans exactly the source's connected component;
//   5. the root's parent is itself and no unreached vertex has a parent.
//
// Used by examples/graph500_runner and the test suite; complements the
// level-based validators in graph/reference.h.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.h"

namespace xbfs::graph {

/// Validate a parent array per the Graph500 rules.  Returns empty on
/// success, else a diagnostic naming the violated rule.
std::string validate_graph500(const Csr& g, vid_t src,
                              const std::vector<vid_t>& parent);

/// Derive levels from a parent tree (root = 0); kUnreached for vertices
/// outside the tree, or an empty vector if the tree contains a cycle or an
/// out-of-range parent.
std::vector<std::int32_t> levels_from_parents(const Csr& g, vid_t src,
                                              const std::vector<vid_t>& parent);

}  // namespace xbfs::graph
