#include "graph/rmat.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <random>

namespace xbfs::graph {

std::vector<Edge> rmat_edges(const RmatParams& p) {
  assert(p.a + p.b + p.c < 1.0 + 1e-9);
  const vid_t n = vid_t{1} << p.scale;
  const std::uint64_t m = std::uint64_t{p.edge_factor} << p.scale;

  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    vid_t u = 0, v = 0;
    double a = p.a, b = p.b, c = p.c;
    for (unsigned bit = p.scale; bit-- > 0;) {
      const double r = uni(rng);
      if (r < a) {
        // upper-left: no bits set
      } else if (r < a + b) {
        v |= vid_t{1} << bit;
      } else if (r < a + b + c) {
        u |= vid_t{1} << bit;
      } else {
        u |= vid_t{1} << bit;
        v |= vid_t{1} << bit;
      }
      if (p.noise > 0) {
        // Graph500-style weight perturbation per recursion level.
        const double f = 1.0 - p.noise / 2.0 + p.noise * uni(rng);
        a *= f;
        b *= f;
        c *= f;
        const double d = std::max(1e-12, 1.0 - (p.a + p.b + p.c)) * f;
        const double norm = a + b + c + d;
        a /= norm;
        b /= norm;
        c /= norm;
      }
    }
    edges.push_back(Edge{u, v});
  }

  if (p.permute_labels) {
    std::vector<vid_t> perm(n);
    std::iota(perm.begin(), perm.end(), vid_t{0});
    std::shuffle(perm.begin(), perm.end(), rng);
    for (Edge& e : edges) {
      e.u = perm[e.u];
      e.v = perm[e.v];
    }
  }
  return edges;
}

Csr rmat_csr(const RmatParams& params, const BuildOptions& opt) {
  const vid_t n = vid_t{1} << params.scale;
  return build_csr(n, rmat_edges(params), opt);
}

}  // namespace xbfs::graph
