// Flush observability sinks on SIGINT / SIGTERM.
//
// The metrics table, Chrome trace, run report and flight recorder all
// flush at process exit — which a fatal signal skips entirely, so a
// killed serving run used to lose its whole observability output.
// install_signal_flush() chains a handler that flushes every enabled
// sink once, then restores the default disposition and re-raises so the
// process still dies with the original signal status.
//
// Each sink's enable() path installs this automatically; calling it
// repeatedly is a no-op.  The handler calls non-async-signal-safe code
// (the flushes allocate and lock) — a deliberate trade-off for a
// diagnostics path whose alternative is losing the data; the one-shot
// guard at least prevents re-entrant flushing.
#pragma once

namespace xbfs::obs {

/// Install the SIGINT/SIGTERM flush handler (idempotent, thread-safe).
void install_signal_flush();

}  // namespace xbfs::obs
