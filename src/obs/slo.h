// SLO / error-budget engine for the serving stack.
//
// An SLO is a sliding-window objective over query outcomes: an
// availability target (fraction of queries that must terminate
// Completed) and, optionally, a latency target (completed queries
// slower than latency_ms at the configured percentile count against the
// budget too).  The engine tracks, per named scope (one per serving
// engine instance) and per GCD lane inside it:
//
//   * a bucketed sliding window (window_ms / buckets) of good / bad /
//     slow outcomes, from which the current availability and the
//     error-budget *burn rate* are derived — burn 1.0 means the budget
//     is being consumed exactly as fast as the objective allows,
//     burn >> 1 means an incident;
//   * lifetime totals, from which the cumulative budget_remaining is
//     derived (1.0 = untouched, <= 0 = exhausted).
//
// burn_rate = (bad + slow fraction of the window) / (1 - availability
// objective).  The degradation ladder consults prefer_cheap(): when the
// window burn exceeds burn_fast or the lifetime budget is exhausted, the
// server starts queries on a cheaper rung proactively instead of
// spending device attempts it can no longer afford.
//
// Enabled by XBFS_SLO=<spec>, e.g.
//   XBFS_SLO="availability=0.999,latency_ms=50,window_ms=60000"
// Scopes snapshot their config at creation; record()/snapshot() take the
// caller's clock (slo_now_ms() for production, explicit values in tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xbfs::obs {

struct SloConfig {
  double availability = 0.999;  ///< objective: fraction of good outcomes
  double latency_ms = 0.0;      ///< 0 = no latency objective
  double window_ms = 60000.0;   ///< sliding-window span
  unsigned buckets = 12;        ///< window granularity
  double burn_fast = 1.0;       ///< prefer_cheap when window burn >= this

  /// Parse "k=v,k=v" (unknown keys ignored; malformed values keep
  /// defaults).  Keys: availability, latency_ms, window_ms, buckets,
  /// burn_fast.
  static SloConfig parse(const std::string& spec);
};

/// Window (or lifetime) aggregate for one lane.
struct SloWindow {
  std::uint64_t good = 0;
  std::uint64_t bad = 0;   ///< failed / expired outcomes
  std::uint64_t slow = 0;  ///< completed but over the latency objective
  double availability = 1.0;
  double burn_rate = 0.0;
};

struct SloSnapshot {
  bool active = false;
  SloConfig cfg;
  std::uint64_t total_good = 0;
  std::uint64_t total_bad = 0;
  std::uint64_t total_slow = 0;
  /// Fraction of the lifetime error budget left; < 0 = overspent.
  double budget_remaining = 1.0;
  bool budget_exhausted = false;
  SloWindow window;               ///< all lanes combined
  std::vector<SloWindow> per_gcd;
  /// Human-readable lane names (same indexing as per_gcd; empty string for
  /// unlabeled lanes).  The sharded router labels its per-shard-replica
  /// lanes "s<shard>r<replica>" so burn-rate dashboards name the replica,
  /// not a flat slot index.
  std::vector<std::string> lane_labels;
};

/// One named objective scope (e.g. "serve", "serve-chaos") with per-GCD
/// lanes.  Thread-safe.
class SloScope {
 public:
  SloScope(std::string name, SloConfig cfg, unsigned num_gcds);

  SloScope(const SloScope&) = delete;
  SloScope& operator=(const SloScope&) = delete;

  const std::string& name() const { return name_; }
  const SloConfig& config() const { return cfg_; }

  /// Record one terminal outcome.  `gcd` >= num_gcds attributes to the
  /// aggregate only (cache hits / expiries with no device lane).
  /// `latency_ms` only matters for ok outcomes under a latency objective.
  void record(unsigned gcd, bool ok, double latency_ms, double now_ms);

  SloSnapshot snapshot(double now_ms) const;

  /// Should the dispatcher proactively take a cheaper rung right now?
  bool prefer_cheap(double now_ms) const;

  /// Grow the per-GCD lane count (scopes are shared across servers).
  void ensure_gcds(unsigned num_gcds);

  /// Name a lane (grows the lane list if needed); names ride along in
  /// SloSnapshot::lane_labels.
  void label_lane(unsigned lane, std::string label);

 private:
  struct Bucket {
    std::int64_t epoch = -1;  ///< bucket index this slot currently holds
    std::uint64_t good = 0, bad = 0, slow = 0;
  };
  struct Lane {
    std::vector<Bucket> buckets;
    std::uint64_t total_good = 0, total_bad = 0, total_slow = 0;
  };

  void record_lane(Lane& lane, bool ok, bool slow, std::int64_t epoch);
  SloWindow window_of(const Lane& lane, std::int64_t epoch) const;
  double bucket_ms() const { return cfg_.window_ms / cfg_.buckets; }

  const std::string name_;
  const SloConfig cfg_;
  mutable std::mutex mu_;
  Lane all_;
  std::vector<std::unique_ptr<Lane>> gcds_;
  std::vector<std::string> lane_labels_;  ///< sparse; sized on label_lane()
};

class SloEngine {
 public:
  /// Process-wide engine; reads XBFS_SLO on first use.
  static SloEngine& global();

  SloEngine();

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void configure(const SloConfig& cfg);
  void configure(const std::string& spec) { configure(SloConfig::parse(spec)); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  SloConfig config() const;

  /// Create-or-get a named scope (config snapshotted from the engine at
  /// creation; an existing scope grows its lanes to `num_gcds`).  The
  /// reference stays valid for the engine's lifetime.
  SloScope& scope(const std::string& name, unsigned num_gcds);
  /// Names of all scopes created so far.
  std::vector<std::string> scope_names() const;
  /// Existing scope or nullptr.
  SloScope* find(const std::string& name) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  SloConfig cfg_;
  std::map<std::string, std::unique_ptr<SloScope>> scopes_;
};

/// Monotonic milliseconds shared by every SLO call site in the process —
/// scopes are shared across server instances, so the clock must be too.
double slo_now_ms();

}  // namespace xbfs::obs
