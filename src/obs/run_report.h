// Versioned machine-readable run reports — the artifact a regression
// harness diffs.  One RunRecord captures a single traversal: which tool
// produced it, the graph, the end-to-end result, one row per BFS level
// (mirroring core::LevelStats / dist::DistLevelStats exactly) and the
// per-kernel aggregate the paper's Fig. 5 breakdown uses.
//
// The process-wide ReportSession collects every record produced while
// XBFS_RUN_REPORT=<path> is set and writes a single JSON document
// ({"schema":"xbfs-run-report","version":1,"runs":[...]}) when it flushes
// (process exit, or an explicit flush()).  Benches can stamp contextual
// key/values (dataset name, scale divisor) that are merged into each
// subsequently added record, so per-run code stays context-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace xbfs::obs {

/// Current value of the "version" field in emitted reports.  Bump on any
/// backwards-incompatible schema change and note it in
/// docs/observability.md.
inline constexpr int kRunReportVersion = 1;
inline constexpr const char* kRunReportSchema = "xbfs-run-report";

/// One BFS level.  The dist runner fills local_ms/comm_ms (has_comm=true);
/// single-device runners fill fetch_kb/kernels.
struct ReportLevelRow {
  std::int64_t level = 0;
  std::string strategy;
  bool nfg = false;
  std::uint64_t frontier = 0;
  std::uint64_t edges = 0;
  double ratio = 0.0;
  double time_ms = 0.0;
  double fetch_kb = 0.0;
  std::uint64_t kernels = 0;
  bool has_comm = false;
  double local_ms = 0.0;
  double comm_ms = 0.0;
};

/// Per-kernel aggregate over the run (mirrors Profiler::KernelTotal).
struct ReportKernelRow {
  std::string kernel;
  double runtime_ms = 0.0;
  double fetch_kb = 0.0;
  std::uint64_t launches = 0;
};

struct RunRecord {
  std::string tool;       ///< "xbfs", "simple_scan", "dist_bfs", ...
  std::string algorithm = "bfs";
  std::uint64_t n = 0;    ///< vertices
  std::uint64_t m = 0;    ///< directed edge entries
  std::int64_t source = -1;
  std::uint32_t depth = 0;
  double total_ms = 0.0;
  double gteps = 0.0;
  std::uint64_t edges_traversed = 0;
  /// Stringified configuration / context (alpha, stream_mode, dataset...).
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<ReportLevelRow> levels;
  std::vector<ReportKernelRow> kernels;
};

/// Write the full report document for `runs`.
void write_run_report_json(std::ostream& os,
                           const std::vector<RunRecord>& runs);

class ReportSession {
 public:
  /// The process-wide session; reads XBFS_RUN_REPORT on first use and
  /// flushes at process exit.
  static ReportSession& global();

  ReportSession();
  ~ReportSession();

  ReportSession(const ReportSession&) = delete;
  ReportSession& operator=(const ReportSession&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void enable(std::string path = "");
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  const std::string& output_path() const { return path_; }

  /// Append a record (no-op when disabled).  Session context key/values are
  /// merged into the record's config at this point.
  void add(RunRecord r);

  /// Contextual key/value stamped onto every record added afterwards
  /// (benches set the dataset name here).  Re-setting a key overwrites it.
  void set_context(const std::string& key, const std::string& value);
  void clear_context();

  std::vector<RunRecord> snapshot() const;
  std::size_t size() const;
  void clear();

  /// Write the JSON document to output_path(); safe to call repeatedly.
  void flush();

 private:
  std::atomic<bool> enabled_{false};
  std::string path_;
  mutable std::mutex mu_;
  std::vector<RunRecord> runs_;
  std::vector<std::pair<std::string, std::string>> context_;
};

}  // namespace xbfs::obs
