#include "obs/query_trace.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/json_writer.h"
#include "obs/trace.h"

namespace xbfs::obs {

void QueryTrace::event(double wall_us, std::string kind, std::string detail) {
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back({next_seq_++, wall_us, std::move(kind), std::move(detail)});
}

void QueryTrace::rung(RungAttribution a) {
  std::lock_guard<std::mutex> lk(mu_);
  rungs_.push_back(std::move(a));
}

void QueryTrace::absorb(const QueryTrace& other) {
  // Copy out under the source lock first: absorb() may merge the same
  // scratch trace into many waiters, and lock order must stay one-at-a-time.
  std::vector<QueryTraceEvent> ev;
  std::vector<RungAttribution> rg;
  {
    std::lock_guard<std::mutex> lk(other.mu_);
    ev = other.events_;
    rg = other.rungs_;
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : ev) {
    e.seq = next_seq_++;
    events_.push_back(std::move(e));
  }
  for (auto& r : rg) rungs_.push_back(std::move(r));
}

std::vector<QueryTraceEvent> QueryTrace::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::vector<RungAttribution> QueryTrace::rungs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rungs_;
}

int QueryTrace::find_event(const std::string& kind) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < events_.size(); ++i)
    if (events_[i].kind == kind) return static_cast<int>(i);
  return -1;
}

void QueryTrace::write_json(std::ostream& os, const std::string& status) const {
  std::vector<QueryTraceEvent> ev;
  std::vector<RungAttribution> rg;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ev = events_;
    rg = rungs_;
  }
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "xbfs-query-trace");
  w.kv("version", std::uint64_t{1});
  w.kv("id", id_);
  w.kv("source", source_);
  if (!status.empty()) w.kv("status", status);
  w.key("events").begin_array();
  for (const auto& e : ev) {
    w.begin_object();
    w.kv("seq", e.seq);
    w.kv("wall_us", e.wall_us);
    w.kv("kind", e.kind);
    if (!e.detail.empty()) w.kv("detail", e.detail);
    w.end_object();
  }
  w.end_array();
  w.key("rungs").begin_array();
  for (const auto& r : rg) {
    w.begin_object();
    w.kv("engine", r.engine);
    w.kv("outcome", r.outcome);
    w.kv("gcd", r.gcd);
    w.kv("attempt", r.attempt);
    w.kv("rung", r.rung);
    w.kv("shared_members", r.shared_members);
    w.kv("launches", r.launches);
    w.kv("memcpys", r.memcpys);
    w.kv("fetch_bytes", r.fetch_bytes);
    w.kv("bytes_read", r.bytes_read);
    w.kv("atomics", r.atomics);
    w.kv("l2_hit_pct", r.l2_hit_pct);
    w.kv("modelled_us", r.modelled_us);
    w.kv("wall_start_us", r.wall_start_us);
    w.kv("wall_dur_us", r.wall_dur_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string QueryTrace::to_json(const std::string& status) const {
  std::ostringstream os;
  write_json(os, status);
  return os.str();
}

void emit_query_spans(TraceSession& session, const QueryTrace& trace,
                      const std::string& status) {
  if (!session.enabled()) return;
  const auto ev = trace.events();
  if (ev.empty()) return;
  const auto rg = trace.rungs();

  double start = ev.front().wall_us, stop = ev.front().wall_us;
  for (const auto& e : ev) {
    start = std::min(start, e.wall_us);
    stop = std::max(stop, e.wall_us);
  }

  Span parent;
  parent.name = "query " + std::to_string(trace.id());
  parent.category = "query";
  parent.track = "query";
  parent.pid = 0;
  parent.wall_start_us = start;
  parent.wall_dur_us = stop - start;
  parent.attr("trace_id", std::uint64_t{trace.id()});
  parent.attr("source", std::uint64_t{trace.source()});
  if (!status.empty()) parent.attr("status", status);
  parent.attr("events", static_cast<std::uint64_t>(ev.size()));
  parent.attr("rungs", static_cast<std::uint64_t>(rg.size()));
  session.complete(std::move(parent));

  for (const auto& r : rg) {
    Span child;
    child.name = r.engine + (r.outcome == "ok" ? "" : " [" + r.outcome + "]");
    child.category = "query-rung";
    child.track = "query";
    child.pid = 0;
    child.wall_start_us = r.wall_start_us;
    child.wall_dur_us = r.wall_dur_us;
    child.attr("trace_id", std::uint64_t{trace.id()});
    child.attr("attempt", std::uint64_t{r.attempt});
    child.attr("rung", std::uint64_t{r.rung});
    child.attr("gcd", std::uint64_t{r.gcd});
    child.attr("outcome", r.outcome);
    child.attr("shared_members", std::uint64_t{r.shared_members});
    child.attr("launches", r.launches);
    child.attr("fetch_kb", static_cast<double>(r.fetch_bytes) / 1024.0);
    child.attr("atomics", r.atomics);
    child.attr("l2_hit_pct", r.l2_hit_pct);
    child.attr("modelled_us", r.modelled_us);
    session.complete(std::move(child));
  }
}

}  // namespace xbfs::obs
