#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "obs/json_writer.h"
#include "obs/signal_flush.h"
#include "obs/trace_export.h"

namespace xbfs::obs {

namespace {

double steady_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread stack of open span ids, for parent/depth assignment.
thread_local std::vector<std::uint64_t> t_span_stack;

}  // namespace

Span& Span::attr(std::string key, double value) {
  attrs.push_back({std::move(key), json_number(value), true});
  return *this;
}

Span& Span::attr(std::string key, std::uint64_t value) {
  attrs.push_back({std::move(key), std::to_string(value), true});
  return *this;
}

Span& Span::attr(std::string key, std::int64_t value) {
  attrs.push_back({std::move(key), std::to_string(value), true});
  return *this;
}

const SpanAttr* Span::find_attr(const std::string& key) const {
  for (const SpanAttr& a : attrs) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

TraceSession& TraceSession::global() {
  static TraceSession session;
  return session;
}

TraceSession::TraceSession() : wall_epoch_us_(steady_now_us()) {
  if (const char* env = std::getenv("XBFS_TRACE"); env && *env) {
    enable(env);
  }
}

TraceSession::~TraceSession() { flush(); }

void TraceSession::enable(std::string path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!path.empty()) path_ = std::move(path);
  }
  enabled_.store(true, std::memory_order_relaxed);
  install_signal_flush();
}

double TraceSession::wall_now_us() const {
  return steady_now_us() - wall_epoch_us_;
}

std::uint64_t TraceSession::begin(std::string name, std::string category,
                                  std::string track) {
  if (!enabled()) return 0;
  Span s;
  s.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  s.parent = t_span_stack.empty() ? 0 : t_span_stack.back();
  s.depth = static_cast<int>(t_span_stack.size());
  s.name = std::move(name);
  s.category = std::move(category);
  s.track = std::move(track);
  s.wall_start_us = wall_now_us();
  const std::uint64_t id = s.id;
  t_span_stack.push_back(id);
  std::lock_guard<std::mutex> lock(mu_);
  open_.emplace(id, std::move(s));
  return id;
}

void TraceSession::attr(std::uint64_t id, std::string key, std::string value) {
  if (id == 0 || !enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = open_.find(id); it != open_.end()) {
    it->second.attr(std::move(key), std::move(value));
  }
}

void TraceSession::attr(std::uint64_t id, std::string key, double value) {
  if (id == 0 || !enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = open_.find(id); it != open_.end()) {
    it->second.attr(std::move(key), value);
  }
}

void TraceSession::end(std::uint64_t id) {
  if (id == 0) return;
  // Pop this id from the thread's stack if it is the innermost open span;
  // mismatched ends (possible across threads) simply skip the stack fix-up.
  if (!t_span_stack.empty() && t_span_stack.back() == id) {
    t_span_stack.pop_back();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  Span s = std::move(it->second);
  open_.erase(it);
  s.wall_dur_us = wall_now_us() - s.wall_start_us;
  done_.push_back(std::move(s));
}

void TraceSession::complete(Span s) {
  if (!enabled()) return;
  if (s.id == 0) s.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (s.wall_start_us == 0.0 && s.wall_dur_us == 0.0) {
    s.wall_start_us = wall_now_us();
  }
  std::lock_guard<std::mutex> lock(mu_);
  done_.push_back(std::move(s));
}

void TraceSession::instant(std::string name, std::string category,
                           std::string track, int pid, double sim_ts_us,
                           std::vector<SpanAttr> attrs) {
  if (!enabled()) return;
  Span s;
  s.phase = 'i';
  s.name = std::move(name);
  s.category = std::move(category);
  s.track = std::move(track);
  s.pid = pid;
  s.sim_start_us = sim_ts_us;
  s.sim_dur_us = 0.0;
  s.attrs = std::move(attrs);
  complete(std::move(s));
}

void TraceSession::set_process_label(int pid, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  pid_labels_[pid] = std::move(label);
}

std::vector<Span> TraceSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

std::map<int, std::string> TraceSession::process_labels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pid_labels_;
}

std::size_t TraceSession::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_.size();
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  done_.clear();
  open_.clear();
}

void TraceSession::flush() {
  std::vector<Span> spans;
  std::map<int, std::string> labels;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty() || done_.empty()) return;
    spans = done_;
    labels = pid_labels_;
    path = path_;
  }
  std::ofstream out(path);
  if (!out) return;
  write_chrome_trace(out, spans, labels);
}

}  // namespace xbfs::obs
