#include "obs/trace_export.h"

#include <map>
#include <ostream>
#include <utility>

#include "obs/json_writer.h"

namespace xbfs::obs {

namespace {

void write_args(JsonWriter& w, const Span& s, bool used_sim_clock) {
  w.key("args").begin_object();
  for (const SpanAttr& a : s.attrs) {
    if (a.numeric) {
      w.key(a.key).raw(a.value);
    } else {
      w.kv(a.key, a.value);
    }
  }
  if (used_sim_clock && s.wall_dur_us > 0.0) {
    w.kv("wall_us", s.wall_dur_us);
  }
  if (s.parent != 0) w.kv("parent", static_cast<std::uint64_t>(s.parent));
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const std::map<int, std::string>& pid_labels) {
  // Assign a stable tid per (pid, track) pair, in first-appearance order.
  std::map<std::pair<int, std::string>, int> tids;
  for (const Span& s : spans) {
    tids.emplace(std::make_pair(s.pid, s.track),
                 static_cast<int>(tids.size()) + 1);
  }

  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Metadata: name the process and thread lanes.  Every pid that appears
  // in the trace gets a process_name so Perfetto never renders a bare
  // number: registered labels ("GCD 0", ...) win, pid 0 defaults to
  // "host", and anything else falls back to "device <pid>".
  std::map<int, std::string> labels = pid_labels;
  for (const auto& [key, tid] : tids) {
    (void)tid;
    const int pid = key.first;
    if (labels.count(pid)) continue;
    labels.emplace(pid,
                   pid == 0 ? "host" : "device " + std::to_string(pid));
  }
  for (const auto& [pid, label] : labels) {
    w.begin_object();
    w.kv("name", "process_name").kv("ph", "M").kv("pid", pid).kv("tid", 0);
    w.key("args").begin_object().kv("name", label).end_object();
    w.end_object();
  }
  for (const auto& [key, tid] : tids) {
    w.begin_object();
    w.kv("name", "thread_name").kv("ph", "M").kv("pid", key.first)
        .kv("tid", tid);
    w.key("args").begin_object().kv("name", key.second).end_object();
    w.end_object();
  }

  for (const Span& s : spans) {
    const bool use_sim = s.sim_start_us >= 0.0;
    const double ts = use_sim ? s.sim_start_us : s.wall_start_us;
    const double dur = use_sim ? s.sim_dur_us : s.wall_dur_us;
    const int tid = tids.at(std::make_pair(s.pid, s.track));
    w.begin_object();
    w.kv("name", s.name).kv("cat", s.category);
    w.kv("ph", std::string(1, s.phase));
    w.kv("ts", ts);
    if (s.phase == 'X') w.kv("dur", dur);
    if (s.phase == 'i') w.kv("s", "t");
    w.kv("pid", s.pid).kv("tid", tid);
    write_args(w, s, use_sim);
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace xbfs::obs
