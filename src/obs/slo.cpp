#include "obs/slo.h"

#include <chrono>
#include <cmath>
#include <cstdlib>

namespace xbfs::obs {

namespace {

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const double g_slo_epoch_ms = steady_ms();

}  // namespace

double slo_now_ms() { return steady_ms() - g_slo_epoch_ms; }

SloConfig SloConfig::parse(const std::string& spec) {
  SloConfig cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = item.substr(0, eq);
    const double val = std::atof(item.c_str() + eq + 1);
    if (key == "availability" && val > 0.0 && val < 1.0) {
      cfg.availability = val;
    } else if (key == "latency_ms" && val >= 0.0) {
      cfg.latency_ms = val;
    } else if (key == "window_ms" && val > 0.0) {
      cfg.window_ms = val;
    } else if (key == "buckets" && val >= 1.0) {
      cfg.buckets = static_cast<unsigned>(val);
    } else if (key == "burn_fast" && val > 0.0) {
      cfg.burn_fast = val;
    }
  }
  return cfg;
}

SloScope::SloScope(std::string name, SloConfig cfg, unsigned num_gcds)
    : name_(std::move(name)), cfg_(cfg) {
  all_.buckets.resize(cfg_.buckets);
  gcds_.reserve(num_gcds);
  for (unsigned i = 0; i < num_gcds; ++i) {
    gcds_.push_back(std::make_unique<Lane>());
    gcds_.back()->buckets.resize(cfg_.buckets);
  }
}

void SloScope::ensure_gcds(unsigned num_gcds) {
  std::lock_guard<std::mutex> lk(mu_);
  while (gcds_.size() < num_gcds) {
    gcds_.push_back(std::make_unique<Lane>());
    gcds_.back()->buckets.resize(cfg_.buckets);
  }
}

void SloScope::label_lane(unsigned lane, std::string label) {
  std::lock_guard<std::mutex> lk(mu_);
  while (gcds_.size() <= lane) {
    gcds_.push_back(std::make_unique<Lane>());
    gcds_.back()->buckets.resize(cfg_.buckets);
  }
  if (lane_labels_.size() <= lane) lane_labels_.resize(lane + 1);
  lane_labels_[lane] = std::move(label);
}

void SloScope::record_lane(Lane& lane, bool ok, bool slow,
                           std::int64_t epoch) {
  Bucket& b = lane.buckets[static_cast<std::size_t>(epoch) %
                           lane.buckets.size()];
  if (b.epoch != epoch) {
    b.epoch = epoch;
    b.good = b.bad = b.slow = 0;
  }
  if (!ok) {
    ++b.bad;
    ++lane.total_bad;
  } else if (slow) {
    ++b.slow;
    ++lane.total_slow;
  } else {
    ++b.good;
    ++lane.total_good;
  }
}

void SloScope::record(unsigned gcd, bool ok, double latency_ms,
                      double now_ms) {
  const bool slow =
      ok && cfg_.latency_ms > 0.0 && latency_ms > cfg_.latency_ms;
  const auto epoch = static_cast<std::int64_t>(now_ms / bucket_ms());
  std::lock_guard<std::mutex> lk(mu_);
  record_lane(all_, ok, slow, epoch);
  if (gcd < gcds_.size()) record_lane(*gcds_[gcd], ok, slow, epoch);
}

SloWindow SloScope::window_of(const Lane& lane, std::int64_t epoch) const {
  SloWindow w;
  const std::int64_t lo = epoch - static_cast<std::int64_t>(cfg_.buckets) + 1;
  for (const Bucket& b : lane.buckets) {
    if (b.epoch < lo || b.epoch > epoch) continue;  // stale or future slot
    w.good += b.good;
    w.bad += b.bad;
    w.slow += b.slow;
  }
  const std::uint64_t total = w.good + w.bad + w.slow;
  const std::uint64_t violations = w.bad + w.slow;
  w.availability =
      total == 0 ? 1.0
                 : 1.0 - static_cast<double>(violations) /
                             static_cast<double>(total);
  const double allowed = 1.0 - cfg_.availability;
  w.burn_rate = total == 0 || allowed <= 0.0
                    ? 0.0
                    : (static_cast<double>(violations) /
                       static_cast<double>(total)) /
                          allowed;
  return w;
}

SloSnapshot SloScope::snapshot(double now_ms) const {
  const auto epoch = static_cast<std::int64_t>(now_ms / bucket_ms());
  SloSnapshot s;
  s.active = true;
  s.cfg = cfg_;
  std::lock_guard<std::mutex> lk(mu_);
  s.total_good = all_.total_good;
  s.total_bad = all_.total_bad;
  s.total_slow = all_.total_slow;
  const std::uint64_t total = s.total_good + s.total_bad + s.total_slow;
  const std::uint64_t violations = s.total_bad + s.total_slow;
  const double allowed = 1.0 - cfg_.availability;
  // Lifetime budget: the objective allows `allowed * total` violations;
  // remaining = 1 - consumed fraction.  With zero traffic nothing is
  // spent.
  s.budget_remaining =
      total == 0 || allowed <= 0.0
          ? 1.0
          : 1.0 - static_cast<double>(violations) /
                      (allowed * static_cast<double>(total));
  s.budget_exhausted = total != 0 && s.budget_remaining <= 0.0;
  s.window = window_of(all_, epoch);
  s.per_gcd.reserve(gcds_.size());
  for (const auto& lane : gcds_) s.per_gcd.push_back(window_of(*lane, epoch));
  s.lane_labels = lane_labels_;
  s.lane_labels.resize(s.per_gcd.size());
  return s;
}

bool SloScope::prefer_cheap(double now_ms) const {
  const SloSnapshot s = snapshot(now_ms);
  return s.budget_exhausted || s.window.burn_rate >= cfg_.burn_fast;
}

SloEngine& SloEngine::global() {
  static SloEngine g;
  return g;
}

SloEngine::SloEngine() {
  if (const char* env = std::getenv("XBFS_SLO"); env && *env)
    configure(std::string(env));
}

void SloEngine::configure(const SloConfig& cfg) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cfg_ = cfg;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

SloConfig SloEngine::config() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cfg_;
}

SloScope& SloEngine::scope(const std::string& name, unsigned num_gcds) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = scopes_.find(name);
  if (it == scopes_.end()) {
    it = scopes_
             .emplace(name,
                      std::make_unique<SloScope>(name, cfg_, num_gcds))
             .first;
    return *it->second;
  }
  SloScope& s = *it->second;
  lk.unlock();
  s.ensure_gcds(num_gcds);
  return s;
}

std::vector<std::string> SloEngine::scope_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(scopes_.size());
  for (const auto& [k, v] : scopes_) {
    (void)v;
    out.push_back(k);
  }
  return out;
}

SloScope* SloEngine::find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = scopes_.find(name);
  return it == scopes_.end() ? nullptr : it->second.get();
}

}  // namespace xbfs::obs
