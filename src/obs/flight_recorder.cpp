#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

#include "hipsim/chk_point.h"
#include "obs/json_writer.h"
#include "obs/signal_flush.h"

namespace xbfs::obs {

namespace {

double steady_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void copy_trunc(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder g;
  return g;
}

FlightRecorder::FlightRecorder() : wall_epoch_us_(steady_us()) {
  std::size_t cap = 4096;
  if (const char* env = std::getenv("XBFS_FLIGHT_EVENTS")) {
    const long v = std::atol(env);
    if (v > 0) cap = static_cast<std::size_t>(v);
  }
  if (const char* env = std::getenv("XBFS_FLIGHT"); env && *env) {
    enable(env, cap);
  } else {
    // Keep a ring allocated so programmatic enable("") still records.
    slots_ = std::vector<Slot>(round_up_pow2(cap));
    mask_ = slots_.size() - 1;
  }
}

FlightRecorder::~FlightRecorder() {
  // Leave a post-mortem behind even on clean exit: the common failure
  // mode for a flight recorder is discovering after the fact that nothing
  // was written.
  if (!enabled() || recorded() == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    last_dump_ms_ = -1.0;  // the exit dump is never rate-limited away
  }
  trigger("exit");
}

void FlightRecorder::enable(std::string path, std::size_t capacity) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!path.empty()) path_ = std::move(path);
    if (capacity != 0 || slots_.empty()) {
      const std::size_t cap = round_up_pow2(capacity ? capacity : 4096);
      if (cap != slots_.size()) {
        slots_ = std::vector<Slot>(cap);
        mask_ = cap - 1;
        head_.store(0, std::memory_order_relaxed);
      }
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
  install_signal_flush();
}

double FlightRecorder::wall_now_us() const {
  return steady_us() - wall_epoch_us_;
}

void FlightRecorder::record(const char* cat, const char* name,
                            std::string_view detail, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c) {
  if (!enabled() || slots_.empty()) return;
  // SchedCheck yield points (sim::chk_point) bracket every phase of the
  // seqlock write: claim, invalidate, payload, publish.  The protocol is
  // lock-free, so a writer may legally be suspended at any of them — the
  // model checker uses exactly that to drive readers through the
  // mid-overwrite windows the ready-word re-check must survive.
  sim::chk_point("flight.record.claim");
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[(seq - 1) & mask_];
  // Invalidate before writing so a concurrent reader can't accept a
  // half-overwritten payload; release on the final store publishes it.
  sim::chk_point("flight.record.invalidate", seq & mask_);
  s.ready.store(0, std::memory_order_release);
  sim::chk_point("flight.record.payload", seq & mask_);
  s.ev.seq = seq;
  s.ev.wall_us = wall_now_us();
  s.ev.a = a;
  s.ev.b = b;
  s.ev.c = c;
  copy_trunc(s.ev.cat, sizeof(s.ev.cat), cat ? cat : "");
  copy_trunc(s.ev.name, sizeof(s.ev.name), name ? name : "");
  copy_trunc(s.ev.detail, sizeof(s.ev.detail), detail);
  sim::chk_point("flight.record.publish", seq & mask_);
  s.ready.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  if (slots_.empty()) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (head == 0) return out;
  const std::uint64_t cap = slots_.size();
  const std::uint64_t lo = head > cap ? head - cap + 1 : 1;
  out.reserve(static_cast<std::size_t>(head - lo + 1));
  for (std::uint64_t seq = lo; seq <= head; ++seq) {
    const Slot& s = slots_[(seq - 1) & mask_];
    sim::chk_point("flight.snapshot.check", (seq - 1) & mask_);
    if (s.ready.load(std::memory_order_acquire) != seq) continue;
    sim::chk_point("flight.snapshot.copy", (seq - 1) & mask_);
    FlightEvent ev = s.ev;
    // Seqlock re-check: if a lapping writer touched the slot while we
    // copied, the payload may be torn — discard it.
    sim::chk_point("flight.snapshot.recheck", (seq - 1) & mask_);
    if (s.ready.load(std::memory_order_acquire) != seq) continue;
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t cap = slots_.size();
  return head > cap ? head - cap : 0;
}

void FlightRecorder::set_min_dump_gap_ms(double ms) {
  std::lock_guard<std::mutex> lk(mu_);
  min_dump_gap_ms_ = ms;
}

std::uint64_t FlightRecorder::register_context(
    std::string key, std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t token = next_ctx_token_++;
  contexts_.emplace(token, std::make_pair(std::move(key), std::move(fn)));
  return token;
}

void FlightRecorder::unregister_context(std::uint64_t token) {
  std::lock_guard<std::mutex> lk(mu_);
  contexts_.erase(token);
}

void FlightRecorder::dump(std::ostream& os, const std::string& reason) const {
  const auto events = snapshot();
  // Sample providers outside the event copy but under the registry lock;
  // providers take their own component locks, which must not be held
  // while a component calls unregister_context (they are not).
  std::vector<std::pair<std::string, std::string>> ctx;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ctx.reserve(contexts_.size());
    for (const auto& [token, kv] : contexts_) {
      (void)token;
      std::string v;
      try {
        v = kv.second();
      } catch (...) {
        v.clear();
      }
      ctx.emplace_back(kv.first, std::move(v));
    }
  }

  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "xbfs-flight");
  w.kv("version", std::uint64_t{1});
  w.kv("reason", reason);
  w.kv("wall_us", wall_now_us());
  w.kv("recorded", recorded());
  w.kv("dropped", dropped());
  w.kv("capacity", static_cast<std::uint64_t>(slots_.size()));
  w.key("events").begin_array();
  for (const auto& e : events) {
    w.begin_object();
    w.kv("seq", e.seq);
    w.kv("wall_us", e.wall_us);
    w.kv("cat", std::string_view(e.cat));
    w.kv("name", std::string_view(e.name));
    if (e.detail[0] != '\0') w.kv("detail", std::string_view(e.detail));
    w.kv("a", e.a);
    w.kv("b", e.b);
    if (e.c != 0) w.kv("c", e.c);
    w.end_object();
  }
  w.end_array();
  w.key("context").begin_object();
  for (const auto& [k, v] : ctx) {
    w.key(k);
    if (v.empty())
      w.raw("null");
    else
      w.raw(v);
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

bool FlightRecorder::trigger(const char* reason) {
  if (!enabled()) return false;
  std::string path;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (path_.empty()) return false;
    const double now_ms = wall_now_us() / 1000.0;
    if (last_dump_ms_ >= 0.0 && now_ms - last_dump_ms_ < min_dump_gap_ms_)
      return false;
    last_dump_ms_ = now_ms;
    path = path_;
  }
  record("flight", "dump", reason ? reason : "");
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  dump(os, reason ? reason : "");
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FlightRecorder::clear() {
  head_.store(0, std::memory_order_relaxed);
  for (auto& s : slots_) s.ready.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  last_dump_ms_ = -1.0;
}

}  // namespace xbfs::obs
