// Process-wide counter/gauge/histogram registry.
//
// Instruments are created on first lookup and live for the process, so hot
// paths can cache the returned reference and update it lock-free (counters
// and gauges are single atomics; histograms take a spin-sized mutex).  The
// registry absorbs the simulator's KernelCounters rollups (hipsim reports
// launches, fetched bytes, atomics, modelled kernel time) and the XBFS
// policy's per-strategy decision counts.
//
// Enabled by XBFS_METRICS=stderr|stdout|<path>: the global registry dumps a
// sorted text table to that sink at process exit.  Programmatic use
// (enable()/write_text()/write_json()) works regardless of the env var.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xbfs::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Streaming summary histogram: exact count/sum/min/max plus a bounded
/// log-bucketed distribution (quarter-octave buckets, ~9% relative error)
/// so long-running consumers — notably the serving engine's latency
/// tracking — can report p50/p95/p99 without storing every sample.
class Histogram {
 public:
  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;
  /// Approximate quantile (q in [0,1]) from the log-bucketed counts,
  /// clamped to the exact observed [min, max].  0.0 when empty.
  double percentile(double q) const;
  void reset();

 private:
  static std::size_t bucket_of(double v);
  static double bucket_mid(std::size_t idx);

  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> buckets_;  ///< allocated on first observe()
};

class MetricsRegistry {
 public:
  /// The process-wide registry; reads XBFS_METRICS on first use and, when
  /// set, dumps the text table to that sink at process exit.
  static MetricsRegistry& global();

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Whether instrumentation sites should bother recording.  Lookup still
  /// works when disabled (tests flip this freely).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// `sink`: "stderr", "stdout" or a file path for the exit dump ("" keeps
  /// the current sink).
  void enable(std::string sink = "");
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Sorted `name value` lines; histograms expand to .count/.sum/.min/.max.
  void write_text(std::ostream& os) const;
  /// One flat JSON object keyed by metric name.
  void write_json(std::ostream& os) const;

  /// Zero every instrument (references stay valid).
  void reset();
  /// Write the text table to the configured sink (no-op without one).
  void flush();

 private:
  std::atomic<bool> enabled_{false};
  std::string sink_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace xbfs::obs
