// Always-on lock-free flight recorder: a bounded ring of recent
// structured events from every layer (hipsim faults, breaker transitions,
// scheduler decisions, dynamic-graph epochs), kept cheap enough to leave
// enabled in production and dumped as a post-mortem snapshot when
// something goes wrong.
//
// Recording is wait-free for writers: a slot is claimed with one
// fetch_add on the head sequence, the payload is written, and the slot's
// `ready` word is release-stored with the claiming sequence.  Readers
// (dump/snapshot) copy slots and re-check `ready` afterwards — a torn
// slot (overwritten mid-copy by a lapping writer) fails the re-check and
// is discarded, seqlock-style.  Old events are overwritten silently; the
// dump reports how many were dropped.
//
// Enabled by XBFS_FLIGHT=<path> (ring capacity via XBFS_FLIGHT_EVENTS,
// default 4096).  trigger(reason) writes the snapshot to the path —
// rate-limited so a fault storm produces one dump, not thousands — and is
// invoked by the serving stack on FaultInjected escalation (a query
// exhausting its resilience budget), Graph500 validation failure and
// deadline misses, by the signal-flush handler, and on demand.  Context
// providers registered by live components (queue depths, breaker states,
// in-flight trace ids) are sampled at dump time and embedded in the
// snapshot.  The destructor writes a final "exit" dump so an enabled run
// always leaves a file behind.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xbfs::obs {

/// One ring entry.  Fixed-size, trivially copyable: the strings are
/// truncating char arrays so recording never allocates.
struct FlightEvent {
  std::uint64_t seq = 0;   ///< 1-based global sequence
  double wall_us = 0.0;    ///< recorder wall clock (steady, since ctor)
  std::uint64_t a = 0;     ///< conventionally: trace/query id
  std::uint64_t b = 0;     ///< conventionally: gcd / slot / epoch
  std::uint64_t c = 0;     ///< free
  char cat[12] = {};       ///< layer: "serve", "sim", "dyn", "flight"
  char name[28] = {};      ///< event name: "kernel_fault", "breaker_open"
  char detail[72] = {};    ///< truncated free-form detail
};

class FlightRecorder {
 public:
  /// Process-wide recorder; reads XBFS_FLIGHT / XBFS_FLIGHT_EVENTS on
  /// first use and dumps an "exit" snapshot at process teardown.
  static FlightRecorder& global();

  FlightRecorder();
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Enable recording.  `path` is where trigger() dumps ("" keeps the
  /// current path; dumps are skipped while it is empty).  `capacity`
  /// resizes the ring (0 keeps current; rounded up to a power of two).
  /// Call before traffic: resizing is not safe under concurrent record().
  void enable(std::string path = "", std::size_t capacity = 0);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  const std::string& output_path() const { return path_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Record one event.  Wait-free, allocation-free; no-op when disabled.
  void record(const char* cat, const char* name, std::string_view detail = {},
              std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0);

  /// Register a context provider sampled at dump time; the callable must
  /// return a valid JSON fragment (object/array/scalar).  Returns a token
  /// for unregister_context.  Providers must outlive their registration —
  /// components unregister in their shutdown path.
  std::uint64_t register_context(std::string key,
                                 std::function<std::string()> fn);
  void unregister_context(std::uint64_t token);

  /// Write the post-mortem snapshot (ring contents + sampled context).
  void dump(std::ostream& os, const std::string& reason) const;
  /// Dump to output_path(), rate-limited (one dump per `min_dump_gap_ms`,
  /// default 200 ms; the first trigger always fires).  Returns whether a
  /// file was written.
  bool trigger(const char* reason);

  /// Ordered copy of the currently-readable ring contents (tests, dump).
  std::vector<FlightEvent> snapshot() const;
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const;
  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  void set_min_dump_gap_ms(double ms);

  /// Forget all recorded events (between independent tests).
  void clear();

  /// Wall-clock microseconds since this recorder was constructed.
  double wall_now_us() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> ready{0};  ///< seq once the payload is valid
    FlightEvent ev;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> head_{0};  ///< total events ever claimed
  std::atomic<std::uint64_t> dumps_{0};
  std::vector<Slot> slots_;             ///< power-of-two ring
  std::uint64_t mask_ = 0;
  double wall_epoch_us_ = 0.0;

  mutable std::mutex mu_;  ///< path_, contexts_, dump pacing
  std::string path_;
  double min_dump_gap_ms_ = 200.0;
  double last_dump_ms_ = -1.0;
  std::uint64_t next_ctx_token_ = 1;
  std::map<std::uint64_t, std::pair<std::string, std::function<std::string()>>>
      contexts_;
};

}  // namespace xbfs::obs
