// Chrome trace-event JSON export: renders recorded spans so any run opens
// directly in chrome://tracing or https://ui.perfetto.dev.
//
// Mapping:
//   * span.pid            -> trace "pid" (one process group per simulated
//                            device; labelled via process_name metadata)
//   * span.track          -> trace "tid" (one lane per track name, labelled
//                            via thread_name metadata)
//   * complete spans      -> ph:"X" with ts/dur in microseconds
//   * instant events      -> ph:"i", scope "t"
//   * span attributes     -> "args" (numeric attributes emitted as numbers)
// Timestamps prefer the modelled simulator clock when the span carries one
// (sim_start_us >= 0); the wall-clock interval is then preserved in
// args.wall_us so neither timeline is lost.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace xbfs::obs {

/// Write `spans` as a Chrome trace-event JSON object
/// ({"traceEvents":[...]}).  `pid_labels` names the process lanes.
void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans,
                        const std::map<int, std::string>& pid_labels = {});

}  // namespace xbfs::obs
