// Span-based run tracing.
//
// A Span is a named interval with a category, a track (one horizontal lane
// in the trace viewer), free-form attributes and *dual* timestamps: the
// wall clock (steady_clock, for host-side phases) and the modelled
// simulator clock (for kernel launches, BFS levels, comm phases — anything
// whose duration is an analytic model output rather than elapsed host
// time).  Spans from different simulated devices are kept apart by a
// per-device `pid` lane, so a distributed run renders one process group
// per GCD in Perfetto.
//
// Two recording styles:
//   * begin()/end() (or the ScopedSpan RAII wrapper) — nested host-side
//     spans; nesting is tracked per thread, and children record their
//     parent id and depth.
//   * complete()/instant() — flat events with explicit modelled
//     timestamps, used by the simulator and the BFS runners.
//
// The process-wide session is enabled by the XBFS_TRACE=<path> environment
// variable (the file is written as Chrome trace-event JSON when the
// session flushes — at process exit or on an explicit flush()) or
// programmatically via enable().  Every recording call is a no-op after a
// single relaxed-atomic load when the session is disabled, so tracing off
// means tracing free.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace xbfs::obs {

/// One span attribute.  Values are stored as strings; `numeric` marks
/// values that should be emitted as JSON numbers rather than quoted.
struct SpanAttr {
  std::string key;
  std::string value;
  bool numeric = false;
};

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = top-level
  int depth = 0;             ///< nesting depth at begin() time
  std::string name;
  std::string category;      ///< e.g. "kernel", "level", "comm", "phase"
  std::string track;         ///< viewer lane, e.g. "stream:default", "bfs"
  int pid = 0;               ///< device lane (0 = host/coordinator)
  char phase = 'X';          ///< 'X' complete span, 'i' instant event

  // Wall clock, microseconds since session start (steady_clock).
  double wall_start_us = 0.0;
  double wall_dur_us = 0.0;
  // Modelled simulator clock, microseconds; negative = not applicable.
  double sim_start_us = -1.0;
  double sim_dur_us = -1.0;

  std::vector<SpanAttr> attrs;

  Span& attr(std::string key, std::string value) {
    attrs.push_back({std::move(key), std::move(value), false});
    return *this;
  }
  Span& attr(std::string key, double value);
  Span& attr(std::string key, std::uint64_t value);
  Span& attr(std::string key, std::int64_t value);
  Span& attr(std::string key, bool value) {
    attrs.push_back({std::move(key), value ? "true" : "false", true});
    return *this;
  }
  /// First attribute with `key`, or nullptr.
  const SpanAttr* find_attr(const std::string& key) const;
};

class TraceSession {
 public:
  /// The process-wide session; reads XBFS_TRACE on first use and flushes
  /// (writing the Chrome trace file) at process exit.
  static TraceSession& global();

  /// Constructs a session configured from the environment (tests construct
  /// their own instead of touching the global one).
  TraceSession();
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Enable recording; `path` (may be empty) is where flush() writes the
  /// Chrome trace JSON.
  void enable(std::string path = "");
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  const std::string& output_path() const { return path_; }

  // --- nested host-side spans ---------------------------------------------
  /// Open a span on this thread; returns its id (0 when disabled).
  std::uint64_t begin(std::string name, std::string category,
                      std::string track = "host");
  /// Attach an attribute to a still-open span.
  void attr(std::uint64_t id, std::string key, std::string value);
  void attr(std::uint64_t id, std::string key, double value);
  /// Close the span: records wall duration and moves it to the finished
  /// list.  Unknown / already-closed ids are ignored.
  void end(std::uint64_t id);

  // --- flat events with explicit modelled timestamps ----------------------
  /// Record a finished span verbatim (id assigned if 0).
  void complete(Span s);
  /// Zero-duration marker (strategy decisions, policy flips).
  void instant(std::string name, std::string category, std::string track,
               int pid, double sim_ts_us, std::vector<SpanAttr> attrs = {});

  /// Label a pid lane ("GCD 0", "host") for the exporter's process names.
  void set_process_label(int pid, std::string label);

  /// Wall-clock microseconds since this session was constructed.
  double wall_now_us() const;

  /// Copy of all finished spans (tests, exporter).
  std::vector<Span> snapshot() const;
  std::map<int, std::string> process_labels() const;
  std::size_t size() const;
  /// Drop all recorded spans (between independent measurements).
  void clear();

  /// Write the Chrome trace JSON to output_path(); no-op without a path or
  /// without spans having been recorded.  Safe to call repeatedly.
  void flush();

 private:
  std::atomic<bool> enabled_{false};
  std::string path_;
  std::atomic<std::uint64_t> next_id_{1};
  double wall_epoch_us_ = 0.0;  ///< steady_clock at construction

  mutable std::mutex mu_;
  std::vector<Span> done_;
  std::map<std::uint64_t, Span> open_;
  std::map<int, std::string> pid_labels_;
};

/// RAII wrapper over TraceSession::begin/end.
class ScopedSpan {
 public:
  ScopedSpan(TraceSession& session, std::string name, std::string category,
             std::string track = "host")
      : session_(session),
        id_(session.begin(std::move(name), std::move(category),
                          std::move(track))) {}
  ~ScopedSpan() { session_.end(id_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return id_; }
  void attr(std::string key, std::string value) {
    session_.attr(id_, std::move(key), std::move(value));
  }
  void attr(std::string key, double value) {
    session_.attr(id_, std::move(key), value);
  }

 private:
  TraceSession& session_;
  std::uint64_t id_;
};

}  // namespace xbfs::obs
