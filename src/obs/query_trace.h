// Query-scoped trace contexts: the causal record of one serving request.
//
// A QueryTrace is allocated at admission, rides the PendingQuery through
// the admission queue, scheduler batching and dispatch, and is returned on
// the QueryResult.  It accumulates two kinds of data:
//
//   * events — causally ordered (seq, wall_us, kind, detail) markers for
//     every decision the serving stack makes on the query's behalf:
//     admission, batching, each dispatch attempt, injected faults,
//     retries, degradation-rung changes, validation, cache publish and
//     the terminal status.
//   * rungs — per-attempt kernel-counter attribution (RungAttribution):
//     the hipsim KernelCounters rollup (launches, fetched bytes, atomics,
//     modelled time, L2-hit proxy) sliced to exactly the device work this
//     query consumed, including the shared-sweep case where one 64-way
//     traversal serves many queries (shared_members > 1).
//
// Batched execution shares one traversal among many waiters, so the
// server records batch-level work into a scratch QueryTrace and absorb()s
// it into every waiter's trace at delivery; wall timestamps keep the
// merged record ordered.
//
// The record serialises to a stable JSON schema ("xbfs-query-trace", see
// docs/observability.md) and can be emitted into the Chrome trace as one
// parent query span with per-rung child spans (emit_query_spans).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xbfs::obs {

class TraceSession;

/// One causally-ordered event in a query's life.  `seq` orders events
/// recorded into the same trace; after absorb() the wall clock orders the
/// merged record.
struct QueryTraceEvent {
  std::uint64_t seq = 0;
  double wall_us = 0.0;  ///< caller-supplied wall clock (server epoch)
  std::string kind;      ///< "admitted", "attempt", "fault", "retry", ...
  std::string detail;    ///< free-form context ("engine=xbfs gcd=0", ...)
};

/// Kernel-counter attribution for one dispatch attempt (one degradation
/// rung, one sweep stage, or one host-fallback run).
struct RungAttribution {
  std::string engine;           ///< TraversalEngine::name / "sweep" / host
  std::string outcome = "ok";   ///< "ok" | "fault" | "corrupt" | "error"
  unsigned gcd = 0;             ///< device lane that ran it
  unsigned attempt = 0;         ///< 1-based attempt number within the query
  unsigned rung = 0;            ///< degradation-ladder index (0 = preferred)
  unsigned shared_members = 1;  ///< queries sharing this work (sweep > 1)
  std::uint64_t launches = 0;   ///< kernel launches attributed
  std::uint64_t memcpys = 0;    ///< device copies attributed
  std::uint64_t fetch_bytes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t atomics = 0;
  double l2_hit_pct = 0.0;      ///< modelled L2 hit proxy over the attempt
  double modelled_us = 0.0;     ///< modelled device time consumed
  double wall_start_us = 0.0;   ///< attempt start, server wall clock
  double wall_dur_us = 0.0;     ///< attempt wall duration
};

/// The per-query record.  Thread-safe: the scheduler, worker pool and
/// delivering thread may append concurrently.
class QueryTrace {
 public:
  QueryTrace(std::uint64_t id, std::uint64_t source)
      : id_(id), source_(source) {}

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  std::uint64_t id() const { return id_; }
  std::uint64_t source() const { return source_; }

  /// Append a causal event.
  void event(double wall_us, std::string kind, std::string detail = {});
  /// Append one attempt's counter attribution.
  void rung(RungAttribution a);
  /// Merge another record (batch-level scratch trace, per-source
  /// resolution log) into this one, re-sequencing its events after ours.
  void absorb(const QueryTrace& other);

  std::vector<QueryTraceEvent> events() const;
  std::vector<RungAttribution> rungs() const;
  /// First event of `kind`, or nullptr (copy-free convenience for tests
  /// is not possible under the mutex, so this returns an index; -1 = none).
  int find_event(const std::string& kind) const;

  /// Serialise as one "xbfs-query-trace" JSON object.
  void write_json(std::ostream& os, const std::string& status = {}) const;
  std::string to_json(const std::string& status = {}) const;

 private:
  const std::uint64_t id_;
  const std::uint64_t source_;
  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 0;
  std::vector<QueryTraceEvent> events_;
  std::vector<RungAttribution> rungs_;
};

using QueryTracePtr = std::shared_ptr<QueryTrace>;

/// Emit the query into `session` as a parent 'X' span on the host lane
/// (track "query") covering first..last event, with one child span per
/// rung carrying the counter attribution as span attributes.
void emit_query_spans(TraceSession& session, const QueryTrace& trace,
                      const std::string& status);

}  // namespace xbfs::obs
