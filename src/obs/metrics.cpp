#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/json_writer.h"
#include "obs/signal_flush.h"

namespace xbfs::obs {

// Quarter-octave buckets (ratio 2^0.25 between edges) spanning 2^-32 ..
// 2^32: 4 buckets per power of two over 64 octaves, plus one underflow
// bucket for v <= 2^-32 (index 0, catches zeros/negatives too).
namespace {
constexpr int kBucketsPerOctave = 4;
constexpr int kMinExp = -32;  // v <= 2^kMinExp lands in bucket 0
constexpr int kMaxExp = 32;
constexpr std::size_t kNumBuckets =
    static_cast<std::size_t>((kMaxExp - kMinExp) * kBucketsPerOctave) + 2;
}  // namespace

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  const double pos = (std::log2(v) - kMinExp) * kBucketsPerOctave;
  if (pos <= 0.0) return 0;
  const std::size_t idx = static_cast<std::size_t>(pos) + 1;
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::bucket_mid(std::size_t idx) {
  if (idx == 0) return 0.0;
  // Geometric midpoint of the bucket's [lo, lo * 2^0.25) range.
  const double lo_exp =
      kMinExp + static_cast<double>(idx - 1) / kBucketsPerOctave;
  return std::exp2(lo_exp + 0.5 / kBucketsPerOctave);
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[bucket_of(v)];
}

double Histogram::percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample (1-based, nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(bucket_mid(i), min_, max_);
    }
  }
  return max_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}
double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}
double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}
double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}
double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}
void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  buckets_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::MetricsRegistry() {
  if (const char* env = std::getenv("XBFS_METRICS"); env && *env) {
    enable(env);
  }
}

MetricsRegistry::~MetricsRegistry() { flush(); }

void MetricsRegistry::enable(std::string sink) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sink.empty()) sink_ = std::move(sink);
  }
  enabled_.store(true, std::memory_order_relaxed);
  // A killed run must not lose the whole table (satellite: SIGINT/SIGTERM
  // flush, not only atexit).
  install_signal_flush();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::write_text(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    os << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << name << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ".count " << h->count() << '\n'
       << name << ".sum " << h->sum() << '\n'
       << name << ".min " << h->min() << '\n'
       << name << ".max " << h->max() << '\n'
       << name << ".p50 " << h->percentile(0.50) << '\n'
       << name << ".p95 " << h->percentile(0.95) << '\n'
       << name << ".p99 " << h->percentile(0.99) << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  for (const auto& [name, g] : gauges_) w.kv(name, g->value());
  for (const auto& [name, h] : histograms_) {
    w.kv(name + ".count", h->count());
    w.kv(name + ".sum", h->sum());
    w.kv(name + ".min", h->min());
    w.kv(name + ".max", h->max());
    w.kv(name + ".p50", h->percentile(0.50));
    w.kv(name + ".p95", h->percentile(0.95));
    w.kv(name + ".p99", h->percentile(0.99));
  }
  w.end_object();
  os << '\n';
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

void MetricsRegistry::flush() {
  std::string sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
  }
  if (sink.empty()) return;
  if (sink == "stderr") {
    write_text(std::cerr);
  } else if (sink == "stdout") {
    write_text(std::cout);
  } else {
    std::ofstream out(sink);
    if (out) write_text(out);
  }
}

}  // namespace xbfs::obs
