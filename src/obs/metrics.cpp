#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "obs/json_writer.h"

namespace xbfs::obs {

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}
double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}
double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}
double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}
double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}
void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::MetricsRegistry() {
  if (const char* env = std::getenv("XBFS_METRICS"); env && *env) {
    enable(env);
  }
}

MetricsRegistry::~MetricsRegistry() { flush(); }

void MetricsRegistry::enable(std::string sink) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sink.empty()) sink_ = std::move(sink);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::write_text(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    os << name << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << name << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ".count " << h->count() << '\n'
       << name << ".sum " << h->sum() << '\n'
       << name << ".min " << h->min() << '\n'
       << name << ".max " << h->max() << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  for (const auto& [name, g] : gauges_) w.kv(name, g->value());
  for (const auto& [name, h] : histograms_) {
    w.kv(name + ".count", h->count());
    w.kv(name + ".sum", h->sum());
    w.kv(name + ".min", h->min());
    w.kv(name + ".max", h->max());
  }
  w.end_object();
  os << '\n';
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

void MetricsRegistry::flush() {
  std::string sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
  }
  if (sink.empty()) return;
  if (sink == "stderr") {
    write_text(std::cerr);
  } else if (sink == "stdout") {
    write_text(std::cout);
  } else {
    std::ofstream out(sink);
    if (out) write_text(out);
  }
}

}  // namespace xbfs::obs
