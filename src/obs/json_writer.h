// Minimal streaming JSON writer shared by the trace exporter and the run
// report.  Deliberately tiny: objects/arrays are emitted eagerly to the
// ostream, the writer only tracks whether a comma is due.  No dependencies
// beyond the standard library, so obs stays at the bottom of the link graph.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace xbfs::obs {

/// Escape a string for inclusion inside JSON double quotes.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double as JSON: finite values verbatim, non-finite as null
/// (JSON has no inf/nan; emitting them silently corrupts the document).
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() {
    comma();
    os_ << '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    os_ << '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  /// Object member key; follow with exactly one value (or begin_*).
  JsonWriter& key(std::string_view k) {
    comma();
    os_ << '"' << json_escape(k) << "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    os_ << '"' << json_escape(v) << '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    os_ << json_number(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  /// Emit a pre-rendered JSON fragment verbatim (caller guarantees validity).
  JsonWriter& raw(std::string_view fragment) {
    comma();
    os_ << fragment;
    return *this;
  }

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void comma() {
    if (pending_value_) {
      // A key was just written; this token is its value — no comma.
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }

  std::ostream& os_;
  std::vector<bool> stack_;  ///< per open container: "an element was written"
  bool pending_value_ = false;
};

}  // namespace xbfs::obs
