#include "obs/signal_flush.h"

#include <atomic>
#include <csignal>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace xbfs::obs {

namespace {

std::atomic<bool> g_installed{false};
std::atomic<bool> g_flushed{false};

void flush_all_once() {
  if (g_flushed.exchange(true)) return;
  MetricsRegistry::global().flush();
  TraceSession::global().flush();
  ReportSession::global().flush();
  FlightRecorder::global().trigger("signal");
}

void on_signal(int sig) {
  flush_all_once();
  // Die with the original signal status so callers still see the kill.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_signal_flush() {
  if (g_installed.exchange(true)) return;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

}  // namespace xbfs::obs
