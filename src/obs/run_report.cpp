#include "obs/run_report.h"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/json_writer.h"
#include "obs/signal_flush.h"

namespace xbfs::obs {

namespace {

void write_record(JsonWriter& w, const RunRecord& r) {
  w.begin_object();
  w.kv("tool", r.tool);
  w.kv("algorithm", r.algorithm);
  w.key("graph").begin_object();
  w.kv("n", r.n).kv("m", r.m);
  w.end_object();
  w.kv("source", r.source);
  w.kv("depth", static_cast<std::uint64_t>(r.depth));
  w.kv("total_ms", r.total_ms);
  w.kv("gteps", r.gteps);
  w.kv("edges_traversed", r.edges_traversed);

  w.key("config").begin_object();
  for (const auto& [k, v] : r.config) w.kv(k, v);
  w.end_object();

  w.key("levels").begin_array();
  for (const ReportLevelRow& lv : r.levels) {
    w.begin_object();
    w.kv("level", lv.level);
    w.kv("strategy", lv.strategy);
    w.kv("nfg", lv.nfg);
    w.kv("frontier", lv.frontier);
    w.kv("edges", lv.edges);
    w.kv("ratio", lv.ratio);
    w.kv("time_ms", lv.time_ms);
    if (lv.has_comm) {
      w.kv("local_ms", lv.local_ms);
      w.kv("comm_ms", lv.comm_ms);
    } else {
      w.kv("fetch_kb", lv.fetch_kb);
      w.kv("kernels", lv.kernels);
    }
    w.end_object();
  }
  w.end_array();

  w.key("kernels").begin_array();
  for (const ReportKernelRow& k : r.kernels) {
    w.begin_object();
    w.kv("kernel", k.kernel);
    w.kv("runtime_ms", k.runtime_ms);
    w.kv("fetch_kb", k.fetch_kb);
    w.kv("launches", k.launches);
    w.end_object();
  }
  w.end_array();

  w.end_object();
}

}  // namespace

void write_run_report_json(std::ostream& os,
                           const std::vector<RunRecord>& runs) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kRunReportSchema);
  w.kv("version", kRunReportVersion);
  w.key("runs").begin_array();
  for (const RunRecord& r : runs) write_record(w, r);
  w.end_array();
  w.end_object();
  os << '\n';
}

ReportSession& ReportSession::global() {
  static ReportSession session;
  return session;
}

ReportSession::ReportSession() {
  if (const char* env = std::getenv("XBFS_RUN_REPORT"); env && *env) {
    enable(env);
  }
}

ReportSession::~ReportSession() { flush(); }

void ReportSession::enable(std::string path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!path.empty()) path_ = std::move(path);
  }
  enabled_.store(true, std::memory_order_relaxed);
  install_signal_flush();
}

void ReportSession::add(RunRecord r) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& kv : context_) {
    bool present = false;
    for (const auto& existing : r.config) {
      if (existing.first == kv.first) {
        present = true;
        break;
      }
    }
    if (!present) r.config.push_back(kv);
  }
  runs_.push_back(std::move(r));
}

void ReportSession::set_context(const std::string& key,
                                const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : context_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

void ReportSession::clear_context() {
  std::lock_guard<std::mutex> lock(mu_);
  context_.clear();
}

std::vector<RunRecord> ReportSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

std::size_t ReportSession::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

void ReportSession::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  runs_.clear();
}

void ReportSession::flush() {
  std::vector<RunRecord> runs;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (path_.empty() || runs_.empty()) return;
    runs = runs_;
    path = path_;
  }
  std::ofstream out(path);
  if (!out) return;
  write_run_report_json(out, runs);
}

}  // namespace xbfs::obs
