// IncrementalCc: connected components over a dynamic graph with
// incremental repair — the CC member of the decrease-only family that
// IncrementalBfs opened (docs/dynamic.md).
//
// Component labels are canonical min-vertex-id labels
// (graph::canonical_components).  Edge inserts can only merge components —
// labels monotonically decrease — so an insert-only epoch gap repairs by
// union-find over the prior labels: each inserted edge unions its
// endpoints' label classes toward the smaller id, then every vertex's
// label is path-compressed to its class root.  That is O(batch + |V|)
// against O(|V| + |E|) for a recompute, the same locality argument as BFS
// repair.  Deletes can split components (an increase), which the
// decrease-only math cannot repair — any delete in the replayed gap, or a
// gap that fell off the store's bounded op log, falls back to a full
// recompute over the snapshot's DeltaCsr.
//
// Host-only engine: CC serving traffic on dynamic graphs is dominated by
// the label copy, and keeping it off the device means the dynamic ladder
// can serve CC even while the device is faulted.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/algorithm_engine.h"
#include "dyn/graph_store.h"

namespace xbfs::dyn {

struct IncCcStats {
  std::uint64_t runs = 0;
  std::uint64_t served_cached = 0;     ///< epoch unchanged; payload reshared
  std::uint64_t repairs = 0;           ///< insert-only union-find merges
  std::uint64_t recomputes = 0;        ///< full recomputes (incl. fallbacks)
  std::uint64_t fallbacks_delete = 0;  ///< gap contained a delete op
  std::uint64_t fallbacks_log = 0;     ///< epoch gap fell off the store log
  std::uint64_t ops_replayed = 0;      ///< ops union-found across repairs
};

class IncrementalCc final : public core::AlgorithmEngine {
 public:
  explicit IncrementalCc(GraphStore& store);

  core::AlgoKind kind() const override { return core::AlgoKind::Cc; }
  /// Canonical min-id component labels on the store's current snapshot.
  /// Not reentrant (label state is reused) — callers serialize solves per
  /// engine, as the serving ladder does.
  core::AlgoResult solve(const core::AlgoQuery& q) override;
  const char* name() const override { return "inc-cc"; }
  core::EngineCapabilities capabilities() const override {
    return {.incremental = true};
  }

  IncCcStats stats() const;
  /// The snapshot the last solve() labeled (valid under the same
  /// serialization as solve(); the serving path reads it while still
  /// holding the per-GCD lock).
  const Snapshot& served() const { return snap_; }
  /// Drop the label history: the next solve() recomputes.
  void clear_history();

 private:
  std::vector<graph::vid_t> recompute(const DeltaCsr& g) const;

  GraphStore& store_;
  Snapshot snap_;
  /// Labels of the last solve, shared with every payload handed out at
  /// that epoch (immutable once published — repairs build a fresh vector).
  std::shared_ptr<const std::vector<graph::vid_t>> labels_;
  std::uint64_t epoch_ = 0;
  bool valid_ = false;

  std::atomic<std::uint64_t> runs_{0};
  std::atomic<std::uint64_t> served_cached_{0};
  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> recomputes_{0};
  std::atomic<std::uint64_t> fallbacks_delete_{0};
  std::atomic<std::uint64_t> fallbacks_log_{0};
  std::atomic<std::uint64_t> ops_replayed_{0};
};

}  // namespace xbfs::dyn
