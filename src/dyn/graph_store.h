// GraphStore: epoch/snapshot versioning over a DeltaCsr (docs/dynamic.md).
//
// The store owns "the current graph" as an immutable shared_ptr<DeltaCsr>.
// Readers call snapshot() and get a refcounted Snapshot{graph, epoch,
// fingerprint}; the graph a snapshot points at is never mutated, so a BFS
// that is mid-flight when a writer lands keeps traversing a consistent
// topology.  Writers go through apply(): copy-on-write (clone the overlay,
// never the shared base), apply the batch, auto-compact past the
// XbfsConfig::dyn_compact_threshold overlay density, and atomically
// publish the new version.  Writes are serialized per store; reads are
// never blocked (snapshot() only takes the publish mutex for a pointer
// copy).
//
// The store also keeps a bounded log of applied batches so IncrementalBfs
// can replay "what changed between my prior epoch and now" and seed a
// repair; when the gap has fallen off the log, ops_between returns nullopt
// with *truncated set and the engine recomputes from scratch.
//
// An optional DurabilityHook (src/store) rides the serialized writer lane:
// append() must fsync a WAL record before publish (a failure aborts the
// apply — durable-then-visible), published() spills content-addressed
// snapshots at compaction points (docs/durability.md).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "core/config.h"
#include "core/status_code.h"
#include "dyn/delta_csr.h"
#include "dyn/durability_hook.h"
#include "dyn/edge_batch.h"
#include "hipsim/lock_rank.h"

namespace xbfs::dyn {

/// A consistent, refcounted view of the graph at one epoch.  Cheap to
/// copy; holding one pins the underlying DeltaCsr (and its base) alive.
struct Snapshot {
  std::shared_ptr<const DeltaCsr> graph;
  std::uint64_t epoch = 0;
  std::uint64_t fingerprint = 0;
  explicit operator bool() const { return static_cast<bool>(graph); }
};

struct StoreStats {
  std::uint64_t batches_applied = 0;
  std::uint64_t inserts_applied = 0;
  std::uint64_t deletes_applied = 0;
  std::uint64_t noops = 0;
  std::uint64_t compactions = 0;
};

class GraphStore {
 public:
  /// The base must satisfy DeltaCsr's sorted+deduped precondition.  Only
  /// the dyn_* knobs of `cfg` are read.  `log_capacity` bounds the replay
  /// log (batches); older gaps force engines into full recompute.
  explicit GraphStore(graph::Csr base, core::XbfsConfig cfg = {},
                      std::size_t log_capacity = 256);
  /// Recovery constructor (src/store/recovery): resume from a restored
  /// DeltaCsr (spilled snapshot base at its recorded epoch).  The replay
  /// log starts empty, so pre-recovery epochs report as truncated.
  explicit GraphStore(std::shared_ptr<const DeltaCsr> restored,
                      core::XbfsConfig cfg = {},
                      std::size_t log_capacity = 256);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  Snapshot snapshot() const;
  std::uint64_t epoch() const;
  std::uint64_t fingerprint() const;

  /// Attach the durable write path (non-owning; the hook must outlive the
  /// store).  Must happen before writer traffic — the pointer is read
  /// unsynchronized on the apply lane.
  void attach_durability(DurabilityHook* hook) { hook_ = hook; }
  DurabilityHook* durability() const { return hook_; }

  /// Serialized writer lane: COW-apply the batch, maybe compact, make it
  /// durable (when a hook is attached), publish.  Throws std::runtime_error
  /// if the durability hook refuses — use try_apply to handle that as a
  /// status.
  ApplyStats apply(const EdgeBatch& batch);
  /// apply() with the durability failure surfaced as a Status instead of a
  /// throw.  On non-ok nothing was published: the epoch did not move.
  xbfs::Status try_apply(const EdgeBatch& batch, ApplyStats* out = nullptr);
  /// Recovery replay (src/store/recovery): re-apply a WAL-recorded batch,
  /// compacting exactly when the record says the pre-crash apply did — the
  /// policy is not re-derived, so the rebuilt epoch/fingerprint chain is
  /// identical to the one the WAL recorded.  Never consults the hook.
  ApplyStats apply_replayed(const EdgeBatch& batch, bool compacted);

  /// Concatenated ops of the batches that moved the graph from
  /// `from_epoch` to `to_epoch` (exclusive/inclusive).  nullopt when the
  /// request is unanswerable, with the reason split by `truncated` (when
  /// non-null): true = the bounded log wrapped past `from_epoch` (history
  /// discarded; engines must recompute), false = invalid range
  /// (from > to, or to beyond the current epoch).
  std::optional<EdgeBatch> ops_between(std::uint64_t from_epoch,
                                       std::uint64_t to_epoch,
                                       bool* truncated = nullptr) const;

  StoreStats stats() const;

 private:
  const core::XbfsConfig cfg_;
  const std::size_t log_capacity_;
  DurabilityHook* hook_ = nullptr;  ///< set once before traffic; non-owning

  /// Ranked (writer=50 before publish=52): leaf-ward of the serving
  /// cycle/update/GCD locks — the dispatch path snapshots the store while
  /// holding a GCD lock — and below the pool lock (docs/modelcheck.md).
  sim::RankedMutex writer_mu_{50, "dyn.store.writer"};  ///< serializes apply()
  /// Guards current_, log_, stats_ (pointer swap).
  mutable sim::RankedMutex mu_{52, "dyn.store.publish"};
  std::shared_ptr<const DeltaCsr> current_;
  /// (epoch the batch produced, the batch); epochs are contiguous.
  std::deque<std::pair<std::uint64_t, EdgeBatch>> log_;
  StoreStats stats_;
};

}  // namespace xbfs::dyn
