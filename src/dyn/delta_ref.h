// Host-side ground truth for dynamic graphs: serial BFS over a DeltaCsr,
// the Graph500-style level validator the dynamic serving path uses, and
// the fault-immune host TraversalEngine that terminates the dynamic
// degradation ladder (the DeltaCsr analogue of baseline::CpuBfsEngine).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/traversal_engine.h"
#include "dyn/delta_csr.h"
#include "dyn/graph_store.h"

namespace xbfs::dyn {

/// Serial queue BFS over the live (base - tombstones + extras) edge set;
/// levels[v] = hops from src, -1 unreached.
std::vector<std::int32_t> reference_bfs(const DeltaCsr& g, graph::vid_t src);

/// Complete level-assignment oracle over a DeltaCsr (same rules as
/// graph::validate_bfs_levels): level[src]==0, reachability matches a
/// fresh host BFS, every live edge spans at most one level, and every
/// level-k>0 vertex has a level k-1 neighbor.  Empty string when valid.
std::string validate_levels(const DeltaCsr& g, graph::vid_t src,
                            const std::vector<std::int32_t>& levels);

/// Host CPU BFS over the store's *current* snapshot: the terminal rung of
/// the dynamic serving ladder.  Stateless across runs (safe to call from
/// multiple worker lanes) and immune to injected device faults.
class HostDeltaBfs final : public core::TraversalEngine {
 public:
  explicit HostDeltaBfs(GraphStore& store) : store_(store) {}

  core::BfsResult run(graph::vid_t src) override {
    return run_on(store_.snapshot(), src);
  }
  /// Same traversal pinned to one snapshot (the serving path validates and
  /// caches against the exact graph it served).
  core::BfsResult run_on(const Snapshot& snap, graph::vid_t src) const;

  const char* name() const override { return "cpu-delta"; }
  core::EngineCapabilities capabilities() const override { return {}; }

 private:
  GraphStore& store_;
};

}  // namespace xbfs::dyn
