#include "dyn/graph_store.h"

#include <stdexcept>

#include "hipsim/chk_point.h"

namespace xbfs::dyn {

GraphStore::GraphStore(graph::Csr base, core::XbfsConfig cfg,
                       std::size_t log_capacity)
    : cfg_(cfg), log_capacity_(log_capacity) {
  if (const xbfs::Status s = cfg_.validate(); !s.ok()) {
    throw std::invalid_argument("GraphStore: " + s.to_string());
  }
  current_ = std::make_shared<const DeltaCsr>(std::move(base));
}

GraphStore::GraphStore(std::shared_ptr<const DeltaCsr> restored,
                       core::XbfsConfig cfg, std::size_t log_capacity)
    : cfg_(cfg), log_capacity_(log_capacity) {
  if (const xbfs::Status s = cfg_.validate(); !s.ok()) {
    throw std::invalid_argument("GraphStore: " + s.to_string());
  }
  if (!restored) {
    throw std::invalid_argument("GraphStore: null restored DeltaCsr");
  }
  current_ = std::move(restored);
}

Snapshot GraphStore::snapshot() const {
  // SchedCheck yield point before the pointer copy: the checker interleaves
  // readers against apply()'s publish, proving every snapshot carries a
  // (graph, epoch, fingerprint) triple from one version, never a mix.
  sim::chk_point("dyn.store.snapshot");
  std::shared_ptr<const DeltaCsr> g;
  {
    std::lock_guard<sim::RankedMutex> lk(mu_);
    g = current_;
  }
  return Snapshot{g, g->epoch(), g->fingerprint()};
}

std::uint64_t GraphStore::epoch() const {
  std::lock_guard<sim::RankedMutex> lk(mu_);
  return current_->epoch();
}

std::uint64_t GraphStore::fingerprint() const {
  std::lock_guard<sim::RankedMutex> lk(mu_);
  return current_->fingerprint();
}

ApplyStats GraphStore::apply(const EdgeBatch& batch) {
  ApplyStats st;
  if (const xbfs::Status s = try_apply(batch, &st); !s.ok()) {
    throw std::runtime_error("GraphStore::apply: " + s.to_string());
  }
  return st;
}

xbfs::Status GraphStore::try_apply(const EdgeBatch& batch, ApplyStats* out) {
  sim::chk_point("dyn.store.apply");
  // One writer at a time; the copy-on-write build happens outside mu_ so
  // snapshot() readers only ever wait for a pointer copy.
  std::lock_guard<sim::RankedMutex> writer(writer_mu_);
  auto next = std::make_shared<DeltaCsr>(*current_);  // clones overlays only
  const ApplyStats st = next->apply(batch);
  bool compacted = false;
  const double density = next->overlay_density();
  bool want_compact = density > cfg_.dyn_compact_threshold;
  if (hook_ != nullptr) {
    // The hook adds the periodic snapshot-spill pressure: snapshots are
    // only taken at compaction points so a recovered store and a
    // never-killed twin share the same base/overlay split.
    want_compact = hook_->want_compact(next->epoch(), density, want_compact);
  }
  if (want_compact) {
    next->compact();
    compacted = true;
  }
  if (hook_ != nullptr) {
    // Durable-then-visible: the WAL record (epoch, post-apply fingerprint,
    // chain link to the previous fingerprint) must be fsync'd before any
    // reader can observe the epoch.  A refused append aborts the apply —
    // the batch never happened, durably or visibly.
    const xbfs::Status s =
        hook_->append(batch, next->epoch(), next->fingerprint(),
                      current_->fingerprint(), compacted);
    if (!s.ok()) return s;
  }
  // Yield between the COW build and publication — the widest window in
  // which concurrent readers must keep seeing the *old* version whole.
  // Legal under the chk_point discipline despite writer_mu_ being held:
  // writer_mu_ only excludes other apply() calls, and concurrent-writer
  // harnesses place at most one writer task (docs/modelcheck.md).
  sim::chk_point("dyn.store.publish");
  Snapshot published;
  {
    std::lock_guard<sim::RankedMutex> lk(mu_);
    current_ = std::move(next);
    log_.emplace_back(current_->epoch(), batch);
    while (log_.size() > log_capacity_) log_.pop_front();
    stats_.batches_applied += 1;
    stats_.inserts_applied += st.inserts_applied;
    stats_.deletes_applied += st.deletes_applied;
    stats_.noops += st.noops;
    if (compacted) stats_.compactions += 1;
    published = Snapshot{current_, current_->epoch(), current_->fingerprint()};
  }
  if (hook_ != nullptr) hook_->published(published, compacted);
  if (out != nullptr) *out = st;
  return xbfs::Status::Ok();
}

ApplyStats GraphStore::apply_replayed(const EdgeBatch& batch, bool compacted) {
  std::lock_guard<sim::RankedMutex> writer(writer_mu_);
  auto next = std::make_shared<DeltaCsr>(*current_);
  const ApplyStats st = next->apply(batch);
  if (compacted) next->compact();
  {
    std::lock_guard<sim::RankedMutex> lk(mu_);
    current_ = std::move(next);
    log_.emplace_back(current_->epoch(), batch);
    while (log_.size() > log_capacity_) log_.pop_front();
    stats_.batches_applied += 1;
    stats_.inserts_applied += st.inserts_applied;
    stats_.deletes_applied += st.deletes_applied;
    stats_.noops += st.noops;
    if (compacted) stats_.compactions += 1;
  }
  return st;
}

std::optional<EdgeBatch> GraphStore::ops_between(std::uint64_t from_epoch,
                                                 std::uint64_t to_epoch,
                                                 bool* truncated) const {
  if (truncated != nullptr) *truncated = false;
  std::lock_guard<sim::RankedMutex> lk(mu_);
  // Range validity first (even for empty spans): a to_epoch the store has
  // never reached is a caller error, not "no ops".
  if (from_epoch > to_epoch || to_epoch > current_->epoch()) {
    return std::nullopt;
  }
  EdgeBatch out;
  if (from_epoch == to_epoch) return out;
  // Epochs in the log are contiguous and end at the current epoch; the gap
  // is covered iff the oldest retained entry is at or before from_epoch+1.
  // Anything else means the bounded log wrapped past the request — report
  // truncation explicitly so callers can't mistake discarded history for
  // an empty delta (recovery and IncrementalBfs both depend on this).
  if (log_.empty() || log_.front().first > from_epoch + 1) {
    if (truncated != nullptr) *truncated = true;
    return std::nullopt;
  }
  for (const auto& [epoch, batch] : log_) {
    if (epoch > from_epoch && epoch <= to_epoch) out.append(batch);
  }
  return out;
}

StoreStats GraphStore::stats() const {
  std::lock_guard<sim::RankedMutex> lk(mu_);
  return stats_;
}

}  // namespace xbfs::dyn
