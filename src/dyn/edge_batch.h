// Edge update batches: the write-side vocabulary of the dynamic-graph
// subsystem (docs/dynamic.md).
//
// A batch is an ordered list of undirected insert/delete operations.  The
// graph stays an undirected symmetric CSR, so every op touches both
// directed adjacency entries; ops that would not change the graph (self
// loops, inserting a live edge, deleting an absent one) are counted as
// no-ops rather than errors — streaming feeds routinely replay updates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace xbfs::dyn {

struct EdgeOp {
  graph::vid_t u = 0;
  graph::vid_t v = 0;
  bool insert = true;  ///< false = delete
};

struct EdgeBatch {
  std::vector<EdgeOp> ops;

  void insert(graph::vid_t u, graph::vid_t v) { ops.push_back({u, v, true}); }
  void erase(graph::vid_t u, graph::vid_t v) { ops.push_back({u, v, false}); }
  void append(const EdgeBatch& other) {
    ops.insert(ops.end(), other.ops.begin(), other.ops.end());
  }
  std::size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
};

/// What DeltaCsr::apply actually did with a batch (undirected op counts).
struct ApplyStats {
  std::uint64_t inserts_applied = 0;
  std::uint64_t deletes_applied = 0;
  std::uint64_t noops = 0;  ///< self loops, duplicate inserts, absent deletes

  ApplyStats& operator+=(const ApplyStats& o) {
    inserts_applied += o.inserts_applied;
    deletes_applied += o.deletes_applied;
    noops += o.noops;
    return *this;
  }
};

}  // namespace xbfs::dyn
