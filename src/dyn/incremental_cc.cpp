#include "dyn/incremental_cc.h"

#include <chrono>
#include <deque>
#include <unordered_map>
#include <utility>

namespace xbfs::dyn {

using graph::vid_t;

IncrementalCc::IncrementalCc(GraphStore& store) : store_(store) {}

std::vector<vid_t> IncrementalCc::recompute(const DeltaCsr& g) const {
  const vid_t n = g.num_vertices();
  constexpr vid_t kNone = static_cast<vid_t>(-1);
  std::vector<vid_t> label(n, kNone);
  std::deque<vid_t> queue;
  // Scanning sources in ascending id order makes each flood's seed the
  // smallest vertex of its component — the canonical label.
  for (vid_t s = 0; s < n; ++s) {
    if (label[s] != kNone) continue;
    label[s] = s;
    queue.push_back(s);
    while (!queue.empty()) {
      const vid_t v = queue.front();
      queue.pop_front();
      g.for_each_neighbor(v, [&](vid_t w) {
        if (label[w] == kNone) {
          label[w] = s;
          queue.push_back(w);
        }
      });
    }
  }
  return label;
}

core::AlgoResult IncrementalCc::solve(const core::AlgoQuery&) {
  const auto t0 = std::chrono::steady_clock::now();
  runs_.fetch_add(1, std::memory_order_relaxed);
  const Snapshot snap = store_.snapshot();

  if (valid_ && snap.epoch == epoch_) {
    served_cached_.fetch_add(1, std::memory_order_relaxed);
  } else {
    bool repaired = false;
    if (valid_) {
      bool truncated = false;
      const std::optional<EdgeBatch> ops =
          store_.ops_between(epoch_, snap.epoch, &truncated);
      if (!ops) {
        // Truncated or out-of-range both invalidate the remembered labels;
        // the flag keeps the wrap case from masquerading as "no ops".
        fallbacks_log_.fetch_add(1, std::memory_order_relaxed);
      } else {
        bool has_delete = false;
        for (const EdgeOp& op : ops->ops) {
          if (!op.insert) {
            has_delete = true;
            break;
          }
        }
        if (has_delete) {
          // A delete can split a component; labels would have to increase,
          // which the decrease-only repair cannot express.
          fallbacks_delete_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Insert-only gap: union-find over the prior labels.  Classes
          // are keyed by label value (a vertex id), merged toward the
          // smaller id so the result stays canonical.
          std::vector<vid_t> label = *labels_;
          const vid_t n = snap.graph->num_vertices();
          std::unordered_map<vid_t, vid_t> parent;
          const auto find = [&parent](vid_t x) {
            vid_t root = x;
            for (auto it = parent.find(root);
                 it != parent.end() && it->second != root;
                 it = parent.find(root)) {
              root = it->second;
            }
            // Path-compress the chain onto the root.
            while (x != root) {
              auto it = parent.find(x);
              const vid_t next = it == parent.end() ? root : it->second;
              parent[x] = root;
              x = next;
            }
            return root;
          };
          for (const EdgeOp& op : ops->ops) {
            if (op.u >= n || op.v >= n || op.u == op.v) continue;
            const vid_t ru = find(label[op.u]);
            const vid_t rv = find(label[op.v]);
            if (ru == rv) continue;
            const vid_t lo = ru < rv ? ru : rv;
            const vid_t hi = ru < rv ? rv : ru;
            parent[hi] = lo;
          }
          for (vid_t v = 0; v < n; ++v) label[v] = find(label[v]);
          labels_ = std::make_shared<const std::vector<vid_t>>(std::move(label));
          ops_replayed_.fetch_add(ops->ops.size(), std::memory_order_relaxed);
          repairs_.fetch_add(1, std::memory_order_relaxed);
          repaired = true;
        }
      }
    }
    if (!repaired) {
      labels_ = std::make_shared<const std::vector<vid_t>>(
          recompute(*snap.graph));
      recomputes_.fetch_add(1, std::memory_order_relaxed);
    }
    epoch_ = snap.epoch;
    snap_ = snap;
    valid_ = true;
  }
  if (!snap_) snap_ = snap;

  core::AlgoResult out;
  out.payload.kind = core::AlgoKind::Cc;
  out.payload.components = labels_;
  out.total_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  return out;
}

IncCcStats IncrementalCc::stats() const {
  IncCcStats s;
  s.runs = runs_.load(std::memory_order_relaxed);
  s.served_cached = served_cached_.load(std::memory_order_relaxed);
  s.repairs = repairs_.load(std::memory_order_relaxed);
  s.recomputes = recomputes_.load(std::memory_order_relaxed);
  s.fallbacks_delete = fallbacks_delete_.load(std::memory_order_relaxed);
  s.fallbacks_log = fallbacks_log_.load(std::memory_order_relaxed);
  s.ops_replayed = ops_replayed_.load(std::memory_order_relaxed);
  return s;
}

void IncrementalCc::clear_history() {
  valid_ = false;
  labels_.reset();
}

}  // namespace xbfs::dyn
