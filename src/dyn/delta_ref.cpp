#include "dyn/delta_ref.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <sstream>

namespace xbfs::dyn {

using graph::vid_t;

std::vector<std::int32_t> reference_bfs(const DeltaCsr& g, vid_t src) {
  const vid_t n = g.num_vertices();
  std::vector<std::int32_t> levels(n, -1);
  if (src >= n) return levels;
  std::deque<vid_t> q{src};
  levels[src] = 0;
  while (!q.empty()) {
    const vid_t v = q.front();
    q.pop_front();
    const std::int32_t next = levels[v] + 1;
    g.for_each_neighbor(v, [&](vid_t w) {
      if (levels[w] < 0) {
        levels[w] = next;
        q.push_back(w);
      }
    });
  }
  return levels;
}

std::string validate_levels(const DeltaCsr& g, vid_t src,
                            const std::vector<std::int32_t>& levels) {
  const vid_t n = g.num_vertices();
  std::ostringstream os;
  if (levels.size() != n) {
    os << "levels size " << levels.size() << " != |V| " << n;
    return os.str();
  }
  if (src >= n) {
    os << "source " << src << " out of range";
    return os.str();
  }
  if (levels[src] != 0) {
    os << "level[src] = " << levels[src] << ", expected 0";
    return os.str();
  }
  const std::vector<std::int32_t> ref = reference_bfs(g, src);
  for (vid_t v = 0; v < n; ++v) {
    if ((levels[v] < 0) != (ref[v] < 0)) {
      os << "vertex " << v << " reachability mismatch: level " << levels[v]
         << ", reference " << ref[v];
      return os.str();
    }
  }
  for (vid_t v = 0; v < n; ++v) {
    if (levels[v] < 0) continue;
    bool has_parent_level = levels[v] == 0;
    std::string err;
    g.for_each_neighbor(v, [&](vid_t w) {
      if (!err.empty()) return;
      if (levels[w] >= 0 && std::abs(levels[w] - levels[v]) > 1) {
        std::ostringstream eo;
        eo << "edge (" << v << "," << w << ") spans levels " << levels[v]
           << " and " << levels[w];
        err = eo.str();
        return;
      }
      if (levels[w] == levels[v] - 1) has_parent_level = true;
    });
    if (!err.empty()) return err;
    if (!has_parent_level) {
      os << "vertex " << v << " at level " << levels[v]
         << " has no level-" << (levels[v] - 1) << " neighbor";
      return os.str();
    }
  }
  return {};
}

core::BfsResult HostDeltaBfs::run_on(const Snapshot& snap, vid_t src) const {
  const auto t0 = std::chrono::steady_clock::now();
  core::BfsResult r;
  r.levels = reference_bfs(*snap.graph, src);
  std::int32_t max_level = 0;
  std::uint64_t reached_degree = 0;
  for (vid_t v = 0; v < snap.graph->num_vertices(); ++v) {
    if (r.levels[v] < 0) continue;
    max_level = std::max(max_level, r.levels[v]);
    reached_degree += snap.graph->degree(v);
  }
  r.depth = static_cast<std::uint32_t>(max_level) + 1;
  r.edges_traversed = reached_degree / 2;
  r.total_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  r.gteps = core::safe_gteps(r.edges_traversed, r.total_ms);
  return r;
}

}  // namespace xbfs::dyn
