#include "dyn/delta_csr.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace xbfs::dyn {

using graph::eid_t;
using graph::vid_t;

DeltaCsr::DeltaCsr(std::shared_ptr<const graph::Csr> base)
    : base_(std::move(base)) {
  if (!base_) throw std::invalid_argument("DeltaCsr: null base");
  // Membership checks and device tombstone indices binary-search the base
  // adjacency, so it must be strictly increasing (sorted + deduped — the
  // graph::build_csr defaults).
  for (vid_t v = 0; v < base_->num_vertices(); ++v) {
    const auto nb = base_->neighbors(v);
    for (std::size_t i = 1; i < nb.size(); ++i) {
      if (nb[i - 1] >= nb[i]) {
        throw std::invalid_argument(
            "DeltaCsr: base adjacency of vertex " + std::to_string(v) +
            " is not sorted+deduplicated");
      }
    }
  }
}

bool DeltaCsr::contains(const Overlay& o, vid_t v, vid_t w) {
  const std::vector<vid_t>* vec = find(o, v);
  return vec && std::binary_search(vec->begin(), vec->end(), w);
}

bool DeltaCsr::sorted_insert(Overlay& o, vid_t v, vid_t w) {
  std::vector<vid_t>& vec = o[v];
  const auto it = std::lower_bound(vec.begin(), vec.end(), w);
  if (it != vec.end() && *it == w) return false;
  vec.insert(it, w);
  return true;
}

bool DeltaCsr::sorted_erase(Overlay& o, vid_t v, vid_t w) {
  const auto mit = o.find(v);
  if (mit == o.end()) return false;
  std::vector<vid_t>& vec = mit->second;
  const auto it = std::lower_bound(vec.begin(), vec.end(), w);
  if (it == vec.end() || *it != w) return false;
  vec.erase(it);
  if (vec.empty()) o.erase(mit);
  return true;
}

bool DeltaCsr::base_has(vid_t u, vid_t v) const {
  const auto nb = base_->neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

eid_t DeltaCsr::base_edge_index(vid_t u, vid_t v) const {
  const auto nb = base_->neighbors(u);
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  return base_->offsets()[u] + static_cast<eid_t>(it - nb.begin());
}

bool DeltaCsr::has_edge(vid_t u, vid_t v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  if (contains(extras_, u, v)) return true;
  return base_has(u, v) && !is_tombstoned(u, v);
}

vid_t DeltaCsr::degree(vid_t v) const {
  vid_t d = base_->degree(v);
  if (const std::vector<vid_t>* t = find(tombstones_, v)) {
    d -= static_cast<vid_t>(t->size());
  }
  if (const std::vector<vid_t>* ex = find(extras_, v)) {
    d += static_cast<vid_t>(ex->size());
  }
  return d;
}

bool DeltaCsr::directed_insert(vid_t u, vid_t v) {
  if (base_has(u, v)) {
    // Live already, or tombstoned and revived by un-deleting it.
    if (!sorted_erase(tombstones_, u, v)) return false;
    --tomb_entries_;
    return true;
  }
  if (!sorted_insert(extras_, u, v)) return false;
  ++extra_entries_;
  return true;
}

bool DeltaCsr::directed_erase(vid_t u, vid_t v) {
  if (sorted_erase(extras_, u, v)) {
    --extra_entries_;
    return true;
  }
  if (!base_has(u, v) || is_tombstoned(u, v)) return false;
  sorted_insert(tombstones_, u, v);
  ++tomb_entries_;
  return true;
}

ApplyStats DeltaCsr::apply(const EdgeBatch& batch) {
  ApplyStats st;
  for (const EdgeOp& op : batch.ops) {
    if (op.u == op.v || op.u >= num_vertices() || op.v >= num_vertices()) {
      ++st.noops;  // self loop or out-of-range endpoint
      continue;
    }
    bool changed;
    if (op.insert) {
      changed = directed_insert(op.u, op.v);
      directed_insert(op.v, op.u);
      if (changed) ++st.inserts_applied;
    } else {
      changed = directed_erase(op.u, op.v);
      directed_erase(op.v, op.u);
      if (changed) ++st.deletes_applied;
    }
    if (!changed) ++st.noops;
  }
  // Every apply bumps the epoch — even an all-no-op batch — so the
  // fingerprint (and with it every serving-cache key) always moves.
  ++epoch_;
  return st;
}

std::vector<vid_t> DeltaCsr::neighbors_sorted(vid_t v) const {
  std::vector<vid_t> out;
  out.reserve(degree(v));
  for_each_neighbor(v, [&](vid_t w) { out.push_back(w); });
  std::sort(out.begin(), out.end());
  return out;
}

double DeltaCsr::overlay_density() const {
  const double base_m = static_cast<double>(std::max<eid_t>(1, base_->num_edges()));
  return static_cast<double>(extra_entries_ + tomb_entries_) / base_m;
}

graph::Csr DeltaCsr::materialize() const {
  const vid_t n = num_vertices();
  std::vector<eid_t> offsets(n + 1, 0);
  for (vid_t v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degree(v);
  std::vector<vid_t> cols(offsets[n]);
  for (vid_t v = 0; v < n; ++v) {
    eid_t at = offsets[v];
    for_each_neighbor(v, [&](vid_t w) { cols[at++] = w; });
    std::sort(cols.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              cols.begin() + static_cast<std::ptrdiff_t>(at));
  }
  return graph::Csr(std::move(offsets), std::move(cols));
}

void DeltaCsr::compact() {
  base_ = std::make_shared<const graph::Csr>(materialize());
  extras_.clear();
  tombstones_.clear();
  extra_entries_ = 0;
  tomb_entries_ = 0;
  ++base_version_;
}

std::uint64_t DeltaCsr::fingerprint() const {
  // Same FNV-1a scheme as Csr::fingerprint, folded over the overlay
  // content in deterministic (vertex-sorted) order, with the epoch mixed
  // last — the epoch-mixing contract of docs/dynamic.md.
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
  std::uint64_t h = base_->fingerprint(0);
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (x & 0xff)) * kFnvPrime;
      x >>= 8;
    }
  };
  const auto mix_overlay = [&](const Overlay& o) {
    std::vector<vid_t> keys;
    keys.reserve(o.size());
    for (const auto& [v, _] : o) keys.push_back(v);
    std::sort(keys.begin(), keys.end());
    mix(keys.size());
    for (const vid_t v : keys) {
      mix(v);
      for (const vid_t w : o.at(v)) mix(w);
    }
  };
  mix_overlay(extras_);
  mix_overlay(tombstones_);
  mix(epoch_);
  return h;
}

}  // namespace xbfs::dyn
