// DeltaCsr: an immutable base CSR plus per-vertex insert/delete overlays —
// the storage format of the dynamic-graph subsystem (docs/dynamic.md).
//
// The base graph::Csr is shared (shared_ptr) and never mutated; updates
// land in two small per-vertex side structures:
//
//   extras[v]     inserted neighbors of v not present in the base
//   tombstones[v] base neighbors of v that have been deleted
//
// apply(EdgeBatch) is undirected (both directed entries change together,
// keeping the CSR symmetric), treats self loops / duplicate inserts /
// absent deletes as counted no-ops, and revives a tombstoned base edge on
// re-insert instead of double-storing it.  Every apply() bumps the epoch,
// which fingerprint() mixes into the structural hash (the Csr::fingerprint
// epoch-mixing contract), so serving-cache keys invalidate on every batch.
//
// When the overlay grows past XbfsConfig::dyn_compact_threshold the owner
// (dyn::GraphStore) calls compact(), which materializes a fresh flat base
// and bumps base_version() — device mirrors use that to detect that their
// uploaded base arrays (and tombstone indices into them) are stale.
//
// Precondition: the base adjacency lists are sorted and deduplicated
// (graph::build_csr's defaults); the constructor validates and throws
// std::invalid_argument otherwise, because edge membership and the device
// tombstone indices both rely on binary search.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dyn/edge_batch.h"
#include "graph/csr.h"

namespace xbfs::dyn {

class DeltaCsr {
 public:
  using Overlay = std::unordered_map<graph::vid_t, std::vector<graph::vid_t>>;

  DeltaCsr() : DeltaCsr(std::make_shared<const graph::Csr>()) {}
  explicit DeltaCsr(graph::Csr base)
      : DeltaCsr(std::make_shared<const graph::Csr>(std::move(base))) {}
  explicit DeltaCsr(std::shared_ptr<const graph::Csr> base);
  /// Recovery constructor (src/store/recovery): resume a freshly-compacted
  /// state — base = the spilled snapshot, overlays empty — at the epoch the
  /// snapshot was taken, so replaying the WAL tail reproduces the exact
  /// epoch/fingerprint sequence the pre-crash store published.
  DeltaCsr(std::shared_ptr<const graph::Csr> base, std::uint64_t epoch)
      : DeltaCsr(std::move(base)) {
    epoch_ = epoch;
  }

  const graph::Csr& base() const { return *base_; }
  const std::shared_ptr<const graph::Csr>& base_ptr() const { return base_; }

  graph::vid_t num_vertices() const { return base_->num_vertices(); }
  /// Live directed adjacency entries: base - tombstones + extras.
  graph::eid_t num_edges() const {
    return base_->num_edges() - tomb_entries_ + extra_entries_;
  }

  /// Bumped by every apply() call (no-op batches included — the cache
  /// contract is "any applied batch changes the fingerprint").
  std::uint64_t epoch() const { return epoch_; }
  /// Bumped by compact(); device mirrors of the base re-upload on change.
  std::uint64_t base_version() const { return base_version_; }

  ApplyStats apply(const EdgeBatch& batch);

  bool has_edge(graph::vid_t u, graph::vid_t v) const;
  graph::vid_t degree(graph::vid_t v) const;

  /// Visit the live neighbors of v (base-minus-tombstones, then extras).
  template <typename F>
  void for_each_neighbor(graph::vid_t v, F&& f) const {
    for (const graph::vid_t w : base_->neighbors(v)) {
      if (!is_tombstoned(v, w)) f(w);
    }
    if (const std::vector<graph::vid_t>* ex = find(extras_, v)) {
      for (const graph::vid_t w : *ex) f(w);
    }
  }
  std::vector<graph::vid_t> neighbors_sorted(graph::vid_t v) const;

  /// (extras + tombstones) / base |E| — the compaction trigger metric.
  double overlay_density() const;
  /// Rebuild a flat base from the live edge set; clears the overlays,
  /// preserves the logical graph and the epoch, bumps base_version().
  void compact();
  /// Flatten to a standalone sorted/deduped Csr (what compact() installs).
  graph::Csr materialize() const;

  /// base().fingerprint() extended over the overlay content, with the
  /// epoch mixed in last — same contract as Csr::fingerprint(epoch).
  std::uint64_t fingerprint() const;

  // --- device-sync accessors (dyn::IncrementalBfs) --------------------------
  const Overlay& extras() const { return extras_; }
  const Overlay& tombstones() const { return tombstones_; }
  std::uint64_t extra_entries() const { return extra_entries_; }
  std::uint64_t tombstone_entries() const { return tomb_entries_; }
  /// Index into base().cols() of the directed base entry u -> v; the entry
  /// must exist in the base (tombstoned or not).
  graph::eid_t base_edge_index(graph::vid_t u, graph::vid_t v) const;

 private:
  static const std::vector<graph::vid_t>* find(const Overlay& o,
                                               graph::vid_t v) {
    const auto it = o.find(v);
    return it == o.end() ? nullptr : &it->second;
  }
  static bool contains(const Overlay& o, graph::vid_t v, graph::vid_t w);
  /// Insert w into o[v] keeping the vector sorted; false if present.
  static bool sorted_insert(Overlay& o, graph::vid_t v, graph::vid_t w);
  /// Remove w from o[v]; false if absent.  Erases empty vectors.
  static bool sorted_erase(Overlay& o, graph::vid_t v, graph::vid_t w);

  bool base_has(graph::vid_t u, graph::vid_t v) const;
  bool is_tombstoned(graph::vid_t u, graph::vid_t v) const {
    return contains(tombstones_, u, v);
  }
  /// One directed half of an op; returns whether the graph changed.
  bool directed_insert(graph::vid_t u, graph::vid_t v);
  bool directed_erase(graph::vid_t u, graph::vid_t v);

  std::shared_ptr<const graph::Csr> base_;
  Overlay extras_;
  Overlay tombstones_;
  std::uint64_t extra_entries_ = 0;  ///< directed entries across extras_
  std::uint64_t tomb_entries_ = 0;   ///< directed entries across tombstones_
  std::uint64_t epoch_ = 0;
  std::uint64_t base_version_ = 0;
};

}  // namespace xbfs::dyn
