#include "dyn/incremental_bfs.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/frontier.h"
#include "core/report.h"
#include "core/status.h"

namespace xbfs::dyn {

using core::kUnvisited;
using graph::eid_t;
using graph::vid_t;

namespace {

/// In-place deletion sentinel in the device cols array.  Shares the
/// kUnvisited bit pattern: a real vertex id never reaches it (vid_t max),
/// so kernels can skip tombstoned entries with one compare.
constexpr vid_t kTombstone = static_cast<vid_t>(kUnvisited);

}  // namespace

IncrementalBfs::IncrementalBfs(sim::Device& dev, GraphStore& store,
                               core::XbfsConfig cfg)
    : dev_(dev), store_(store), cfg_(cfg) {
  if (const xbfs::Status s = cfg_.validate(); !s.ok()) {
    throw std::invalid_argument("IncrementalBfs: " + s.to_string());
  }
  const vid_t n = store_.snapshot().graph->num_vertices();
  const std::size_t cap = std::max<std::size_t>(1, n);
  d_status_ = dev_.alloc<std::uint32_t>(cap, "dyn.status");
  d_queue_a_ = dev_.alloc<vid_t>(cap, "dyn.queue_a");
  d_queue_b_ = dev_.alloc<vid_t>(cap, "dyn.queue_b");
  d_dirty_ = dev_.alloc<vid_t>(cap, "dyn.dirty");
  d_seeds_ = dev_.alloc<vid_t>(cap, "dyn.seeds");
  d_counters_ = dev_.alloc<std::uint32_t>(1, "dyn.counters");
  d_edge_counter_ = dev_.alloc<std::uint64_t>(1, "dyn.edge_counter");
  status_host_.resize(n);
}

void IncrementalBfs::sync_device(const Snapshot& snap) {
  const DeltaCsr& g = *snap.graph;
  const graph::Csr& base = g.base();
  sim::Stream& s = dev_.stream(0);

  if (!synced_once_ || synced_base_version_ != g.base_version()) {
    // Full base upload: first run, or compact() rebuilt the base (which
    // also relocates every tombstone index).
    d_offsets_ = dev_.alloc<eid_t>(base.offsets().size(), "dyn.offsets");
    d_cols_ =
        dev_.alloc<vid_t>(std::max<std::size_t>(1, base.cols().size()),
                          "dyn.cols");
    d_offsets_.h_copy_from(base.offsets().data(), base.offsets().size());
    if (!base.cols().empty()) {
      d_cols_.h_copy_from(base.cols().data(), base.cols().size());
    }
    dev_.memcpy_h2d(s, base.payload_bytes());
    d_offsets_.mark_device_synced();
    d_cols_.mark_device_synced();
    device_tombs_.clear();
    synced_base_version_ = g.base_version();
    full_uploads_.fetch_add(1, std::memory_order_relaxed);
  }

  if (synced_once_ && synced_epoch_ == snap.epoch) return;

  // Tombstone diff: in-place sentinel writes for new deletions, original
  // vertex ids written back for revived base edges.
  std::vector<eid_t> patch_idx;
  std::vector<vid_t> patch_val;
  std::unordered_set<eid_t> target;
  target.reserve(g.tombstone_entries());
  for (const auto& [v, dels] : g.tombstones()) {
    for (const vid_t w : dels) {
      const eid_t idx = g.base_edge_index(v, w);
      target.insert(idx);
      if (!device_tombs_.count(idx)) {
        patch_idx.push_back(idx);
        patch_val.push_back(kTombstone);
      }
    }
  }
  for (const eid_t idx : device_tombs_) {
    if (!target.count(idx)) {
      patch_idx.push_back(idx);
      patch_val.push_back(base.cols()[idx]);
    }
  }
  if (!patch_idx.empty()) {
    if (d_patch_idx_.size() < patch_idx.size()) {
      d_patch_idx_ = dev_.alloc<eid_t>(patch_idx.size(), "dyn.patch_idx");
      d_patch_val_ = dev_.alloc<vid_t>(patch_idx.size(), "dyn.patch_val");
    }
    d_patch_idx_.h_copy_from(patch_idx.data(), patch_idx.size());
    d_patch_val_.h_copy_from(patch_val.data(), patch_val.size());
    dev_.memcpy_h2d(s, patch_idx.size() * (sizeof(eid_t) + sizeof(vid_t)));
    d_patch_idx_.mark_device_synced();
    d_patch_val_.mark_device_synced();

    auto idx_span = d_patch_idx_.cspan();
    auto val_span = d_patch_val_.cspan();
    auto cols = d_cols_.span();
    const std::uint64_t count = patch_idx.size();
    sim::LaunchConfig lc;
    lc.block_threads = cfg_.block_threads;
    lc.grid_blocks = core::auto_grid_blocks(dev_.profile(), count,
                                            cfg_.block_threads);
    // Every patch index is distinct, so the plain stores cannot race.
    dev_.launch(s, "dyn_apply_patch", lc, [=](sim::BlockCtx& blk) {
      auto& ctx = blk.ctx();
      blk.grid_stride(count, [&](std::uint64_t i) {
        const eid_t at = ctx.load(idx_span, i);
        ctx.store(cols, static_cast<std::size_t>(at), ctx.load(val_span, i));
        ctx.slots(1, 1);
      });
    });
    s.synchronize();
    patched_entries_.fetch_add(count, std::memory_order_relaxed);
  }
  device_tombs_ = std::move(target);

  // Insert overlay: small sorted (vertex, offset, cols) arrays rebuilt per
  // sync — overlay mass is bounded by the compaction threshold.
  std::vector<vid_t> ov_vid;
  ov_vid.reserve(g.extras().size());
  for (const auto& [v, _] : g.extras()) ov_vid.push_back(v);
  std::sort(ov_vid.begin(), ov_vid.end());
  std::vector<eid_t> ov_off(ov_vid.size() + 1, 0);
  std::vector<vid_t> ov_cols;
  ov_cols.reserve(g.extra_entries());
  for (std::size_t i = 0; i < ov_vid.size(); ++i) {
    const std::vector<vid_t>& ex = g.extras().at(ov_vid[i]);
    ov_cols.insert(ov_cols.end(), ex.begin(), ex.end());
    ov_off[i + 1] = ov_cols.size();
  }
  if (d_ov_vid_.size() < std::max<std::size_t>(1, ov_vid.size())) {
    const std::size_t cap = std::max<std::size_t>(1, ov_vid.size() * 2);
    d_ov_vid_ = dev_.alloc<vid_t>(cap, "dyn.ov_vid");
    d_ov_off_ = dev_.alloc<eid_t>(cap + 1, "dyn.ov_off");
  }
  if (d_ov_cols_.size() < std::max<std::size_t>(1, ov_cols.size())) {
    d_ov_cols_ = dev_.alloc<vid_t>(std::max<std::size_t>(1, ov_cols.size() * 2),
                                   "dyn.ov_cols");
  }
  if (!ov_vid.empty()) d_ov_vid_.h_copy_from(ov_vid.data(), ov_vid.size());
  d_ov_off_.h_copy_from(ov_off.data(), ov_off.size());
  if (!ov_cols.empty()) {
    d_ov_cols_.h_copy_from(ov_cols.data(), ov_cols.size());
  }
  dev_.memcpy_h2d(s, ov_vid.size() * sizeof(vid_t) +
                         ov_off.size() * sizeof(eid_t) +
                         ov_cols.size() * sizeof(vid_t));
  d_ov_vid_.mark_device_synced();
  d_ov_off_.mark_device_synced();
  d_ov_cols_.mark_device_synced();
  ov_count_ = static_cast<std::uint32_t>(ov_vid.size());

  synced_epoch_ = snap.epoch;
  synced_once_ = true;
  device_syncs_.fetch_add(1, std::memory_order_relaxed);
}

IncrementalBfs::RepairPlan IncrementalBfs::plan_repair(
    const DeltaCsr& g, const std::vector<std::int32_t>& old_levels,
    const EdgeBatch& ops, vid_t src) const {
  RepairPlan p;
  const vid_t n = g.num_vertices();
  const std::size_t footprint_cap =
      static_cast<std::size_t>(cfg_.dyn_repair_ratio * n) + 1;

  std::vector<char> in_dirty(n, 0);
  std::map<std::uint32_t, std::vector<vid_t>> suspects;
  std::vector<std::pair<vid_t, vid_t>> insert_pairs;
  for (const EdgeOp& op : ops.ops) {
    if (op.u == op.v || op.u >= n || op.v >= n) continue;
    if (op.insert) {
      p.delete_only = false;
      insert_pairs.emplace_back(op.u, op.v);
    } else {
      // A deletion only threatens the deeper endpoint of a tree-edge-shaped
      // pair (old levels differing by exactly one).
      if (old_levels[op.u] >= 0 && old_levels[op.v] == old_levels[op.u] + 1) {
        suspects[static_cast<std::uint32_t>(old_levels[op.v])].push_back(op.v);
      }
      if (old_levels[op.v] >= 0 && old_levels[op.u] == old_levels[op.v] + 1) {
        suspects[static_cast<std::uint32_t>(old_levels[op.u])].push_back(op.u);
      }
    }
  }

  // Invalidation cascade in ascending old-level order: a suspect stays
  // settled iff a level-1 neighbor outside D survives in the new graph.
  while (!suspects.empty()) {
    const auto sit = suspects.begin();
    const std::uint32_t lvl = sit->first;
    std::vector<vid_t> bucket = std::move(sit->second);
    suspects.erase(sit);
    for (const vid_t x : bucket) {
      if (in_dirty[x] ||
          old_levels[x] != static_cast<std::int32_t>(lvl) || x == src) {
        continue;
      }
      bool supported = false;
      g.for_each_neighbor(x, [&](vid_t w) {
        if (!supported && !in_dirty[w] &&
            old_levels[w] + 1 == static_cast<std::int32_t>(lvl)) {
          supported = true;
        }
      });
      if (supported) continue;
      in_dirty[x] = 1;
      p.dirty.push_back(x);
      if (p.dirty.size() > footprint_cap) {
        p.feasible = false;
        return p;
      }
      g.for_each_neighbor(x, [&](vid_t w) {
        if (!in_dirty[w] &&
            old_levels[w] == static_cast<std::int32_t>(lvl) + 1) {
          suspects[lvl + 1].push_back(w);
        }
      });
    }
  }

  // Repair frontier: the settled boundary of D, plus settled endpoints of
  // inserted edges (roots of any level-decrease cascade).  The lists stay
  // separate (with separate dedup) because bottom-up repairs drop the
  // boundary but must keep every insert seed.
  std::unordered_set<vid_t> in_boundary;
  for (const vid_t d : p.dirty) {
    g.for_each_neighbor(d, [&](vid_t w) {
      if (in_dirty[w] || old_levels[w] < 0) return;
      if (!in_boundary.insert(w).second) return;
      p.boundary.push_back(w);
      p.boundary_edges += g.degree(w);
      ++p.seed_count;
    });
  }
  std::unordered_set<vid_t> seeded;
  const auto add_seed = [&](vid_t w) {
    if (in_dirty[w] || old_levels[w] < 0) return;
    if (!seeded.insert(w).second) return;
    p.insert_seeds.push_back(w);
    ++p.seed_count;
  };
  // An insert endpoint is a useful seed only when the new edge can actually
  // improve its partner: partner dirty (unknown new level), unreached, or
  // more than one level deeper.  A settled partner at old[a]+1 or less
  // gains nothing from a settled `a` (labels are decrease-only), and if `a`
  // itself later improves it gets claimed and relaxes the edge anyway —
  // so the pruned seed can never be the missing predecessor.  On skewed
  // graphs this drops the vast majority of random-insert seeds.
  const auto maybe_seed = [&](vid_t a, vid_t b) {
    if (old_levels[a] < 0) return;
    if (in_dirty[b] || old_levels[b] < 0 ||
        old_levels[b] > old_levels[a] + 1) {
      add_seed(a);
    }
  };
  for (const auto& [u, v] : insert_pairs) {
    maybe_seed(u, v);
    maybe_seed(v, u);
  }

  if (p.dirty.size() + p.seed_count > footprint_cap) p.feasible = false;
  return p;
}

void IncrementalBfs::run_passes(
    const Snapshot& snap,
    const std::map<std::uint32_t, std::vector<vid_t>>& seeds,
    bool allow_pull, core::BfsResult& result) {
  sim::Stream& s = dev_.stream(0);
  const DeltaCsr& g = *snap.graph;
  const vid_t n = g.num_vertices();
  const std::uint64_t m = std::max<std::uint64_t>(1, g.num_edges());

  auto offsets = d_offsets_.cspan();
  auto cols = d_cols_.cspan();
  auto ov_vid = d_ov_vid_.cspan();
  auto ov_off = d_ov_off_.cspan();
  auto ov_cols = d_ov_cols_.cspan();
  auto status = d_status_.span();
  auto counters = d_counters_.span();
  auto edge_counter = d_edge_counter_.span();
  const std::uint32_t ov_n = ov_count_;

  auto seed_it = seeds.begin();
  std::uint32_t level = seed_it == seeds.end() ? 0 : seed_it->first;
  std::uint32_t cur_count = 0;
  std::uint64_t cur_edges = 0;
  bool cur_is_a = true;

  while (true) {
    if (seed_it != seeds.end() && seed_it->first == level) {
      const std::vector<vid_t>& sv = seed_it->second;
      d_seeds_.h_copy_from(sv.data(), sv.size());
      dev_.memcpy_h2d(s, sv.size() * sizeof(vid_t));
      d_seeds_.mark_device_synced();
      core::launch_append_queue(
          dev_, s, d_seeds_.cspan(), static_cast<std::uint32_t>(sv.size()),
          (cur_is_a ? d_queue_a_ : d_queue_b_).span(), cur_count,
          cfg_.block_threads);
      cur_count += static_cast<std::uint32_t>(sv.size());
      for (const vid_t v : sv) cur_edges += g.degree(v);
      ++seed_it;
    }
    if (cur_count == 0) {
      if (seed_it == seeds.end()) break;
      level = seed_it->first;  // dead stretch between seed buckets
      continue;
    }
    if (level > n + 1) break;  // safety net; levels are < n by construction

    dev_.profiler().set_context(static_cast<int>(level), "incremental");
    const double level_t0 = dev_.now_us();
    {
      sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
      dev_.launch(s, "dyn_reset_counters", rc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.threads([&](unsigned t) {
          if (t == 0) {
            ctx.store(counters, 0, std::uint32_t{0});
            ctx.store(edge_counter, 0, std::uint64_t{0});
          }
        });
      });
    }

    auto cur_queue = (cur_is_a ? d_queue_a_ : d_queue_b_).cspan();
    auto next_queue = (cur_is_a ? d_queue_b_ : d_queue_a_).span();
    const std::uint32_t next = level + 1;
    const std::uint32_t cur_level = level;
    const double ratio = static_cast<double>(cur_edges) / static_cast<double>(m);
    // The r-vs-alpha analogue, per pass: a wide frontier flips to the
    // bottom-up (pull) scan of the whole vertex range.  Pull's
    // settled-support argument needs decrease-free labels, which a full
    // recompute guarantees.
    const bool pull = allow_pull && ratio > cfg_.alpha;
    const std::uint64_t scan_count = n;

    sim::LaunchConfig lc;
    lc.block_threads = cfg_.block_threads;
    const std::uint64_t work = pull ? scan_count : cur_count;
    lc.grid_blocks = cfg_.grid_blocks != 0
                         ? cfg_.grid_blocks
                         : core::auto_grid_blocks(dev_.profile(),
                                                  std::max<std::uint64_t>(1, work),
                                                  cfg_.block_threads);

    if (!pull) {
      const std::uint32_t count = cur_count;
      dev_.launch(s, "dyn_repair_push", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        // Frontier-entry status pre-checks and neighbor degree loads race
        // with other blocks' atomic_min claims; the claim itself is atomic
        // and exactly-once (prior > next filters duplicates).
        sim::racy_ok allow(ctx,
                           "dyn-push: stale-entry status pre-check vs "
                           "concurrent atomic_min claims (decrease-only "
                           "relaxation; duplicates filtered by prior value)");
        blk.grid_stride(count, [&](std::uint64_t i) {
          const vid_t v = ctx.load(cur_queue, i);
          if (ctx.load(status, v) != cur_level) return;  // stale entry
          std::uint64_t probed = 0;
          std::uint64_t claimed_deg = 0;
          std::uint32_t claimed = 0;
          const auto relax = [&](vid_t w) {
            const std::uint32_t prior = ctx.atomic_min(status, w, next);
            if (prior > next) {
              const std::uint32_t slot =
                  ctx.atomic_add(counters, 0, std::uint32_t{1});
              ctx.store(next_queue, slot, w);
              claimed_deg +=
                  ctx.load(offsets, w + 1) - ctx.load(offsets, w);
              ++claimed;
            }
          };
          const eid_t b = ctx.load(offsets, v);
          const eid_t e = ctx.load(offsets, v + 1);
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cols, j);
            ++probed;
            if (w == kTombstone) continue;
            relax(w);
          }
          if (ov_n != 0) {
            std::uint32_t lo = 0, hi = ov_n;
            while (lo < hi) {
              const std::uint32_t mid = (lo + hi) / 2;
              if (ctx.load(ov_vid, mid) < v) {
                lo = mid + 1;
              } else {
                hi = mid;
              }
            }
            if (lo < ov_n && ctx.load(ov_vid, lo) == v) {
              const eid_t ob = ctx.load(ov_off, lo);
              const eid_t oe = ctx.load(ov_off, lo + 1);
              for (eid_t j = ob; j < oe; ++j) {
                ++probed;
                relax(ctx.load(ov_cols, j));
              }
            }
          }
          ctx.slots(probed, probed);
          if (claimed != 0) {
            ctx.atomic_add(edge_counter, 0, claimed_deg);
          }
        });
      });
    } else {
      dev_.launch(s, "dyn_repair_pull", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        // The candidate pre-check and the neighbor status probes race with
        // other blocks' claims; both directions of the race either defer
        // the vertex to a later pass or re-claim the same value.
        sim::racy_ok allow(ctx,
                           "dyn-pull: unsynchronized status probes vs "
                           "concurrent atomic_min claims (settled labels "
                           "are final in recompute passes)");
        blk.grid_stride(scan_count, [&](std::uint64_t i) {
          const vid_t v = static_cast<vid_t>(i);
          if (ctx.load(status, v) <= next) return;  // settled at or better
          std::uint64_t probed = 0;
          bool found = false;
          const eid_t b = ctx.load(offsets, v);
          const eid_t e = ctx.load(offsets, v + 1);
          for (eid_t j = b; j < e && !found; ++j) {
            const vid_t w = ctx.load(cols, j);
            ++probed;
            if (w == kTombstone) continue;
            if (ctx.load(status, w) == cur_level) found = true;
          }
          if (!found && ov_n != 0) {
            std::uint32_t lo = 0, hi = ov_n;
            while (lo < hi) {
              const std::uint32_t mid = (lo + hi) / 2;
              if (ctx.load(ov_vid, mid) < v) {
                lo = mid + 1;
              } else {
                hi = mid;
              }
            }
            if (lo < ov_n && ctx.load(ov_vid, lo) == v) {
              const eid_t ob = ctx.load(ov_off, lo);
              const eid_t oe = ctx.load(ov_off, lo + 1);
              for (eid_t j = ob; j < oe && !found; ++j) {
                ++probed;
                if (ctx.load(status, ctx.load(ov_cols, j)) == cur_level) {
                  found = true;
                }
              }
            }
          }
          ctx.slots(probed, found ? probed : 0);
          if (found) {
            const std::uint32_t prior = ctx.atomic_min(status, v, next);
            if (prior > next) {
              const std::uint32_t slot =
                  ctx.atomic_add(counters, 0, std::uint32_t{1});
              ctx.store(next_queue, slot, v);
              ctx.atomic_add(edge_counter, 0,
                             ctx.load(offsets, v + 1) - ctx.load(offsets, v));
            }
          }
        });
      });
    }

    s.synchronize();
    dev_.memcpy_d2h(s, d_counters_, d_edge_counter_);
    const std::uint32_t next_count = d_counters_.h_read(0);
    const std::uint64_t next_edges = d_edge_counter_.h_read(0);

    core::LevelStats st;
    st.level = level;
    st.strategy = pull ? core::Strategy::BottomUp : core::Strategy::ScanFree;
    st.frontier_count = cur_count;
    st.frontier_edges = cur_edges;
    st.ratio = ratio;
    st.time_ms = (dev_.now_us() - level_t0) / 1000.0;
    st.kernels = 2;
    result.level_stats.push_back(st);

    cur_is_a = !cur_is_a;
    cur_count = next_count;
    cur_edges = next_edges;
    ++level;
  }
}

bool IncrementalBfs::run_fixpoint(const Snapshot& snap,
                                  const std::vector<vid_t>& seed_vec,
                                  bool pull_mode, std::uint32_t dirty_count,
                                  core::BfsResult& result) {
  sim::Stream& s = dev_.stream(0);
  const DeltaCsr& g = *snap.graph;
  const vid_t n = g.num_vertices();
  if (seed_vec.empty() && (!pull_mode || dirty_count == 0)) {
    return true;  // nothing can improve; the prior labels stand
  }

  auto offsets = d_offsets_.cspan();
  auto cols = d_cols_.cspan();
  auto ov_vid = d_ov_vid_.cspan();
  auto ov_off = d_ov_off_.cspan();
  auto ov_cols = d_ov_cols_.cspan();
  auto status = d_status_.span();
  auto counters = d_counters_.span();
  auto edge_counter = d_edge_counter_.span();
  auto dirty = d_dirty_.cspan();
  const std::uint32_t ov_n = ov_count_;
  const std::uint32_t qcap = static_cast<std::uint32_t>(n);

  // The whole repair frontier goes in at once (one host write, no
  // per-bucket append kernels); rounds then run to quiescence.
  if (!seed_vec.empty()) {
    d_queue_a_.h_copy_from(seed_vec.data(), seed_vec.size());
    dev_.memcpy_h2d(s, seed_vec.size() * sizeof(vid_t));
    d_queue_a_.mark_device_synced();
  }
  std::uint32_t cur_count = static_cast<std::uint32_t>(seed_vec.size());
  std::uint64_t cur_edges = 0;
  for (const vid_t v : seed_vec) cur_edges += g.degree(v);
  bool cur_is_a = true;

  std::uint32_t round = 0;
  while (true) {
    if (round > n + 1) return false;  // safety net: cycles are impossible
    dev_.profiler().set_context(static_cast<int>(round), "incremental");
    const double round_t0 = dev_.now_us();
    {
      sim::LaunchConfig rc{.grid_blocks = 1, .block_threads = 64};
      dev_.launch(s, "dyn_reset_counters", rc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        blk.threads([&](unsigned t) {
          if (t == 0) {
            ctx.store(counters, 0, std::uint32_t{0});
            ctx.store(edge_counter, 0, std::uint64_t{0});
          }
        });
      });
    }

    auto cur_queue = (cur_is_a ? d_queue_a_ : d_queue_b_).cspan();
    auto next_queue = (cur_is_a ? d_queue_b_ : d_queue_a_).span();
    const bool do_pull = pull_mode && dirty_count != 0;
    unsigned kernels = 1;  // the counter reset

    if (cur_count != 0) {
      sim::LaunchConfig lc;
      lc.block_threads = cfg_.block_threads;
      lc.grid_blocks =
          cfg_.grid_blocks != 0
              ? cfg_.grid_blocks
              : core::auto_grid_blocks(
                    dev_.profile(),
                    std::max<std::uint64_t>(1, cur_count),
                    cfg_.block_threads);
      ++kernels;
      const std::uint32_t count = cur_count;
      dev_.launch(s, "dyn_fix_push", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        // Frontier label reads race with other blocks' atomic_min
        // decreases: a stale (higher) read only weakens this relaxation,
        // and whichever block lowered the label re-enqueued the vertex,
        // so the quiescent fixpoint is unchanged.
        sim::racy_ok allow(ctx,
                           "dyn-fix-push: frontier label reads vs "
                           "concurrent atomic_min decreases (decrease-only "
                           "fixpoint; improvements always re-enqueue)");
        blk.grid_stride(count, [&](std::uint64_t i) {
          const vid_t v = ctx.load(cur_queue, i);
          const std::uint32_t lvl = ctx.load(status, v);
          if (lvl == kUnvisited) return;  // defensive: seeds are settled
          const std::uint32_t next = lvl + 1;
          std::uint64_t probed = 0;
          std::uint64_t claimed_deg = 0;
          std::uint32_t claimed = 0;
          const auto relax = [&](vid_t w) {
            const std::uint32_t prior = ctx.atomic_min(status, w, next);
            if (prior > next) {
              const std::uint32_t slot =
                  ctx.atomic_add(counters, 0, std::uint32_t{1});
              if (slot < qcap) ctx.store(next_queue, slot, w);
              claimed_deg +=
                  ctx.load(offsets, w + 1) - ctx.load(offsets, w);
              ++claimed;
            }
          };
          const eid_t b = ctx.load(offsets, v);
          const eid_t e = ctx.load(offsets, v + 1);
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cols, j);
            ++probed;
            if (w == kTombstone) continue;
            relax(w);
          }
          if (ov_n != 0) {
            std::uint32_t lo = 0, hi = ov_n;
            while (lo < hi) {
              const std::uint32_t mid = (lo + hi) / 2;
              if (ctx.load(ov_vid, mid) < v) {
                lo = mid + 1;
              } else {
                hi = mid;
              }
            }
            if (lo < ov_n && ctx.load(ov_vid, lo) == v) {
              const eid_t ob = ctx.load(ov_off, lo);
              const eid_t oe = ctx.load(ov_off, lo + 1);
              for (eid_t j = ob; j < oe; ++j) {
                ++probed;
                relax(ctx.load(ov_cols, j));
              }
            }
          }
          ctx.slots(probed, probed);
          if (claimed != 0) {
            ctx.atomic_add(edge_counter, 0, claimed_deg);
          }
        });
      });
    }
    if (do_pull) {
      sim::LaunchConfig lc;
      lc.block_threads = cfg_.block_threads;
      lc.grid_blocks =
          cfg_.grid_blocks != 0
              ? cfg_.grid_blocks
              : core::auto_grid_blocks(
                    dev_.profile(),
                    std::max<std::uint64_t>(1, dirty_count),
                    cfg_.block_threads);
      ++kernels;
      const std::uint32_t dirty_n = dirty_count;
      dev_.launch(s, "dyn_fix_pull", lc, [=](sim::BlockCtx& blk) {
        auto& ctx = blk.ctx();
        // Neighbor label probes race with concurrent atomic_min
        // decreases: reading a label high only defers the improvement to
        // a later round (the loop runs until no round improves anything).
        sim::racy_ok allow(ctx,
                           "dyn-fix-pull: neighbor label probes vs "
                           "concurrent atomic_min decreases (decrease-only "
                           "fixpoint over the dirty list)");
        blk.grid_stride(dirty_n, [&](std::uint64_t i) {
          const vid_t v = ctx.load(dirty, i);
          const std::uint32_t cur = ctx.load(status, v);
          std::uint32_t best = kUnvisited;
          std::uint64_t probed = 0;
          const eid_t b = ctx.load(offsets, v);
          const eid_t e = ctx.load(offsets, v + 1);
          for (eid_t j = b; j < e; ++j) {
            const vid_t w = ctx.load(cols, j);
            ++probed;
            if (w == kTombstone) continue;
            const std::uint32_t lw = ctx.load(status, w);
            if (lw < best) best = lw;
          }
          if (ov_n != 0) {
            std::uint32_t lo = 0, hi = ov_n;
            while (lo < hi) {
              const std::uint32_t mid = (lo + hi) / 2;
              if (ctx.load(ov_vid, mid) < v) {
                lo = mid + 1;
              } else {
                hi = mid;
              }
            }
            if (lo < ov_n && ctx.load(ov_vid, lo) == v) {
              const eid_t ob = ctx.load(ov_off, lo);
              const eid_t oe = ctx.load(ov_off, lo + 1);
              for (eid_t j = ob; j < oe; ++j) {
                ++probed;
                const std::uint32_t lw =
                    ctx.load(status, ctx.load(ov_cols, j));
                if (lw < best) best = lw;
              }
            }
          }
          if (best == kUnvisited || best + 1 >= cur) {
            ctx.slots(probed, 0);
            return;
          }
          ctx.slots(probed, probed);
          const std::uint32_t cand = best + 1;
          const std::uint32_t prior = ctx.atomic_min(status, v, cand);
          if (prior > cand) {
            const std::uint32_t slot =
                ctx.atomic_add(counters, 0, std::uint32_t{1});
            if (slot < qcap) ctx.store(next_queue, slot, v);
            ctx.atomic_add(edge_counter, 0,
                           ctx.load(offsets, v + 1) - ctx.load(offsets, v));
          }
        });
      });
    }

    s.synchronize();
    dev_.memcpy_d2h(s, d_counters_, d_edge_counter_);
    const std::uint32_t next_count = d_counters_.h_read(0);
    const std::uint64_t next_edges = d_edge_counter_.h_read(0);
    if (next_count > qcap) return false;  // queue overflow; recompute

    core::LevelStats st;
    st.level = round;
    st.strategy =
        do_pull ? core::Strategy::BottomUp : core::Strategy::ScanFree;
    st.frontier_count = cur_count;
    st.frontier_edges = cur_edges;
    st.ratio = static_cast<double>(cur_edges) /
               static_cast<double>(std::max<graph::eid_t>(1, g.num_edges()));
    st.time_ms = (dev_.now_us() - round_t0) / 1000.0;
    st.kernels = kernels;
    result.level_stats.push_back(st);

    cur_is_a = !cur_is_a;
    cur_count = next_count;
    cur_edges = next_edges;
    ++round;
    if (next_count == 0) break;  // quiescent: no label improved this round
  }
  return true;
}

core::BfsResult IncrementalBfs::run(vid_t src) {
  runs_.fetch_add(1, std::memory_order_relaxed);
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  const std::size_t prof_start = dev_.profiler().records().size();
  core::BfsResult result;

  const Snapshot snap = store_.snapshot();
  sync_device(snap);
  snap_ = snap;
  const DeltaCsr& g = *snap.graph;
  const vid_t n = g.num_vertices();
  if (src >= n) throw std::invalid_argument("IncrementalBfs: bad source");

  // Decide: repair from the prior level array, or full recompute.
  bool repair = false;
  RepairPlan plan;
  LastRun lr;
  lr.epoch = snap.epoch;
  lr.fallback = "no-history";
  const auto hit = history_.find(src);
  if (hit != history_.end()) {
    bool truncated = false;
    const std::optional<EdgeBatch> ops =
        store_.ops_between(hit->second.epoch, snap.epoch, &truncated);
    if (!ops) {
      fallbacks_log_.fetch_add(1, std::memory_order_relaxed);
      // Distinguish discarded history (the bounded log wrapped) from a
      // stale/bogus remembered epoch — both recompute, but only the former
      // is capacity pressure an operator can size away.
      lr.fallback = truncated ? "log-gap" : "epoch-range";
    } else {
      plan = plan_repair(g, hit->second.levels, *ops, src);
      lr.dirty = plan.dirty.size();
      lr.seeds = plan.seed_count;
      if (plan.feasible) {
        repair = true;
        lr.fallback = "";
      } else {
        fallbacks_ratio_.fetch_add(1, std::memory_order_relaxed);
        lr.fallback = "ratio";
      }
    }
  }

  if (repair) {
    const std::vector<std::int32_t>& old = hit->second.levels;
    for (vid_t v = 0; v < n; ++v) {
      status_host_[v] = old[v] < 0 ? kUnvisited
                                   : static_cast<std::uint32_t>(old[v]);
    }
    for (const vid_t d : plan.dirty) status_host_[d] = kUnvisited;
    const std::uint32_t dirty_count =
        static_cast<std::uint32_t>(plan.dirty.size());
    std::uint64_t dirty_edges = 0;
    if (dirty_count != 0) {
      d_dirty_.h_copy_from(plan.dirty.data(), plan.dirty.size());
      dev_.memcpy_h2d(s, plan.dirty.size() * sizeof(vid_t));
      d_dirty_.mark_device_synced();
      for (const vid_t d : plan.dirty) dirty_edges += g.degree(d);
    }
    // r-vs-alpha on the repair subproblem: push the settled boundary
    // top-down while its edges stay under alpha x the dirty region's
    // incident edges; past that (hub-heavy boundaries) flip bottom-up and
    // pull into the dirty list instead, never walking hub adjacencies.
    const bool pull_mode =
        dirty_count != 0 &&
        static_cast<double>(plan.boundary_edges) >
            cfg_.alpha * static_cast<double>(std::max<std::uint64_t>(
                             1, dirty_edges));
    std::vector<vid_t> seed_vec;
    seed_vec.reserve(plan.seed_count);
    if (!pull_mode) {
      seed_vec.insert(seed_vec.end(), plan.boundary.begin(),
                      plan.boundary.end());
    }
    seed_vec.insert(seed_vec.end(), plan.insert_seeds.begin(),
                    plan.insert_seeds.end());
    dirty_vertices_.fetch_add(dirty_count, std::memory_order_relaxed);
    repair_seeds_.fetch_add(plan.seed_count, std::memory_order_relaxed);

    // One full status upload per run: repair starts from the prior labels
    // (4|V| bytes h2d), which is what it pays instead of re-traversing.
    d_status_.h_copy_from(status_host_.data(), n);
    dev_.memcpy_h2d(s, d_status_);
    if (!run_fixpoint(snap, seed_vec, pull_mode, dirty_count, result)) {
      // Repair queue overflowed its |V| capacity — the footprint estimate
      // was wrong in the same direction the ratio bound guards against.
      repair = false;
      fallbacks_ratio_.fetch_add(1, std::memory_order_relaxed);
      lr.fallback = "overflow";
      result.level_stats.clear();
    }
  }
  if (!repair) {
    std::fill(status_host_.begin(), status_host_.end(), kUnvisited);
    status_host_[src] = 0;
    std::map<std::uint32_t, std::vector<vid_t>> seeds;
    seeds[0].push_back(src);
    d_status_.h_copy_from(status_host_.data(), n);
    dev_.memcpy_h2d(s, d_status_);
    run_passes(snap, seeds, /*allow_pull=*/true, result);
  }

  dev_.memcpy_d2h(s, d_status_);
  s.synchronize();
  const std::uint32_t* status_host = std::as_const(d_status_).host_data();
  result.levels.resize(n);
  std::int32_t max_level = 0;
  std::uint64_t reached_degree = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (status_host[v] == kUnvisited) {
      result.levels[v] = -1;
    } else {
      result.levels[v] = static_cast<std::int32_t>(status_host[v]);
      max_level = std::max(max_level, result.levels[v]);
      reached_degree += g.degree(v);
    }
  }
  result.depth = static_cast<std::uint32_t>(max_level) + 1;
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  result.edges_traversed = reached_degree / 2;
  result.gteps = core::safe_gteps(result.edges_traversed, result.total_ms);

  remember(src, result.levels, snap.epoch);
  const std::uint64_t spent_us =
      static_cast<std::uint64_t>(result.total_ms * 1000.0);
  if (repair) {
    repairs_.fetch_add(1, std::memory_order_relaxed);
    repair_us_.fetch_add(spent_us, std::memory_order_relaxed);
  } else {
    recomputes_.fetch_add(1, std::memory_order_relaxed);
    recompute_us_.fetch_add(spent_us, std::memory_order_relaxed);
  }
  lr.valid = true;
  lr.repair = repair;
  last_run_ = lr;
  if (cfg_.report_runs) {
    core::record_run(result, "incremental_bfs", n, g.num_edges(),
                     static_cast<std::int64_t>(src), &cfg_,
                     &dev_.profiler(), prof_start);
  }
  return result;
}

void IncrementalBfs::remember(vid_t src,
                              const std::vector<std::int32_t>& levels,
                              std::uint64_t epoch) {
  const auto it = history_.find(src);
  if (it == history_.end()) {
    while (history_order_.size() >=
           std::max(1u, cfg_.dyn_history_sources)) {
      history_.erase(history_order_.front());
      history_order_.pop_front();
    }
    history_order_.push_back(src);
  }
  history_[src] = Prior{levels, epoch};
}

void IncrementalBfs::clear_history() {
  history_.clear();
  history_order_.clear();
}

DynEngineStats IncrementalBfs::stats() const {
  DynEngineStats s;
  s.runs = runs_.load(std::memory_order_relaxed);
  s.repairs = repairs_.load(std::memory_order_relaxed);
  s.recomputes = recomputes_.load(std::memory_order_relaxed);
  s.fallbacks_ratio = fallbacks_ratio_.load(std::memory_order_relaxed);
  s.fallbacks_log = fallbacks_log_.load(std::memory_order_relaxed);
  s.dirty_vertices = dirty_vertices_.load(std::memory_order_relaxed);
  s.repair_seeds = repair_seeds_.load(std::memory_order_relaxed);
  s.device_syncs = device_syncs_.load(std::memory_order_relaxed);
  s.full_uploads = full_uploads_.load(std::memory_order_relaxed);
  s.patched_entries = patched_entries_.load(std::memory_order_relaxed);
  s.repair_ms = static_cast<double>(
                    repair_us_.load(std::memory_order_relaxed)) / 1000.0;
  s.recompute_ms = static_cast<double>(
                       recompute_us_.load(std::memory_order_relaxed)) / 1000.0;
  return s;
}

}  // namespace xbfs::dyn
