// IncrementalBfs: BFS over a dynamic graph with incremental repair
// (docs/dynamic.md), the dynamic-graph TraversalEngine.
//
// The engine keeps, per source, the level array of its last run and the
// epoch it was computed at.  On the next run for that source it replays
// the update batches between the two epochs (GraphStore::ops_between) and
// repairs instead of recomputing:
//
//   1. Invalidation (host, Ramalingam/Reps-style): deleted edges seed
//      "suspect" vertices whose old level might have depended on the lost
//      edge; suspects are processed in ascending old-level order — a
//      suspect with a surviving level-1 neighbor outside the dirty set is
//      still supported, anything else joins the dirty set D and cascades
//      to its old level+1 neighbors.  Levels outside D remain valid upper
//      bounds on the new graph.
//   2. Repair frontier: the settled boundary of D plus the still-settled
//      endpoints of inserted edges that can actually improve their partner.
//      D resets to unvisited; the frontier is injected at once and an
//      asynchronous decrease-only fixpoint (device atomic_min, enqueue on
//      every improvement) runs until quiescent.  Rounds scale with the
//      dirty-region diameter, not the graph depth — that locality is where
//      repair beats recompute.  The adaptive policy is the paper's
//      r-vs-alpha bound applied to the subproblem: when the boundary
//      frontier's edges stay under alpha times the dirty region's incident
//      edges, repair pushes top-down from the boundary; past it (hub-heavy
//      boundaries) repair flips bottom-up — every round pulls 1+min over
//      neighbors into the dirty list only, so hub adjacencies are never
//      walked, while filtered insert endpoints still push so improvements
//      outside D propagate.
//   3. Policy: when (|D| + seeds) / |V| exceeds
//      XbfsConfig::dyn_repair_ratio — the dynamic analogue of the paper's
//      r-vs-alpha bound — repair would touch too much of the graph and the
//      engine falls back to a full recompute: the classic level-synchronous
//      bucket machinery seeded with {src@0}, everything dirty, bottom-up
//      passes chosen per level by the same alpha ratio.
//
// Device state is a mirror of the DeltaCsr: the flat base CSR uploaded
// once per base_version (re-uploaded after compact()), deletions patched
// in place as kTombstone sentinels in the cols array (revived by writing
// the original vertex id back), and the insert overlay as a small sorted
// (vertex, offset, cols) triple rebuilt per epoch sync.  All kernel memory
// traffic goes through the SimSan-checked ExecCtx accessors; the
// intentional status races carry sim::racy_ok annotations.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/traversal_engine.h"
#include "dyn/graph_store.h"
#include "hipsim/device.h"

namespace xbfs::dyn {

/// Monotonic engine counters (relaxed atomics — stats() may be read while
/// another thread is inside run()).
struct DynEngineStats {
  std::uint64_t runs = 0;
  std::uint64_t repairs = 0;            ///< served by incremental repair
  std::uint64_t recomputes = 0;         ///< full recomputes (incl. fallbacks)
  std::uint64_t fallbacks_ratio = 0;    ///< repair exceeded dyn_repair_ratio
  std::uint64_t fallbacks_log = 0;      ///< epoch gap fell off the store log
  std::uint64_t dirty_vertices = 0;     ///< summed |D| across repairs
  std::uint64_t repair_seeds = 0;       ///< summed seed-frontier sizes
  std::uint64_t device_syncs = 0;       ///< incremental epoch syncs
  std::uint64_t full_uploads = 0;       ///< base re-uploads (first/compact)
  std::uint64_t patched_entries = 0;    ///< in-place tombstone/revive writes
  double repair_ms = 0.0;               ///< modelled, summed over repairs
  double recompute_ms = 0.0;            ///< modelled, summed over recomputes
};

class IncrementalBfs final : public core::TraversalEngine {
 public:
  /// Only the dyn_* knobs, alpha, block_threads/grid_blocks and
  /// report_runs of `cfg` are read.  Throws std::invalid_argument on an
  /// invalid config.
  IncrementalBfs(sim::Device& dev, GraphStore& store,
                 core::XbfsConfig cfg = {});

  /// Canonical hop distances from `src` on the store's current snapshot.
  /// Not reentrant (device buffers are reused) — callers serialize runs
  /// per engine, as the serving ladder does.
  core::BfsResult run(graph::vid_t src) override;

  const char* name() const override { return "incremental"; }
  core::EngineCapabilities capabilities() const override {
    return {.on_device = true, .adaptive = true, .builds_parents = false};
  }

  DynEngineStats stats() const;
  /// The snapshot the last run() traversed (valid under the same
  /// serialization as run(); the serving path reads it while still holding
  /// the per-GCD lock).
  const Snapshot& served() const { return snap_; }

  /// Why the last run() took the path it did: repair vs recompute, the
  /// fallback reason, and the dirty-region footprint.  Valid under the
  /// same serialization as run()/served(); the serving path copies it
  /// while still holding the per-GCD lock and threads it into the query
  /// trace (read-lane causality for the write lane's epoch).
  struct LastRun {
    bool valid = false;
    bool repair = false;
    /// Recompute reason: "" (repaired or cold), "no-history", "log-gap",
    /// "ratio", "overflow".
    const char* fallback = "";
    std::uint64_t epoch = 0;  ///< snapshot epoch traversed
    std::uint64_t dirty = 0;  ///< |D| of the attempted repair plan
    std::uint64_t seeds = 0;  ///< repair seed-frontier size
  };
  const LastRun& last_run() const { return last_run_; }
  /// Drop all prior-level history: every subsequent run() recomputes.
  void clear_history();

 private:
  /// What a repair run must touch, derived on the host from the prior
  /// levels and the replayed ops.
  struct RepairPlan {
    bool feasible = true;
    bool delete_only = true;
    std::vector<graph::vid_t> dirty;  ///< D: reset to unvisited
    /// Settled boundary of D (pushed only in top-down repairs) and the
    /// filtered inserted-edge endpoints (always pushed).  The two lists
    /// may overlap; push relaxation is idempotent.
    std::vector<graph::vid_t> boundary;
    std::vector<graph::vid_t> insert_seeds;
    std::uint64_t boundary_edges = 0;  ///< Σ degree over `boundary`
    std::size_t seed_count = 0;
  };

  void sync_device(const Snapshot& snap);
  RepairPlan plan_repair(const DeltaCsr& g,
                         const std::vector<std::int32_t>& old_levels,
                         const EdgeBatch& ops, graph::vid_t src) const;
  /// Full-recompute path: the level-synchronous push/pull pass loop over
  /// whatever status_host_ was seeded with (per-level seed buckets,
  /// bottom-up scans over the full vertex range past alpha).
  void run_passes(const Snapshot& snap,
                  const std::map<std::uint32_t,
                                 std::vector<graph::vid_t>>& seeds,
                  bool allow_pull, core::BfsResult& result);
  /// Repair path: asynchronous decrease-only fixpoint from `seeds` (all
  /// injected up front).  In `pull_mode` every round additionally scans
  /// the dirty list (d_dirty_, `dirty_count` entries) bottom-up, so hub
  /// boundaries never have to be pushed; rounds run until no label
  /// improves.  Returns false on queue overflow (caller falls back to
  /// recompute).
  bool run_fixpoint(const Snapshot& snap,
                    const std::vector<graph::vid_t>& seeds, bool pull_mode,
                    std::uint32_t dirty_count, core::BfsResult& result);
  void remember(graph::vid_t src, const std::vector<std::int32_t>& levels,
                std::uint64_t epoch);

  sim::Device& dev_;
  GraphStore& store_;
  core::XbfsConfig cfg_;
  Snapshot snap_;  ///< last synced/served snapshot

  // Device mirror of the DeltaCsr.
  sim::DeviceBuffer<graph::eid_t> d_offsets_;
  sim::DeviceBuffer<graph::vid_t> d_cols_;
  sim::DeviceBuffer<graph::vid_t> d_ov_vid_;   ///< touched vertices, sorted
  sim::DeviceBuffer<graph::eid_t> d_ov_off_;   ///< ov_count_+1 offsets
  sim::DeviceBuffer<graph::vid_t> d_ov_cols_;  ///< inserted neighbors
  std::uint32_t ov_count_ = 0;
  sim::DeviceBuffer<graph::eid_t> d_patch_idx_;
  sim::DeviceBuffer<graph::vid_t> d_patch_val_;
  /// Base-cols indices currently holding the kTombstone sentinel on the
  /// device (diffed against the snapshot's tombstones per sync).
  std::unordered_set<graph::eid_t> device_tombs_;
  std::uint64_t synced_base_version_ = 0;
  std::uint64_t synced_epoch_ = 0;
  bool synced_once_ = false;

  // Traversal state.
  sim::DeviceBuffer<std::uint32_t> d_status_;
  sim::DeviceBuffer<graph::vid_t> d_queue_a_;
  sim::DeviceBuffer<graph::vid_t> d_queue_b_;
  sim::DeviceBuffer<graph::vid_t> d_dirty_;
  sim::DeviceBuffer<graph::vid_t> d_seeds_;
  sim::DeviceBuffer<std::uint32_t> d_counters_;      ///< [0] next-queue tail
  sim::DeviceBuffer<std::uint64_t> d_edge_counter_;  ///< [0] claimed degree
  std::vector<std::uint32_t> status_host_;

  // Per-source prior levels (FIFO-bounded by cfg_.dyn_history_sources).
  struct Prior {
    std::vector<std::int32_t> levels;
    std::uint64_t epoch = 0;
  };
  std::unordered_map<graph::vid_t, Prior> history_;
  std::deque<graph::vid_t> history_order_;
  LastRun last_run_;

  // Counters (relaxed; modelled times kept as integer microseconds so the
  // whole stats block stays lock-free).
  std::atomic<std::uint64_t> runs_{0};
  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> recomputes_{0};
  std::atomic<std::uint64_t> fallbacks_ratio_{0};
  std::atomic<std::uint64_t> fallbacks_log_{0};
  std::atomic<std::uint64_t> dirty_vertices_{0};
  std::atomic<std::uint64_t> repair_seeds_{0};
  std::atomic<std::uint64_t> device_syncs_{0};
  std::atomic<std::uint64_t> full_uploads_{0};
  std::atomic<std::uint64_t> patched_entries_{0};
  std::atomic<std::uint64_t> repair_us_{0};
  std::atomic<std::uint64_t> recompute_us_{0};
};

}  // namespace xbfs::dyn
