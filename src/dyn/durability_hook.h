// DurabilityHook: the seam between dyn::GraphStore's serialized writer
// lane and the durable write path in src/store (docs/durability.md).
//
// The store layer implements this interface (store::DurabilityManager);
// dyn only sees the abstract hook, so the dependency points store -> dyn
// and a GraphStore without a hook pays nothing.  The contract mirrors the
// classic WAL discipline, durable-then-visible:
//
//   1. want_compact() lets the hook add compaction pressure (the periodic
//      "compacted snapshot spill" policy) on top of the overlay-density
//      trigger — compaction points are exactly where snapshots are taken,
//      so a recovered store and a never-killed twin share the same
//      base/overlay split and therefore the same fingerprints.
//   2. append() runs BEFORE publication, still under the writer lock: the
//      hook must make the batch durable (WAL record + fsync) or return a
//      non-ok Status, in which case the store aborts the apply and the
//      epoch never becomes visible.  `compacted` is recorded in the WAL so
//      recovery replays the exact same compaction schedule.
//   3. published() runs AFTER publication, still on the writer lane; on a
//      compaction the hook spills the snapshot and rotates the WAL there.
#pragma once

#include <cstdint>

#include "core/status_code.h"
#include "dyn/edge_batch.h"

namespace xbfs::dyn {

struct Snapshot;

/// Durable write-path and recovery counters, surfaced through
/// GraphStore::durability() into serve::ServerStats.  The recovery block
/// is all-zero on a store that was initialized fresh.
struct DurabilityStats {
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_append_failures = 0;  ///< torn/short writes (rolled back)
  std::uint64_t fsyncs = 0;
  std::uint64_t fsync_failures = 0;  ///< fsync faults (record rolled back)
  std::uint64_t wal_bytes = 0;       ///< live bytes in the current segment
  std::uint64_t snapshots_spilled = 0;
  std::uint64_t wal_rotations = 0;
  std::uint64_t last_durable_epoch = 0;
  std::uint64_t last_durable_fingerprint = 0;
  // --- recovery (how this store came back; docs/durability.md) -----------
  bool recovered = false;            ///< store was opened from durable state
  bool torn_tail_detected = false;   ///< final WAL record failed CRC, truncated
  std::uint64_t recovered_epoch = 0;
  std::uint64_t recovered_fingerprint = 0;
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t wal_bytes_truncated = 0;  ///< torn tail dropped on recovery
};

class DurabilityHook {
 public:
  virtual ~DurabilityHook() = default;

  /// Extra compaction pressure beyond the density trigger
  /// (`density_wants`).  `next_epoch` is the epoch the in-flight batch
  /// will publish as.  Returning true forces compact() before append().
  virtual bool want_compact(std::uint64_t next_epoch, double density,
                            bool density_wants) = 0;

  /// Make the batch durable before it becomes visible.  Called on the
  /// serialized writer lane; a non-ok return aborts the apply (the store
  /// publishes nothing and surfaces the status to the caller).
  virtual xbfs::Status append(const EdgeBatch& batch, std::uint64_t epoch,
                              std::uint64_t fingerprint,
                              std::uint64_t prev_fingerprint,
                              bool compacted) = 0;

  /// The batch is now visible.  On `compacted`, spill the content-addressed
  /// snapshot and rotate the WAL.  Still on the writer lane — snapshot
  /// readers are unaffected.
  virtual void published(const Snapshot& snap, bool compacted) = 0;

  virtual DurabilityStats stats() const = 0;
};

}  // namespace xbfs::dyn
