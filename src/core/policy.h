// The adaptive strategy controller (paper Sec. III intro + Sec. V-D).
//
// Per level the controller sees the size and edge mass of the upcoming
// frontier and decides which generation strategy runs:
//   * ratio = frontier_edges / |E| > alpha            -> bottom-up
//   * otherwise top-down; between scan-free and single-scan the frontier
//     *growth rate* decides, and the No-Frontier-Generation variant skips
//     the generation scan when the previous strategy left a usable queue.
#pragma once

#include <cstdint>

#include "core/config.h"

namespace xbfs::core {

/// What the runner knows when it must choose a strategy for a level.
struct LevelInputs {
  std::uint32_t level = 0;
  std::uint64_t frontier_count = 0;  ///< vertices in the upcoming frontier
  std::uint64_t frontier_edges = 0;  ///< sum of their degrees
  std::uint64_t prev_frontier_count = 0;
  std::uint64_t total_edges = 1;     ///< |E| of the graph
  bool queue_available = false;      ///< previous pass materialized the queue
  bool has_prev = false;
  Strategy prev_strategy = Strategy::ScanFree;
};

struct LevelDecision {
  Strategy strategy = Strategy::ScanFree;
  /// Single-scan only: skip the generation scan and reuse the queue (NFG).
  bool skip_generation = false;
  double ratio = 0.0;  ///< frontier_edges / total_edges, for telemetry
};

class AdaptivePolicy {
 public:
  explicit AdaptivePolicy(const XbfsConfig& cfg) : cfg_(cfg) {}

  LevelDecision decide(const LevelInputs& in) const;

 private:
  XbfsConfig cfg_;
};

}  // namespace xbfs::core
