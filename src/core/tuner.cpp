#include "core/tuner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "core/xbfs.h"

namespace xbfs::core {

namespace {

bool is_strategy_kernel(Strategy s, const std::string& kernel) {
  switch (s) {
    case Strategy::ScanFree:
      return kernel.find("xbfs_scanfree_expand") != std::string::npos ||
             kernel.find("xbfs_classify_bins") != std::string::npos;
    case Strategy::SingleScan:
      return kernel.find("xbfs_singlescan_") != std::string::npos;
    case Strategy::BottomUp:
      return kernel.find("xbfs_bu_") != std::string::npos;
  }
  return false;
}

/// Per-level (ratio, strategy-kernel time) trace of one forced run.
struct ProbeTrace {
  std::vector<double> ratio;
  std::vector<double> kernels_ms;
};

ProbeTrace probe(const sim::DeviceProfile& profile, const graph::Csr& g,
                 graph::vid_t src, Strategy strategy,
                 const XbfsConfig& base) {
  sim::SimOptions so;
  so.num_workers = 1;
  sim::Device dev(profile, so);
  dev.warmup();
  auto dg = graph::DeviceCsr::upload(dev, g);
  XbfsConfig cfg = base;
  cfg.forced_strategy = static_cast<int>(strategy);
  Xbfs bfs(dev, dg, cfg);
  dev.profiler().clear();
  const BfsResult r = bfs.run(src);

  ProbeTrace t;
  t.ratio.resize(r.level_stats.size());
  t.kernels_ms.assign(r.level_stats.size(), 0.0);
  for (std::size_t lvl = 0; lvl < r.level_stats.size(); ++lvl) {
    t.ratio[lvl] = r.level_stats[lvl].ratio;
  }
  for (const sim::LaunchRecord& rec : dev.profiler().records()) {
    if (rec.level < 0 ||
        static_cast<std::size_t>(rec.level) >= t.kernels_ms.size()) {
      continue;
    }
    if (is_strategy_kernel(strategy, rec.kernel)) {
      t.kernels_ms[static_cast<std::size_t>(rec.level)] += rec.runtime_ms();
    }
  }
  return t;
}

}  // namespace

TunerReport tune_alpha(const sim::DeviceProfile& profile,
                       const graph::Csr& g, const TunerOptions& opt) {
  TunerReport report;
  report.recommended_alpha = opt.fallback_alpha;

  for (graph::vid_t src : opt.probe_sources) {
    const ProbeTrace sf =
        probe(profile, g, src, Strategy::ScanFree, opt.base_config);
    const ProbeTrace ss =
        probe(profile, g, src, Strategy::SingleScan, opt.base_config);
    const ProbeTrace bu =
        probe(profile, g, src, Strategy::BottomUp, opt.base_config);
    const std::size_t depth =
        std::min({sf.ratio.size(), ss.ratio.size(), bu.ratio.size()});
    for (std::size_t lvl = 0; lvl < depth; ++lvl) {
      TunerReport::Sample s;
      s.ratio = sf.ratio[lvl];
      s.scanfree_ms = sf.kernels_ms[lvl];
      s.singlescan_ms = ss.kernels_ms[lvl];
      s.bottomup_ms = bu.kernels_ms[lvl];
      report.samples.push_back(s);
    }
  }

  // Bracket the crossover: the largest ratio where top-down still won and
  // the smallest where bottom-up won.
  double lo = 0.0, hi = 1.0;
  bool saw_lo = false, saw_hi = false;
  for (const TunerReport::Sample& s : report.samples) {
    if (s.ratio <= 0.0) continue;
    const double topdown = std::min(s.scanfree_ms, s.singlescan_ms);
    if (s.bottomup_ms < topdown) {
      if (!saw_hi || s.ratio < hi) hi = s.ratio;
      saw_hi = true;
    } else {
      if (!saw_lo || s.ratio > lo) lo = s.ratio;
      saw_lo = true;
    }
  }
  report.bracket_low = lo;
  report.bracket_high = hi;
  report.bracket_found = saw_lo && saw_hi && lo < hi;
  if (report.bracket_found) {
    // Geometric mean of the bracket: ratios span orders of magnitude.
    report.recommended_alpha = std::sqrt(lo * hi);
  } else if (saw_hi && !saw_lo) {
    // Bottom-up always won where observed: be aggressive.
    report.recommended_alpha = hi / 2.0;
  } else if (saw_lo && !saw_hi) {
    // Bottom-up never won: effectively disable it (1.1 > any ratio).
    report.recommended_alpha =
        std::min(1.1, std::max(opt.fallback_alpha, 2.0 * lo));
  }
  return report;
}

}  // namespace xbfs::core
