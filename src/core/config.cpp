#include "core/config.h"

#include <cmath>
#include <string>

namespace xbfs::core {

Status XbfsConfig::validate() const {
  if (!(alpha > 0.0) || !std::isfinite(alpha)) {
    return Status::Invalid(
        "alpha must be positive and finite (adaptive range (0,1); > 1 "
        "disables bottom-up), got " + std::to_string(alpha));
  }
  if (!(growth_threshold > 0.0) || !std::isfinite(growth_threshold)) {
    return Status::Invalid("growth_threshold must be positive and finite, "
                           "got " + std::to_string(growth_threshold));
  }
  if (block_threads < 1) {
    return Status::Invalid("block_threads must be >= 1");
  }
  if (stream_mode == StreamMode::TripleBinned &&
      medium_min_degree >= large_min_degree) {
    return Status::Invalid(
        "TripleBinned bin edges must satisfy medium_min_degree < "
        "large_min_degree, got " + std::to_string(medium_min_degree) +
        " >= " + std::to_string(large_min_degree));
  }
  if (!(bottomup_spill_factor > 0.0) || !std::isfinite(bottomup_spill_factor)) {
    return Status::Invalid("bottomup_spill_factor must be positive and "
                           "finite");
  }
  if (!(dyn_compact_threshold > 0.0) || !std::isfinite(dyn_compact_threshold)) {
    return Status::Invalid("dyn_compact_threshold must be positive and "
                           "finite, got " +
                           std::to_string(dyn_compact_threshold));
  }
  if (!(dyn_repair_ratio > 0.0) || dyn_repair_ratio > 1.0) {
    return Status::Invalid("dyn_repair_ratio must be in (0, 1], got " +
                           std::to_string(dyn_repair_ratio));
  }
  if (dyn_history_sources < 1) {
    return Status::Invalid("dyn_history_sources must be >= 1");
  }
  return Status::Ok();
}

}  // namespace xbfs::core
