// Compatibility re-export (PR 8 API generalization): the engine
// vocabulary moved to core/algorithm_engine.h, where TraversalEngine is
// now the BFS adapter of the typed AlgorithmEngine family (AlgoKind,
// AlgoQuery, ResultPayload).  BfsResult, LevelStats, EngineCapabilities,
// and safe_gteps moved with it; existing includes of this header keep
// working unchanged.  docs/api.md has the old -> new migration table.
#pragma once

#include "core/algorithm_engine.h"
