// The engine vocabulary: every BFS runner in the repository — the adaptive
// XBFS runner, the simulated-GPU baselines, the host CPU fallbacks —
// implements one interface, so consumers (the serving engine's degradation
// ladder, the conformance test suite, benches) hold an ordered
// vector<unique_ptr<TraversalEngine>> instead of hard-coded types.
//
// The shared result/telemetry types (BfsResult, LevelStats, safe_gteps)
// live here too; core/xbfs.h re-exports them, so existing includes keep
// working.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "graph/csr.h"

namespace xbfs::core {

/// Telemetry for one BFS level.
struct LevelStats {
  std::uint32_t level = 0;
  Strategy strategy = Strategy::ScanFree;
  bool skipped_generation = false;   ///< NFG variant fired
  std::uint64_t frontier_count = 0;  ///< vertices expanded this level
  std::uint64_t frontier_edges = 0;  ///< their total degree
  double ratio = 0.0;                ///< frontier_edges / |E|
  double time_ms = 0.0;              ///< modelled level time (kernels+syncs)
  double fetch_kb = 0.0;             ///< HBM fetch traffic this level
  unsigned kernels = 0;              ///< kernel launches this level
};

/// GTEPS = edges traversed / (total_ms * 1e6), guarded so trivial runs
/// (single-vertex graphs, zero modelled time) report 0 rather than inf/nan.
/// Every runner — XBFS, baselines, dist — computes throughput through this.
inline double safe_gteps(std::uint64_t edges_traversed, double total_ms) {
  if (!std::isfinite(total_ms) || total_ms <= 0.0) return 0.0;
  return static_cast<double>(edges_traversed) / (total_ms * 1e6);
}

struct BfsResult {
  std::vector<std::int32_t> levels;  ///< -1 = unreached
  std::vector<graph::vid_t> parent;  ///< empty unless engine builds parents
  std::vector<LevelStats> level_stats;
  double total_ms = 0.0;             ///< modelled (device) or wall (host) time
  std::uint64_t edges_traversed = 0; ///< undirected edges in the traversal
  double gteps = 0.0;                ///< edges_traversed / total_ms
  std::uint32_t depth = 0;           ///< number of BFS levels run
};

/// What a caller may rely on without knowing the concrete engine type.  The
/// serving ladder orders engines from fastest-but-faultable (adaptive, on
/// the simulated device) to slowest-but-immune (host CPU).
struct EngineCapabilities {
  /// Runs on the simulated GPU — subject to injected device faults
  /// (kernel failures, transfer corruption); host engines are immune.
  bool on_device = false;
  /// Picks a traversal strategy per level (XBFS's adaptive policy).
  bool adaptive = false;
  /// run() fills BfsResult::parent.
  bool builds_parents = false;
};

/// One single-source BFS engine.  run() must produce canonical hop
/// distances (-1 = unreached) — every implementation is interchangeable and
/// bit-identical on levels, which is what lets the serving engine degrade
/// between them without clients noticing anything but latency.
class TraversalEngine {
 public:
  virtual ~TraversalEngine() = default;

  /// One traversal from `src`.  May be called repeatedly; implementations
  /// reuse their buffers.  Throws (e.g. sim::FaultInjected) on simulated
  /// device faults — callers on the resilient path catch and retry.
  virtual BfsResult run(graph::vid_t src) = 0;

  /// Stable short identifier ("xbfs", "simple-scan", "cpu-parallel", ...).
  virtual const char* name() const = 0;

  virtual EngineCapabilities capabilities() const = 0;
};

}  // namespace xbfs::core
