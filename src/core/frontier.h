// Frontier queues and level counters: every device buffer one XBFS run
// needs, plus the small host<->device transfers (modelled) that read the
// per-level counters back for the adaptive controller.
#pragma once

#include <cstdint>

#include "graph/csr.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::core {

/// Indices into BfsBuffers::counters (uint32 slots).
enum CounterSlot : std::size_t {
  kNextTail = 0,     ///< next-level frontier queue tail
  kPendingTail = 1,  ///< look-ahead (level+2) queue tail
  kNewCount = 2,     ///< newly visited count (single-scan expand)
  kCurTail = 3,      ///< current queue tail (generation scans)
  kBinSmall = 4,     ///< triple-binned small-queue tail
  kBinMedium = 5,
  kBinLarge = 6,
  kNumCounters = 7,
};

/// Indices into BfsBuffers::edge_counters (uint64 slots).
enum EdgeCounterSlot : std::size_t {
  kNextEdges = 0,     ///< sum of degrees of next-level frontier
  kPendingEdges = 1,  ///< sum of degrees of look-ahead vertices
  kNumEdgeCounters = 2,
};

struct BfsBuffers {
  sim::DeviceBuffer<std::uint32_t> status;   ///< n
  sim::DeviceBuffer<graph::vid_t> parent;    ///< n (empty unless requested)
  sim::DeviceBuffer<graph::vid_t> queue_a;   ///< n (current/next, swapped)
  sim::DeviceBuffer<graph::vid_t> queue_b;   ///< n
  /// Look-ahead (level+2) vertices, double-buffered: pass k appends the
  /// previous pass's pending to the next queue while writing its own.
  sim::DeviceBuffer<graph::vid_t> pending_a;
  sim::DeviceBuffer<graph::vid_t> pending_b;
  sim::DeviceBuffer<graph::vid_t> bu_queue;  ///< n (bottom-up candidates)
  sim::DeviceBuffer<std::uint32_t> counters;       ///< kNumCounters
  sim::DeviceBuffer<std::uint64_t> edge_counters;  ///< kNumEdgeCounters
  // Bottom-up double-scan scratch.
  sim::DeviceBuffer<std::uint32_t> seg_counts;
  sim::DeviceBuffer<std::uint32_t> seg_offsets;
  sim::DeviceBuffer<std::uint32_t> block_sums;
  // Triple-binned queues (allocated only in that stream mode).
  sim::DeviceBuffer<graph::vid_t> bin_small;
  sim::DeviceBuffer<graph::vid_t> bin_medium;
  sim::DeviceBuffer<graph::vid_t> bin_large;
  /// Frontier bitmaps (1 bit/vertex) for the bottom-up bit-status check,
  /// rotated cur/next/next-next so look-ahead claims land in the right
  /// level's map.  Allocated only when XbfsConfig::bottomup_bitmap is set.
  sim::DeviceBuffer<std::uint64_t> bitmaps[3];

  std::uint32_t num_segments = 0;
  std::uint32_t segment_size = 0;

  static BfsBuffers allocate(sim::Device& dev, graph::vid_t n,
                             std::uint32_t segment_size,
                             std::uint32_t scan_blocks, bool with_parents,
                             bool with_bins, bool with_bitmaps = false);

  std::size_t bitmap_words(graph::vid_t n) const {
    return (static_cast<std::size_t>(n) + 63) / 64;
  }
};

/// Host-side snapshot of the level counters (one modelled d2h readback).
struct LevelCounters {
  std::uint32_t next_count = 0;
  std::uint32_t pending_count = 0;
  std::uint32_t new_count = 0;
  std::uint32_t cur_count = 0;
  std::uint64_t next_edges = 0;
  std::uint64_t pending_edges = 0;
};

/// Kernel: zero the per-level counters.
void launch_reset_counters(sim::Device& dev, sim::Stream& s, BfsBuffers& b);

/// Kernel: place the source vertex — status[src]=0, queue[0]=src, tail=1,
/// and its bit in the level-0 frontier bitmap when one is supplied.
void launch_enqueue_source(sim::Device& dev, sim::Stream& s, BfsBuffers& b,
                           sim::dspan<graph::vid_t> queue, graph::vid_t src,
                           sim::dspan<std::uint64_t> bitmap0 = {});

/// Read the counters back to the host (charges the modelled d2h time).
LevelCounters read_counters(sim::Device& dev, sim::Stream& s,
                            const BfsBuffers& b);

/// Kernel: clear a frontier bitmap (O(|V|/64) stores).
void launch_clear_bitmap(sim::Device& dev, sim::Stream& s,
                         sim::dspan<std::uint64_t> bitmap,
                         unsigned block_threads);

/// Kernel: append `count` entries of `src_queue` to `dst_queue` starting at
/// `dst_offset` (used to merge the carried pending queue into the next
/// frontier).
void launch_append_queue(sim::Device& dev, sim::Stream& s,
                         sim::dspan<const graph::vid_t> src_queue,
                         std::uint32_t count,
                         sim::dspan<graph::vid_t> dst_queue,
                         std::uint32_t dst_offset, unsigned block_threads);

}  // namespace xbfs::core
