#include "core/policy.h"

namespace xbfs::core {

LevelDecision AdaptivePolicy::decide(const LevelInputs& in) const {
  LevelDecision d;
  d.ratio = static_cast<double>(in.frontier_edges) /
            static_cast<double>(in.total_edges ? in.total_edges : 1);

  if (cfg_.forced_strategy >= 0) {
    d.strategy = static_cast<Strategy>(cfg_.forced_strategy);
    // Forced mode mirrors the paper's per-strategy profiling runs: every
    // kernel of the strategy executes at every level (Tables III-V), so the
    // NFG shortcut stays off.
    d.skip_generation = false;
    return d;
  }

  if (d.ratio > cfg_.alpha) {
    d.strategy = Strategy::BottomUp;
    return d;
  }

  if (!in.queue_available) {
    // No materialized queue (previous level ran single-scan): the
    // generation scan is mandatory, which *is* the single-scan strategy.
    d.strategy = Strategy::SingleScan;
    return d;
  }

  if (in.has_prev && in.prev_strategy == Strategy::BottomUp &&
      cfg_.enable_nfg) {
    // Transitioning out of bottom-up: single-scan can reuse the queue the
    // bottom-up pass enqueued and skip generation entirely — the paper's
    // level-5 choice ("often making it faster than scan-free here").
    d.strategy = Strategy::SingleScan;
    d.skip_generation = true;
    return d;
  }

  const double growth =
      in.prev_frontier_count > 0
          ? static_cast<double>(in.frontier_count) /
                static_cast<double>(in.prev_frontier_count)
          : 1.0;
  if (growth > cfg_.growth_threshold) {
    // Rapidly growing frontier: scan-free's CAS + duplicate-enqueue costs
    // scale with the expansion; the single scan amortizes better.
    d.strategy = Strategy::SingleScan;
    d.skip_generation = cfg_.enable_nfg;
  } else {
    d.strategy = Strategy::ScanFree;
  }
  return d;
}

}  // namespace xbfs::core
