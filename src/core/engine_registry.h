// EngineRegistry: name -> factory resolution for the algorithm family.
//
// The serving engine resolves engines per query kind through the registry
// instead of hard-coding concrete types: at startup it builds, for every
// enabled AlgoKind, a degradation ladder (device engines in rung order)
// plus a fault-immune host fallback, all from registered factories.
// Examples and the conformance suite iterate list() so a newly registered
// engine is automatically served, validated against its host oracle, and
// shown in `--list-engines` style tooling with zero call-site edits.
//
// Factories receive an EngineContext describing what the process has
// (device, uploaded CSR, host topology, dynamic store, tuning config) and
// return null when the context is insufficient — e.g. a device engine
// without a device — so one registration works for host-only tools too.
//
// Registration happens at startup through explicit calls (the builtin set
// lives in algos::register_builtin_engines()); there is deliberately no
// static-initializer magic, which the linker may dead-strip out of static
// libraries.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/algorithm_engine.h"
#include "core/config.h"

namespace xbfs::sim {
class Device;
}
namespace xbfs::graph {
struct DeviceCsr;
class Csr;
}
namespace xbfs::dyn {
class GraphStore;
}

namespace xbfs::core {

/// What a factory may draw on; null members mean "not available here".
/// Non-owning — the caller keeps everything alive for the engine's life.
struct EngineContext {
  sim::Device* dev = nullptr;             ///< simulated GPU
  const graph::DeviceCsr* dg = nullptr;   ///< CSR resident on `dev`
  const graph::Csr* host_g = nullptr;     ///< host topology (oracles, transposes)
  dyn::GraphStore* store = nullptr;       ///< dynamic-graph store (incremental engines)
  const XbfsConfig* config = nullptr;     ///< tuning knobs; null = defaults
};

using EngineFactory =
    std::function<std::unique_ptr<AlgorithmEngine>(const EngineContext&)>;

/// list() row: everything about a registration except the factory.
struct EngineInfo {
  AlgoKind kind = AlgoKind::Bfs;
  std::string name;
  /// Degradation-ladder position; 0 = preferred.  Negative = registered
  /// for direct build()/conformance only, never placed in a serving
  /// ladder (e.g. the async-SSSP BFS baseline).
  int rung = 0;
  bool on_device = false;
};

class EngineRegistry {
 public:
  /// The process-wide registry every consumer resolves against.
  static EngineRegistry& global();

  EngineRegistry() = default;
  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

  /// Register (or replace — same kind+name wins latest) an engine factory.
  /// `on_device` must match what the built engine's capabilities() report;
  /// it is lifted here so ladder construction needn't instantiate engines.
  void register_engine(AlgoKind kind, std::string name, int rung,
                       bool on_device, EngineFactory factory);

  /// Build one engine by (kind, name); null when unknown or when the
  /// factory declines the context.
  std::unique_ptr<AlgorithmEngine> build(AlgoKind kind, const std::string& name,
                                         const EngineContext& ctx) const;

  /// Device degradation ladder for `kind`: every on-device registration
  /// with rung >= 0, ordered by rung, minus factories that decline the
  /// context.  May be empty (host-only process).
  std::vector<std::unique_ptr<AlgorithmEngine>> build_ladder(
      AlgoKind kind, const EngineContext& ctx) const;

  /// The preferred host (fault-immune) engine for `kind`: lowest-rung
  /// non-device registration the context can satisfy, or null.
  std::unique_ptr<AlgorithmEngine> build_host(AlgoKind kind,
                                              const EngineContext& ctx) const;

  /// Any registration (device or host) exists for `kind`.
  bool supports(AlgoKind kind) const;

  /// Every registration, kind-major then rung order.
  std::vector<EngineInfo> list() const;

 private:
  struct Entry {
    EngineInfo info;
    EngineFactory factory;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace xbfs::core
