#include "core/status.h"

#include <algorithm>

#include "core/config.h"

namespace xbfs::core {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::ScanFree:
      return "scan-free";
    case Strategy::SingleScan:
      return "single-scan";
    case Strategy::BottomUp:
      return "bottom-up";
  }
  return "?";
}

unsigned auto_grid_blocks(const sim::DeviceProfile& profile,
                          std::uint64_t work, unsigned block_threads,
                          unsigned waves_per_cu) {
  const std::uint64_t needed =
      (work + block_threads - 1) / std::max(1u, block_threads);
  const std::uint64_t cap =
      std::uint64_t{profile.num_cus} * std::max(1u, waves_per_cu);
  return static_cast<unsigned>(std::clamp<std::uint64_t>(needed, 1, cap));
}

void launch_init_status(sim::Device& dev, sim::Stream& s,
                        sim::dspan<std::uint32_t> status,
                        unsigned block_threads) {
  sim::LaunchConfig cfg;
  cfg.block_threads = block_threads;
  cfg.grid_blocks =
      auto_grid_blocks(dev.profile(), status.size(), block_threads);
  dev.launch(s, "xbfs_init_status", cfg, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(status.size(),
                    [&](std::uint64_t i) { ctx.store(status, i, kUnvisited); });
  });
}

void launch_init_parent(sim::Device& dev, sim::Stream& s,
                        sim::dspan<graph::vid_t> parent,
                        unsigned block_threads) {
  sim::LaunchConfig cfg;
  cfg.block_threads = block_threads;
  cfg.grid_blocks =
      auto_grid_blocks(dev.profile(), parent.size(), block_threads);
  dev.launch(s, "xbfs_init_parent", cfg, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(parent.size(),
                    [&](std::uint64_t i) { ctx.store(parent, i, kNoParent); });
  });
}

}  // namespace xbfs::core
