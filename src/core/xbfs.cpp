#include "core/xbfs.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/kernels_bottomup.h"
#include "core/kernels_topdown.h"
#include "core/report.h"
#include "core/status.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xbfs::core {

using graph::eid_t;
using graph::vid_t;

namespace {

/// Fail construction loudly on a nonsense configuration instead of
/// clamping it into something the caller never asked for.
void check_config(const XbfsConfig& cfg) {
  if (const Status s = cfg.validate(); !s.ok()) {
    throw std::invalid_argument("XbfsConfig: " + s.to_string());
  }
}

std::uint32_t pick_segment_size(const sim::DeviceProfile& profile,
                                const XbfsConfig& cfg) {
  const unsigned w = profile.wavefront_size;
  std::uint32_t seg = cfg.bu_segment_size != 0 ? cfg.bu_segment_size : 512;
  // "The length of each segment is made evenly divisible by ... the number
  // of threads in a warp" (paper Sec. III-C).
  seg = (seg + w - 1) / w * w;
  return std::max<std::uint32_t>(seg, w);
}

}  // namespace

struct Xbfs::FrontierState {
  sim::dspan<const vid_t> cur_queue;
  sim::dspan<vid_t> cur_queue_mut;  ///< same buffer, for generation scans
  sim::dspan<vid_t> next_queue;
  sim::dspan<vid_t> pending_queue;  ///< this pass's look-ahead output
  // Bit-status extension (empty when disabled).
  sim::dspan<const std::uint64_t> bitmap_cur;
  sim::dspan<std::uint64_t> bitmap_next;
  sim::dspan<std::uint64_t> bitmap_nextnext;
  std::uint32_t cur_count = 0;
  // Per-level accumulation (filled by the run_* methods).
  mutable sim::KernelCounters accum;
  mutable unsigned kernels = 0;

  void add(const sim::LaunchResult& r) const {
    accum += r.counters;
    ++kernels;
  }
};

Xbfs::Xbfs(sim::Device& dev, const graph::DeviceCsr& g, XbfsConfig cfg)
    : dev_(dev),
      g_(g),
      cfg_((check_config(cfg), cfg)),
      policy_(cfg),
      buffers_(BfsBuffers::allocate(
          dev, g.n, pick_segment_size(dev.profile(), cfg),
          bu_scan_blocks(dev.profile(),
                         (g.n + pick_segment_size(dev.profile(), cfg) - 1) /
                             pick_segment_size(dev.profile(), cfg),
                         cfg.block_threads),
          cfg.build_parents,
          cfg.stream_mode == StreamMode::TripleBinned,
          cfg.bottomup_bitmap)) {
  if (cfg_.stream_mode == StreamMode::TripleBinned) {
    bin_streams_[0] = &dev_.create_stream("bin-small");
    bin_streams_[1] = &dev_.create_stream("bin-medium");
    bin_streams_[2] = &dev_.create_stream("bin-large");
  }
}

void Xbfs::run_scanfree(const FrontierState& fs, std::uint32_t level) {
  sim::Stream& s = dev_.stream(0);
  TopDownArgs a;
  a.offsets = g_.offsets_span();
  a.cols = g_.cols_span();
  a.status = buffers_.status.span();
  if (!buffers_.parent.empty()) a.parent = buffers_.parent.span();
  a.queue = fs.cur_queue;
  a.queue_size = fs.cur_count;
  a.next_queue = fs.next_queue;
  a.counters = buffers_.counters.span();
  a.edge_counters = buffers_.edge_counters.span();
  a.bitmap_next = fs.bitmap_next;
  a.cur_level = level;

  if (cfg_.stream_mode == StreamMode::Single) {
    fs.add(launch_scanfree_expand(dev_, s, a, cfg_));
    return;
  }

  // CUDA XBFS's three-stream design: classify the frontier into degree bins
  // and expand each bin with a dedicated kernel on its own stream.  On the
  // MI250X profile the cross-stream joins cost more than the overlap saves —
  // the paper's reason to consolidate into one stream.
  fs.add(launch_classify_bins(dev_, s, a, buffers_.bin_small.span(),
                              buffers_.bin_medium.span(),
                              buffers_.bin_large.span(), cfg_));
  // Host reads the three bin sizes to size the launches (a partial copy,
  // so the modelled byte count stays 3 words; the sync mark is manual).
  dev_.memcpy_d2h(s, 3 * sizeof(std::uint32_t));
  buffers_.counters.mark_host_synced();
  const std::uint32_t n_small = buffers_.counters.h_read(kBinSmall);
  const std::uint32_t n_medium = buffers_.counters.h_read(kBinMedium);
  const std::uint32_t n_large = buffers_.counters.h_read(kBinLarge);

  std::vector<sim::Stream*> all = {&s, bin_streams_[0], bin_streams_[1],
                                   bin_streams_[2]};
  dev_.join_streams(all);  // expansions wait on classification
  if (n_small > 0) {
    fs.add(launch_scanfree_expand_bin(dev_, *bin_streams_[0], a,
                                      buffers_.bin_small.cspan(), n_small,
                                      Balancing::ThreadCentric,
                                      "xbfs_scanfree_expand_small", cfg_));
  }
  if (n_medium > 0) {
    fs.add(launch_scanfree_expand_bin(dev_, *bin_streams_[1], a,
                                      buffers_.bin_medium.cspan(), n_medium,
                                      Balancing::WavefrontCentric,
                                      "xbfs_scanfree_expand_medium", cfg_));
  }
  if (n_large > 0) {
    fs.add(launch_scanfree_expand_bin(dev_, *bin_streams_[2], a,
                                      buffers_.bin_large.cspan(), n_large,
                                      Balancing::WavefrontCentric,
                                      "xbfs_scanfree_expand_large", cfg_));
  }
  dev_.join_streams(all);  // the level boundary waits on all three bins
}

void Xbfs::run_singlescan(const FrontierState& fs, std::uint32_t level,
                          bool skip_generation,
                          std::uint32_t* generated_count) {
  sim::Stream& s = dev_.stream(0);
  std::uint32_t queue_size = fs.cur_count;
  if (!skip_generation) {
    fs.add(launch_singlescan_generate(dev_, s, buffers_.status.span(),
                                      fs.cur_queue_mut,
                                      buffers_.counters.span(), level, cfg_));
    // The host needs the generated queue size to shape the expansion launch.
    dev_.memcpy_d2h(s, sizeof(std::uint32_t));
    buffers_.counters.mark_host_synced();
    queue_size = buffers_.counters.h_read(kCurTail);
  }
  *generated_count = queue_size;

  TopDownArgs a;
  a.offsets = g_.offsets_span();
  a.cols = g_.cols_span();
  a.status = buffers_.status.span();
  if (!buffers_.parent.empty()) a.parent = buffers_.parent.span();
  a.queue = fs.cur_queue;
  a.queue_size = queue_size;
  a.next_queue = fs.next_queue;  // unused: single-scan builds no queue
  a.counters = buffers_.counters.span();
  a.edge_counters = buffers_.edge_counters.span();
  a.bitmap_next = fs.bitmap_next;
  a.cur_level = level;
  fs.add(launch_singlescan_expand(dev_, s, a, cfg_));
}

void Xbfs::run_bottomup(const FrontierState& fs, std::uint32_t level) {
  sim::Stream& s = dev_.stream(0);
  BottomUpArgs a;
  a.offsets = g_.offsets_span();
  a.cols = g_.cols_span();
  a.status = buffers_.status.span();
  if (!buffers_.parent.empty()) a.parent = buffers_.parent.span();
  a.bu_queue = buffers_.bu_queue.span();
  a.next_queue = fs.next_queue;
  a.pending_queue = fs.pending_queue;
  a.seg_counts = buffers_.seg_counts.span();
  a.seg_offsets = buffers_.seg_offsets.span();
  a.block_sums = buffers_.block_sums.span();
  a.counters = buffers_.counters.span();
  a.edge_counters = buffers_.edge_counters.span();
  a.bitmap_cur = fs.bitmap_cur;
  a.bitmap_next = fs.bitmap_next;
  a.bitmap_nextnext = fs.bitmap_nextnext;
  a.n = g_.n;
  a.num_segments = buffers_.num_segments;
  a.segment_size = buffers_.segment_size;
  a.cur_level = level;

  fs.add(launch_bu_count(dev_, s, a, cfg_));
  fs.add(launch_bu_scan_block(dev_, s, a, cfg_));
  fs.add(launch_bu_scan_final(dev_, s, a, cfg_));
  // Host reads the candidate total to shape the expansion launch.
  dev_.memcpy_d2h(s, sizeof(std::uint32_t));
  buffers_.counters.mark_host_synced();
  const std::uint32_t candidates = buffers_.counters.h_read(kCurTail);
  fs.add(launch_bu_queue_gen(dev_, s, a, cfg_));
  fs.add(launch_bu_expand(dev_, s, a, candidates, cfg_));
}

namespace {

/// Per-level telemetry fan-out: one "level N" span on the bfs track, one
/// strategy-decision instant on the policy track, plus decision counters.
void emit_level_telemetry(sim::Device& dev, const LevelStats& st,
                          double level_t0_us, double level_end_us) {
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    obs::Span sp;
    sp.name = "level " + std::to_string(st.level);
    sp.category = "level";
    sp.track = "bfs";
    sp.pid = dev.trace_pid();
    sp.sim_start_us = level_t0_us;
    sp.sim_dur_us = level_end_us - level_t0_us;
    sp.attr("strategy", std::string(strategy_name(st.strategy)));
    sp.attr("nfg", st.skipped_generation);
    sp.attr("frontier", st.frontier_count);
    sp.attr("edges", st.frontier_edges);
    sp.attr("ratio", st.ratio);
    sp.attr("fetch_kb", st.fetch_kb);
    sp.attr("kernels", static_cast<std::uint64_t>(st.kernels));
    tr.complete(std::move(sp));

    std::vector<obs::SpanAttr> attrs;
    attrs.push_back({"ratio", obs::json_number(st.ratio), true});
    attrs.push_back({"nfg", st.skipped_generation ? "true" : "false", true});
    tr.instant(std::string("decide:") + strategy_name(st.strategy),
               "strategy", "policy", dev.trace_pid(), level_t0_us,
               std::move(attrs));
  }
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) {
    mx.counter(std::string("xbfs.decision.") + strategy_name(st.strategy))
        .add();
    if (st.skipped_generation) mx.counter("xbfs.decision.nfg").add();
    mx.histogram("xbfs.level_ms").observe(st.time_ms);
  }
}

}  // namespace

BfsResult Xbfs::run(vid_t src) {
  assert(src < g_.n);
  sim::Stream& s = dev_.stream(0);
  const double t0_us = dev_.now_us();
  const std::size_t prof_start = dev_.profiler().records().size();
  BfsResult result;

  dev_.profiler().set_context(-1, "setup");
  launch_init_status(dev_, s, buffers_.status.span(), cfg_.block_threads);
  if (!buffers_.parent.empty()) {
    launch_init_parent(dev_, s, buffers_.parent.span(), cfg_.block_threads);
  }
  launch_reset_counters(dev_, s, buffers_);
  const bool bitmaps_on = cfg_.bottomup_bitmap;
  if (bitmaps_on) {
    // Fresh run on a reused instance: all three rotating maps start clean.
    for (auto& bm : buffers_.bitmaps) {
      launch_clear_bitmap(dev_, s, bm.span(), cfg_.block_threads);
    }
  }
  launch_enqueue_source(dev_, s, buffers_, buffers_.queue_a.span(), src,
                        bitmaps_on ? buffers_.bitmaps[0].span()
                                   : sim::dspan<std::uint64_t>{});

  // Level-0 frontier metadata; the degree readback models the host peeking
  // at two offsets.
  const eid_t* offsets_host = g_.offsets.host_data();
  std::uint64_t cur_count = 1;
  std::uint64_t cur_edges = offsets_host[src + 1] - offsets_host[src];
  dev_.memcpy_d2h(s, 2 * sizeof(eid_t));

  bool use_a_queue = true;
  bool use_a_pending = true;
  std::uint64_t carry_count = 0, carry_edges = 0;

  LevelInputs in0;
  in0.level = 0;
  in0.frontier_count = cur_count;
  in0.frontier_edges = cur_edges;
  in0.prev_frontier_count = 0;
  in0.total_edges = g_.m;
  in0.queue_available = true;
  in0.has_prev = false;
  LevelDecision decision = policy_.decide(in0);

  for (std::uint32_t level = 0;; ++level) {
    dev_.profiler().set_context(
        static_cast<int>(level), strategy_name(decision.strategy));
    const double level_t0 = dev_.now_us();
    launch_reset_counters(dev_, s, buffers_);

    FrontierState fs;
    auto& curq = use_a_queue ? buffers_.queue_a : buffers_.queue_b;
    auto& nextq = use_a_queue ? buffers_.queue_b : buffers_.queue_a;
    auto& pendq = use_a_pending ? buffers_.pending_a : buffers_.pending_b;
    auto& carried_pendq = use_a_pending ? buffers_.pending_b
                                        : buffers_.pending_a;
    fs.cur_queue = curq.cspan();
    fs.cur_queue_mut = curq.span();
    fs.next_queue = nextq.span();
    fs.pending_queue = pendq.span();
    fs.cur_count = static_cast<std::uint32_t>(cur_count);
    if (bitmaps_on) {
      // Rotate the three frontier bitmaps; the incoming next-next map still
      // holds level-(k-1) bits and must be wiped before look-ahead claims
      // land in it.
      fs.bitmap_cur = buffers_.bitmaps[level % 3].cspan();
      fs.bitmap_next = buffers_.bitmaps[(level + 1) % 3].span();
      fs.bitmap_nextnext = buffers_.bitmaps[(level + 2) % 3].span();
      if (level > 0) {
        launch_clear_bitmap(dev_, s, fs.bitmap_nextnext, cfg_.block_threads);
      }
    }

    std::uint32_t executed_count = fs.cur_count;
    switch (decision.strategy) {
      case Strategy::ScanFree:
        run_scanfree(fs, level);
        break;
      case Strategy::SingleScan:
        run_singlescan(fs, level, decision.skip_generation, &executed_count);
        break;
      case Strategy::BottomUp:
        run_bottomup(fs, level);
        break;
    }
    s.synchronize();  // per-level device synchronization (Sec. IV-B cost)
    const LevelCounters lc = read_counters(dev_, s, buffers_);

    const bool built_queue = decision.strategy != Strategy::SingleScan;
    const std::uint64_t next_count_raw =
        built_queue ? lc.next_count : lc.new_count;
    const std::uint64_t next_count = next_count_raw + carry_count;
    const std::uint64_t next_edges = lc.next_edges + carry_edges;

    LevelStats st;
    st.level = level;
    st.strategy = decision.strategy;
    st.skipped_generation = decision.strategy == Strategy::SingleScan &&
                            decision.skip_generation;
    st.frontier_count = executed_count;
    st.frontier_edges = cur_edges;
    st.ratio = decision.ratio;
    st.fetch_kb = fs.accum.fetch_kb();
    st.kernels = fs.kernels;
    st.time_ms = (dev_.now_us() - level_t0) / 1000.0;
    emit_level_telemetry(dev_, st, level_t0, dev_.now_us());
    result.level_stats.push_back(st);

    if (next_count == 0 && lc.pending_count == 0) break;

    LevelInputs in;
    in.level = level + 1;
    in.frontier_count = next_count;
    in.frontier_edges = next_edges;
    in.prev_frontier_count = cur_count;
    in.total_edges = g_.m;
    in.queue_available = built_queue;
    in.has_prev = true;
    in.prev_strategy = decision.strategy;
    const LevelDecision next_decision = policy_.decide(in);

    // Merge the carried look-ahead vertices (level+1) into the next queue
    // when the next pass consumes that queue as its frontier.
    const bool consumes_queue =
        built_queue &&
        (next_decision.strategy == Strategy::ScanFree ||
         (next_decision.strategy == Strategy::SingleScan &&
          next_decision.skip_generation));
    if (consumes_queue && carry_count > 0) {
      launch_append_queue(dev_, s, carried_pendq.cspan(),
                          static_cast<std::uint32_t>(carry_count),
                          fs.next_queue,
                          static_cast<std::uint32_t>(next_count_raw),
                          cfg_.block_threads);
    }

    carry_count = lc.pending_count;
    carry_edges = lc.pending_edges;
    use_a_pending = !use_a_pending;
    if (built_queue) use_a_queue = !use_a_queue;

    cur_count = next_count;
    cur_edges = next_edges;
    decision = next_decision;
  }

  // Read the status (and parent) arrays back to the host; the typed copies
  // charge the same n-word transfers and mark the buffers host-synced.
  const std::uint64_t n = g_.n;
  dev_.memcpy_d2h(s, buffers_.status);
  result.levels.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint32_t st = buffers_.status.h_read(v);
    result.levels[v] = st == kUnvisited ? std::int32_t{-1}
                                        : static_cast<std::int32_t>(st);
  }
  if (!buffers_.parent.empty()) {
    dev_.memcpy_d2h(s, buffers_.parent);
    const graph::vid_t* parent_host = std::as_const(buffers_.parent).host_data();
    result.parent.assign(parent_host, parent_host + n);
  }
  s.synchronize();

  result.depth = static_cast<std::uint32_t>(result.level_stats.size());
  result.total_ms = (dev_.now_us() - t0_us) / 1000.0;
  std::uint64_t reached_degree = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (result.levels[v] >= 0) {
      reached_degree += offsets_host[v + 1] - offsets_host[v];
    }
  }
  result.edges_traversed = reached_degree / 2;
  result.gteps = safe_gteps(result.edges_traversed, result.total_ms);

  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    obs::Span sp;
    sp.name = "xbfs.run";
    sp.category = "run";
    sp.track = "bfs";
    sp.pid = dev_.trace_pid();
    sp.sim_start_us = t0_us;
    sp.sim_dur_us = dev_.now_us() - t0_us;
    sp.attr("source", static_cast<std::int64_t>(src));
    sp.attr("depth", static_cast<std::uint64_t>(result.depth));
    sp.attr("gteps", result.gteps);
    sp.attr("edges_traversed", result.edges_traversed);
    tr.complete(std::move(sp));
  }
  if (cfg_.report_runs) {
    record_run(result, "xbfs", g_.n, g_.m, static_cast<std::int64_t>(src),
               &cfg_, &dev_.profiler(), prof_start);
  }
  return result;
}

}  // namespace xbfs::core
