#include "core/engine_registry.h"

#include <algorithm>

namespace xbfs::core {

EngineRegistry& EngineRegistry::global() {
  static EngineRegistry r;
  return r;
}

void EngineRegistry::register_engine(AlgoKind kind, std::string name, int rung,
                                     bool on_device, EngineFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.info.kind == kind && e.info.name == name) {
      e.info.rung = rung;
      e.info.on_device = on_device;
      e.factory = std::move(factory);
      return;
    }
  }
  entries_.push_back(
      Entry{EngineInfo{kind, std::move(name), rung, on_device},
            std::move(factory)});
}

std::unique_ptr<AlgorithmEngine> EngineRegistry::build(
    AlgoKind kind, const std::string& name, const EngineContext& ctx) const {
  EngineFactory f;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.info.kind == kind && e.info.name == name) {
        f = e.factory;
        break;
      }
    }
  }
  return f ? f(ctx) : nullptr;
}

std::vector<std::unique_ptr<AlgorithmEngine>> EngineRegistry::build_ladder(
    AlgoKind kind, const EngineContext& ctx) const {
  std::vector<Entry> picks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.info.kind == kind && e.info.on_device && e.info.rung >= 0) {
        picks.push_back(e);
      }
    }
  }
  std::stable_sort(picks.begin(), picks.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.info.rung < b.info.rung;
                   });
  std::vector<std::unique_ptr<AlgorithmEngine>> ladder;
  for (const Entry& e : picks) {
    if (auto engine = e.factory(ctx)) ladder.push_back(std::move(engine));
  }
  return ladder;
}

std::unique_ptr<AlgorithmEngine> EngineRegistry::build_host(
    AlgoKind kind, const EngineContext& ctx) const {
  std::vector<Entry> picks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.info.kind == kind && !e.info.on_device && e.info.rung >= 0) {
        picks.push_back(e);
      }
    }
  }
  std::stable_sort(picks.begin(), picks.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.info.rung < b.info.rung;
                   });
  for (const Entry& e : picks) {
    if (auto engine = e.factory(ctx)) return engine;
  }
  return nullptr;
}

bool EngineRegistry::supports(AlgoKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.info.kind == kind) return true;
  }
  return false;
}

std::vector<EngineInfo> EngineRegistry::list() const {
  std::vector<EngineInfo> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.info);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const EngineInfo& a, const EngineInfo& b) {
                     if (a.kind != b.kind) {
                       return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                     }
                     return a.rung < b.rung;
                   });
  return out;
}

}  // namespace xbfs::core
