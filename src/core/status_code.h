// Unified operation status for the public API: a code plus a free-form
// detail string.  Replaces the ad-hoc bool returns and per-subsystem
// rejection enums.  Statuses are cheap values — Ok carries no allocation — and
// every failure names what went wrong, so callers never have to guess why
// an operation was turned away.
//
// Lives in namespace xbfs (not xbfs::core): the whole stack — config
// validation, admission control, the resilient serving path — speaks it.
#pragma once

#include <cstdint>
#include <string>

namespace xbfs {

enum class StatusCode : std::uint8_t {
  Ok = 0,
  InvalidArgument,    ///< caller error: bad config value, out-of-range source
  QueueFull,          ///< admission backpressure: retry later
  ShuttingDown,       ///< component no longer accepts work
  DeadlineExceeded,   ///< deadline passed before the work ran
  Unavailable,        ///< no healthy executor (all circuit breakers open)
  DataCorruption,     ///< result failed validation (corrupted transfer)
  FaultInjected,      ///< a simulated fault aborted the operation
  ResourceExhausted,  ///< out of memory / retry budget spent
  Internal,           ///< unexpected failure; detail carries the exception
};

/// Stable lowercase-kebab name ("ok", "queue-full", ...).
const char* status_code_name(StatusCode c);

class Status {
 public:
  /// Default-constructed status is success.
  Status() = default;
  Status(StatusCode code, std::string detail)
      : code_(code), detail_(std::move(detail)) {}

  // Factories, so call sites read as the outcome they report.
  static Status Ok() { return {}; }
  static Status Invalid(std::string d) {
    return {StatusCode::InvalidArgument, std::move(d)};
  }
  static Status QueueFull(std::string d) {
    return {StatusCode::QueueFull, std::move(d)};
  }
  static Status ShuttingDown(std::string d) {
    return {StatusCode::ShuttingDown, std::move(d)};
  }
  static Status DeadlineExceeded(std::string d) {
    return {StatusCode::DeadlineExceeded, std::move(d)};
  }
  static Status Unavailable(std::string d) {
    return {StatusCode::Unavailable, std::move(d)};
  }
  static Status Corruption(std::string d) {
    return {StatusCode::DataCorruption, std::move(d)};
  }
  static Status Fault(std::string d) {
    return {StatusCode::FaultInjected, std::move(d)};
  }
  static Status Exhausted(std::string d) {
    return {StatusCode::ResourceExhausted, std::move(d)};
  }
  static Status Internal(std::string d) {
    return {StatusCode::Internal, std::move(d)};
  }

  bool ok() const { return code_ == StatusCode::Ok; }
  StatusCode code() const { return code_; }
  const std::string& detail() const { return detail_; }
  /// "queue-full: admission queue at capacity (4096)" / "ok".
  std::string to_string() const;

  friend bool operator==(const Status& s, StatusCode c) {
    return s.code_ == c;
  }
  friend bool operator==(StatusCode c, const Status& s) {
    return s.code_ == c;
  }

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string detail_;
};

}  // namespace xbfs
