#include "core/status_code.h"

namespace xbfs {

const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::Ok: return "ok";
    case StatusCode::InvalidArgument: return "invalid-argument";
    case StatusCode::QueueFull: return "queue-full";
    case StatusCode::ShuttingDown: return "shutting-down";
    case StatusCode::DeadlineExceeded: return "deadline-exceeded";
    case StatusCode::Unavailable: return "unavailable";
    case StatusCode::DataCorruption: return "data-corruption";
    case StatusCode::FaultInjected: return "fault-injected";
    case StatusCode::ResourceExhausted: return "resource-exhausted";
    case StatusCode::Internal: return "internal";
  }
  return "?";
}

std::string Status::to_string() const {
  std::string s = status_code_name(code_);
  if (!detail_.empty()) {
    s += ": ";
    s += detail_;
  }
  return s;
}

}  // namespace xbfs
