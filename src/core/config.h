// Tuning parameters of the XBFS runner.  Every knob the paper reports
// tuning or ablating is here so benches can sweep them.
#pragma once

#include <cstdint>

#include "core/status_code.h"

namespace xbfs::core {

/// Frontier-queue generation strategy (paper Sec. III).
enum class Strategy {
  ScanFree,    ///< atomic status update + atomic enqueue, O(|F|)
  SingleScan,  ///< status-scan queue generation + atomic-free update, O(|V|)
  BottomUp,    ///< 5-kernel double-scan with early termination, O(|E|) worst
};

const char* strategy_name(Strategy s);

/// Workload-balancing mode of the top-down gather (paper Sec. IV-A).
enum class Balancing {
  ThreadCentric,     ///< one lane per frontier vertex
  WavefrontCentric,  ///< whole wavefront per frontier vertex
  DegreeBinned,      ///< per-vertex choice by degree (XBFS default)
};

/// How frontier vertices are grouped into kernels/streams: the stream
/// consolidation optimization of Sec. IV-B.
enum class StreamMode {
  Single,        ///< one queue, one kernel, one stream (AMD-optimized)
  TripleBinned,  ///< small/medium/large queues on three streams (CUDA XBFS)
};

struct XbfsConfig {
  // --- adaptive policy -----------------------------------------------------
  /// Bottom-up threshold on ratio = (frontier edges)/|E| (paper: 0.1).
  double alpha = 0.1;
  /// Frontier-count growth rate above which single-scan replaces scan-free.
  double growth_threshold = 8.0;
  /// Skip queue generation when the previous strategy produced the queue
  /// (the "No Frontier Generation" single-scan variant).
  bool enable_nfg = true;
  /// Bottom-up look-ahead: update next-next-level vertices whose neighbor
  /// was updated in the same bottom-up pass (the v7 -> v8 example).
  bool enable_lookahead = true;
  /// Force one strategy for every level (benches for Fig. 7, Tables III-V);
  /// negative = adaptive.
  int forced_strategy = -1;
  /// Bottom-up "bit status check": probe a per-level frontier bitmap
  /// (1 bit/vertex, maintained incrementally by every expansion) instead of
  /// the 4-byte status array during the early-termination scan.  Cuts the
  /// probe footprint 32x at the cost of one atomic-or per claimed vertex.
  bool bottomup_bitmap = false;

  // --- workload balancing --------------------------------------------------
  Balancing topdown_balancing = Balancing::DegreeBinned;
  /// Degree at or below which DegreeBinned uses a single lane per vertex.
  unsigned small_degree_threshold = 16;
  /// Use wavefront-centric gather in the bottom-up expansion.  The paper
  /// found this *hurts* on 64-wide AMD wavefronts (early termination idles
  /// lanes); default off.
  bool bottomup_warp_centric = false;

  // --- streams -------------------------------------------------------------
  StreamMode stream_mode = StreamMode::Single;
  /// TripleBinned bin edges: degree < medium_min -> small bin,
  /// degree < large_min -> medium bin, else large bin.
  unsigned medium_min_degree = 64;
  unsigned large_min_degree = 4096;

  // --- launch geometry -----------------------------------------------------
  unsigned block_threads = 256;
  /// 0 = auto: enough blocks to fill the CUs a few times over.
  unsigned grid_blocks = 0;
  /// Status-array segment length for the bottom-up count/queue-gen kernels;
  /// 0 = auto (a wavefront-size multiple, paper Sec. III-C).
  unsigned bu_segment_size = 0;

  // --- ablation knobs ------------------------------------------------------
  /// Issue-slot multiplier on the bottom-up expansion kernel modelling
  /// register spilling (1.0 = clang/-O3; the paper saw +17% from hipcc and
  /// up to 10x without -O3).
  double bottomup_spill_factor = 1.0;
  /// Record a parent tree alongside levels.
  bool build_parents = false;
  /// Emit one obs run-report record per run() when XBFS_RUN_REPORT is
  /// active.  High-QPS consumers (the serving engine runs thousands of
  /// traversals per process) turn this off and report their own summary.
  bool report_runs = true;

  // --- dynamic-graph knobs (src/dyn, docs/dynamic.md) ----------------------
  /// Overlay density ((insert overlay + tombstone entries) / base |E|)
  /// above which dyn::GraphStore::apply compacts the DeltaCsr into a fresh
  /// flat base.
  double dyn_compact_threshold = 0.25;
  /// Repair-vs-recompute bound, the dynamic analogue of the paper's
  /// r-vs-alpha policy: IncrementalBfs falls back to a full recompute when
  /// (invalidated + repair-seed vertices) / |V| exceeds it.
  double dyn_repair_ratio = 0.15;
  /// Prior level arrays IncrementalBfs keeps (one per source, FIFO
  /// evicted) to seed repairs from.
  unsigned dyn_history_sources = 64;

  /// Reject nonsense configurations with a diagnostic instead of letting
  /// them silently misbehave.  Checked: alpha > 0 and finite (the adaptive
  /// range is (0,1); values above 1 are the documented "disable bottom-up"
  /// idiom and stay valid), growth_threshold > 0 and finite,
  /// block_threads >= 1, TripleBinned bin edges ordered, positive finite
  /// dyn_compact_threshold, dyn_repair_ratio in (0, 1], and
  /// dyn_history_sources >= 1.  Called by the Xbfs constructor and
  /// serve::Server startup.
  Status validate() const;
};

}  // namespace xbfs::core
