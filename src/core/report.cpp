#include "core/report.h"

#include <iomanip>
#include <ostream>

namespace xbfs::core {

void print_schedule(std::ostream& os, const BfsResult& r) {
  os << "level  strategy      frontier       ratio      time(ms)\n";
  for (const LevelStats& st : r.level_stats) {
    os << std::setw(5) << st.level << "  " << std::left << std::setw(12)
       << strategy_name(st.strategy) << std::right << std::setw(10)
       << st.frontier_count << "  " << std::scientific
       << std::setprecision(2) << std::setw(9) << st.ratio << std::fixed
       << std::setprecision(4) << std::setw(12) << st.time_ms
       << (st.skipped_generation ? "  [NFG]" : "") << "\n";
  }
  os << std::fixed << std::setprecision(3) << "end-to-end: " << r.total_ms
     << " ms, " << r.gteps << " GTEPS (" << r.edges_traversed << " edges, "
     << r.depth << " levels)\n";
}

void write_schedule_csv(std::ostream& os, const BfsResult& r) {
  os << "level,strategy,nfg,frontier,edges,ratio,time_ms,fetch_kb\n";
  for (const LevelStats& st : r.level_stats) {
    os << st.level << ',' << strategy_name(st.strategy) << ','
       << (st.skipped_generation ? 1 : 0) << ',' << st.frontier_count << ','
       << st.frontier_edges << ',' << st.ratio << ',' << st.time_ms << ','
       << st.fetch_kb << '\n';
  }
}

}  // namespace xbfs::core
