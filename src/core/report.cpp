#include "core/report.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

namespace xbfs::core {

void print_schedule(std::ostream& os, const BfsResult& r) {
  os << "level  strategy      frontier       ratio      time(ms)\n";
  for (const LevelStats& st : r.level_stats) {
    os << std::setw(5) << st.level << "  " << std::left << std::setw(12)
       << strategy_name(st.strategy) << std::right << std::setw(10)
       << st.frontier_count << "  " << std::scientific
       << std::setprecision(2) << std::setw(9) << st.ratio << std::fixed
       << std::setprecision(4) << std::setw(12) << st.time_ms
       << (st.skipped_generation ? "  [NFG]" : "") << "\n";
  }
  os << std::fixed << std::setprecision(3) << "end-to-end: " << r.total_ms
     << " ms, " << r.gteps << " GTEPS (" << r.edges_traversed << " edges, "
     << r.depth << " levels)\n";
}

void write_schedule_csv(std::ostream& os, const BfsResult& r) {
  os << "level,strategy,nfg,frontier,edges,ratio,time_ms,fetch_kb\n";
  for (const LevelStats& st : r.level_stats) {
    os << st.level << ',' << strategy_name(st.strategy) << ','
       << (st.skipped_generation ? 1 : 0) << ',' << st.frontier_count << ','
       << st.frontier_edges << ',' << st.ratio << ',' << st.time_ms << ','
       << st.fetch_kb << '\n';
  }
}

obs::RunRecord to_run_record(const BfsResult& r, std::string tool,
                             std::uint64_t n, std::uint64_t m,
                             std::int64_t source, const XbfsConfig* cfg,
                             const sim::Profiler* prof,
                             std::size_t first_record) {
  obs::RunRecord rec;
  rec.tool = std::move(tool);
  rec.n = n;
  rec.m = m;
  rec.source = source;
  rec.depth = r.depth;
  rec.total_ms = r.total_ms;
  rec.gteps = r.gteps;
  rec.edges_traversed = r.edges_traversed;

  if (cfg != nullptr) {
    rec.config.emplace_back("alpha", std::to_string(cfg->alpha));
    rec.config.emplace_back("growth_threshold",
                            std::to_string(cfg->growth_threshold));
    rec.config.emplace_back("enable_nfg", cfg->enable_nfg ? "true" : "false");
    rec.config.emplace_back("enable_lookahead",
                            cfg->enable_lookahead ? "true" : "false");
    rec.config.emplace_back("bottomup_bitmap",
                            cfg->bottomup_bitmap ? "true" : "false");
    rec.config.emplace_back("stream_mode",
                            cfg->stream_mode == StreamMode::Single
                                ? "single"
                                : "triple_binned");
    rec.config.emplace_back("block_threads",
                            std::to_string(cfg->block_threads));
    rec.config.emplace_back("forced_strategy",
                            std::to_string(cfg->forced_strategy));
  }

  rec.levels.reserve(r.level_stats.size());
  for (const LevelStats& st : r.level_stats) {
    obs::ReportLevelRow row;
    row.level = st.level;
    row.strategy = strategy_name(st.strategy);
    row.nfg = st.skipped_generation;
    row.frontier = st.frontier_count;
    row.edges = st.frontier_edges;
    row.ratio = st.ratio;
    row.time_ms = st.time_ms;
    row.fetch_kb = st.fetch_kb;
    row.kernels = st.kernels;
    rec.levels.push_back(std::move(row));
  }

  if (prof != nullptr && first_record < prof->records().size()) {
    std::map<std::string, obs::ReportKernelRow> acc;
    for (std::size_t i = first_record; i < prof->records().size(); ++i) {
      const sim::LaunchRecord& lr = prof->records()[i];
      obs::ReportKernelRow& k = acc[lr.kernel];
      k.kernel = lr.kernel;
      k.runtime_ms += lr.runtime_ms();
      k.fetch_kb += lr.fetch_kb();
      k.launches += 1;
    }
    rec.kernels.reserve(acc.size());
    for (auto& [_, k] : acc) rec.kernels.push_back(std::move(k));
    std::sort(rec.kernels.begin(), rec.kernels.end(),
              [](const obs::ReportKernelRow& a,
                 const obs::ReportKernelRow& b) {
                return a.runtime_ms > b.runtime_ms;
              });
  }
  return rec;
}

void record_run(const BfsResult& r, std::string tool, std::uint64_t n,
                std::uint64_t m, std::int64_t source, const XbfsConfig* cfg,
                const sim::Profiler* prof, std::size_t first_record) {
  obs::ReportSession& session = obs::ReportSession::global();
  if (!session.enabled()) return;
  session.add(to_run_record(r, std::move(tool), n, m, source, cfg, prof,
                            first_record));
}

}  // namespace xbfs::core
