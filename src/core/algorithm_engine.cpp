#include "core/algorithm_engine.h"

namespace xbfs::core {

const char* algo_kind_name(AlgoKind k) {
  switch (k) {
    case AlgoKind::Bfs: return "bfs";
    case AlgoKind::Sssp: return "sssp";
    case AlgoKind::Cc: return "cc";
    case AlgoKind::KCore: return "kcore";
    case AlgoKind::Bc: return "bc";
    case AlgoKind::Scc: return "scc";
  }
  return "unknown";
}

bool algo_kind_parse(std::string_view name, AlgoKind& out) {
  for (std::size_t i = 0; i < kNumAlgoKinds; ++i) {
    const AlgoKind k = static_cast<AlgoKind>(i);
    if (name == algo_kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool algo_needs_source(AlgoKind k) {
  switch (k) {
    case AlgoKind::Bfs:
    case AlgoKind::Sssp:
    case AlgoKind::Bc:
      return true;
    case AlgoKind::Cc:
    case AlgoKind::KCore:
    case AlgoKind::Scc:
      return false;
  }
  return true;
}

std::uint64_t AlgoParams::hash() const {
  // FNV-1a, field order fixed forever: the hash participates in cache keys
  // that may outlive one process (run reports compare them across runs).
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  mix(max_weight);
  mix(weight_seed);
  mix(delta);
  mix(k);
  return h;
}

std::size_t ResultPayload::size() const {
  if (levels) return levels->size();
  if (distances) return distances->size();
  if (components) return components->size();
  if (cores) return cores->size();
  if (scores) return scores->size();
  return 0;
}

AlgoResult TraversalEngine::solve(const AlgoQuery& q) {
  BfsResult r = run(q.source);
  AlgoResult out;
  out.payload.kind = AlgoKind::Bfs;
  out.payload.depth = r.depth;
  out.payload.levels = std::make_shared<const std::vector<std::int32_t>>(
      std::move(r.levels));
  out.level_stats = std::move(r.level_stats);
  out.total_ms = r.total_ms;
  out.work_items = r.edges_traversed;
  return out;
}

}  // namespace xbfs::core
