#include "core/kernels_topdown.h"

#include <algorithm>
#include <array>

#include "core/status.h"
#include "hipsim/intrinsics.h"

namespace xbfs::core {

namespace {

using graph::eid_t;
using graph::vid_t;
using sim::lane_mask_lt;
using sim::mask_rank;
using sim::popcll;

constexpr unsigned kMaxWave = 64;

/// Per-chunk lane state for the gather helpers.
struct LaneChunk {
  std::array<vid_t, kMaxWave> v{};     ///< frontier vertex per lane
  std::array<eid_t, kMaxWave> off{};   ///< adjacency begin per lane
  std::array<std::uint32_t, kMaxWave> deg{};
  std::uint64_t valid = 0;
};

/// Load a wavefront-wide chunk of the frontier queue plus each vertex's
/// adjacency extent.  Three loads per active lane.
LaneChunk load_chunk(sim::ExecCtx& ctx, const TopDownArgs& a,
                     sim::dspan<const vid_t> queue, std::uint32_t queue_size,
                     std::uint64_t base, unsigned W) {
  LaneChunk c;
  unsigned active = 0;
  for (unsigned l = 0; l < W; ++l) {
    const std::uint64_t i = base + l;
    if (i >= queue_size) continue;
    c.v[l] = ctx.load(queue, i);
    c.off[l] = ctx.load(a.offsets, c.v[l]);
    const eid_t end = ctx.load(a.offsets, c.v[l] + 1);
    c.deg[l] = static_cast<std::uint32_t>(end - c.off[l]);
    c.valid |= std::uint64_t{1} << l;
    ++active;
  }
  ctx.slots(std::uint64_t{3} * W, std::uint64_t{3} * active);
  return c;
}

/// Visit a wavefront-wide batch of neighbor candidates: check status,
/// claim (CAS or plain store), record parents, count degrees, and either
/// enqueue winners (scan-free) or bump the newly-visited counter
/// (single-scan).  `targets[l]` is the candidate of lane l when bit l of
/// `act` is set; `par[l]` is the frontier vertex that discovered it.
template <bool kCas, bool kEnqueue>
void visit_targets(sim::ExecCtx& ctx, const TopDownArgs& a,
                   const std::array<vid_t, kMaxWave>& targets,
                   const std::array<vid_t, kMaxWave>& par, std::uint64_t act,
                   unsigned W) {
  const std::uint32_t next_level = a.cur_level + 1;
  std::uint64_t won = 0;
  std::uint64_t atomics_done = 0;
  {
    // The claim loop tolerates cross-block races by design (HPDC'19): the
    // status pre-check may read a word another block claims concurrently (a
    // stale value only costs a redundant atomic), the non-CAS claim stores
    // the same level from every discoverer, and in that mode the parent
    // store is last-writer-wins among equally valid parents.
    sim::racy_ok allow(ctx,
                       "top-down claim: status pre-check / benign same-value "
                       "store; any discovering parent is valid");
    for (unsigned l = 0; l < W; ++l) {
      if (!(act & (std::uint64_t{1} << l))) continue;
      const vid_t w = targets[l];
      // Cheap pre-check before the atomic, as XBFS does.
      const std::uint32_t st = ctx.load(a.status, w);
      if (st != kUnvisited) continue;
      if constexpr (kCas) {
        const std::uint32_t old =
            ctx.atomic_cas(a.status, w, kUnvisited, next_level);
        ++atomics_done;
        if (old != kUnvisited) continue;  // lost the race
      } else {
        // Benign race: all writers store the same level value.
        ctx.store(a.status, w, next_level);
      }
      won |= std::uint64_t{1} << l;
      if (!a.parent.empty()) ctx.store(a.parent, w, par[l]);
      if (!a.bitmap_next.empty()) {
        ctx.atomic_or(a.bitmap_next, w / 64, std::uint64_t{1} << (w % 64));
      }
    }
  }
  ctx.slots(W, popcll(act) + atomics_done);
  if (won == 0) return;

  // Degrees of the newly visited vertices feed the adaptive controller's
  // ratio (and, in XBFS, next-level degree binning).
  std::uint64_t degree_sum = 0;
  for (unsigned l = 0; l < W; ++l) {
    if (!(won & (std::uint64_t{1} << l))) continue;
    const eid_t b = ctx.load(a.offsets, targets[l]);
    const eid_t e = ctx.load(a.offsets, targets[l] + 1);
    degree_sum += e - b;
  }
  ctx.slots(W, std::uint64_t{2} * popcll(won));

  if constexpr (kEnqueue) {
    // Warp-aggregated enqueue: one atomic per wavefront batch.
    const std::uint32_t base = ctx.atomic_add(
        a.counters, kNextTail, static_cast<std::uint32_t>(popcll(won)));
    for (unsigned l = 0; l < W; ++l) {
      if (!(won & (std::uint64_t{1} << l))) continue;
      ctx.store(a.next_queue, base + mask_rank(won, l), targets[l]);
    }
    ctx.slots(W, popcll(won));
  } else {
    ctx.atomic_add(a.counters, kNewCount,
                   static_cast<std::uint32_t>(popcll(won)));
  }
  ctx.atomic_add(a.edge_counters, kNextEdges, degree_sum);
}

/// Thread-centric gather over the lanes selected by `mask`: lane l walks its
/// own adjacency list; divergence cost is the longest list in the batch.
template <bool kCas, bool kEnqueue>
void gather_thread_centric(sim::ExecCtx& ctx, const TopDownArgs& a,
                           const LaneChunk& c, std::uint64_t mask,
                           unsigned W) {
  if (mask == 0) return;
  std::uint32_t max_deg = 0;
  for (unsigned l = 0; l < W; ++l) {
    if (mask & (std::uint64_t{1} << l)) max_deg = std::max(max_deg, c.deg[l]);
  }
  for (std::uint32_t j = 0; j < max_deg; ++j) {
    std::array<vid_t, kMaxWave> targets{};
    std::array<vid_t, kMaxWave> par{};
    std::uint64_t act = 0;
    for (unsigned l = 0; l < W; ++l) {
      if (!(mask & (std::uint64_t{1} << l)) || j >= c.deg[l]) continue;
      targets[l] = ctx.load(a.cols, c.off[l] + j);
      par[l] = c.v[l];
      act |= std::uint64_t{1} << l;
    }
    ctx.slots(W, popcll(act));
    visit_targets<kCas, kEnqueue>(ctx, a, targets, par, act, W);
  }
}

/// Wavefront-centric gather: the whole wavefront sweeps one vertex's
/// adjacency list in W-wide strides.
template <bool kCas, bool kEnqueue>
void gather_wavefront_centric(sim::ExecCtx& ctx, const TopDownArgs& a,
                              const LaneChunk& c, std::uint64_t mask,
                              unsigned W) {
  for (unsigned owner = 0; owner < W; ++owner) {
    if (!(mask & (std::uint64_t{1} << owner))) continue;
    const vid_t src = c.v[owner];
    for (std::uint32_t chunk = 0; chunk < c.deg[owner]; chunk += W) {
      std::array<vid_t, kMaxWave> targets{};
      std::array<vid_t, kMaxWave> par{};
      std::uint64_t act = 0;
      const std::uint32_t left = c.deg[owner] - chunk;
      const unsigned width = static_cast<unsigned>(
          std::min<std::uint32_t>(left, W));
      for (unsigned l = 0; l < width; ++l) {
        targets[l] = ctx.load(a.cols, c.off[owner] + chunk + l);
        par[l] = src;
        act |= std::uint64_t{1} << l;
      }
      ctx.slots(W, width);
      visit_targets<kCas, kEnqueue>(ctx, a, targets, par, act, W);
    }
  }
}

/// The shared expansion kernel body: wavefront-strided over the queue with
/// the configured balancing mode.
template <bool kCas, bool kEnqueue>
void expand_kernel_body(sim::BlockCtx& blk, const TopDownArgs& a,
                        sim::dspan<const vid_t> queue,
                        std::uint32_t queue_size, Balancing balancing,
                        unsigned small_threshold) {
  auto& ctx = blk.ctx();
  blk.wavefronts([&](sim::WavefrontCtx& wf, unsigned) {
    const unsigned W = wf.size();
    const std::uint64_t total_wfs =
        std::uint64_t{blk.grid_blocks()} * blk.wavefronts_per_block();
    for (std::uint64_t base = std::uint64_t{wf.id()} * W; base < queue_size;
         base += total_wfs * W) {
      const LaneChunk c = load_chunk(ctx, a, queue, queue_size, base, W);
      std::uint64_t small = 0, coop = 0;
      switch (balancing) {
        case Balancing::ThreadCentric:
          small = c.valid;
          break;
        case Balancing::WavefrontCentric:
          coop = c.valid;
          break;
        case Balancing::DegreeBinned:
          for (unsigned l = 0; l < W; ++l) {
            const std::uint64_t bit = std::uint64_t{1} << l;
            if (!(c.valid & bit)) continue;
            (c.deg[l] <= small_threshold ? small : coop) |= bit;
          }
          break;
      }
      gather_thread_centric<kCas, kEnqueue>(ctx, a, c, small, W);
      gather_wavefront_centric<kCas, kEnqueue>(ctx, a, c, coop, W);
    }
  });
}

sim::LaunchConfig expand_launch_config(const sim::Device& dev,
                                       std::uint32_t queue_size,
                                       const XbfsConfig& cfg) {
  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks =
      cfg.grid_blocks != 0
          ? cfg.grid_blocks
          : auto_grid_blocks(dev.profile(), std::max<std::uint32_t>(
                                                queue_size, 1),
                             cfg.block_threads);
  return lc;
}

}  // namespace

sim::LaunchResult launch_scanfree_expand(sim::Device& dev, sim::Stream& s,
                                         const TopDownArgs& a,
                                         const XbfsConfig& cfg) {
  const sim::LaunchConfig lc = expand_launch_config(dev, a.queue_size, cfg);
  const Balancing bal = cfg.topdown_balancing;
  const unsigned thr = cfg.small_degree_threshold;
  return dev.launch(s, "xbfs_scanfree_expand", lc, [=](sim::BlockCtx& blk) {
    expand_kernel_body<true, true>(blk, a, a.queue, a.queue_size, bal, thr);
  });
}

sim::LaunchResult launch_singlescan_expand(sim::Device& dev, sim::Stream& s,
                                           const TopDownArgs& a,
                                           const XbfsConfig& cfg) {
  const sim::LaunchConfig lc = expand_launch_config(dev, a.queue_size, cfg);
  const Balancing bal = cfg.topdown_balancing;
  const unsigned thr = cfg.small_degree_threshold;
  return dev.launch(s, "xbfs_singlescan_expand", lc, [=](sim::BlockCtx& blk) {
    expand_kernel_body<false, false>(blk, a, a.queue, a.queue_size, bal, thr);
  });
}

sim::LaunchResult launch_singlescan_generate(sim::Device& dev, sim::Stream& s,
                                             sim::dspan<std::uint32_t> status,
                                             sim::dspan<graph::vid_t> queue_out,
                                             sim::dspan<std::uint32_t> counters,
                                             std::uint32_t cur_level,
                                             const XbfsConfig& cfg) {
  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = cfg.grid_blocks != 0
                       ? cfg.grid_blocks
                       : auto_grid_blocks(dev.profile(), status.size(),
                                          cfg.block_threads);
  const std::uint64_t n = status.size();
  return dev.launch(s, "xbfs_singlescan_generate", lc, [=](sim::BlockCtx&
                                                               blk) {
    auto& ctx = blk.ctx();
    blk.wavefronts([&](sim::WavefrontCtx& wf, unsigned) {
      const unsigned W = wf.size();
      const std::uint64_t total_wfs =
          std::uint64_t{blk.grid_blocks()} * blk.wavefronts_per_block();
      for (std::uint64_t base = std::uint64_t{wf.id()} * W; base < n;
           base += total_wfs * W) {
        std::uint64_t match = 0;
        unsigned active = 0;
        for (unsigned l = 0; l < W; ++l) {
          const std::uint64_t i = base + l;
          if (i >= n) continue;
          ++active;
          if (ctx.load(status, i) == cur_level) {
            match |= std::uint64_t{1} << l;
          }
        }
        ctx.slots(W, active);
        if (match == 0) continue;
        const std::uint32_t qbase = ctx.atomic_add(
            counters, kCurTail, static_cast<std::uint32_t>(popcll(match)));
        for (unsigned l = 0; l < W; ++l) {
          if (!(match & (std::uint64_t{1} << l))) continue;
          ctx.store(queue_out, qbase + mask_rank(match, l),
                    static_cast<vid_t>(base + l));
        }
        ctx.slots(W, popcll(match));
      }
    });
  });
}

sim::LaunchResult launch_classify_bins(sim::Device& dev, sim::Stream& s,
                                       const TopDownArgs& a,
                                       sim::dspan<graph::vid_t> bin_small,
                                       sim::dspan<graph::vid_t> bin_medium,
                                       sim::dspan<graph::vid_t> bin_large,
                                       const XbfsConfig& cfg) {
  const sim::LaunchConfig lc = expand_launch_config(dev, a.queue_size, cfg);
  const std::uint32_t med_min = cfg.medium_min_degree;
  const std::uint32_t large_min = cfg.large_min_degree;
  return dev.launch(s, "xbfs_classify_bins", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.wavefronts([&](sim::WavefrontCtx& wf, unsigned) {
      const unsigned W = wf.size();
      const std::uint64_t total_wfs =
          std::uint64_t{blk.grid_blocks()} * blk.wavefronts_per_block();
      for (std::uint64_t base = std::uint64_t{wf.id()} * W;
           base < a.queue_size; base += total_wfs * W) {
        const LaneChunk c = load_chunk(ctx, a, a.queue, a.queue_size, base, W);
        std::uint64_t sm = 0, md = 0, lg = 0;
        for (unsigned l = 0; l < W; ++l) {
          const std::uint64_t bit = std::uint64_t{1} << l;
          if (!(c.valid & bit)) continue;
          if (c.deg[l] < med_min) {
            sm |= bit;
          } else if (c.deg[l] < large_min) {
            md |= bit;
          } else {
            lg |= bit;
          }
        }
        const auto scatter = [&](std::uint64_t mask,
                                 sim::dspan<graph::vid_t> bin,
                                 std::size_t tail_slot) {
          if (mask == 0) return;
          const std::uint32_t qbase = ctx.atomic_add(
              a.counters, tail_slot,
              static_cast<std::uint32_t>(popcll(mask)));
          for (unsigned l = 0; l < W; ++l) {
            if (!(mask & (std::uint64_t{1} << l))) continue;
            ctx.store(bin, qbase + mask_rank(mask, l), c.v[l]);
          }
          ctx.slots(W, popcll(mask));
        };
        scatter(sm, bin_small, kBinSmall);
        scatter(md, bin_medium, kBinMedium);
        scatter(lg, bin_large, kBinLarge);
      }
    });
  });
}

sim::LaunchResult launch_scanfree_expand_bin(sim::Device& dev, sim::Stream& s,
                                             const TopDownArgs& a,
                                             sim::dspan<const graph::vid_t> bin,
                                             std::uint32_t bin_size,
                                             Balancing balancing,
                                             const char* kernel_name,
                                             const XbfsConfig& cfg) {
  const sim::LaunchConfig lc = expand_launch_config(dev, bin_size, cfg);
  const unsigned thr = cfg.small_degree_threshold;
  return dev.launch(s, kernel_name, lc, [=](sim::BlockCtx& blk) {
    expand_kernel_body<true, true>(blk, a, bin, bin_size, balancing, thr);
  });
}

}  // namespace xbfs::core
