// Top-down frontier expansion kernels: the scan-free strategy (atomic status
// update + atomic frontier enqueue) and the single-scan strategy (status-scan
// queue generation followed by atomic-free expansion), both with the
// warp-centric degree-binned workload balancing of Sec. IV-A.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "core/frontier.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::core {

/// Everything a top-down expansion kernel touches.
struct TopDownArgs {
  sim::dspan<const graph::eid_t> offsets;
  sim::dspan<const graph::vid_t> cols;
  sim::dspan<std::uint32_t> status;
  sim::dspan<graph::vid_t> parent;  ///< empty when parents are not built
  sim::dspan<const graph::vid_t> queue;  ///< current frontier
  std::uint32_t queue_size = 0;
  sim::dspan<graph::vid_t> next_queue;
  sim::dspan<std::uint32_t> counters;
  sim::dspan<std::uint64_t> edge_counters;
  /// Frontier bitmap of level cur_level+1; claims set bits here when the
  /// bit-status extension is enabled (empty = disabled).
  sim::dspan<std::uint64_t> bitmap_next;
  std::uint32_t cur_level = 0;
};

/// Scan-free: expand `queue`, CAS statuses to cur_level+1, enqueue winners
/// into next_queue (warp-aggregated atomics) and accumulate their degrees.
sim::LaunchResult launch_scanfree_expand(sim::Device& dev, sim::Stream& s,
                                         const TopDownArgs& a,
                                         const XbfsConfig& cfg);

/// Single-scan kernel 1: scan the status array for status==cur_level and
/// (atomically) enqueue the matches into `queue_out`, tail counters[kCurTail].
sim::LaunchResult launch_singlescan_generate(sim::Device& dev, sim::Stream& s,
                                             sim::dspan<std::uint32_t> status,
                                             sim::dspan<graph::vid_t> queue_out,
                                             sim::dspan<std::uint32_t> counters,
                                             std::uint32_t cur_level,
                                             const XbfsConfig& cfg);

/// Single-scan kernel 2: expand `queue` with plain (atomic-free) status
/// checks/updates; counts newly visited vertices and their degrees but does
/// not build the next queue.
sim::LaunchResult launch_singlescan_expand(sim::Device& dev, sim::Stream& s,
                                           const TopDownArgs& a,
                                           const XbfsConfig& cfg);

/// TripleBinned classification: split `queue` into three degree bins
/// (tails at kBinSmall/kBinMedium/kBinLarge).
sim::LaunchResult launch_classify_bins(sim::Device& dev, sim::Stream& s,
                                       const TopDownArgs& a,
                                       sim::dspan<graph::vid_t> bin_small,
                                       sim::dspan<graph::vid_t> bin_medium,
                                       sim::dspan<graph::vid_t> bin_large,
                                       const XbfsConfig& cfg);

/// Scan-free expansion over one degree bin with a fixed balancing mode
/// (used by the TripleBinned / three-stream configuration).
sim::LaunchResult launch_scanfree_expand_bin(sim::Device& dev, sim::Stream& s,
                                             const TopDownArgs& a,
                                             sim::dspan<const graph::vid_t> bin,
                                             std::uint32_t bin_size,
                                             Balancing balancing,
                                             const char* kernel_name,
                                             const XbfsConfig& cfg);

}  // namespace xbfs::core
