// Status array: per-vertex visit state, 4 bytes per vertex as in XBFS
// (Tables III-V: the O(|V|) scans move exactly 4|V| bytes).
#pragma once

#include <cstdint>

#include "graph/csr.h"
#include "hipsim/device.h"

namespace xbfs::core {

/// Sentinel for "not yet visited".  Any other value is the BFS level.
inline constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
/// Sentinel parent for unreached vertices / the source.
inline constexpr graph::vid_t kNoParent = static_cast<graph::vid_t>(-1);

/// Launch geometry helper: blocks needed to give each of `work` items one
/// thread, capped at `waves_per_cu` resident blocks per CU.
unsigned auto_grid_blocks(const sim::DeviceProfile& profile,
                          std::uint64_t work, unsigned block_threads,
                          unsigned waves_per_cu = 8);

/// Kernel: fill the status array with kUnvisited (O(|V|) stores).
void launch_init_status(sim::Device& dev, sim::Stream& s,
                        sim::dspan<std::uint32_t> status,
                        unsigned block_threads);

/// Kernel: fill a parent array with kNoParent.
void launch_init_parent(sim::Device& dev, sim::Stream& s,
                        sim::dspan<graph::vid_t> parent,
                        unsigned block_threads);

}  // namespace xbfs::core
