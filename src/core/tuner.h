// Alpha auto-tuning: the paper's "Performance Profiling" takeaway
// ("Utilizing rocProfiler ... allowed us to estimate optimal parameters for
// peak performance across different graph structures and sizes", Sec. I;
// methodology in Sec. V-D/E).
//
// The tuner replays the paper's Fig. 7 experiment programmatically: it runs
// each strategy forced on probe traversals, collects per-level (ratio,
// kernel-time) points, finds where bottom-up starts beating the best
// top-down strategy, and recommends an alpha inside that bracket.
#pragma once

#include <vector>

#include "core/config.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::core {

struct TunerOptions {
  /// Probe sources; more probes widen the level/ratio coverage.
  std::vector<graph::vid_t> probe_sources;
  /// Alpha to fall back to when a bracket cannot be established.
  double fallback_alpha = 0.1;
  /// Base configuration the probes run under (forced_strategy is ignored).
  XbfsConfig base_config = {};
};

struct TunerReport {
  double recommended_alpha = 0.1;
  /// Largest ratio observed where a top-down strategy still won.
  double bracket_low = 0.0;
  /// Smallest ratio observed where bottom-up won.
  double bracket_high = 1.0;
  bool bracket_found = false;
  /// One sample per (probe, level): the raw data behind the decision.
  struct Sample {
    double ratio = 0.0;
    double scanfree_ms = 0.0;
    double singlescan_ms = 0.0;
    double bottomup_ms = 0.0;
  };
  std::vector<Sample> samples;
};

/// Run the forced-strategy probes on a dedicated deterministic device and
/// recommend an alpha for this (graph, device-profile) pair.
TunerReport tune_alpha(const sim::DeviceProfile& profile,
                       const graph::Csr& g, const TunerOptions& opt);

}  // namespace xbfs::core
