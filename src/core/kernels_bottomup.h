// Bottom-up ("double-scan") frontier generation: five kernels per level as
// profiled in the paper's Table V.
//
//   k1 xbfs_bu_count        — per-segment unvisited counts,           O(|V|)
//   k2 xbfs_bu_scan_block   — per-block partial sums of the counts,   small
//   k3 xbfs_bu_scan_final   — exclusive scan + per-segment offsets,   small
//   k4 xbfs_bu_queue_gen    — globally sorted bottom-up queue,        O(|V|)
//   k5 xbfs_bu_expand       — early-terminating expansion,            O(|E|) worst
//
// k5 also implements the paper's look-ahead: an unvisited vertex whose
// neighbor was updated earlier in the same pass is promoted to level+2 and
// parked in the pending queue (the "v7 updated => v8 updated" example).
#pragma once

#include <cstdint>

#include "core/config.h"
#include "core/frontier.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::core {

struct BottomUpArgs {
  sim::dspan<const graph::eid_t> offsets;
  sim::dspan<const graph::vid_t> cols;
  sim::dspan<std::uint32_t> status;
  sim::dspan<graph::vid_t> parent;  ///< empty when parents are not built
  sim::dspan<graph::vid_t> bu_queue;
  sim::dspan<graph::vid_t> next_queue;
  sim::dspan<graph::vid_t> pending_queue;
  sim::dspan<std::uint32_t> seg_counts;
  sim::dspan<std::uint32_t> seg_offsets;
  sim::dspan<std::uint32_t> block_sums;
  sim::dspan<std::uint32_t> counters;
  sim::dspan<std::uint64_t> edge_counters;
  /// Bit-status extension (empty spans = disabled): the expansion probes
  /// bitmap_cur (level cur_level) instead of the 4-byte status array, and
  /// commits claims into bitmap_next / bitmap_nextnext.
  sim::dspan<const std::uint64_t> bitmap_cur;
  sim::dspan<std::uint64_t> bitmap_next;
  sim::dspan<std::uint64_t> bitmap_nextnext;
  std::uint32_t n = 0;             ///< vertices
  std::uint32_t num_segments = 0;
  std::uint32_t segment_size = 0;  ///< wavefront-size multiple
  std::uint32_t cur_level = 0;
};

/// Number of blocks the two scan kernels use for `num_segments` segments.
unsigned bu_scan_blocks(const sim::DeviceProfile& profile,
                        std::uint32_t num_segments, unsigned block_threads);

sim::LaunchResult launch_bu_count(sim::Device& dev, sim::Stream& s,
                                  const BottomUpArgs& a,
                                  const XbfsConfig& cfg);
sim::LaunchResult launch_bu_scan_block(sim::Device& dev, sim::Stream& s,
                                       const BottomUpArgs& a,
                                       const XbfsConfig& cfg);
/// Writes the total candidate count into counters[kCurTail].
sim::LaunchResult launch_bu_scan_final(sim::Device& dev, sim::Stream& s,
                                       const BottomUpArgs& a,
                                       const XbfsConfig& cfg);
sim::LaunchResult launch_bu_queue_gen(sim::Device& dev, sim::Stream& s,
                                      const BottomUpArgs& a,
                                      const XbfsConfig& cfg);
/// @param candidates size of the bottom-up queue (read back from k3).
sim::LaunchResult launch_bu_expand(sim::Device& dev, sim::Stream& s,
                                   const BottomUpArgs& a,
                                   std::uint32_t candidates,
                                   const XbfsConfig& cfg);

}  // namespace xbfs::core
