// Public API of the XBFS reproduction: adaptive BFS on the simulated GPU.
//
// Usage:
//   sim::Device dev(sim::DeviceProfile::mi250x_gcd());
//   auto g = graph::DeviceCsr::upload(dev, host_csr);
//   core::Xbfs bfs(dev, g);
//   core::BfsResult r = bfs.run(source);
//   // r.levels, r.level_stats, r.gteps ...
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/frontier.h"
#include "core/policy.h"
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::core {

/// Telemetry for one BFS level.
struct LevelStats {
  std::uint32_t level = 0;
  Strategy strategy = Strategy::ScanFree;
  bool skipped_generation = false;   ///< NFG variant fired
  std::uint64_t frontier_count = 0;  ///< vertices expanded this level
  std::uint64_t frontier_edges = 0;  ///< their total degree
  double ratio = 0.0;                ///< frontier_edges / |E|
  double time_ms = 0.0;              ///< modelled level time (kernels+syncs)
  double fetch_kb = 0.0;             ///< HBM fetch traffic this level
  unsigned kernels = 0;              ///< kernel launches this level
};

/// GTEPS = edges traversed / (total_ms * 1e6), guarded so trivial runs
/// (single-vertex graphs, zero modelled time) report 0 rather than inf/nan.
/// Every runner — XBFS, baselines, dist — computes throughput through this.
inline double safe_gteps(std::uint64_t edges_traversed, double total_ms) {
  if (!std::isfinite(total_ms) || total_ms <= 0.0) return 0.0;
  return static_cast<double>(edges_traversed) / (total_ms * 1e6);
}

struct BfsResult {
  std::vector<std::int32_t> levels;  ///< -1 = unreached
  std::vector<graph::vid_t> parent;  ///< empty unless cfg.build_parents
  std::vector<LevelStats> level_stats;
  double total_ms = 0.0;             ///< modelled end-to-end traversal time
  std::uint64_t edges_traversed = 0; ///< undirected edges in the traversal
  double gteps = 0.0;                ///< edges_traversed / total_ms
  std::uint32_t depth = 0;           ///< number of BFS levels run
};

class Xbfs {
 public:
  /// Buffers are sized once for the graph; run() may be called repeatedly
  /// (the n-to-n evaluation reuses one instance across sources).
  Xbfs(sim::Device& dev, const graph::DeviceCsr& g, XbfsConfig cfg = {});

  BfsResult run(graph::vid_t src);

  const XbfsConfig& config() const { return cfg_; }
  XbfsConfig& mutable_config() { return cfg_; }

 private:
  struct FrontierState;
  void run_scanfree(const FrontierState& fs, std::uint32_t level);
  void run_singlescan(const FrontierState& fs, std::uint32_t level,
                      bool skip_generation, std::uint32_t* generated_count);
  void run_bottomup(const FrontierState& fs, std::uint32_t level);

  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  XbfsConfig cfg_;
  AdaptivePolicy policy_;
  BfsBuffers buffers_;
  sim::Stream* bin_streams_[3] = {nullptr, nullptr, nullptr};
};

}  // namespace xbfs::core
