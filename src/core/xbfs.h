// Public API of the XBFS reproduction: adaptive BFS on the simulated GPU.
//
// Usage:
//   sim::Device dev(sim::DeviceProfile::mi250x_gcd());
//   auto g = graph::DeviceCsr::upload(dev, host_csr);
//   core::Xbfs bfs(dev, g);
//   core::BfsResult r = bfs.run(source);
//   // r.levels, r.level_stats, r.gteps ...
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/frontier.h"
#include "core/policy.h"
#include "core/traversal_engine.h"  // BfsResult/LevelStats/safe_gteps live here
#include "graph/device_csr.h"
#include "hipsim/device.h"

namespace xbfs::core {

class Xbfs final : public TraversalEngine {
 public:
  /// Buffers are sized once for the graph; run() may be called repeatedly
  /// (the n-to-n evaluation reuses one instance across sources).
  /// Throws std::invalid_argument when cfg.validate() fails.
  Xbfs(sim::Device& dev, const graph::DeviceCsr& g, XbfsConfig cfg = {});

  BfsResult run(graph::vid_t src) override;

  const char* name() const override { return "xbfs"; }
  EngineCapabilities capabilities() const override {
    return {.on_device = true,
            .adaptive = cfg_.forced_strategy < 0,
            .builds_parents = cfg_.build_parents};
  }

  const XbfsConfig& config() const { return cfg_; }
  XbfsConfig& mutable_config() { return cfg_; }

 private:
  struct FrontierState;
  void run_scanfree(const FrontierState& fs, std::uint32_t level);
  void run_singlescan(const FrontierState& fs, std::uint32_t level,
                      bool skip_generation, std::uint32_t* generated_count);
  void run_bottomup(const FrontierState& fs, std::uint32_t level);

  sim::Device& dev_;
  const graph::DeviceCsr& g_;
  XbfsConfig cfg_;
  AdaptivePolicy policy_;
  BfsBuffers buffers_;
  sim::Stream* bin_streams_[3] = {nullptr, nullptr, nullptr};
};

}  // namespace xbfs::core
