// The algorithm-family vocabulary: every graph-analytics runner in the
// repository — BFS, delta-stepping SSSP, connected components, k-core,
// betweenness, SCC — answers one typed interface, so consumers (the
// serving engine's per-algorithm ladders, the registry, the conformance
// suite, benches) hold AlgorithmEngine pointers instead of hard-coded
// types.
//
// The historical single-algorithm interface, TraversalEngine, survives as
// an adapter: a pure `BfsResult run(vid_t)` subclass is automatically a
// full AlgorithmEngine of kind Bfs (solve() wraps run() into the typed
// payload).  BfsResult, LevelStats, and safe_gteps moved here from
// core/traversal_engine.h; that header re-exports them, so existing
// includes keep working (docs/api.md has the migration table).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "graph/csr.h"

namespace xbfs::core {

/// The algorithm family one engine solves.  Values are stable across
/// releases: they participate in result-cache keys and run-report fields.
enum class AlgoKind : std::uint8_t {
  Bfs = 0,    ///< hop levels from a source (-1 = unreached)
  Sssp = 1,   ///< weighted distances from a source (synthetic weights)
  Cc = 2,     ///< connected components (undirected), min-vertex-id labels
  KCore = 3,  ///< coreness per vertex (k = 0) or k-core membership (k > 0)
  Bc = 4,     ///< betweenness-centrality contribution of a source
  Scc = 5,    ///< strongly connected components (directed view)
};

inline constexpr std::size_t kNumAlgoKinds = 6;

/// Stable short identifier ("bfs", "sssp", "cc", "kcore", "bc", "scc") —
/// used in run-report keys, QoS class labels, and SLO scope names.
const char* algo_kind_name(AlgoKind k);

/// Parse an algo_kind_name() string; false leaves `out` untouched.
bool algo_kind_parse(std::string_view name, AlgoKind& out);

/// Whether queries of this kind are rooted at a source vertex (Bfs, Sssp,
/// Bc) or describe the whole graph (Cc, KCore, Scc; their queries carry
/// source 0 and dedup/cache per graph, not per vertex).
bool algo_needs_source(AlgoKind k);

/// Per-query algorithm parameters.  One struct for the whole family keeps
/// Query/cache plumbing monomorphic; engines read only their own fields.
/// hash() salts result-cache keys, so every field that changes the answer
/// must be mixed in.
struct AlgoParams {
  // --- SSSP ---------------------------------------------------------------
  /// Synthetic edge weights are drawn deterministically in [1, max_weight]
  /// from (edge, weight_seed) — see graph::synth_weight.  The CSR itself is
  /// unweighted; the same (seed, max) pair on device and host oracle makes
  /// distances exactly comparable.
  std::uint32_t max_weight = 8;
  std::uint64_t weight_seed = 1;
  /// Delta-stepping bucket width; 0 = auto (max_weight: light edges within
  /// a bucket, heavy edges always cross).
  std::uint32_t delta = 0;
  // --- k-core -------------------------------------------------------------
  /// 0 = full decomposition (payload cores[v] = coreness of v); k > 0 =
  /// membership (cores[v] = 1 iff v survives the k-core trim, else 0).
  std::uint32_t k = 0;

  bool operator==(const AlgoParams&) const = default;

  /// Stable FNV-1a over every answer-affecting field.  Cache keys are
  /// (graph fingerprint, algo, hash(), source).
  std::uint64_t hash() const;
};

/// One request against the loaded graph: the typed generalization of
/// "BFS from source s".  `source` is ignored when !algo_needs_source(algo).
struct AlgoQuery {
  AlgoKind algo = AlgoKind::Bfs;
  graph::vid_t source = 0;
  AlgoParams params;
};

/// Unreached sentinel of the uint32 distance domain (SSSP).
inline constexpr std::uint32_t kUnreachedDist = 0xFFFFFFFFu;

/// Shared-immutable per-vertex answer of one query: exactly one of the
/// vectors is set, selected by `kind`.  Cache hits hand out the same
/// underlying vectors the cold run produced (refcount bump, no copy).
/// This is what serve::CachedResult collapsed into — the `levels`/`depth`
/// member names are kept so BFS call sites read unchanged.
struct ResultPayload {
  AlgoKind kind = AlgoKind::Bfs;
  std::shared_ptr<const std::vector<std::int32_t>> levels;      ///< Bfs: -1 = unreached
  std::shared_ptr<const std::vector<std::uint32_t>> distances;  ///< Sssp: kUnreachedDist = unreached
  std::shared_ptr<const std::vector<graph::vid_t>> components;  ///< Cc/Scc: label per vertex
  std::shared_ptr<const std::vector<std::uint32_t>> cores;      ///< KCore: coreness or 0/1 membership
  std::shared_ptr<const std::vector<double>> scores;            ///< Bc: dependency per vertex
  /// Rounds of the fixpoint that produced the payload: BFS depth, SSSP
  /// buckets settled, CC/k-core/SCC iterations.  Cached so hits never
  /// rescan the payload.
  std::uint32_t depth = 0;

  /// False = miss/empty sentinel (no vector set).
  explicit operator bool() const {
    return levels || distances || components || cores || scores;
  }
  /// Vertex count of whichever vector is set; 0 when empty.
  std::size_t size() const;
};

/// Telemetry for one level / bucket / round of an engine's fixpoint.
struct LevelStats {
  std::uint32_t level = 0;
  Strategy strategy = Strategy::ScanFree;
  bool skipped_generation = false;   ///< NFG variant fired
  std::uint64_t frontier_count = 0;  ///< vertices expanded this level
  std::uint64_t frontier_edges = 0;  ///< their total degree
  double ratio = 0.0;                ///< frontier_edges / |E|
  double time_ms = 0.0;              ///< modelled level time (kernels+syncs)
  double fetch_kb = 0.0;             ///< HBM fetch traffic this level
  unsigned kernels = 0;              ///< kernel launches this level
};

/// GTEPS = edges traversed / (total_ms * 1e6), guarded so trivial runs
/// (single-vertex graphs, zero modelled time) report 0 rather than inf/nan.
/// Every runner — XBFS, baselines, dist — computes throughput through this.
inline double safe_gteps(std::uint64_t edges_traversed, double total_ms) {
  if (!std::isfinite(total_ms) || total_ms <= 0.0) return 0.0;
  return static_cast<double>(edges_traversed) / (total_ms * 1e6);
}

struct BfsResult {
  std::vector<std::int32_t> levels;  ///< -1 = unreached
  std::vector<graph::vid_t> parent;  ///< empty unless engine builds parents
  std::vector<LevelStats> level_stats;
  double total_ms = 0.0;             ///< modelled (device) or wall (host) time
  std::uint64_t edges_traversed = 0; ///< undirected edges in the traversal
  double gteps = 0.0;                ///< edges_traversed / total_ms
  std::uint32_t depth = 0;           ///< number of BFS levels run
};

/// What a caller may rely on without knowing the concrete engine type.  The
/// serving ladder orders engines from fastest-but-faultable (adaptive, on
/// the simulated device) to slowest-but-immune (host CPU).
struct EngineCapabilities {
  /// Runs on the simulated GPU — subject to injected device faults
  /// (kernel failures, transfer corruption); host engines are immune.
  bool on_device = false;
  /// Picks a traversal strategy per level/round (e.g. XBFS's adaptive
  /// policy, delta-stepping's r-vs-alpha push/pull rule).
  bool adaptive = false;
  /// BFS only: run() fills BfsResult::parent.
  bool builds_parents = false;
  /// Repairs a prior answer over dyn::DeltaCsr churn instead of
  /// recomputing (IncrementalBfs, IncrementalCc).
  bool incremental = false;
};

/// Engine-side result: the shared payload plus run telemetry that does not
/// belong in the cache.
struct AlgoResult {
  ResultPayload payload;
  std::vector<LevelStats> level_stats;
  double total_ms = 0.0;        ///< modelled (device) or wall (host) time
  std::uint64_t work_items = 0; ///< edges traversed / relaxations / trims
};

/// One algorithm engine.  solve() must produce the canonical answer for
/// its kind — every registered engine of a kind is interchangeable on the
/// payload (conformance tests enforce engine == host oracle), which is
/// what lets the serving layer degrade between rungs without clients
/// noticing anything but latency.
class AlgorithmEngine {
 public:
  virtual ~AlgorithmEngine() = default;

  /// The family this engine answers; solve() rejects no other kinds — the
  /// registry guarantees queries are routed by kind.
  virtual AlgoKind kind() const = 0;

  /// Answer one query.  May be called repeatedly; implementations reuse
  /// their buffers.  Throws (e.g. sim::FaultInjected) on simulated device
  /// faults — callers on the resilient path catch and retry.
  virtual AlgoResult solve(const AlgoQuery& q) = 0;

  /// Stable short identifier ("xbfs", "delta-sssp", "lp-cc", ...).
  virtual const char* name() const = 0;

  virtual EngineCapabilities capabilities() const = 0;
};

/// Migration adapter: the classic single-source BFS interface.  Subclasses
/// implement run() exactly as before PR 8 and are automatically
/// AlgorithmEngines of kind Bfs; solve() wraps run() into a ResultPayload.
class TraversalEngine : public AlgorithmEngine {
 public:
  /// One traversal from `src`.  May be called repeatedly; implementations
  /// reuse their buffers.  Throws (e.g. sim::FaultInjected) on simulated
  /// device faults — callers on the resilient path catch and retry.
  virtual BfsResult run(graph::vid_t src) = 0;

  AlgoKind kind() const override { return AlgoKind::Bfs; }
  AlgoResult solve(const AlgoQuery& q) override;
};

}  // namespace xbfs::core
