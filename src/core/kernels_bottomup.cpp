#include "core/kernels_bottomup.h"

#include <algorithm>
#include <array>

#include "core/status.h"
#include "hipsim/intrinsics.h"

namespace xbfs::core {

namespace {

using graph::eid_t;
using graph::vid_t;
using sim::mask_rank;
using sim::popcll;

constexpr unsigned kMaxWave = 64;

}  // namespace

unsigned bu_scan_blocks(const sim::DeviceProfile& profile,
                        std::uint32_t num_segments, unsigned block_threads) {
  // One block per ~block_threads segments, capped by CU count; the final
  // scan runs single-block over these partial sums, one thread per chunk,
  // so the block count must also fit in one block's thread count.
  const unsigned blocks =
      auto_grid_blocks(profile, num_segments, block_threads, /*waves=*/1);
  return std::max(1u, std::min(blocks, block_threads));
}

sim::LaunchResult launch_bu_count(sim::Device& dev, sim::Stream& s,
                                  const BottomUpArgs& a,
                                  const XbfsConfig& cfg) {
  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = cfg.grid_blocks != 0
                       ? cfg.grid_blocks
                       : auto_grid_blocks(dev.profile(), a.num_segments,
                                          cfg.block_threads);
  return dev.launch(s, "xbfs_bu_count", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(a.num_segments, [&](std::uint64_t seg) {
      const std::uint64_t begin = seg * a.segment_size;
      const std::uint64_t end =
          std::min<std::uint64_t>(a.n, begin + a.segment_size);
      std::uint32_t cnt = 0;
      for (std::uint64_t i = begin; i < end; ++i) {
        if (ctx.load(a.status, i) == kUnvisited) ++cnt;
      }
      ctx.slots(end - begin, end - begin);
      ctx.store(a.seg_counts, seg, cnt);
    });
  });
}

sim::LaunchResult launch_bu_scan_block(sim::Device& dev, sim::Stream& s,
                                       const BottomUpArgs& a,
                                       const XbfsConfig& cfg) {
  const unsigned blocks =
      bu_scan_blocks(dev.profile(), a.num_segments, cfg.block_threads);
  const std::uint32_t chunk = (a.num_segments + blocks - 1) / blocks;
  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = blocks;
  return dev.launch(s, "xbfs_bu_scan_block", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    const std::uint32_t b = blk.block_id();
    const std::uint64_t begin = std::uint64_t{b} * chunk;
    const std::uint64_t end =
        std::min<std::uint64_t>(a.num_segments, begin + chunk);
    // The block's threads cooperatively sum the chunk (modelled as a
    // block-wide reduction pass).
    std::uint32_t sum = 0;
    for (std::uint64_t i = begin; i < end; ++i) {
      sum += ctx.load(a.seg_counts, i);
    }
    if (begin < end) ctx.slots(end - begin, end - begin);
    ctx.store(a.block_sums, b, sum);
  });
}

sim::LaunchResult launch_bu_scan_final(sim::Device& dev, sim::Stream& s,
                                       const BottomUpArgs& a,
                                       const XbfsConfig& cfg) {
  const unsigned blocks =
      bu_scan_blocks(dev.profile(), a.num_segments, cfg.block_threads);
  const std::uint32_t chunk = (a.num_segments + blocks - 1) / blocks;
  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = 1;  // single block finishes the scan
  return dev.launch(s, "xbfs_bu_scan_final", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    // Phase 1: exclusive scan of the per-block partial sums (sequential in
    // the leader thread; `blocks` is at most a few hundred).
    std::uint32_t* scanned = blk.shmem().alloc<std::uint32_t>(blocks);
    std::uint32_t acc = 0;
    for (unsigned b = 0; b < blocks; ++b) {
      scanned[b] = acc;
      acc += ctx.load(a.block_sums, b);
    }
    ctx.slots(blocks, blocks);
    // Total bottom-up candidates, read back by the host for k5's launch.
    ctx.store(a.counters, kCurTail, acc);
    blk.sync();
    // Phase 2: one thread per chunk walks its segments, materializing the
    // exclusive per-segment offsets.
    blk.threads([&](unsigned t) {
      if (t >= blocks) return;
      const std::uint64_t begin = std::uint64_t{t} * chunk;
      const std::uint64_t end =
          std::min<std::uint64_t>(a.num_segments, begin + chunk);
      std::uint32_t base = scanned[t];
      for (std::uint64_t segi = begin; segi < end; ++segi) {
        ctx.store(a.seg_offsets, segi, base);
        base += ctx.load(a.seg_counts, segi);
      }
    });
  });
}

sim::LaunchResult launch_bu_queue_gen(sim::Device& dev, sim::Stream& s,
                                      const BottomUpArgs& a,
                                      const XbfsConfig& cfg) {
  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks = cfg.grid_blocks != 0
                       ? cfg.grid_blocks
                       : auto_grid_blocks(dev.profile(), a.num_segments,
                                          cfg.block_threads);
  return dev.launch(s, "xbfs_bu_queue_gen", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(a.num_segments, [&](std::uint64_t seg) {
      const std::uint64_t begin = seg * a.segment_size;
      const std::uint64_t end =
          std::min<std::uint64_t>(a.n, begin + a.segment_size);
      std::uint32_t cursor = ctx.load(a.seg_offsets, seg);
      for (std::uint64_t i = begin; i < end; ++i) {
        if (ctx.load(a.status, i) == kUnvisited) {
          ctx.store(a.bu_queue, cursor++, static_cast<vid_t>(i));
        }
      }
      ctx.slots(end - begin, end - begin);
    });
  });
}

namespace {

/// Per-chunk result of the early-terminating neighbor scans.
struct BuChunkResult {
  std::uint64_t won = 0;      ///< lanes whose vertex joins level+1
  std::uint64_t pending = 0;  ///< lanes promoted to level+2 (look-ahead)
  std::array<vid_t, kMaxWave> match_parent{};
};

/// Thread-centric bottom-up scan: each lane walks its own vertex's
/// adjacency list and stops at the first level-`cur` neighbor.  Divergence
/// cost is the longest walk in the batch.
/// Probe whether neighbor `w` is in the current frontier / was claimed at
/// the next level, through either the 4-byte status array or — with the
/// bit-status extension — the 1-bit frontier bitmaps.
struct NeighborProbe {
  bool in_cur = false;
  bool in_next = false;
};

NeighborProbe probe_neighbor(sim::ExecCtx& ctx, const BottomUpArgs& a,
                             vid_t w, bool want_next) {
  NeighborProbe p;
  if (a.bitmap_cur.empty()) {
    const std::uint32_t st = ctx.atomic_load(a.status, w);
    p.in_cur = st == a.cur_level;
    p.in_next = want_next && st == a.cur_level + 1;
    return p;
  }
  const std::uint64_t bit = std::uint64_t{1} << (w % 64);
  p.in_cur = (ctx.atomic_load(a.bitmap_cur, w / 64) & bit) != 0;
  if (!p.in_cur && want_next) {
    p.in_next = (ctx.atomic_load(a.bitmap_next, w / 64) & bit) != 0;
  }
  return p;
}

BuChunkResult bu_scan_thread_centric(sim::ExecCtx& ctx, const BottomUpArgs& a,
                                     const std::array<vid_t, kMaxWave>& u,
                                     std::uint64_t valid, unsigned W,
                                     bool lookahead) {
  BuChunkResult r;
  std::uint64_t max_steps = 0, total_steps = 0;
  for (unsigned l = 0; l < W; ++l) {
    if (!(valid & (std::uint64_t{1} << l))) continue;
    const eid_t begin = ctx.load(a.offsets, u[l]);
    const eid_t end = ctx.load(a.offsets, u[l] + 1);
    std::uint64_t steps = 0;
    bool found_next = false;
    vid_t next_parent = 0;
    for (eid_t e = begin; e < end; ++e) {
      const vid_t w = ctx.load(a.cols, e);
      const NeighborProbe p =
          probe_neighbor(ctx, a, w, lookahead && !found_next);
      ++steps;
      if (p.in_cur) {
        // Early termination: one visited parent suffices.
        r.won |= std::uint64_t{1} << l;
        r.match_parent[l] = w;
        break;
      }
      if (p.in_next) {
        found_next = true;  // keep scanning: a level-`cur` parent wins
        next_parent = w;
      }
    }
    if (!(r.won & (std::uint64_t{1} << l)) && found_next) {
      r.pending |= std::uint64_t{1} << l;
      r.match_parent[l] = next_parent;
    }
    max_steps = std::max(max_steps, steps);
    total_steps += steps;
  }
  // SIMT cost: two ops per step (neighbor load + status check), the
  // wavefront is resident for the longest lane's walk.
  ctx.slots(std::uint64_t{2} * W * std::max<std::uint64_t>(max_steps, 1),
            std::uint64_t{2} * total_steps);
  return r;
}

/// Wavefront-centric bottom-up scan: all W lanes sweep one vertex's list
/// per iteration.  With 64-wide AMD wavefronts and typical one-or-two-step
/// early termination this idles most lanes — the effect that made the paper
/// disable warp-centric balancing in the bottom-up phase.
BuChunkResult bu_scan_wavefront_centric(sim::ExecCtx& ctx,
                                        const BottomUpArgs& a,
                                        const std::array<vid_t, kMaxWave>& u,
                                        std::uint64_t valid, unsigned W,
                                        bool lookahead) {
  BuChunkResult r;
  for (unsigned owner = 0; owner < W; ++owner) {
    if (!(valid & (std::uint64_t{1} << owner))) continue;
    const eid_t begin = ctx.load(a.offsets, u[owner]);
    const eid_t end = ctx.load(a.offsets, u[owner] + 1);
    bool found_cur = false, found_next = false;
    vid_t cur_parent = 0, next_parent = 0;
    for (eid_t chunk = begin; chunk < end && !found_cur; chunk += W) {
      const unsigned width =
          static_cast<unsigned>(std::min<eid_t>(W, end - chunk));
      for (unsigned l = 0; l < width; ++l) {
        const vid_t w = ctx.load(a.cols, chunk + l);
        const NeighborProbe p =
            probe_neighbor(ctx, a, w, lookahead && !found_next);
        if (p.in_cur && !found_cur) {
          found_cur = true;
          cur_parent = w;
        } else if (p.in_next) {
          found_next = true;
          next_parent = w;
        }
      }
      // Full wavefront issued regardless of list length, plus the ballot
      // that communicates the hit.
      ctx.slots(std::uint64_t{3} * W, std::uint64_t{2} * width);
    }
    if (found_cur) {
      r.won |= std::uint64_t{1} << owner;
      r.match_parent[owner] = cur_parent;
    } else if (found_next) {
      r.pending |= std::uint64_t{1} << owner;
      r.match_parent[owner] = next_parent;
    }
  }
  return r;
}

}  // namespace

sim::LaunchResult launch_bu_expand(sim::Device& dev, sim::Stream& s,
                                   const BottomUpArgs& a,
                                   std::uint32_t candidates,
                                   const XbfsConfig& cfg) {
  sim::LaunchConfig lc;
  lc.block_threads = cfg.block_threads;
  lc.grid_blocks =
      cfg.grid_blocks != 0
          ? cfg.grid_blocks
          : auto_grid_blocks(dev.profile(),
                             std::max<std::uint32_t>(candidates, 1),
                             cfg.block_threads);
  lc.lane_work_multiplier = cfg.bottomup_spill_factor;
  const bool warp_centric = cfg.bottomup_warp_centric;
  const bool lookahead = cfg.enable_lookahead;
  return dev.launch(s, "xbfs_bu_expand", lc, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.wavefronts([&](sim::WavefrontCtx& wf, unsigned) {
      const unsigned W = wf.size();
      const std::uint64_t total_wfs =
          std::uint64_t{blk.grid_blocks()} * blk.wavefronts_per_block();
      const std::uint32_t next_level = a.cur_level + 1;
      for (std::uint64_t base = std::uint64_t{wf.id()} * W; base < candidates;
           base += total_wfs * W) {
        std::array<vid_t, kMaxWave> u{};
        std::uint64_t valid = 0;
        unsigned active = 0;
        for (unsigned l = 0; l < W; ++l) {
          const std::uint64_t i = base + l;
          if (i >= candidates) continue;
          u[l] = ctx.load(a.bu_queue, i);
          valid |= std::uint64_t{1} << l;
          ++active;
        }
        ctx.slots(W, active);
        if (valid == 0) continue;

        const BuChunkResult r =
            warp_centric
                ? bu_scan_wavefront_centric(ctx, a, u, valid, W, lookahead)
                : bu_scan_thread_centric(ctx, a, u, valid, W, lookahead);

        // Commit statuses (each candidate is owned by exactly one lane, so
        // plain stores are race-free) and gather degrees for the ratio.
        const auto commit = [&](std::uint64_t mask, std::uint32_t level,
                                sim::dspan<graph::vid_t> out_queue,
                                sim::dspan<std::uint64_t> out_bitmap,
                                std::size_t tail_slot,
                                std::size_t edge_slot) {
          if (mask == 0) return;
          std::uint64_t degree_sum = 0;
          for (unsigned l = 0; l < W; ++l) {
            if (!(mask & (std::uint64_t{1} << l))) continue;
            {
              // The paper's intentional look-ahead race (HPDC'19 v7->v8):
              // this plain commit store runs while other blocks' scans still
              // probe status atomically in the same pass.  A probe observing
              // the pre-commit value merely defers its vertex to the pending
              // queue; no traversal result changes.
              sim::racy_ok allow(ctx,
                                 "bottom-up look-ahead: plain status commit "
                                 "vs same-pass neighbor probes (HPDC'19 "
                                 "v7->v8); stale probes only defer work");
              ctx.store(a.status, u[l], level);
            }
            if (!out_bitmap.empty()) {
              ctx.atomic_or(out_bitmap, u[l] / 64,
                            std::uint64_t{1} << (u[l] % 64));
            }
            if (!a.parent.empty()) {
              ctx.store(a.parent, u[l], r.match_parent[l]);
            }
            const eid_t b0 = ctx.load(a.offsets, u[l]);
            const eid_t e0 = ctx.load(a.offsets, u[l] + 1);
            degree_sum += e0 - b0;
          }
          ctx.slots(W, std::uint64_t{3} * popcll(mask));
          const std::uint32_t qbase = ctx.atomic_add(
              a.counters, tail_slot,
              static_cast<std::uint32_t>(popcll(mask)));
          for (unsigned l = 0; l < W; ++l) {
            if (!(mask & (std::uint64_t{1} << l))) continue;
            ctx.store(out_queue, qbase + mask_rank(mask, l), u[l]);
          }
          ctx.slots(W, popcll(mask));
          ctx.atomic_add(a.edge_counters, edge_slot, degree_sum);
        };
        commit(r.won, next_level, a.next_queue, a.bitmap_next, kNextTail,
               kNextEdges);
        commit(r.pending, next_level + 1, a.pending_queue, a.bitmap_nextnext,
               kPendingTail, kPendingEdges);
      }
    });
  });
}

}  // namespace xbfs::core
