// Reporting of BFS results: the per-level strategy schedule table the
// examples print, the CSV variant, and the bridge into the obs run-report
// layer — all factored into the library so every tool renders the same way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/xbfs.h"
#include "hipsim/profiler.h"
#include "obs/run_report.h"

namespace xbfs::core {

/// Print the per-level schedule (strategy, frontier, ratio, time, NFG tag)
/// followed by the end-to-end summary line.
void print_schedule(std::ostream& os, const BfsResult& r);

/// CSV: one row per level (level,strategy,nfg,frontier,edges,ratio,ms,fetch_kb).
void write_schedule_csv(std::ostream& os, const BfsResult& r);

/// Convert a finished traversal into a run-report record.  Per-level rows
/// mirror r.level_stats field-for-field.  `prof`, when given, contributes
/// per-kernel aggregates over records()[first_record..] — pass the records
/// count observed at run start so a shared profiler only attributes this
/// run's launches.
obs::RunRecord to_run_record(const BfsResult& r, std::string tool,
                             std::uint64_t n, std::uint64_t m,
                             std::int64_t source,
                             const XbfsConfig* cfg = nullptr,
                             const sim::Profiler* prof = nullptr,
                             std::size_t first_record = 0);

/// Forward the record to the global obs::ReportSession; cheap no-op when
/// XBFS_RUN_REPORT is not active.  Runners call this at the end of run().
void record_run(const BfsResult& r, std::string tool, std::uint64_t n,
                std::uint64_t m, std::int64_t source,
                const XbfsConfig* cfg = nullptr,
                const sim::Profiler* prof = nullptr,
                std::size_t first_record = 0);

}  // namespace xbfs::core
