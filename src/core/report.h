// Human-readable and CSV reporting of BFS results: the per-level strategy
// schedule table the examples print, factored into the library so every
// tool renders it the same way.
#pragma once

#include <iosfwd>

#include "core/xbfs.h"

namespace xbfs::core {

/// Print the per-level schedule (strategy, frontier, ratio, time, NFG tag)
/// followed by the end-to-end summary line.
void print_schedule(std::ostream& os, const BfsResult& r);

/// CSV: one row per level (level,strategy,nfg,frontier,edges,ratio,ms,fetch_kb).
void write_schedule_csv(std::ostream& os, const BfsResult& r);

}  // namespace xbfs::core
