#include "core/frontier.h"

#include "core/status.h"

namespace xbfs::core {

BfsBuffers BfsBuffers::allocate(sim::Device& dev, graph::vid_t n,
                                std::uint32_t segment_size,
                                std::uint32_t scan_blocks, bool with_parents,
                                bool with_bins, bool with_bitmaps) {
  BfsBuffers b;
  b.status = dev.alloc<std::uint32_t>(n, "bfs.status");
  if (with_parents) b.parent = dev.alloc<graph::vid_t>(n, "bfs.parent");
  b.queue_a = dev.alloc<graph::vid_t>(n, "bfs.queue_a");
  b.queue_b = dev.alloc<graph::vid_t>(n, "bfs.queue_b");
  b.pending_a = dev.alloc<graph::vid_t>(n, "bfs.pending_a");
  b.pending_b = dev.alloc<graph::vid_t>(n, "bfs.pending_b");
  b.bu_queue = dev.alloc<graph::vid_t>(n, "bfs.bu_queue");
  b.counters = dev.alloc<std::uint32_t>(kNumCounters, "bfs.counters");
  b.edge_counters =
      dev.alloc<std::uint64_t>(kNumEdgeCounters, "bfs.edge_counters");
  b.segment_size = segment_size;
  b.num_segments = (n + segment_size - 1) / segment_size;
  b.seg_counts = dev.alloc<std::uint32_t>(b.num_segments, "bfs.seg_counts");
  b.seg_offsets = dev.alloc<std::uint32_t>(b.num_segments, "bfs.seg_offsets");
  b.block_sums = dev.alloc<std::uint32_t>(scan_blocks, "bfs.block_sums");
  if (with_bins) {
    b.bin_small = dev.alloc<graph::vid_t>(n, "bfs.bin_small");
    b.bin_medium = dev.alloc<graph::vid_t>(n, "bfs.bin_medium");
    b.bin_large = dev.alloc<graph::vid_t>(n, "bfs.bin_large");
  }
  if (with_bitmaps) {
    const std::size_t words = b.bitmap_words(n);
    for (auto& bm : b.bitmaps) {
      bm = dev.alloc<std::uint64_t>(words, "bfs.bitmap");
    }
  }
  return b;
}

void launch_reset_counters(sim::Device& dev, sim::Stream& s, BfsBuffers& b) {
  auto counters = b.counters.span();
  auto edges = b.edge_counters.span();
  sim::LaunchConfig cfg{.grid_blocks = 1, .block_threads = 64};
  dev.launch(s, "xbfs_reset_counters", cfg, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t < kNumCounters) ctx.store(counters, t, std::uint32_t{0});
      if (t >= 32 && t - 32 < kNumEdgeCounters) {
        ctx.store(edges, t - 32, std::uint64_t{0});
      }
    });
  });
}

void launch_enqueue_source(sim::Device& dev, sim::Stream& s, BfsBuffers& b,
                           sim::dspan<graph::vid_t> queue, graph::vid_t src,
                           sim::dspan<std::uint64_t> bitmap0) {
  auto status = b.status.span();
  auto counters = b.counters.span();
  auto parent =
      b.parent.empty() ? sim::dspan<graph::vid_t>() : b.parent.span();
  sim::LaunchConfig cfg{.grid_blocks = 1, .block_threads = 64};
  dev.launch(s, "xbfs_enqueue_source", cfg, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.threads([&](unsigned t) {
      if (t != 0) return;
      ctx.store(status, src, std::uint32_t{0});
      ctx.store(queue, 0, src);
      ctx.store(counters, kCurTail, std::uint32_t{1});
      if (!parent.empty()) ctx.store(parent, src, src);
      if (!bitmap0.empty()) {
        ctx.store(bitmap0, src / 64, std::uint64_t{1} << (src % 64));
      }
    });
  });
}

void launch_clear_bitmap(sim::Device& dev, sim::Stream& s,
                         sim::dspan<std::uint64_t> bitmap,
                         unsigned block_threads) {
  sim::LaunchConfig cfg;
  cfg.block_threads = block_threads;
  cfg.grid_blocks =
      auto_grid_blocks(dev.profile(), bitmap.size(), block_threads);
  dev.launch(s, "xbfs_clear_bitmap", cfg, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(bitmap.size(), [&](std::uint64_t i) {
      ctx.store(bitmap, i, std::uint64_t{0});
    });
  });
}

void launch_append_queue(sim::Device& dev, sim::Stream& s,
                         sim::dspan<const graph::vid_t> src_queue,
                         std::uint32_t count,
                         sim::dspan<graph::vid_t> dst_queue,
                         std::uint32_t dst_offset, unsigned block_threads) {
  if (count == 0) return;
  sim::LaunchConfig cfg;
  cfg.block_threads = block_threads;
  cfg.grid_blocks = auto_grid_blocks(dev.profile(), count, block_threads);
  dev.launch(s, "xbfs_append_pending", cfg, [=](sim::BlockCtx& blk) {
    auto& ctx = blk.ctx();
    blk.grid_stride(count, [&](std::uint64_t i) {
      ctx.store(dst_queue, dst_offset + i, ctx.load(src_queue, i));
    });
  });
}

LevelCounters read_counters(sim::Device& dev, sim::Stream& s,
                            const BfsBuffers& b) {
  // Models the per-level hipMemcpyDtoH of the counter block — the
  // host/device interaction that dominates tiny graphs like Dblp.  One
  // typed transfer covers both counter buffers (byte count identical to
  // the old untyped call) and marks them host-synced for SimSan.
  dev.memcpy_d2h(s, b.counters, b.edge_counters);
  LevelCounters c;
  c.next_count = b.counters.h_read(kNextTail);
  c.pending_count = b.counters.h_read(kPendingTail);
  c.new_count = b.counters.h_read(kNewCount);
  c.cur_count = b.counters.h_read(kCurTail);
  c.next_edges = b.edge_counters.h_read(kNextEdges);
  c.pending_edges = b.edge_counters.h_read(kPendingEdges);
  return c;
}

}  // namespace xbfs::core
