// Umbrella header for the GPU execution simulator substrate.
#pragma once

#include "hipsim/block.h"
#include "hipsim/buffer.h"
#include "hipsim/counters.h"
#include "hipsim/device.h"
#include "hipsim/device_profile.h"
#include "hipsim/exec_ctx.h"
#include "hipsim/intrinsics.h"
#include "hipsim/mem_model.h"
#include "hipsim/profiler.h"
#include "hipsim/stream.h"
#include "hipsim/timing.h"
#include "hipsim/wavefront.h"
