// Streams and the modelled device timeline.
//
// Simulated kernels execute immediately on the host, but their *modelled*
// durations are appended to per-stream clocks.  Device-wide synchronization
// and cross-stream joins add the profile's synchronization costs — the
// mechanism behind the paper's stream-consolidation optimization: on the
// MI250X profile, joining three degree-binned streams costs more than the
// overlap saves.
#pragma once

#include <cstdint>
#include <string>

namespace xbfs::sim {

class Device;
class Stream;

/// hipEvent-style timestamp on the modelled timeline: record() captures the
/// owning stream's clock; elapsed_ms() between two events measures modelled
/// device time without host synchronization.
class Event {
 public:
  void record(const Stream& s);
  bool recorded() const { return recorded_; }
  double t_us() const { return t_us_; }

  /// Modelled milliseconds from `start` to `stop` (negative if reversed).
  static double elapsed_ms(const Event& start, const Event& stop) {
    return (stop.t_us_ - start.t_us_) / 1000.0;
  }

 private:
  double t_us_ = 0.0;
  bool recorded_ = false;
};

class Stream {
 public:
  explicit Stream(Device* device, std::string name)
      : device_(device), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  /// Modelled completion time of the last operation on this stream (us).
  double t_end() const { return t_end_; }

  /// Host waits for this stream: advances the device floor to this stream's
  /// end plus the profile's sync cost.
  void synchronize();

 private:
  friend class Device;
  Device* device_;
  std::string name_;
  double t_end_ = 0.0;
};

}  // namespace xbfs::sim
