// Per-kernel performance counters, mirroring the rocprofiler metrics the
// paper reports (FetchSize, L2CacheHit, MemUnitBusy) plus the raw event
// counts the timing model consumes.
#pragma once

#include <cstdint>

namespace xbfs::sim {

/// Raw events accumulated while a kernel executes.  Workers keep a private
/// copy and the launcher merges them, so hot paths never touch shared state.
struct KernelCounters {
  // Memory events (global/device memory only; LDS is not modelled).
  std::uint64_t mem_reads = 0;        ///< scalar load operations
  std::uint64_t mem_writes = 0;       ///< scalar store operations
  std::uint64_t bytes_read = 0;       ///< payload bytes loaded
  std::uint64_t bytes_written = 0;    ///< payload bytes stored
  std::uint64_t l2_hits = 0;          ///< line-granular L2 hits
  std::uint64_t l2_hit_bytes = 0;     ///< payload bytes served from L2
  std::uint64_t l2_misses = 0;        ///< line-granular L2 misses
  std::uint64_t fetch_bytes = 0;      ///< bytes fetched from HBM (miss*line)
  std::uint64_t writeback_bytes = 0;  ///< dirty line evictions to HBM

  // Execution events.
  std::uint64_t atomics = 0;          ///< global atomic operations
  std::uint64_t lane_slots = 0;       ///< SIMT issue slots (idle lanes count)
  std::uint64_t active_lanes = 0;     ///< lanes that did useful work
  std::uint64_t wavefront_steps = 0;  ///< wavefront-wide instruction groups

  KernelCounters& operator+=(const KernelCounters& o) {
    mem_reads += o.mem_reads;
    mem_writes += o.mem_writes;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    l2_hits += o.l2_hits;
    l2_hit_bytes += o.l2_hit_bytes;
    l2_misses += o.l2_misses;
    fetch_bytes += o.fetch_bytes;
    writeback_bytes += o.writeback_bytes;
    atomics += o.atomics;
    lane_slots += o.lane_slots;
    active_lanes += o.active_lanes;
    wavefront_steps += o.wavefront_steps;
    return *this;
  }

  /// rocprofiler "L2CacheHit" (%): hits over all line-granular probes.
  double l2_hit_pct() const {
    const std::uint64_t probes = l2_hits + l2_misses;
    return probes == 0 ? 0.0 : 100.0 * static_cast<double>(l2_hits) /
                                   static_cast<double>(probes);
  }
  /// rocprofiler "FetchSize" (KB): data fetched from device memory.
  double fetch_kb() const { return static_cast<double>(fetch_bytes) / 1024.0; }

  /// SIMT efficiency: useful lanes over issued lane slots.
  double lane_efficiency() const {
    return lane_slots == 0 ? 1.0
                           : static_cast<double>(active_lanes) /
                                 static_cast<double>(lane_slots);
  }
};

}  // namespace xbfs::sim
