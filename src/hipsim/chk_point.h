// sim::chk_point — the injectable yield-point shim of the SchedCheck model
// checker (hipsim/schedcheck.h, docs/modelcheck.md).
//
// Host-side concurrent structures (the flight-recorder seqlock, the
// admission queue, breaker transitions, graph-store snapshot publication)
// mark their interesting interleaving points with
//
//   sim::chk_point("flight.record.payload", slot);
//
// In production this is one relaxed atomic load and a not-taken branch.
// While a SchedCheck exploration is running, the checker installs a hook
// here and every controlled task that crosses a chk_point becomes
// preemptible: the scheduler may deterministically switch to another task,
// exploring interleavings that a wall-clock run would need luck to hit.
//
// Discipline: a chk_point must never be placed where the calling thread
// holds a lock that another controlled task can acquire — a task suspended
// at a yield point must hold no shared locks, or the serialized scheduler
// deadlocks (see docs/modelcheck.md "writing harnesses").  Lock-free code
// (the seqlock) may yield anywhere; lock-based code yields only outside
// its critical sections.
//
// This header is deliberately dependency-free so every layer (obs, serve,
// dyn) can include it without linking against hipsim; the hook storage is
// an inline function-local static shared across translation units.
#pragma once

#include <atomic>
#include <cstdint>

namespace xbfs::sim {

/// Hook signature: `site` is the static yield-point label, `key` refines
/// the conflict relation (slot index, epoch, ...; 0 when the site alone
/// identifies the data touched).
using ChkHook = void (*)(const char* site, std::uint64_t key);

inline std::atomic<ChkHook>& chk_hook_slot() {
  static std::atomic<ChkHook> hook{nullptr};
  return hook;
}

/// Yield point.  No-op (one relaxed load) unless a SchedCheck exploration
/// installed a hook; then controlled tasks may be preempted here.
inline void chk_point(const char* site, std::uint64_t key = 0) {
  if (ChkHook h = chk_hook_slot().load(std::memory_order_relaxed)) {
    h(site, key);
  }
}

}  // namespace xbfs::sim
