// WavefrontCtx: lockstep-by-construction wavefront execution.
//
// Instead of emulating per-thread program counters, kernels express per-lane
// work through lane-indexed callables and wavefront collectives evaluate all
// lanes at one call site.  This keeps the simulator deterministic and cheap
// while preserving exactly the semantics XBFS depends on: 64-wide ballots,
// maskless __any/__shfl, ballot-rank aggregated atomics, and divergence
// accounting for early termination.
#pragma once

#include <array>
#include <cstdint>
#include <utility>

#include "hipsim/exec_ctx.h"
#include "hipsim/intrinsics.h"

namespace xbfs::sim {

class WavefrontCtx {
 public:
  WavefrontCtx(ExecCtx* ctx, unsigned wavefront_id, unsigned size)
      : ctx_(ctx), id_(wavefront_id), size_(size) {
    ctx_->set_wavefront(id_);
  }

  unsigned id() const { return id_; }          ///< wavefront id within grid
  unsigned size() const { return size_; }      ///< lanes per wavefront
  ExecCtx& ctx() { return *ctx_; }

  /// Execute f(lane) for every lane; a full-width SIMT step.
  template <typename F>
  void lanes(F&& f) {
    for (unsigned l = 0; l < size_; ++l) {
      ctx_->set_lane(l);
      f(l);
    }
    ctx_->slots(size_, size_);
  }

  /// Execute f(lane) for lanes whose bit is set in `mask`; idle lanes still
  /// consume issue slots (divergence).
  template <typename F>
  void lanes_masked(std::uint64_t mask, F&& f) {
    for (unsigned l = 0; l < size_; ++l) {
      if (mask & (std::uint64_t{1} << l)) {
        ctx_->set_lane(l);
        f(l);
      }
    }
    ctx_->slots(size_, popcll(mask));
  }

  /// __ballot: evaluate pred(lane) on every lane, return the 64-bit mask.
  template <typename P>
  std::uint64_t ballot(P&& pred) {
    std::uint64_t mask = 0;
    for (unsigned l = 0; l < size_; ++l) {
      ctx_->set_lane(l);
      if (pred(l)) mask |= std::uint64_t{1} << l;
    }
    ctx_->slots(size_, size_);
    return mask;
  }

  /// __any (maskless AMD form).
  template <typename P>
  bool any(P&& pred) {
    return ballot(std::forward<P>(pred)) != 0;
  }
  /// __all (maskless AMD form).
  template <typename P>
  bool all(P&& pred) {
    return ballot(std::forward<P>(pred)) == lane_mask_lt(size_);
  }

  /// __shfl: every lane reads the value produced by lane `src`.
  template <typename V>
  auto shfl(V&& value_of_lane, unsigned src) {
    ctx_->slots(size_, size_);
    return value_of_lane(src % size_);
  }

  /// Wavefront-wide sum reduction of value_of_lane(l).
  template <typename T, typename V>
  T reduce_add(V&& value_of_lane) {
    T acc{};
    for (unsigned l = 0; l < size_; ++l) acc += value_of_lane(l);
    // log2(width) shuffle steps on real hardware.
    ctx_->slots(std::uint64_t{size_} * 6, std::uint64_t{size_} * 6);
    return acc;
  }

  /// Exclusive prefix sum across lanes; out[l] receives the sum of values of
  /// lanes < l, and the total is returned.
  template <typename T, typename V>
  T scan_exclusive(V&& value_of_lane, std::array<T, 64>& out) {
    T acc{};
    for (unsigned l = 0; l < size_; ++l) {
      out[l] = acc;
      acc += value_of_lane(l);
    }
    ctx_->slots(std::uint64_t{size_} * 6, std::uint64_t{size_} * 6);
    return acc;
  }

  /// Warp-aggregated atomic enqueue: lanes with their bit set in `mask`
  /// claim consecutive slots at the tail counter `tail[0]` with a single
  /// atomic per wavefront — the ballot-rank trick XBFS's scan-free strategy
  /// uses to cut enqueue atomics by the wavefront width.
  /// Returns the base offset; lane l's slot is base + mask_rank(mask, l).
  template <typename T>
  T aggregated_reserve(dspan<T> tail, std::uint64_t mask) {
    const unsigned n = popcll(mask);
    if (n == 0) return T{};
    return ctx_->atomic_add(tail, 0, static_cast<T>(n));
  }

 private:
  ExecCtx* ctx_;
  unsigned id_;
  unsigned size_;
};

}  // namespace xbfs::sim
