#include "hipsim/device.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "hipsim/chk_point.h"
#include "hipsim/fault.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xbfs::sim {

namespace {
/// pid 0 is the host/coordinator lane; devices start at 1.
std::atomic<int> g_next_trace_pid{1};
}  // namespace

Device::Device(DeviceProfile profile, SimOptions options)
    : profile_(std::move(profile)), options_(options) {
  l2_ = std::make_unique<L2Model>(profile_, options_.l2_shards);
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  worker_shmem_.reserve(pool_->size());
  for (unsigned i = 0; i < pool_->size(); ++i) {
    worker_shmem_.push_back(std::make_unique<ShMem>(options_.lds_bytes));
  }
  streams_.emplace_back(this, "default");
  trace_pid_ = g_next_trace_pid.fetch_add(1, std::memory_order_relaxed);
  set_trace_label(profile_.name + " #" + std::to_string(trace_pid_));
}

void Device::set_trace_label(const std::string& label) {
  // Always registered (construction-time cost only), so labels are present
  // even when tracing is enabled after the device was built.
  obs::TraceSession::global().set_process_label(trace_pid_, label);
}

Device::~Device() = default;

std::uint64_t Device::reserve_addr(std::uint64_t bytes) {
  // Line-align every allocation so buffers never share a cache line.
  const std::uint64_t line = profile_.l2_line_bytes;
  const std::uint64_t addr = (next_addr_ + line - 1) / line * line;
  if (addr + bytes > profile_.device_mem_bytes) {
    throw std::bad_alloc();  // simulated HBM exhausted (hipErrorOutOfMemory)
  }
  next_addr_ = addr + bytes;
  return addr;
}

Stream& Device::create_stream(std::string name) {
  streams_.emplace_back(this, std::move(name));
  return streams_.back();
}

double Device::stream_begin(Stream& s) const {
  return std::max(s.t_end_, t_floor_);
}

void Device::maybe_corrupt_copy(const char* name) {
  FaultInjector& faults = FaultInjector::global();
  if (!faults.enabled()) return;
  if (!faults.should_inject(FaultKind::MemcpyCorruption)) return;
  pending_corruption_ = true;
  ++corrupted_copies_;
  obs::MetricsRegistry& mx = obs::MetricsRegistry::global();
  if (mx.enabled()) mx.counter("sim.faults.memcpy").add();
  obs::TraceSession& tr = obs::TraceSession::global();
  if (tr.enabled()) {
    tr.instant(std::string("fault.") + name, "fault", "stream:default",
               trace_pid_, now_us());
  }
  obs::FlightRecorder::global().record(
      "sim", "memcpy_corrupt", name, 0,
      static_cast<std::uint64_t>(trace_pid_));
}

double Device::memcpy_h2d(Stream& s, std::uint64_t bytes) {
  // SchedCheck yield point: a controlled task may be preempted between a
  // peer's kernel and the copy that publishes its data — the window a
  // missing synchronize() leaves open.
  chk_point("sim.memcpy.h2d", bytes);
  const double t = profile_.memcpy_overhead_us +
                   static_cast<double>(bytes) / profile_.h2d_bytes_per_us;
  const double begin = stream_begin(s);
  s.t_end_ = begin + t;
  if (attr_sink_ != nullptr) {
    attr_sink_->memcpys += 1;
    attr_sink_->modelled_us += t;
  }
  trace_memcpy("memcpy_h2d", s, begin, t, bytes);
  maybe_corrupt_copy("memcpy_h2d");
  return t;
}

double Device::memcpy_d2h(Stream& s, std::uint64_t bytes) {
  chk_point("sim.memcpy.d2h", bytes);
  const double t = profile_.memcpy_overhead_us +
                   static_cast<double>(bytes) / profile_.d2h_bytes_per_us;
  const double begin = stream_begin(s);
  s.t_end_ = begin + t;
  if (attr_sink_ != nullptr) {
    attr_sink_->memcpys += 1;
    attr_sink_->modelled_us += t;
  }
  trace_memcpy("memcpy_d2h", s, begin, t, bytes);
  maybe_corrupt_copy("memcpy_d2h");
  return t;
}

void Device::trace_memcpy(const char* name, const Stream& s, double start_us,
                          double dur_us, std::uint64_t bytes) const {
  obs::TraceSession& tr = obs::TraceSession::global();
  if (!tr.enabled()) return;
  obs::Span sp;
  sp.name = name;
  sp.category = "mem";
  sp.track = "stream:" + s.name();
  sp.pid = trace_pid_;
  sp.sim_start_us = start_us;
  sp.sim_dur_us = dur_us;
  sp.attr("bytes", bytes);
  tr.complete(std::move(sp));
}

void Device::synchronize() {
  double max_end = t_floor_;
  for (const Stream& s : streams_) max_end = std::max(max_end, s.t_end_);
  t_floor_ = max_end + profile_.device_sync_us;
  for (Stream& s : streams_) s.t_end_ = t_floor_;
}

void Device::join_streams(const std::vector<Stream*>& ss) {
  if (ss.empty()) return;
  double max_end = t_floor_;
  for (Stream* s : ss) max_end = std::max(max_end, s->t_end_);
  const double joined =
      max_end + profile_.stream_join_us * static_cast<double>(ss.size() - 1);
  for (Stream* s : ss) s->t_end_ = joined;
}

void Device::host_work(double us) {
  // Host work serializes with everything previously submitted.
  synchronize();
  t_floor_ += us;
  for (Stream& s : streams_) s.t_end_ = t_floor_;
}

double Device::now_us() const {
  double t = t_floor_;
  for (const Stream& s : streams_) t = std::max(t, s.t_end_);
  return t;
}

void Device::reset_clock() {
  t_floor_ = 0;
  for (Stream& s : streams_) s.t_end_ = 0;
}

void Device::warmup() {
  first_launch_done_ = true;
}

void Event::record(const Stream& s) {
  t_us_ = s.t_end();
  recorded_ = true;
}

void Stream::synchronize() {
  device_->t_floor_ =
      std::max(device_->t_floor_, t_end_) + device_->profile_.device_sync_us;
  t_end_ = device_->t_floor_;
}

}  // namespace xbfs::sim
