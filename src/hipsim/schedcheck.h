// SchedCheck: a CHESS-style schedule-exploring model checker for the
// simulated GPU's kernels and the serving stack's concurrent structures
// (docs/modelcheck.md).
//
// SimSan (hipsim/sanitizer.h) analyzes the access log of whatever
// interleaving the worker pool happened to produce; TSan CI stumbles into
// whatever schedules the OS serves up.  SchedCheck turns both from
// probabilistic checks into a bounded-exhaustive tool: it serializes the
// workload onto one runnable task at a time and *chooses* the interleaving,
// exploring a seeded set of schedules with a bounded number of preemptions,
// pruned DPOR-lite style so only schedules that reorder *conflicting*
// accesses are generated.
//
//   - Kernel domain: while a Schedule is current on the launching thread,
//     Device::launch runs grid blocks as controlled tasks instead of pool
//     workers.  Preemption points are the SimSan-instrumented access points
//     (every ExecCtx load/store/atomic — wavefront and block boundaries
//     included), so the checker needs XBFS_SANITIZE races mode; configure()
//     turns it on if it is off.
//   - Host domain: Schedule::run_tasks runs harness closures as controlled
//     tasks; preemption points are the sim::chk_point() yield shims wired
//     through the flight-recorder seqlock, the admission queue, breaker
//     transitions and graph-store snapshot publication.  Invariant
//     callbacks run at the end of every explored interleaving via
//     Schedule::fail().
//
// Determinism and replay: every schedule is identified by a 64-bit seed;
// all scheduling decisions derive from that seed plus a conflict relation
// collected on a fixed baseline round, so a failure's printed seed replays
// the interleaving bit-for-bit:
//
//   XBFS_SCHEDCHECK="schedules=64,preemptions=2,seed=7"   # explore
//   XBFS_SCHEDCHECK="replay=0x1b5ed..."                   # reproduce
//
// Detection channels per schedule: SimSan unannotated-finding deltas,
// exceptions escaping tasks, Schedule::fail() invariant violations, and
// final-state divergence (a `racy_ok`-annotated race is verified *benign*
// only if every explored interleaving reaches the same state hash).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hipsim/chk_point.h"

namespace xbfs::sim {

struct SchedCheckConfig {
  unsigned schedules = 32;   ///< explored schedules, baseline round included
  unsigned preemptions = 2;  ///< max injected preemptions per schedule
  std::uint64_t seed = 0x5C4EDBA5Eull;  ///< base seed; schedule i mixes in i
  bool has_replay = false;
  std::uint64_t replay_seed = 0;  ///< run exactly this schedule

  /// Parse the XBFS_SCHEDCHECK spec:
  ///   "schedules=64,preemptions=3,seed=7"  or  "replay=0x1B5ED"
  /// Unknown keys warn to stderr and are ignored; numbers accept 0x hex.
  static SchedCheckConfig from_env_string(const std::string& spec);
};

/// One failing schedule: the seed replays it deterministically.
struct ScheduleFailure {
  std::uint64_t seed = 0;
  std::string what;             ///< invariant / exception / sanitizer delta
  std::uint64_t state_hash = 0; ///< body-reported final state (0 if none)
};

struct ExploreResult {
  std::string name;                    ///< exploration label (reports)
  std::uint64_t schedules_run = 0;
  std::uint64_t schedules_pruned = 0;  ///< decision-trace duplicates
  std::uint64_t preemptions = 0;       ///< injected context switches, total
  std::uint64_t yield_points = 0;      ///< yields crossed, total
  std::uint64_t conflict_keys = 0;     ///< DPOR-lite conflict relation size
  std::vector<ScheduleFailure> failures;
  bool state_diverged = false;         ///< some schedule reached a new state
  std::uint64_t baseline_hash = 0;
  std::uint64_t first_divergent_seed = 0;
  std::uint64_t first_divergent_hash = 0;

  bool ok() const { return failures.empty() && !state_diverged; }
  /// Human-readable triage summary; every failure line carries the
  /// `XBFS_SCHEDCHECK=replay=<seed>` incantation that reproduces it.
  void summary(std::ostream& os) const;
};

class SchedCheck;

namespace schedcheck_detail {
struct Task;
/// The controlled task running on this thread, if any (set by the
/// scheduler around task bodies; null on every other thread).
extern thread_local Task* tl_task;
void yield(Task* task, std::uint64_t key, bool write);
}  // namespace schedcheck_detail

/// Preemption point for simulated-kernel accesses; called by the SimSan
/// access hook with the modelled address.  No-op unless the calling thread
/// is a controlled task.
inline void schedcheck_access_yield(std::uint64_t addr, bool write) {
  if (schedcheck_detail::tl_task != nullptr) {
    schedcheck_detail::yield(schedcheck_detail::tl_task, addr, write);
  }
}

/// One controlled execution of the workload under a fixed schedule seed.
/// Created by SchedCheck::explore; the exploration body receives it and
/// may run host tasks through it directly.  Kernel launches made on the
/// body's thread route through it automatically.
class Schedule {
 public:
  std::uint64_t seed() const { return seed_; }
  /// True on the conflict-collection round (deterministic round-robin, no
  /// preemption); harnesses can use it to size work up or down.
  bool baseline() const { return baseline_; }

  /// Run `task`(0..n-1) to completion under this schedule: one task
  /// runnable at a time, preemptible at conflict-eligible yield points.
  /// Tasks must not nest run_tasks sessions.  With n <= 1 the task runs
  /// inline, uncontrolled (nothing to interleave).
  void run_tasks(std::size_t n, const std::function<void(std::size_t)>& task);

  /// Record an invariant violation for this schedule (checked by the
  /// harness at any point; typically after run_tasks).
  void fail(std::string what);
  bool failed() const;

  std::uint64_t preemptions() const { return preempt_count_; }
  std::uint64_t yields() const { return yield_count_; }
  /// Hash of every scheduling decision this schedule made; two schedules
  /// with equal trace hashes explored the same interleaving (pruning).
  std::uint64_t trace_hash() const { return trace_hash_; }

 private:
  friend class SchedCheck;
  friend void schedcheck_detail::yield(schedcheck_detail::Task*,
                                       std::uint64_t, bool);

  /// Conflict relation shared across one exploration: keys (addresses /
  /// chk_point sites) touched by more than one task with at least one
  /// write, collected on the baseline round and frozen afterwards so every
  /// seed's decision stream is reproducible in isolation.
  struct ConflictSet {
    struct Info {
      std::uint32_t first_task = 0;
      bool multi_task = false;
      bool any_write = false;
    };
    std::unordered_map<std::uint64_t, Info> seen;
    std::unordered_set<std::uint64_t> hot;
    void freeze();
  };

  Schedule(std::uint64_t seed, bool baseline, unsigned preemption_budget,
           ConflictSet* conflicts)
      : seed_(seed),
        baseline_(baseline),
        budget_(preemption_budget),
        conflicts_(conflicts),
        prng_(seed ^ 0x9E3779B97F4A7C15ull) {}

  std::uint64_t next_rand();
  void yield_locked(std::size_t id, std::uint64_t key, bool write,
                    std::unique_lock<std::mutex>& lk);
  void choose_next_locked();
  void task_entry(std::size_t id,
                  const std::function<void(std::size_t)>& task);

  const std::uint64_t seed_;
  const bool baseline_;
  unsigned budget_;
  ConflictSet* conflicts_;
  std::uint64_t prng_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<bool> finished_;
  std::size_t n_tasks_ = 0;
  std::size_t n_finished_ = 0;
  std::size_t active_ = 0;
  bool in_session_ = false;

  std::uint64_t preempt_count_ = 0;
  std::uint64_t yield_count_ = 0;
  std::uint64_t eligible_count_ = 0;
  std::uint64_t trace_hash_ = 0;
  std::vector<std::string> failures_;
};

class SchedCheck {
 public:
  /// Process-wide instance; first use reads XBFS_SCHEDCHECK so any binary
  /// can be explored unmodified (the sweep/driver calls explore()).
  static SchedCheck& global();

  SchedCheck() = default;
  SchedCheck(const SchedCheck&) = delete;
  SchedCheck& operator=(const SchedCheck&) = delete;

  /// Also enables the sanitizer's race instrumentation if it is off —
  /// kernel preemption points live in the SimSan access hook.
  void configure(const SchedCheckConfig& cfg);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  SchedCheckConfig config() const;

  /// Run one bounded exploration of `body` under the instance's config.
  /// The body is invoked once per schedule; it must construct its workload
  /// from scratch (state resets between schedules), run it, and return a
  /// hash of the final state (0 to opt out of divergence checking).
  /// Schedule 0 is the deterministic baseline round that collects the
  /// conflict relation.  In replay mode the baseline runs silently to
  /// rebuild the relation, then exactly the replayed seed is reported.
  ExploreResult explore(const std::string& name,
                        const std::function<std::uint64_t(Schedule&)>& body);
  /// explore() under an explicit config (tests), ignoring enabled().
  ExploreResult explore_with(
      const SchedCheckConfig& cfg, const std::string& name,
      const std::function<std::uint64_t(Schedule&)>& body);

  /// The schedule currently exploring on this thread (set around the body;
  /// Device::launch routes blocks through it), or null.
  static Schedule* current();

  /// Grid blocks are folded onto at most this many controlled tasks; a
  /// bigger grid still executes fully, block b on task b % kMaxTasks.
  static constexpr unsigned kMaxTasks = 128;

 private:
  mutable std::mutex mu_;
  SchedCheckConfig cfg_;
  std::atomic<bool> enabled_{false};
};

/// FNV-1a over a span of trivially hashable values — the canonical state
/// hash for explore bodies (levels vectors, counters, ...).
inline std::uint64_t state_hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001B3ull;
  return h;
}
template <typename T>
std::uint64_t state_hash(const std::vector<T>& v) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const T& x : v) {
    h = state_hash_mix(h, static_cast<std::uint64_t>(x));
  }
  return h;
}

}  // namespace xbfs::sim
