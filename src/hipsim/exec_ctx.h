// ExecCtx: the per-worker handle kernel code uses for every modelled
// global-memory operation and for SIMT issue-slot accounting.
//
// All accesses act on the backing host storage through relaxed
// std::atomic_ref — atomics because they model device atomics, plain
// loads/stores because concurrently executing simulated blocks may touch
// the same word the way concurrently executing real thread blocks do, and
// the *simulator* must stay free of C++ data races (ThreadSanitizer-clean)
// even when the *simulated program* races.  Whether a simulated race is a
// bug is SimSan's job (hipsim/sanitizer.h): when a recorder is attached,
// every access here is bounds/lifetime/init-checked and logged for the
// post-launch cross-block race analyzer.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "hipsim/buffer.h"
#include "hipsim/device_profile.h"
#include "hipsim/mem_model.h"
#include "hipsim/sanitizer.h"

namespace xbfs::sim {

class ExecCtx {
 public:
  ExecCtx(MemProbe* probe, const DeviceProfile* profile,
          SanRecorder* rec = nullptr, unsigned block_id = 0)
      : probe_(probe), profile_(profile), rec_(rec), block_(block_id) {}

  const DeviceProfile& profile() const { return *profile_; }
  unsigned wavefront_size() const { return profile_->wavefront_size; }

  // --- plain loads/stores --------------------------------------------------
  template <typename T>
  T load(dspan<const T> s, std::size_t i) {
    if (rec_ != nullptr &&
        !san(s.shadow(), s.addr_of(i), i, s.size(), sizeof(T),
             AccKind::Read)) {
      return T{};
    }
    probe_->read(s.addr_of(i), sizeof(T));
    return relaxed_load(s[i]);
  }
  template <typename T>
  T load(dspan<T> s, std::size_t i) {
    return load(dspan<const T>(s), i);
  }
  template <typename T>
  void store(dspan<T> s, std::size_t i, T v) {
    if (rec_ != nullptr &&
        !san(s.shadow(), s.addr_of(i), i, s.size(), sizeof(T),
             AccKind::Write)) {
      return;
    }
    probe_->write(s.addr_of(i), sizeof(T));
    relaxed_store(s[i], v);
  }

  // --- atomics ---------------------------------------------------------------
  template <typename T>
  T atomic_add(dspan<T> s, std::size_t i, T v) {
    if (!san_rmw(s, i)) return T{};
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    return std::atomic_ref<T>(s[i]).fetch_add(v, std::memory_order_relaxed);
  }
  template <typename T>
  T atomic_or(dspan<T> s, std::size_t i, T v) {
    if (!san_rmw(s, i)) return T{};
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    return std::atomic_ref<T>(s[i]).fetch_or(v, std::memory_order_relaxed);
  }
  template <typename T>
  T atomic_min(dspan<T> s, std::size_t i, T v) {
    if (!san_rmw(s, i)) return T{};
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    std::atomic_ref<T> ref(s[i]);
    T cur = ref.load(std::memory_order_relaxed);
    while (v < cur &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    return cur;
  }
  template <typename T>
  T atomic_exch(dspan<T> s, std::size_t i, T v) {
    if (!san_rmw(s, i)) return T{};
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    return std::atomic_ref<T>(s[i]).exchange(v, std::memory_order_relaxed);
  }
  /// atomicCAS semantics: returns the value observed before the operation;
  /// the swap happened iff the return value equals `expected`.
  template <typename T>
  T atomic_cas(dspan<T> s, std::size_t i, T expected, T desired) {
    if (!san_rmw(s, i)) {
      // Skipped unsafe access: report "swap lost" so callers do not act on
      // a phantom success.
      if constexpr (std::is_integral_v<T>) {
        return static_cast<T>(expected + 1);
      } else {
        return T{};
      }
    }
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    std::atomic_ref<T> ref(s[i]);
    T cur = expected;
    ref.compare_exchange_strong(cur, desired, std::memory_order_relaxed);
    return cur;
  }
  /// Volatile-style read that bypasses nothing in the model but documents
  /// intent where XBFS re-reads a status word another block may have set.
  template <typename T>
  T atomic_load(dspan<const T> s, std::size_t i) {
    if (rec_ != nullptr &&
        !san(s.shadow(), s.addr_of(i), i, s.size(), sizeof(T),
             AccKind::AtomicRead)) {
      return T{};
    }
    probe_->read(s.addr_of(i), sizeof(T));
    // C++20 atomic_ref requires a non-const referent; the object itself is
    // writable device memory, the span is merely a read-only view.
    return std::atomic_ref<T>(const_cast<T&>(s[i]))
        .load(std::memory_order_relaxed);
  }
  template <typename T>
  T atomic_load(dspan<T> s, std::size_t i) {
    return atomic_load(dspan<const T>(s), i);
  }

  // --- SIMT issue accounting -------------------------------------------------
  /// Record `total` issued lane slots of which `active` did useful work;
  /// divergence/idle lanes show up as total > active.
  void slots(std::uint64_t total, std::uint64_t active) {
    probe_->count_slots(total, active);
  }

  MemProbe& probe() { return *probe_; }

  // --- SimSan wiring ---------------------------------------------------------
  /// True when this launch runs with a sanitizer recorder attached.
  bool san_active() const { return rec_ != nullptr; }
  unsigned block_id() const { return block_; }
  /// Position tracking for access-log attribution; maintained by
  /// BlockCtx/WavefrontCtx phase helpers, best-effort inside hand-rolled
  /// lane loops.
  void set_sim_lane(unsigned wavefront, unsigned lane) {
    wavefront_ = wavefront;
    lane_ = static_cast<std::uint16_t>(lane);
  }
  void set_wavefront(unsigned wavefront) { wavefront_ = wavefront; }
  void set_lane(unsigned lane) { lane_ = static_cast<std::uint16_t>(lane); }
  const char* racy_reason() const { return racy_why_; }
  void set_racy_reason(const char* why) { racy_why_ = why; }
  /// Allowlist-hygiene hook (racy_ok ctor): count the scope entry so the
  /// sanitizer can flag annotations that run but never cover an access.
  void note_annotation(const char* why) {
    if (rec_ != nullptr && rec_->log_races) rec_->ann_entered.push_back(why);
  }

 private:
  /// Relaxed atomic access keeps the simulator itself free of C++ data
  /// races on racy *simulated* accesses; compiles to plain moves on x86.
  template <typename T>
  static T relaxed_load(const T& obj) {
    if constexpr (std::atomic_ref<T>::is_always_lock_free) {
      return std::atomic_ref<T>(const_cast<T&>(obj))
          .load(std::memory_order_relaxed);
    } else {
      return obj;
    }
  }
  template <typename T>
  static void relaxed_store(T& obj, T v) {
    if constexpr (std::atomic_ref<T>::is_always_lock_free) {
      std::atomic_ref<T>(obj).store(v, std::memory_order_relaxed);
    } else {
      obj = v;
    }
  }

  bool san(const BufferShadow* shadow, std::uint64_t addr, std::size_t i,
           std::size_t span_size, std::size_t elem_size, AccKind kind) {
    return san_check(*rec_, shadow, addr, i, span_size, elem_size, kind,
                     block_, wavefront_, lane_, racy_why_);
  }
  template <typename T>
  bool san_rmw(const dspan<T>& s, std::size_t i) {
    return rec_ == nullptr || san(s.shadow(), s.addr_of(i), i, s.size(),
                                  sizeof(T), AccKind::AtomicRmw);
  }

  MemProbe* probe_;
  const DeviceProfile* profile_;
  SanRecorder* rec_ = nullptr;
  unsigned block_ = 0;
  unsigned wavefront_ = 0;
  std::uint16_t lane_ = 0;
  const char* racy_why_ = nullptr;
};

/// Allowlist annotation for *intentional* cross-block races — XBFS's
/// bottom-up look-ahead deliberately lets a block commit `status[v] = level`
/// with a plain store while other blocks concurrently probe v (HPDC'19
/// v7->v8).  Accesses made inside a racy_ok scope still appear in the
/// access log, but the analyzer reports conflicts whose every non-atomic
/// participant is annotated as DataRaceAllowlisted (documented, counted,
/// not fatal) instead of DataRace.  `why` must be a string with static
/// storage duration; it is quoted verbatim in the finding.
class racy_ok {
 public:
  racy_ok(ExecCtx& ctx, const char* why)
      : ctx_(ctx), prev_(ctx.racy_reason()) {
    ctx_.set_racy_reason(why);
    ctx_.note_annotation(why);
  }
  ~racy_ok() { ctx_.set_racy_reason(prev_); }
  racy_ok(const racy_ok&) = delete;
  racy_ok& operator=(const racy_ok&) = delete;

 private:
  ExecCtx& ctx_;
  const char* prev_;
};

}  // namespace xbfs::sim
