// ExecCtx: the per-worker handle kernel code uses for every modelled
// global-memory operation and for SIMT issue-slot accounting.
//
// All atomics act on the backing host storage through std::atomic_ref, so
// concurrently executing simulated blocks interact exactly like concurrently
// executing real thread blocks; the memory model records the traffic on the
// side.
#pragma once

#include <atomic>
#include <cstdint>

#include "hipsim/buffer.h"
#include "hipsim/device_profile.h"
#include "hipsim/mem_model.h"

namespace xbfs::sim {

class ExecCtx {
 public:
  ExecCtx(MemProbe* probe, const DeviceProfile* profile)
      : probe_(probe), profile_(profile) {}

  const DeviceProfile& profile() const { return *profile_; }
  unsigned wavefront_size() const { return profile_->wavefront_size; }

  // --- plain loads/stores --------------------------------------------------
  template <typename T>
  T load(dspan<const T> s, std::size_t i) {
    probe_->read(s.addr_of(i), sizeof(T));
    return s[i];
  }
  template <typename T>
  T load(dspan<T> s, std::size_t i) {
    return load(dspan<const T>(s), i);
  }
  template <typename T>
  void store(dspan<T> s, std::size_t i, T v) {
    probe_->write(s.addr_of(i), sizeof(T));
    s[i] = v;
  }

  // --- atomics ---------------------------------------------------------------
  template <typename T>
  T atomic_add(dspan<T> s, std::size_t i, T v) {
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    return std::atomic_ref<T>(s[i]).fetch_add(v, std::memory_order_relaxed);
  }
  template <typename T>
  T atomic_or(dspan<T> s, std::size_t i, T v) {
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    return std::atomic_ref<T>(s[i]).fetch_or(v, std::memory_order_relaxed);
  }
  template <typename T>
  T atomic_min(dspan<T> s, std::size_t i, T v) {
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    std::atomic_ref<T> ref(s[i]);
    T cur = ref.load(std::memory_order_relaxed);
    while (v < cur &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    return cur;
  }
  template <typename T>
  T atomic_exch(dspan<T> s, std::size_t i, T v) {
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    return std::atomic_ref<T>(s[i]).exchange(v, std::memory_order_relaxed);
  }
  /// atomicCAS semantics: returns the value observed before the operation;
  /// the swap happened iff the return value equals `expected`.
  template <typename T>
  T atomic_cas(dspan<T> s, std::size_t i, T expected, T desired) {
    probe_->atomic_rmw(s.addr_of(i), sizeof(T));
    std::atomic_ref<T> ref(s[i]);
    T cur = expected;
    ref.compare_exchange_strong(cur, desired, std::memory_order_relaxed);
    return cur;
  }
  /// Volatile-style read that bypasses nothing in the model but documents
  /// intent where XBFS re-reads a status word another block may have set.
  template <typename T>
  T atomic_load(dspan<const T> s, std::size_t i) {
    probe_->read(s.addr_of(i), sizeof(T));
    // C++20 atomic_ref requires a non-const referent; the object itself is
    // writable device memory, the span is merely a read-only view.
    return std::atomic_ref<T>(const_cast<T&>(s[i]))
        .load(std::memory_order_relaxed);
  }
  template <typename T>
  T atomic_load(dspan<T> s, std::size_t i) {
    return atomic_load(dspan<const T>(s), i);
  }

  // --- SIMT issue accounting -------------------------------------------------
  /// Record `total` issued lane slots of which `active` did useful work;
  /// divergence/idle lanes show up as total > active.
  void slots(std::uint64_t total, std::uint64_t active) {
    probe_->count_slots(total, active);
  }

  MemProbe& probe() { return *probe_; }

 private:
  MemProbe* probe_;
  const DeviceProfile* profile_;
};

}  // namespace xbfs::sim
