#include "hipsim/timing.h"

#include <algorithm>

namespace xbfs::sim {

TimingBreakdown kernel_time(const DeviceProfile& profile,
                            const KernelCounters& c, double raw_imbalance,
                            double lane_work_multiplier) {
  TimingBreakdown t;
  const double hbm_bytes =
      static_cast<double>(c.fetch_bytes + c.writeback_bytes);
  t.t_hbm_us = hbm_bytes / profile.hbm_bytes_per_us;
  t.t_l2_us =
      static_cast<double>(c.l2_hit_bytes) / profile.l2_bytes_per_us;
  t.t_slots_us =
      static_cast<double>(c.lane_slots) / profile.lane_slots_per_us;
  t.t_atomic_us = static_cast<double>(c.atomics) / profile.atomics_per_us;
  // Dependent-access latency: every probe occupies a memory lane for its
  // full latency; the device hides at most mem_parallelism of them at once.
  const double latency_cycles =
      static_cast<double>(c.l2_hits) * profile.l2_hit_latency_cycles +
      static_cast<double>(c.l2_misses) * profile.hbm_latency_cycles;
  t.t_latency_us = latency_cycles /
                   (profile.clock_ghz * 1000.0 * profile.mem_parallelism);

  t.bottleneck_us = std::max(
      {t.t_hbm_us, t.t_l2_us, t.t_latency_us, t.t_slots_us, t.t_atomic_us});
  t.imbalance = std::clamp(raw_imbalance, 1.0, 8.0);
  // lane_work_multiplier is a whole-kernel slowdown knob modelling measured
  // compiler effects (register spilling: hipcc +17%, missing -O3 up to 10x
  // in the paper) that the source-level simulation cannot derive.
  t.total_us = profile.kernel_launch_us +
               t.bottleneck_us * t.imbalance * lane_work_multiplier;
  return t;
}

}  // namespace xbfs::sim
